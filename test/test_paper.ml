(* Paper fidelity: each test asserts a specific statement of
   "Efficient Integrity Checking over XML Documents" (EDBT 2006),
   section by section.  Overlapping coverage with the per-module suites
   is intentional — this file is the claim-by-claim audit trail. *)

open Xic_core
module Conf = Xic_workload.Conference
module T = Xic_datalog.Term
module DP = Xic_datalog.Parser
module Sub = Xic_datalog.Subsume
module XU = Xic_xupdate.Xupdate

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let schema = lazy (Conf.schema ())
let mapping () = Schema.mapping (Lazy.force schema)

let variant_set expected got =
  checki "denial count" (List.length expected) (List.length got);
  List.iter
    (fun e ->
      let e = DP.parse_denial e in
      checkb
        (Printf.sprintf "%s expected among [%s]" (T.denial_str e)
           (String.concat " | " (List.map T.denial_str got)))
        true
        (List.exists (Sub.variant e) got))
    expected

(* --- Section 4.1: the relational schema ----------------------------- *)

let test_s41_schema () =
  checks "schema as printed in the paper"
    "pub(Id, Pos, IdParent_dblp, Title)\n\
     aut(Id, Pos, IdParent_pub, Name)\n\
     track(Id, Pos, IdParent_review, Name)\n\
     rev(Id, Pos, IdParent_track, Name)\n\
     sub(Id, Pos, IdParent_rev, Title)\n\
     auts(Id, Pos, IdParent_sub, Name)"
    (Schema.to_string (Lazy.force schema))

(* "The root nodes of the documents (dblp and review) are not represented
   as predicates" *)
let test_s41_roots_elided () =
  let m = mapping () in
  checkb "dblp elided" true (Xic_relmap.Mapping.repr_of m "dblp" = Xic_relmap.Mapping.Elided);
  checkb "review elided" true
    (Xic_relmap.Mapping.repr_of m "review" = Xic_relmap.Mapping.Elided)

(* The update-mapping example: inserting after /review/track[2]/rev[5]/sub[6]
   adds { sub(id_s, 7, id_r, "Taming Web Services"),
          auts(id_a, 2, id_s, "Jack") }. *)
let test_s41_update_mapping () =
  (* Build rev.xml with 2 tracks; track 2's rev 5 has 6 subs. *)
  let b = Buffer.create 4096 in
  Buffer.add_string b "<review>";
  for t = 1 to 2 do
    Buffer.add_string b (Printf.sprintf "<track><name>T%d</name>" t);
    for r = 1 to 5 do
      Buffer.add_string b (Printf.sprintf "<rev><name>R%d-%d</name>" t r);
      for s = 1 to 6 do
        Buffer.add_string b
          (Printf.sprintf "<sub><title>S%d</title><auts><name>A</name></auts></sub>" s)
      done;
      Buffer.add_string b "</rev>"
    done;
    Buffer.add_string b "</track>"
  done;
  Buffer.add_string b "</review>";
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo (Buffer.contents b);
  let doc = Repository.doc repo in
  let u =
    XU.parse_string
      {|<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:insert-after select="/review/track[2]/rev[5]/sub[6]">
            <xupdate:element name="sub">
              <title>Taming Web Services</title>
              <auts><name>Jack</name></auts>
            </xupdate:element>
          </xupdate:insert-after>
        </xupdate:modifications>|}
  in
  let store_before = Xic_datalog.Store.freeze (Repository.store repo) in
  let undo = Repository.apply_unchecked repo u in
  let store_after = Repository.store repo in
  (* exactly one new sub and one new auts fact *)
  checki "one sub added" 1
    (Xic_datalog.Store.cardinality store_after "sub"
     - Xic_datalog.Store.cardinality store_before "sub");
  (* find it and check the paper's Pos values: 7 for the sub (name is
     position 1, the subs 2..7, the new one lands at 8? no — the paper
     counts among sub siblings implicitly: our Pos counts all element
     children, so name shifts everything by one: sub[6] sits at Pos 7 and
     the new sub at Pos 8.  The invariant the paper states — "7 is
     determined as the successor of 6" — maps to successor-of-anchor: *)
  let new_sub =
    List.find
      (fun t -> List.nth t 3 = T.Str "Taming Web Services")
      (Xic_datalog.Store.tuples store_after "sub")
  in
  let anchor_pos =
    let anchor =
      List.hd
        (Xic_xpath.Eval.select doc
           (Xic_xpath.Parser.parse "/review/track[2]/rev[5]/sub[6]"))
    in
    Xic_xml.Doc.position doc anchor
  in
  (match (List.nth new_sub 1, List.nth new_sub 2) with
   | T.Int pos, T.Int parent ->
     checki "successor of the anchor" (anchor_pos + 1) pos;
     let rev5 =
       List.hd
         (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "/review/track[2]/rev[5]"))
     in
     checki "parent is rev[5]" rev5 parent
   | _ -> Alcotest.fail "unexpected fact shape");
  (* auts: position 2 (after title), parent = the new sub *)
  let new_auts =
    List.find
      (fun t -> List.nth t 3 = T.Str "Jack")
      (Xic_datalog.Store.tuples store_after "auts")
  in
  (match (List.nth new_auts 1, List.nth new_auts 2, List.nth new_sub 0) with
   | T.Int 2, parent, sub_id -> checkb "auts parent is the new sub" true (parent = sub_id)
   | _ -> Alcotest.fail "auts must sit at position 2 under the new sub");
  Repository.rollback repo undo;
  checkb "rollback restores the store" true
    (Xic_datalog.Store.equal store_before (Repository.store repo))

(* --- Section 4.2: Duckburg tales ------------------------------------ *)

let test_s42_duckburg () =
  variant_set
    [ {| :- pub(Ip, _, _, "Duckburg tales"), aut(_, _, Ip, "Goofy") |} ]
    (Xic_xpathlog.Compile.parse_and_compile (mapping ())
       "<- //pub[title/text() = \"Duckburg tales\"]/aut/name/text() -> N and N = \"Goofy\"")

(* --- Example 3: the conflict constraint as two denials --------------- *)

let test_ex3 () =
  variant_set
    [
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)";
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, A), aut(_, _, Ip, R)";
    ]
    (Conf.conflict (Lazy.force schema)).Constr.datalog

(* --- Examples 4/5: After and Simp on the ISSN constraint ------------- *)

let test_ex4_after () =
  let u = [ DP.parse_atom "p(%i, %t)" ] in
  checki "After yields four denials" 4
    (List.length
       (Xic_simplify.After.denial u (DP.parse_denial ":- p(X, Y), p(X, Z), Y != Z")))

let test_ex5_simp () =
  variant_set
    [ ":- p(%i, Y), Y != %t" ]
    (Xic_simplify.Simp.simp
       ~update:[ DP.parse_atom "p(%i, %t)" ]
       [ DP.parse_denial ":- p(X, Y), p(X, Z), Y != Z" ])

(* --- Example 6: the simplified conflict checks ----------------------- *)

let test_ex6 () =
  let s = Lazy.force schema in
  let p = Conf.submission_pattern s in
  variant_set
    [
      ":- rev(%anchor, _, _, %n)";
      ":- rev(%anchor, _, _, R), aut(_, _, Ip, %n), aut(_, _, Ip, R)";
    ]
    (Pattern.simplify s p (Conf.conflict s))

(* --- Example 7: the aggregate decrement ------------------------------ *)

let test_ex7 () =
  let s = Lazy.force schema in
  let p = Conf.submission_pattern s in
  variant_set
    [ ":- rev(%anchor, _, _, _), cntd(Is; sub(Is, _, %anchor, _)) > 3" ]
    (Pattern.simplify s p (Conf.track_load s))

(* --- Section 6: the generated XQuery --------------------------------- *)

let test_s6_full_query () =
  checks "denial 2 of the conflict constraint"
    "some $Ir in //rev, $_7 in //aut satisfies $_7/name/text() = $Ir/name/text() and $Ir/sub/auts/name/text() = $_7/../aut/name/text()"
    (Xic_xquery.Ast.to_string
       (Xic_translate.Translate.denial (mapping ())
          (DP.parse_denial
             ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, R), aut(_, _, Ip, A)")))

let test_s6_simplified_query () =
  checks "simplified denial 2"
    "some $_3 in //aut satisfies $_3/name/text() = %n and $_3/../aut/name/text() = %ir/name/text()"
    (Xic_xquery.Ast.to_string
       (Xic_translate.Translate.denial (mapping ())
          (DP.parse_denial ":- rev(%ir, _, _, R), aut(_, _, Ip, %n), aut(_, _, Ip, R)")))

let test_s6_aggregate_query () =
  checks "example 7's let/count form"
    "exists(for $Ir in //rev let $Agg1 := $Ir/sub where count-distinct($Agg1) > 4 return <idle/>)"
    (Xic_xquery.Ast.to_string
       (Xic_translate.Translate.denial (mapping ())
          (DP.parse_denial ":- rev(Ir, _, _, _), cntd(Is; sub(Is, _, Ir, _)) > 4")))

(* --- Section 7: the two checking scenarios --------------------------- *)

let test_s7_scenarios () =
  let ds = Xic_workload.Generator.generate ~seed:8 ~target_bytes:40_000 () in
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo ds.Xic_workload.Generator.pub_xml;
  Repository.load_document repo ds.Xic_workload.Generator.rev_xml;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.add_constraint repo (Conf.workload s);
  Repository.register_pattern repo (Conf.submission_pattern s);
  (* legal: checked before execution, then applied *)
  (match
     Repository.guarded_update repo
       (Conf.insert_submission ~select:ds.Xic_workload.Generator.legal_select
          ~title:"Scenario Legal" ~author:ds.Xic_workload.Generator.legal_author)
   with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "legal scenario");
  (* illegal: "the update statement is not executed" *)
  let before = Xic_xml.Doc.node_count (Repository.doc repo) in
  (match
     Repository.guarded_update repo
       (Conf.insert_submission ~select:ds.Xic_workload.Generator.conflict_select
          ~title:"Scenario Illegal"
          ~author:ds.Xic_workload.Generator.conflict_reviewer)
   with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "illegal scenario");
  checki "no nodes were created" before (Xic_xml.Doc.node_count (Repository.doc repo))

let () =
  Alcotest.run "paper"
    [
      ( "section 4",
        [
          Alcotest.test_case "4.1 relational schema" `Quick test_s41_schema;
          Alcotest.test_case "4.1 roots elided" `Quick test_s41_roots_elided;
          Alcotest.test_case "4.1 update mapping" `Quick test_s41_update_mapping;
          Alcotest.test_case "4.2 Duckburg tales" `Quick test_s42_duckburg;
        ] );
      ( "section 5",
        [
          Alcotest.test_case "example 3" `Quick test_ex3;
          Alcotest.test_case "example 4 (After)" `Quick test_ex4_after;
          Alcotest.test_case "example 5 (Simp)" `Quick test_ex5_simp;
          Alcotest.test_case "example 6" `Quick test_ex6;
          Alcotest.test_case "example 7" `Quick test_ex7;
        ] );
      ( "section 6",
        [
          Alcotest.test_case "full query" `Quick test_s6_full_query;
          Alcotest.test_case "simplified query" `Quick test_s6_simplified_query;
          Alcotest.test_case "aggregate query" `Quick test_s6_aggregate_query;
        ] );
      ( "section 7",
        [ Alcotest.test_case "two scenarios" `Quick test_s7_scenarios ] );
    ]
