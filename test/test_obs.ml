(* Observability layer: histogram bucketing and merge, span-tree
   nesting (including across Pool domains), export shape. *)

module Obs = Xic_obs.Obs
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Pool = Xic_core.Pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Each test that enables tracing restores the globals on exit so the
   suite stays order-independent. *)
let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ();
      Trace.clear_slow_log ();
      Obs.set_slow_threshold_ms None)
    f

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_bucket_of_ns () =
  checki "ns<=0 -> 0" 0 (Metrics.bucket_of_ns 0);
  checki "negative -> 0" 0 (Metrics.bucket_of_ns (-5));
  checki "1ns" 1 (Metrics.bucket_of_ns 1);
  checki "2ns" 2 (Metrics.bucket_of_ns 2);
  checki "3ns" 2 (Metrics.bucket_of_ns 3);
  checki "4ns" 3 (Metrics.bucket_of_ns 4);
  checki "1023ns" 10 (Metrics.bucket_of_ns 1023);
  checki "1024ns" 11 (Metrics.bucket_of_ns 1024);
  (* max_int is 2^62 - 1, so its bucket is 1 + 61; the 63 cap only
     guards hypothetical larger inputs *)
  checki "max_int" 62 (Metrics.bucket_of_ns max_int);
  (* buckets are monotone in ns *)
  let prev = ref 0 in
  for e = 0 to 40 do
    let b = Metrics.bucket_of_ns (1 lsl e) in
    checkb "monotone" true (b >= !prev);
    prev := b
  done

let test_histogram_observe () =
  let h = Metrics.histogram "test_histogram_observe" in
  Metrics.observe_ns h 1;
  Metrics.observe_ns h 3;
  Metrics.observe_ns h 1024;
  let s = Metrics.hsnap h in
  checki "count" 3 s.Metrics.count;
  checki "sum" 1028 s.Metrics.sum_ns;
  checki "bucket(1)" 1 s.Metrics.buckets.(1);
  checki "bucket(3)" 1 s.Metrics.buckets.(2);
  checki "bucket(1024)" 1 s.Metrics.buckets.(11);
  checki "total bucketed = count" s.Metrics.count
    (Array.fold_left ( + ) 0 s.Metrics.buckets)

let test_histogram_merge () =
  let a = Metrics.histogram "test_histogram_merge_a" in
  let b = Metrics.histogram "test_histogram_merge_b" in
  List.iter (Metrics.observe_ns a) [ 1; 2; 100 ];
  List.iter (Metrics.observe_ns b) [ 2; 1_000_000 ];
  let m = Metrics.hsnap_merge (Metrics.hsnap a) (Metrics.hsnap b) in
  checki "merged count" 5 m.Metrics.count;
  checki "merged sum" 1_000_105 m.Metrics.sum_ns;
  checki "merged bucket for 2ns" 2 m.Metrics.buckets.(2);
  checki "merged total = count" m.Metrics.count
    (Array.fold_left ( + ) 0 m.Metrics.buckets);
  (* merge is commutative *)
  let m' = Metrics.hsnap_merge (Metrics.hsnap b) (Metrics.hsnap a) in
  checkb "commutative" true (m = m')

let test_histogram_quantile () =
  let h = Metrics.histogram "test_histogram_quantile" in
  (* 9 fast observations, 1 slow: p50 sits in the fast bucket, p99 in
     the slow one.  Quantiles report the bucket's upper edge in ms. *)
  for _ = 1 to 9 do
    Metrics.observe_ns h 1000 (* bucket 10, upper edge 1024ns *)
  done;
  Metrics.observe_ns h 1_000_000 (* bucket 20, upper edge ~1.05ms *);
  let s = Metrics.hsnap h in
  Alcotest.(check (float 1e-9)) "p50 = fast bucket edge"
    (float_of_int (1 lsl 10) /. 1e6)
    (Metrics.hsnap_quantile s 0.50);
  Alcotest.(check (float 1e-9)) "p99 = slow bucket edge"
    (float_of_int (1 lsl 20) /. 1e6)
    (Metrics.hsnap_quantile s 0.99);
  let empty = { Metrics.count = 0; sum_ns = 0; buckets = Array.make 64 0 } in
  Alcotest.(check (float 0.0)) "empty -> 0" 0.0 (Metrics.hsnap_quantile empty 0.5)

let test_counters () =
  let c = Metrics.counter "test_counter" in
  checkb "interned handle is stable" true (c == Metrics.counter "test_counter");
  Metrics.incr c;
  Metrics.add c 4;
  checki "value" 5 (Metrics.value c);
  let cs, _ = Metrics.snapshot () in
  checki "snapshot sees it" 5
    (Option.value ~default:(-1) (List.assoc_opt "test_counter" cs));
  (* snapshot is name-sorted *)
  checkb "sorted" true (List.sort compare cs = cs)

(* ------------------------------------------------------------------ *)
(* Span trees                                                          *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "a" (fun () -> Trace.event "tick");
        Trace.with_span ~attrs:[ ("k", "v") ] "b" (fun () -> ());
        42)
  in
  checki "value passes through" 42 v;
  match Trace.roots () with
  | [ root ] ->
    checks "root name" "outer" root.Trace.name;
    checki "span count" 4 (Trace.span_count [ root ]);
    (match List.rev root.Trace.children with
     | [ a; b ] ->
       checks "first child" "a" a.Trace.name;
       checks "second child" "b" b.Trace.name;
       checkb "attr recorded" true (List.mem_assoc "k" b.Trace.attrs);
       (match a.Trace.children with
        | [ ev ] ->
          checks "event nested under a" "tick" ev.Trace.name;
          checkb "event has zero duration" true
            (ev.Trace.start_ns = ev.Trace.stop_ns)
        | _ -> Alcotest.fail "expected one event under a")
     | _ -> Alcotest.fail "expected two children in order")
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_span_exception_unwinds () =
  with_tracing @@ fun () ->
  (match
     Trace.with_span "outer" (fun () ->
         Trace.with_span "inner" (fun () -> failwith "boom"))
   with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception must propagate");
  (* both spans are closed and attached despite the exception *)
  match Trace.roots () with
  | [ root ] ->
    checks "root closed" "outer" root.Trace.name;
    checkb "root has a stop time" true
      (Int64.compare root.Trace.stop_ns root.Trace.start_ns >= 0);
    (match root.Trace.children with
     | [ inner ] -> checks "inner attached" "inner" inner.Trace.name
     | _ -> Alcotest.fail "inner span must be attached to outer");
    (* the stack is clean: a new span becomes a fresh root *)
    Trace.with_span "next" (fun () -> ());
    checki "fresh root" 2 (List.length (Trace.roots ()))
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_disabled_is_transparent () =
  Trace.set_enabled false;
  Trace.reset ();
  let v = Trace.with_span "ghost" (fun () -> 7) in
  Trace.event "ghost-event";
  Trace.add_attr "k" "v";
  checki "value passes through" 7 v;
  checki "nothing recorded" 0 (List.length (Trace.roots ()))

let test_spans_across_pool_domains () =
  with_tracing @@ fun () ->
  let items = List.init 8 (fun i -> i) in
  let sum =
    Trace.with_span "pool" (fun () ->
        Pool.map ~jobs:4
          (fun i -> Trace.with_span ("item" ^ string_of_int i) (fun () -> i))
          items)
    |> List.fold_left ( + ) 0
  in
  checki "results survive tracing" 28 sum;
  match Trace.roots () with
  | [ root ] ->
    checks "single root" "pool" root.Trace.name;
    (* every per-item span was grafted under the pool span, whichever
       domain ran it *)
    checki "all item spans present" 9 (Trace.span_count [ root ]);
    let names =
      List.sort compare
        (List.map (fun (sp : Trace.span) -> sp.Trace.name) root.Trace.children)
    in
    Alcotest.(check (list string))
      "one span per item"
      (List.sort compare (List.map (fun i -> "item" ^ string_of_int i) items))
      names
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_slow_log () =
  with_tracing @@ fun () ->
  Obs.set_slow_threshold_ms (Some 0.0);
  Trace.with_span ~slow:true "crawl" (fun () -> ());
  Trace.with_span "not-a-candidate" (fun () -> ());
  (match Trace.slow_log () with
   | [ sp ] -> checks "slow span logged" "crawl" sp.Trace.name
   | l -> Alcotest.failf "expected one slow entry, got %d" (List.length l));
  Trace.clear_slow_log ();
  checki "cleared" 0 (List.length (Trace.slow_log ()))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i =
    i + n <= m && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_chrome_json_shape () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~attrs:[ ("quote", {|a"b|}) ] "inner" (fun () -> ()));
  let json = Trace.to_chrome_json (Trace.roots ()) in
  checkb "traceEvents array" true (contains json {|{"traceEvents":[|});
  checkb "outer emitted" true (contains json {|"name":"outer"|});
  checkb "complete events" true (contains json {|"ph":"X"|});
  checkb "attr escaped" true (contains json {|"quote":"a\"b"|});
  (* braces and brackets balance *)
  let bal =
    String.fold_left
      (fun (b, k) -> function
        | '{' -> (b + 1, k)
        | '}' -> (b - 1, k)
        | '[' -> (b, k + 1)
        | ']' -> (b, k - 1)
        | _ -> (b, k))
      (0, 0) json
  in
  checkb "balanced" true (bal = (0, 0))

let test_text_tree_shape () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~attrs:[ ("k", "v") ] "inner" (fun () -> ()));
  let txt = Trace.to_text (Trace.roots ()) in
  checkb "outer at column 0" true
    (String.length txt > 5 && String.sub txt 0 5 = "outer");
  checkb "inner indented with attr" true (contains txt "\n  inner");
  checkb "attr rendered" true (contains txt " k=v")

let test_json_escape () =
  checks "plain" "abc" (Trace.json_escape "abc");
  checks "quote" {|a\"b|} (Trace.json_escape {|a"b|});
  checks "backslash" {|a\\b|} (Trace.json_escape {|a\b|});
  checks "newline" {|a\nb|} (Trace.json_escape "a\nb");
  checks "control" {|a\u0001b|} (Trace.json_escape "a\001b")

(* ------------------------------------------------------------------ *)
(* Prometheus exposition and the structured logger                     *)
(* ------------------------------------------------------------------ *)

module Log = Xic_obs.Log

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_prometheus_exposition () =
  let c = Metrics.counter "test_prom_counter" in
  Metrics.add c 7;
  let g = Metrics.gauge "test_prom_gauge" in
  Metrics.set g 3;
  let h = Metrics.histogram "test_prom_lat_ms" in
  Metrics.observe_ns h 1_000_000;
  let body = Metrics.to_prometheus () in
  checkb "counter typed" true
    (contains body "# TYPE xic_test_prom_counter counter");
  checkb "counter value" true (contains body "xic_test_prom_counter 7");
  checkb "gauge typed" true (contains body "# TYPE xic_test_prom_gauge gauge");
  checkb "gauge value" true (contains body "xic_test_prom_gauge 3");
  (* _ms histograms export as summaries in seconds *)
  checkb "summary typed" true
    (contains body "# TYPE xic_test_prom_lat_seconds summary");
  checkb "median label" true
    (contains body "xic_test_prom_lat_seconds{quantile=\"0.5\"}");
  checkb "sum in seconds" true (contains body "xic_test_prom_lat_seconds_sum");
  checkb "count" true (contains body "xic_test_prom_lat_seconds_count 1");
  (* every line parses: TYPE comment or name/value with a float value *)
  List.iter
    (fun line ->
      if line <> "" then
        if line.[0] = '#' then
          checkb "only TYPE comments" true
            (String.length line > 7 && String.sub line 0 7 = "# TYPE ")
        else
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "no value: %s" line
          | Some i ->
            checkb "float value" true
              (float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
               <> None))
    (String.split_on_char '\n' body)

let read_all path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let with_log ?(level = Log.Debug) ?(format = Log.Text) f =
  let path =
    Filename.temp_file
      (Printf.sprintf "xic_obs_log_%d" (Unix.getpid ()))
      ".log"
  in
  (match Log.open_path path with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Log.set_level level;
  Log.set_format format;
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      Log.set_level Log.Info;
      Log.set_format Log.Text;
      Log.set_trace_id None;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  f path

let test_log_levels () =
  with_log ~level:Log.Warn @@ fun path ->
  let before = Log.lines_emitted () in
  checkb "warn enabled" true (Log.enabled Log.Warn);
  checkb "info filtered" false (Log.enabled Log.Info);
  (* a filtered level never renders the message *)
  let rendered = ref false in
  Log.debug (fun m ->
      rendered := true;
      m "never");
  checkb "closure not run when filtered" false !rendered;
  Log.warn ~src:"test" (fun m -> m "kept %d" 1);
  Log.error ~src:"test" (fun m -> m "also kept");
  Log.close ();
  checki "two lines reached the sink" 2 (Log.lines_emitted () - before);
  let body = read_all path in
  checkb "warn line present" true (contains body "kept 1");
  checkb "level rendered" true (contains body "level=warn")

let test_log_json_format () =
  with_log ~format:Log.Json @@ fun path ->
  Log.set_trace_id (Some "t-42");
  Log.info ~src:"test.src"
    ~fields:[ ("k", "v with \"quotes\"") ]
    (fun m -> m "hello %s" "world");
  Log.set_trace_id None;
  Log.close ();
  let body = read_all path in
  checkb "one json object per line" true
    (String.length body > 0 && body.[0] = '{');
  checkb "message" true (contains body {|"msg":"hello world"|});
  checkb "source" true (contains body {|"src":"test.src"|});
  checkb "trace id" true (contains body {|"trace":"t-42"|});
  checkb "field escaped" true (contains body {|"k":"v with \"quotes\""|});
  checkb "level" true (contains body {|"level":"info"|});
  checkb "timestamp" true (contains body {|"ts_ms":|})

let test_log_text_quoting () =
  with_log @@ fun path ->
  Log.info (fun m -> m "plain");
  Log.info ~fields:[ ("key", "has space") ] (fun m -> m "with=equals");
  Log.close ();
  let body = read_all path in
  checkb "bare value unquoted" true (contains body "msg=plain");
  checkb "spacey value quoted" true (contains body {|key="has space"|});
  checkb "equals forces quoting" true (contains body {|msg="with=equals"|})

let test_log_disabled_without_sink () =
  (* no sink installed: logging is a no-op and the closure never runs *)
  Log.close ();
  let rendered = ref false in
  Log.error (fun m ->
      rendered := true;
      m "dropped");
  checkb "no sink, no render" false !rendered;
  checkb "disabled" false (Log.enabled Log.Error)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "log2 bucketing" `Quick test_bucket_of_ns;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantile;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception unwinds" `Quick
            test_span_exception_unwinds;
          Alcotest.test_case "disabled is transparent" `Quick
            test_disabled_is_transparent;
          Alcotest.test_case "across pool domains" `Quick
            test_spans_across_pool_domains;
          Alcotest.test_case "slow log" `Quick test_slow_log;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
          Alcotest.test_case "text tree" `Quick test_text_tree_shape;
          Alcotest.test_case "json escape" `Quick test_json_escape;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_levels;
          Alcotest.test_case "json lines" `Quick test_log_json_format;
          Alcotest.test_case "text quoting" `Quick test_log_text_quoting;
          Alcotest.test_case "no sink, no cost" `Quick
            test_log_disabled_without_sink;
        ] );
    ]
