open Xic_xml

let parse s = (Xml_parser.parse_string s).Xml_parser.doc

let check = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Doc arena                                                           *)
(* ------------------------------------------------------------------ *)

let test_build_tree () =
  let d = Doc.create () in
  let root = Doc.make_element d "a" in
  Doc.set_root d root;
  let b = Doc.make_element d "b" in
  let t = Doc.make_text d "hi" in
  Doc.append_child d ~parent:root b;
  Doc.append_child d ~parent:b t;
  checki "node count" 3 (Doc.node_count d);
  check "text content" "hi" (Doc.text_content d root);
  checki "parent of b" root (Doc.parent d b);
  checkb "b is element" true (Doc.is_element d b);
  checkb "t is text" true (Doc.is_text d t)

let test_positions () =
  let d = parse "<r><a/><b/><a/><b/></r>" in
  let kids = Doc.element_children d (Doc.root d) in
  checki "four children" 4 (List.length kids);
  List.iteri
    (fun i c -> checki (Printf.sprintf "pos %d" i) (i + 1) (Doc.position d c))
    kids

let test_insert_after () =
  let d = parse "<r><a/><c/></r>" in
  let kids = Doc.children d (Doc.root d) in
  let a = List.nth kids 0 in
  let b = Doc.make_element d "b" in
  Doc.insert_after d ~anchor:a b;
  let names = List.map (Doc.name d) (Doc.children d (Doc.root d)) in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names;
  checki "position of b" 2 (Doc.position d b)

let test_insert_before () =
  let d = parse "<r><a/><c/></r>" in
  let c = List.nth (Doc.children d (Doc.root d)) 1 in
  let b = Doc.make_element d "b" in
  Doc.insert_before d ~anchor:c b;
  let names = List.map (Doc.name d) (Doc.children d (Doc.root d)) in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names

let test_detach_reattach () =
  let d = parse "<r><a/><b/><c/></r>" in
  let b = List.nth (Doc.children d (Doc.root d)) 1 in
  Doc.detach d b;
  checki "two children" 2 (List.length (Doc.children d (Doc.root d)));
  checkb "b alive" true (Doc.live d b);
  let a = List.nth (Doc.children d (Doc.root d)) 0 in
  Doc.insert_after d ~anchor:a b;
  Alcotest.(check (list string)) "restored" [ "a"; "b"; "c" ]
    (List.map (Doc.name d) (Doc.children d (Doc.root d)))

let test_delete_subtree () =
  let d = parse "<r><a><x/><y/></a><b/></r>" in
  let a = List.nth (Doc.children d (Doc.root d)) 0 in
  let before = Doc.node_count d in
  Doc.delete_subtree d a;
  checki "freed three nodes" (before - 3) (Doc.node_count d);
  checkb "a dead" false (Doc.live d a)

let test_doc_order () =
  let d = parse "<r><a><x/></a><b><y/><z/></b></r>" in
  let all = Doc.descendant_or_self d (Doc.root d) in
  let sorted = Doc.sort_doc_order d (List.rev all) in
  Alcotest.(check (list int)) "document order stable" all sorted

let test_multi_root_order () =
  let d = Doc.create () in
  let r1 = Doc.make_element d "one" in
  let r2 = Doc.make_element d "two" in
  (* register in reverse allocation order *)
  Doc.add_root d r2;
  Doc.add_root d r1;
  Alcotest.(check (list int)) "collection order" [ r2; r1 ]
    (Doc.sort_doc_order d [ r1; r2 ])

let test_siblings () =
  let d = parse "<r><a/><b/><c/><d/></r>" in
  let kids = Doc.children d (Doc.root d) in
  let c = List.nth kids 2 in
  Alcotest.(check (list string)) "following" [ "d" ]
    (List.map (Doc.name d) (Doc.following_siblings d c));
  Alcotest.(check (list string)) "preceding" [ "a"; "b" ]
    (List.map (Doc.name d) (Doc.preceding_siblings d c))

let test_ancestors () =
  let d = parse "<r><a><b><c/></b></a></r>" in
  let c = List.hd (Doc.descendants d (Doc.root d) |> List.filter (fun n ->
      Doc.is_element d n && Doc.name d n = "c")) in
  Alcotest.(check (list string)) "ancestors nearest-first" [ "b"; "a"; "r" ]
    (List.map (Doc.name d) (Doc.ancestors d c))

let test_attrs () =
  let d = parse {|<r id="1" lang="en"><a id="2"/></r>|} in
  check "root id" "1" (Option.get (Doc.attr d (Doc.root d) "id"));
  check "lang" "en" (Option.get (Doc.attr d (Doc.root d) "lang"));
  Doc.set_attr d (Doc.root d) "id" "9";
  check "updated" "9" (Option.get (Doc.attr d (Doc.root d) "id"))

let test_copy_independent () =
  let d = parse "<r><a/></r>" in
  let d' = Doc.copy d in
  let b = Doc.make_element d "b" in
  Doc.append_child d ~parent:(Doc.root d) b;
  checkb "copy unaffected" false (Doc.equal_structure d d');
  checki "copy keeps count" 2 (Doc.node_count d')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_basic () =
  let d = parse "<a><b>x</b><c/></a>" in
  check "root" "a" (Doc.name d (Doc.root d));
  check "text" "x" (Doc.text_content d (Doc.root d))

let test_parse_entities () =
  let d = parse "<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>" in
  check "entities" "<&>\"'AB" (Doc.text_content d (Doc.root d))

let test_parse_cdata () =
  let d = parse "<a><![CDATA[<not> & markup]]></a>" in
  check "cdata" "<not> & markup" (Doc.text_content d (Doc.root d))

let test_parse_comments_pis () =
  let d = parse "<?xml version=\"1.0\"?><!-- c --><a><!-- inner --><?pi data?>x</a><!-- post -->" in
  check "text" "x" (Doc.text_content d (Doc.root d))

let test_parse_doctype () =
  let r = Xml_parser.parse_string "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>" in
  checkb "dtd captured" true (r.Xml_parser.dtd_text <> None);
  checkb "decl present" true
    (match r.Xml_parser.dtd_text with
     | Some t ->
       let rec find i =
         i + 9 <= String.length t
         && (String.sub t i 9 = "<!ELEMENT" || find (i + 1))
       in
       find 0
     | None -> false)

let test_parse_ws_handling () =
  let d = parse "<a>\n  <b>x</b>\n</a>" in
  checki "whitespace dropped" 1 (List.length (Doc.children d (Doc.root d)));
  let d2 = (Xml_parser.parse_string ~keep_ws:true "<a>\n  <b>x</b>\n</a>").Xml_parser.doc in
  checki "whitespace kept" 3 (List.length (Doc.children d2 (Doc.root d2)))

let test_parse_errors () =
  let fails s =
    match Xml_parser.parse_string s with
    | exception Xml_parser.Parse_error _ -> true
    | _ -> false
  in
  checkb "mismatched tag" true (fails "<a></b>");
  checkb "unterminated" true (fails "<a>");
  checkb "double root" true (fails "<a/><b/>");
  checkb "bad entity" true (fails "<a>&nosuch;</a>");
  checkb "garbage after root" true (fails "<a/>junk")

(* Locations are now recomputed lazily from the failure byte offset;
   these pin the exact line/col values the eager per-character tracker
   produced, so the lazy path is observably identical. *)
let test_parse_error_locations () =
  let loc s =
    match Xml_parser.parse_string s with
    | exception Xml_parser.Parse_error { line; col; _ } -> (line, col)
    | _ -> Alcotest.failf "expected Parse_error on %S" s
  in
  let checklc what want s = Alcotest.(check (pair int int)) what want (loc s) in
  checklc "mismatched close, one line" (1, 10) "<a><b></a>";
  checklc "mismatched close, line 3" (3, 4) "<a>\n  <b>\n</a>";
  checklc "mismatched close after attrs" (3, 8)
    "<root>\n<child attr=\"v\">text\n</wrong>\n</root>";
  checklc "unknown entity" (1, 12) "<a>&nosuch;</a>";
  checklc "unterminated attribute" (1, 9) "<a x='1>";
  checklc "content after root" (1, 5) "<a/><b/>";
  checklc "eof inside element" (1, 4) "<a>";
  checklc "text before root" (1, 1) "line1\n<a/>"

let test_charref_edges () =
  let text s =
    let d = parse s in
    Doc.text_content d (Doc.root d)
  in
  check "hex lower and upper X" "AB" (text "<a>&#x41;&#X42;</a>");
  check "decimal + hex markup chars" "A<" (text "<a>&#65;&#x3C;</a>");
  let fails s =
    match Xml_parser.parse_string s with
    | exception Xml_parser.Parse_error _ -> true
    | _ -> false
  in
  checkb "unterminated entity" true (fails "<a>&amp</a>");
  checkb "empty entity" true (fails "<a>&;</a>");
  checkb "bad hex digits" true (fails "<a>&#xZZ;</a>");
  checkb "empty charref" true (fails "<a>&#;</a>")

let test_attr_quoting () =
  let d = parse "<a k=\"it's\" m='say \"hi\"'/>" in
  let r = Doc.root d in
  check "double-quoted keeps single quote" "it's" (Option.get (Doc.attr d r "k"));
  check "single-quoted keeps double quote" "say \"hi\""
    (Option.get (Doc.attr d r "m"));
  Alcotest.(check (list string))
    "declaration order preserved" [ "k"; "m" ]
    (List.map fst (Doc.attrs d r))

let test_mixed_content_parse () =
  let d = parse "<a>pre<b>mid</b>post</a>" in
  let r = Doc.root d in
  check "mixed text" "premidpost" (Doc.text_content d r);
  checki "three children" 3 (List.length (Doc.children d r))

let test_fragment () =
  let d = parse "<r/>" in
  let ns = Xml_parser.parse_fragment d "<a>1</a><b/>" in
  checki "two fragments" 2 (List.length ns);
  List.iter (fun n -> Doc.append_child d ~parent:(Doc.root d) n) ns;
  check "attached" "1" (Doc.text_content d (Doc.root d))

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let test_print_escapes () =
  let d = Doc.create () in
  let r = Doc.make_element d ~attrs:[ ("k", "a\"b<c") ] "r" in
  Doc.set_root d r;
  Doc.append_child d ~parent:r (Doc.make_text d "x<y&z");
  let s = Xml_printer.to_string d in
  check "escaped" "<r k=\"a&quot;b&lt;c\">x&lt;y&amp;z</r>" s

let test_roundtrip_fixed () =
  let src = "<dblp><pub><title>Duck &amp; Cover</title><aut><name>Goofy</name></aut></pub></dblp>" in
  let d = parse src in
  let d2 = parse (Xml_printer.to_string d) in
  checkb "roundtrip" true (Doc.equal_structure d d2)

(* Random tree generator for property tests; attribute values cover the
   characters the printer must escape. *)
let gen_doc =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d" ] in
  let text = oneofl [ "x"; "hello"; "a&b"; "<tag>"; "it's \"quoted\"" ] in
  let attrs =
    map
      (List.sort_uniq (fun (a, _) (b, _) -> compare (a : string) b))
      (list_size (int_bound 2)
         (pair
            (oneofl [ "k"; "id"; "v" ])
            (oneofl [ "1"; "a&b"; "it's"; "say \"hi\""; "<x>" ])))
  in
  let rec tree depth =
    if depth = 0 then map (fun t -> `Text t) text
    else
      frequency
        [ (1, map (fun t -> `Text t) text);
          (3,
           map3
             (fun t al kids -> `Elem (t, al, kids))
             tag attrs
             (list_size (int_bound 3) (tree (depth - 1))));
        ]
  in
  map3
    (fun t al kids -> `Elem (t, al, kids))
    tag attrs
    (list_size (int_bound 4) (tree 2))

let build_doc spec =
  let d = Doc.create () in
  let rec go = function
    | `Text t -> Doc.make_text d t
    | `Elem (tag, attrs, kids) ->
      let e = Doc.make_element d ~attrs tag in
      List.iter (fun k -> Doc.append_child d ~parent:e (go k)) kids;
      e
  in
  (match spec with
   | `Elem _ -> Doc.set_root d (go spec)
   | `Text _ -> Doc.set_root d (go (`Elem ("r", [], [ spec ]))));
  d

let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trip" ~count:200 gen_doc (fun spec ->
      let d = build_doc spec in
      (* keep_ws: generated text may be whitespace-like *)
      let d2 = (Xml_parser.parse_string ~keep_ws:true (Xml_printer.to_string d)).Xml_parser.doc in
      (* Adjacent text nodes merge on reparse; compare text and element
         structure via serialization idempotence instead. *)
      Xml_printer.to_string d2 = Xml_printer.to_string d)

(* ------------------------------------------------------------------ *)
(* DTD                                                                 *)
(* ------------------------------------------------------------------ *)

let rev_dtd = Xic_workload.Conference.rev_dtd

let test_dtd_parse () =
  let d = Dtd.parse rev_dtd in
  Alcotest.(check (list string))
    "elements"
    [ "review"; "track"; "name"; "rev"; "sub"; "title"; "auts" ]
    (Dtd.element_names d);
  checkb "name pcdata" true (Dtd.is_pcdata_only d "name");
  checkb "track not pcdata" false (Dtd.is_pcdata_only d "track")

let test_dtd_multiplicity () =
  let d = Dtd.parse rev_dtd in
  let m parent child = Dtd.child_multiplicity d ~parent ~child in
  Alcotest.(check bool) "track/name one" true (m "track" "name" = Dtd.M_one);
  Alcotest.(check bool) "track/rev many" true (m "track" "rev" = Dtd.M_many);
  Alcotest.(check bool) "track/sub none" true (m "track" "sub" = Dtd.M_none);
  Alcotest.(check bool) "sub/title one" true (m "sub" "title" = Dtd.M_one)

let test_dtd_multiplicity_opt () =
  let d = Dtd.parse "<!ELEMENT a (b?, c*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>" in
  Alcotest.(check bool) "b opt" true (Dtd.child_multiplicity d ~parent:"a" ~child:"b" = Dtd.M_opt);
  Alcotest.(check bool) "c many" true (Dtd.child_multiplicity d ~parent:"a" ~child:"c" = Dtd.M_many)

let test_dtd_choice_multiplicity () =
  let d = Dtd.parse "<!ELEMENT a (b | c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>" in
  Alcotest.(check bool) "choice branch is optional" true
    (Dtd.child_multiplicity d ~parent:"a" ~child:"b" = Dtd.M_opt)

let test_dtd_parents_descendants () =
  let d = Dtd.parse rev_dtd in
  Alcotest.(check (list string)) "parents of name" [ "auts"; "rev"; "track" ]
    (List.sort compare (Dtd.parents_of d "name"));
  checkb "sub below review" true (List.mem "sub" (Dtd.descendant_types d "review"))

let test_dtd_validate_ok () =
  let d = Dtd.parse rev_dtd in
  let doc = parse "<review><track><name>T</name><rev><name>R</name><sub><title>S</title><auts><name>A</name></auts></sub></rev></track></review>" in
  Alcotest.(check bool) "valid" true (Dtd.validate d doc = Ok ())

let test_dtd_validate_bad_order () =
  let d = Dtd.parse rev_dtd in
  let doc = parse "<review><track><rev><name>R</name><sub><title>S</title><auts><name>A</name></auts></sub></rev><name>T</name></track></review>" in
  checkb "wrong order rejected" true (Dtd.validate d doc <> Ok ())

let test_dtd_validate_missing_child () =
  let d = Dtd.parse rev_dtd in
  let doc = parse "<review><track><name>T</name></track></review>" in
  checkb "missing rev rejected" true (Dtd.validate d doc <> Ok ())

let test_dtd_validate_undeclared () =
  let d = Dtd.parse rev_dtd in
  let doc = parse "<review><bogus/></review>" in
  checkb "undeclared rejected" true (Dtd.validate d doc <> Ok ())

let test_dtd_attlist () =
  let d = Dtd.parse "<!ELEMENT a EMPTY><!ATTLIST a id CDATA #REQUIRED note CDATA #IMPLIED>" in
  (match Dtd.find d "a" with
   | Some decl ->
     checki "two attrs" 2 (List.length decl.Dtd.attlist);
     checkb "id required" true
       (List.exists (fun (x : Dtd.attr_decl) -> x.Dtd.attr_name = "id" && x.Dtd.required)
          decl.Dtd.attlist)
   | None -> Alcotest.fail "a not declared");
  let doc = parse "<a/>" in
  checkb "missing required attr" true (Dtd.validate d doc <> Ok ());
  let doc2 = parse "<a id=\"1\"/>" in
  checkb "with required attr" true (Dtd.validate d doc2 = Ok ())

let test_dtd_roundtrip () =
  let d = Dtd.parse rev_dtd in
  let d2 = Dtd.parse (Dtd.to_string d) in
  Alcotest.(check (list string)) "same elements" (Dtd.element_names d) (Dtd.element_names d2);
  List.iter2
    (fun (a : Dtd.element_decl) (b : Dtd.element_decl) ->
      checkb ("decl " ^ a.Dtd.elem_name) true (a.Dtd.content = b.Dtd.content))
    (Dtd.declarations d) (Dtd.declarations d2)

let test_dtd_content_star () =
  let d = Dtd.parse "<!ELEMENT l (i)*><!ELEMENT i (#PCDATA)>" in
  let ok n =
    let doc = parse ("<l>" ^ String.concat "" (List.init n (fun _ -> "<i>x</i>")) ^ "</l>") in
    Dtd.validate d doc = Ok ()
  in
  checkb "zero" true (ok 0);
  checkb "one" true (ok 1);
  checkb "many" true (ok 50)

let test_dtd_content_complex () =
  let d = Dtd.parse "<!ELEMENT a (b, (c | d)+, b?)><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>" in
  let ok s = Dtd.validate d (parse s) = Ok () in
  checkb "b c" true (ok "<a><b/><c/></a>");
  checkb "b c d b" true (ok "<a><b/><c/><d/><b/></a>");
  checkb "missing choice" false (ok "<a><b/></a>");
  checkb "b alone bad" false (ok "<a><c/></a>")

(* ------------------------------------------------------------------ *)
(* Second wave: edge cases                                             *)
(* ------------------------------------------------------------------ *)

let test_single_quoted_attrs () =
  let d = parse "<a k='v' empty=''/>" in
  check "single quotes" "v" (Option.get (Doc.attr d (Doc.root d) "k"));
  check "empty value" "" (Option.get (Doc.attr d (Doc.root d) "empty"))

let test_attr_entities () =
  let d = parse {|<a k="&lt;&amp;&quot;"/>|} in
  check "attr entities" "<&\"" (Option.get (Doc.attr d (Doc.root d) "k"))

let test_utf8_char_refs () =
  let d = parse "<a>&#233;&#x20AC;&#x1F600;</a>" in
  (* é = 2 bytes, € = 3 bytes, emoji = 4 bytes *)
  checki "utf8 lengths" 9 (String.length (Doc.text_content d (Doc.root d)))

let test_deep_nesting () =
  let depth = 2000 in
  let open Buffer in
  let b = create (depth * 8) in
  for _ = 1 to depth do add_string b "<d>" done;
  add_string b "x";
  for _ = 1 to depth do add_string b "</d>" done;
  let d = parse (contents b) in
  checki "deep tree node count" (depth + 1) (Doc.node_count d);
  check "text reachable" "x" (Doc.text_content d (Doc.root d));
  (* descendants and serialization survive the depth *)
  checki "descendants" depth (List.length (Doc.descendants d (Doc.root d)))

let test_wide_tree () =
  let n = 5000 in
  let src = "<r>" ^ String.concat "" (List.init n (fun i -> Printf.sprintf "<c>%d</c>" i)) ^ "</r>" in
  let d = parse src in
  checki "children" n (List.length (Doc.children d (Doc.root d)));
  let last = List.nth (Doc.children d (Doc.root d)) (n - 1) in
  checki "position of last" n (Doc.position d last)

let test_mixed_content_preserved () =
  let d = parse "<p>one <b>two</b> three</p>" in
  check "mixed text" "one two three" (Doc.text_content d (Doc.root d));
  checki "three children" 3 (List.length (Doc.children d (Doc.root d)))

let test_insert_before_first () =
  let d = parse "<r><b/></r>" in
  let b = List.hd (Doc.children d (Doc.root d)) in
  let a = Doc.make_element d "a" in
  Doc.insert_before d ~anchor:b a;
  Alcotest.(check (list string)) "prepended" [ "a"; "b" ]
    (List.map (Doc.name d) (Doc.children d (Doc.root d)))

let test_detach_root_forbidden_ops () =
  let d = parse "<r/>" in
  let c = Doc.make_element d "c" in
  (match Doc.insert_after d ~anchor:(Doc.root d) c with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "sibling of root must fail")

let test_reattach_after_detach_elsewhere () =
  let d = parse "<r><a><x/></a><b/></r>" in
  let a = List.nth (Doc.children d (Doc.root d)) 0 in
  let x = List.hd (Doc.children d a) in
  Doc.detach d x;
  let b = List.nth (Doc.children d (Doc.root d)) 1 in
  Doc.append_child d ~parent:b x;
  checki "moved" 1 (List.length (Doc.children d b));
  checki "source empty" 0 (List.length (Doc.children d a))

let test_dtd_empty_any () =
  let d = Dtd.parse "<!ELEMENT e EMPTY><!ELEMENT a ANY><!ELEMENT r (e, a)>" in
  checkb "empty ok" true (Dtd.validate ~root:(Doc.root (parse "<r><e/><a><e/>text</a></r>"))
                            d (parse "<r><e/><a><e/>text</a></r>") = Ok ());
  checkb "empty with content" true
    (Dtd.validate d (parse "<r><e>x</e><a/></r>") <> Ok ())

let test_dtd_mixed_validation () =
  let d = Dtd.parse "<!ELEMENT p (#PCDATA | b | i)*><!ELEMENT b (#PCDATA)><!ELEMENT i (#PCDATA)>" in
  checkb "mixed ok" true (Dtd.validate d (parse "<p>a<b>c</b>d<i>e</i></p>") = Ok ());
  checkb "disallowed child" true (Dtd.validate d (parse "<p><u>x</u></p>") <> Ok ())

let test_dtd_nested_groups () =
  let d = Dtd.parse "<!ELEMENT r ((a, b)+ | c)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>" in
  let ok s = Dtd.validate d (parse s) = Ok () in
  checkb "ab" true (ok "<r><a/><b/></r>");
  checkb "abab" true (ok "<r><a/><b/><a/><b/></r>");
  checkb "c" true (ok "<r><c/></r>");
  checkb "a alone" false (ok "<r><a/></r>");
  checkb "c after ab" false (ok "<r><a/><b/><c/></r>")

let test_dtd_descendants_recursive () =
  (* recursive content models must not loop *)
  let d = Dtd.parse "<!ELEMENT tree (leaf | tree)*><!ELEMENT leaf EMPTY>" in
  Alcotest.(check (list string)) "descendant types" [ "tree"; "leaf" ]
    (Dtd.descendant_types d "tree")

(* ------------------------------------------------------------------ *)
(* Secondary indexes                                                   *)
(* ------------------------------------------------------------------ *)

let checkl = Alcotest.(check (list int))

let test_index_lazy_build () =
  let d = parse "<r><b>x</b></r>" in
  let i = Index.create d in
  checkb "not built on create" false (Index.built i);
  let b = Doc.make_element d "b" in
  Doc.append_child d ~parent:(Doc.root d) b;
  checkb "mutation before first lookup leaves it unbuilt" false (Index.built i);
  checki "both b elements found" 2 (List.length (Index.by_name i "b"));
  checkb "built after first lookup" true (Index.built i)

let test_index_roots_excluded () =
  let d = parse "<r><a/><x><a/></x></r>" in
  let i = Index.create d in
  checki "by_name sees the root" 1 (List.length (Index.by_name i "r"));
  checkl "//r is empty (child steps never yield roots)" []
    (Index.descendants_named i "r");
  checki "nested a's" 2 (List.length (Index.descendants_named i "a"))

let test_index_by_attr () =
  let d = parse {|<r><p k="v"/><p k="w"/><q k="v"/></r>|} in
  let i = Index.create d in
  let p1 = List.nth (Doc.children d (Doc.root d)) 0 in
  checkl "tag and attr both filter" [ p1 ] (Index.by_attr i ~tag:"p" ~attr:"k" "v");
  Doc.set_attr d p1 "k" "w";
  checkl "old value gone" [] (Index.by_attr i ~tag:"p" ~attr:"k" "v");
  checki "new value indexed" 2 (List.length (Index.by_attr i ~tag:"p" ~attr:"k" "w"));
  checkb "consistent" true (Index.consistent i)

let test_index_by_pcdata_duplicates () =
  let d = parse "<r><s>x</s></r>" in
  let i = Index.create d in
  let s = List.hd (Doc.children d (Doc.root d)) in
  checkl "single text child" [ s ] (Index.by_pcdata i ~tag:"s" "x");
  (* a second, identical text child: the bucket is a multiset, the
     lookup stays deduplicated *)
  let t2 = Doc.make_text d "x" in
  Doc.append_child d ~parent:s t2;
  checkl "still one element" [ s ] (Index.by_pcdata i ~tag:"s" "x");
  Doc.detach d t2;
  checkl "one occurrence removed, one remains" [ s ]
    (Index.by_pcdata i ~tag:"s" "x");
  Doc.detach d (List.hd (Doc.children d s));
  checkl "both gone" [] (Index.by_pcdata i ~tag:"s" "x");
  checkb "consistent" true (Index.consistent i)

let test_index_children_position () =
  let d = parse "<r><c/><d/><c/></r>" in
  let i = Index.create d in
  let root = Doc.root d in
  checki "two c children" 2 (List.length (Index.children_named i root "c"));
  let dd = List.nth (Doc.children d root) 1 in
  checki "position of d served" 2 (Index.position i dd);
  let c3 = Doc.make_element d "c" in
  Doc.insert_before d ~anchor:dd c3;
  checki "insert invalidates the child cache" 3
    (List.length (Index.children_named i root "c"));
  checki "positions shift" 3 (Index.position i dd);
  Doc.detach d c3;
  checki "detach restores" 2 (List.length (Index.children_named i root "c"));
  checki "position restored" 2 (Index.position i dd);
  checkb "consistent" true (Index.consistent i)

let test_index_detached_subtree () =
  let d = parse "<r><x><a/></x></r>" in
  let i = Index.create d in
  checki "a reachable" 1 (List.length (Index.by_name i "a"));
  let x = List.hd (Doc.children d (Doc.root d)) in
  Doc.detach d x;
  checkl "detached subtree invisible" [] (Index.by_name i "a");
  (* mutations inside the detached subtree are ignored by the tables *)
  let a2 = Doc.make_element d "a" in
  Doc.append_child d ~parent:x a2;
  checkl "still invisible" [] (Index.by_name i "a");
  (* reattaching brings the whole subtree (including a2) back *)
  Doc.append_child d ~parent:(Doc.root d) x;
  checki "both a's after reattach" 2 (List.length (Index.by_name i "a"));
  Doc.delete_subtree d x;
  checkl "deleted subtree gone" [] (Index.by_name i "a");
  checkb "consistent" true (Index.consistent i)

let test_index_stats_line () =
  let d = parse "<r><a/></r>" in
  let i = Index.create d in
  ignore (Index.by_name i "a" : Doc.node_id list);
  ignore (Index.by_name i "a" : Doc.node_id list);
  Index.note_fallback i;
  let st = Index.stats i in
  checkb "some hits" true (st.Index.hits > 0);
  checkb "build counted as a miss" true (st.Index.misses > 0);
  checki "fallback recorded" 1 st.Index.fallbacks;
  checkb "line mentions hits" true
    (let line = Index.stats_line i in
     String.length line > 0
     && String.sub line 0 6 = "index:");
  Index.reset_stats i;
  checki "reset" 0 (Index.stats i).Index.hits

let () =
  Alcotest.run "xml"
    [
      ( "doc",
        [
          Alcotest.test_case "build tree" `Quick test_build_tree;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "insert after" `Quick test_insert_after;
          Alcotest.test_case "insert before" `Quick test_insert_before;
          Alcotest.test_case "detach/reattach" `Quick test_detach_reattach;
          Alcotest.test_case "delete subtree" `Quick test_delete_subtree;
          Alcotest.test_case "document order" `Quick test_doc_order;
          Alcotest.test_case "multi-root order" `Quick test_multi_root_order;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments/PIs" `Quick test_parse_comments_pis;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "whitespace" `Quick test_parse_ws_handling;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error locations" `Quick
            test_parse_error_locations;
          Alcotest.test_case "charref edges" `Quick test_charref_edges;
          Alcotest.test_case "attr quoting" `Quick test_attr_quoting;
          Alcotest.test_case "mixed content" `Quick test_mixed_content_parse;
          Alcotest.test_case "fragment" `Quick test_fragment;
        ] );
      ( "printer",
        [
          Alcotest.test_case "escaping" `Quick test_print_escapes;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_fixed;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "dtd",
        [
          Alcotest.test_case "parse" `Quick test_dtd_parse;
          Alcotest.test_case "multiplicity" `Quick test_dtd_multiplicity;
          Alcotest.test_case "multiplicity opt/star" `Quick test_dtd_multiplicity_opt;
          Alcotest.test_case "choice multiplicity" `Quick test_dtd_choice_multiplicity;
          Alcotest.test_case "parents/descendants" `Quick test_dtd_parents_descendants;
          Alcotest.test_case "validate ok" `Quick test_dtd_validate_ok;
          Alcotest.test_case "validate bad order" `Quick test_dtd_validate_bad_order;
          Alcotest.test_case "validate missing child" `Quick test_dtd_validate_missing_child;
          Alcotest.test_case "validate undeclared" `Quick test_dtd_validate_undeclared;
          Alcotest.test_case "attlist" `Quick test_dtd_attlist;
          Alcotest.test_case "roundtrip" `Quick test_dtd_roundtrip;
          Alcotest.test_case "star content" `Quick test_dtd_content_star;
          Alcotest.test_case "complex content" `Quick test_dtd_content_complex;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "single-quoted attrs" `Quick test_single_quoted_attrs;
          Alcotest.test_case "attr entities" `Quick test_attr_entities;
          Alcotest.test_case "utf8 char refs" `Quick test_utf8_char_refs;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "wide tree" `Quick test_wide_tree;
          Alcotest.test_case "mixed content" `Quick test_mixed_content_preserved;
          Alcotest.test_case "insert before first" `Quick test_insert_before_first;
          Alcotest.test_case "no sibling of root" `Quick test_detach_root_forbidden_ops;
          Alcotest.test_case "move subtree" `Quick test_reattach_after_detach_elsewhere;
          Alcotest.test_case "EMPTY/ANY" `Quick test_dtd_empty_any;
          Alcotest.test_case "mixed validation" `Quick test_dtd_mixed_validation;
          Alcotest.test_case "nested groups" `Quick test_dtd_nested_groups;
          Alcotest.test_case "recursive DTD" `Quick test_dtd_descendants_recursive;
        ] );
      ( "index",
        [
          Alcotest.test_case "lazy build" `Quick test_index_lazy_build;
          Alcotest.test_case "roots excluded from //" `Quick test_index_roots_excluded;
          Alcotest.test_case "by_attr" `Quick test_index_by_attr;
          Alcotest.test_case "by_pcdata duplicates" `Quick test_index_by_pcdata_duplicates;
          Alcotest.test_case "children/position caches" `Quick test_index_children_position;
          Alcotest.test_case "detached subtrees" `Quick test_index_detached_subtree;
          Alcotest.test_case "statistics" `Quick test_index_stats_line;
        ] );
    ]
