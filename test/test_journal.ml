(* Durability: write-ahead journal, fault injection, crash recovery,
   transactions, and evaluation budgets. *)

open Xic_core
module Conf = Xic_workload.Conference
module XU = Xic_xupdate.Xupdate
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Journal files live in a shared temp directory removed at exit (CI
   runs these binaries from the repo root, not only dune's sandbox). *)
let fresh_path () = Test_tmp.fresh "test_journal" ".j"

let schema = lazy (Conf.schema ())

let pub_doc =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let rev_doc =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let make_repo () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo rev_doc;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

let snapshot repo = Xic_xml.Xml_printer.to_string (Repository.doc repo)

let legal_update ?(title = "Ok") ?(author = "Zoe") () =
  Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title ~author

let illegal_update () =
  legal_update ~title:"Bad" ~author:"Carl" ()

(* An update matching no registered pattern, exercising the full-check
   fallback (and its journal records). *)
let unmatched_update author =
  [ { XU.op = XU.Append;
      select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]";
      content =
        [ XU.Elem ("sub", [],
             [ XU.Elem ("title", [], [ XU.Text "App" ]);
               XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text author ]) ]) ]) ];
    } ]

let recover_fresh path =
  let repo = make_repo () in
  let report = Repository.recover (J.read path) repo in
  (repo, report)

(* ------------------------------------------------------------------ *)
(* Journal file format                                                 *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  let p = fresh_path () in
  let j = J.open_ ~sync:false p in
  let t1 = J.next_txn j in
  let t2 = J.next_txn j in
  let entries =
    [ J.Intent { txn = t1; seq = 0; strategy = "optimized"; payload = "<u>one</u>" };
      J.Commit { txn = t1 };
      J.Intent { txn = t2; seq = 0; strategy = "full_check"; payload = "line1\nline2" };
      J.Abort { txn = t2 } ]
  in
  List.iter (J.append j) entries;
  J.close j;
  let rr = J.read p in
  checkb "no torn tail" false rr.J.torn;
  checkb "entries survive the round trip" true (rr.J.entries = entries);
  (* only t1 committed; multi-line payloads intact *)
  (match J.committed rr.J.entries with
   | [ (txn, [ J.Intent { payload; _ } ]) ] ->
     checki "committed txn" t1 txn;
     checks "payload" "<u>one</u>" payload
   | _ -> Alcotest.fail "expected exactly the committed transaction")

let test_journal_torn_tail () =
  let p = fresh_path () in
  let j = J.open_ p in
  J.append j (J.Intent { txn = 1; seq = 0; strategy = "optimized"; payload = "ok" });
  J.append j (J.Commit { txn = 1 });
  J.close j;
  (* simulate a crash mid-record: garbage half-record at the tail *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 p in
  output_string oc "\000\000\000\042torn";
  close_out oc;
  let rr = J.read p in
  checkb "torn tail detected" true rr.J.torn;
  checki "valid prefix kept" 2 (List.length rr.J.entries);
  (* reopening truncates the tail so appends land on a valid prefix *)
  let j = J.open_ p in
  checki "next txn past journaled ids" 2 (J.next_txn j);
  J.append j (J.Commit { txn = 5 });
  J.close j;
  let rr = J.read p in
  checkb "clean after reopen + append" false rr.J.torn;
  checki "three records" 3 (List.length rr.J.entries)

let read_bin path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_bin path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* "XICJ2\n" + 8-byte generation *)
let header_len = 14

(* Byte offset just past record [i] (records are
   [4-byte BE length | payload | 16-byte MD5]). *)
let record_end file i =
  let pos = ref header_len in
  for _ = 0 to i do
    let b k = Char.code file.[!pos + k] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    pos := !pos + 4 + len + 16
  done;
  !pos

(* Cut the journal at EVERY byte offset inside the last record: each
   truncation must classify as a torn tail and keep exactly the intact
   prefix — no cut point may corrupt recovery. *)
let test_torn_at_every_byte_offset () =
  let p = fresh_path () in
  let j = J.open_ ~sync:false p in
  J.append j
    (J.Intent { txn = 1; seq = 0; strategy = "optimized"; payload = "payload-one" });
  J.append j (J.Commit { txn = 1 });
  J.close j;
  let full = read_bin p in
  let n = String.length full in
  let rec1_end = record_end full 0 in
  checki "two records span the file" n (record_end full 1);
  let cut_path = fresh_path () in
  for cut = header_len to n - 1 do
    write_bin cut_path (String.sub full 0 cut);
    let rr = J.read cut_path in
    let expect_entries, prefix_end =
      if cut >= rec1_end then (1, rec1_end) else (0, header_len)
    in
    checki
      (Printf.sprintf "cut at %d keeps the intact prefix" cut)
      expect_entries
      (List.length rr.J.entries);
    match rr.J.tail with
    | J.Clean ->
      checkb (Printf.sprintf "cut at %d clean only on a boundary" cut) true
        (cut = prefix_end)
    | J.Torn { dropped } ->
      checki (Printf.sprintf "cut at %d dropped bytes" cut) (cut - prefix_end)
        dropped
    | J.Corrupt _ ->
      Alcotest.fail
        (Printf.sprintf "cut at %d: truncation must never read as corruption"
           cut)
  done;
  (* reopening any truncation for append still works: the torn suffix is
     discarded and fresh records land on the valid prefix *)
  write_bin cut_path (String.sub full 0 (n - 3));
  let j = J.open_ cut_path in
  J.append j (J.Commit { txn = 9 });
  J.close j;
  let rr = J.read cut_path in
  checkb "clean after reopen" true (rr.J.tail = J.Clean);
  checki "prefix + fresh record" 2 (List.length rr.J.entries)

(* A full-length record failing its checksum in the MIDDLE of the file
   is not a crash artifact: it must classify as Corrupt (so `xicheck
   recover` can exit 4), still replaying the valid prefix. *)
let test_corrupt_mid_record () =
  let p = fresh_path () in
  let j = J.open_ ~sync:false p in
  J.append j
    (J.Intent { txn = 1; seq = 0; strategy = "optimized"; payload = "first" });
  J.append j
    (J.Intent { txn = 1; seq = 1; strategy = "optimized"; payload = "second" });
  J.append j (J.Commit { txn = 1 });
  J.close j;
  let full = read_bin p in
  let rec1_end = record_end full 0 in
  let b = Bytes.of_string full in
  (* flip a byte inside record 2's payload *)
  let i = rec1_end + 5 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  write_bin p (Bytes.to_string b);
  let rr = J.read p in
  checki "valid prefix kept" 1 (List.length rr.J.entries);
  (match rr.J.tail with
   | J.Corrupt { dropped } ->
     checki "bad record and everything after dropped"
       (String.length full - rec1_end) dropped
   | J.Clean | J.Torn _ ->
     Alcotest.fail "mid-file checksum mismatch must classify as Corrupt");
  checkb "legacy torn flag still raised" true rr.J.torn

let test_reset_bumps_generation () =
  let p = fresh_path () in
  let j = J.open_ p in
  checki "fresh journals start at generation 1" 1 (J.generation j);
  checki "empty" 0 (J.entry_count j);
  J.append j (J.Intent { txn = 1; seq = 0; strategy = "optimized"; payload = "x" });
  J.append j (J.Commit { txn = 1 });
  checki "two entries" 2 (J.entry_count j);
  J.reset j;
  checki "generation bumped" 2 (J.generation j);
  checki "truncated" 0 (J.entry_count j);
  (* the handle stays usable across the rename swap *)
  J.append j (J.Commit { txn = 7 });
  J.close j;
  let rr = J.read p in
  checki "read generation" 2 rr.J.generation;
  checki "only post-reset records" 1 (List.length rr.J.entries);
  (* a crash before the reset rename leaves the old journal intact *)
  let p2 = fresh_path () in
  let j2 = J.open_ p2 in
  J.append j2 (J.Commit { txn = 3 });
  FP.set ~action:FP.Raise "journal_reset_rename";
  (Fun.protect ~finally:FP.clear @@ fun () ->
   match J.reset j2 with
   | exception FP.Triggered "journal_reset_rename" -> ()
   | () -> Alcotest.fail "armed reset failpoint must fire");
  J.close j2;
  let rr = J.read p2 in
  checki "old generation survives the crashed reset" 1 rr.J.generation;
  checki "old entries survive" 1 (List.length rr.J.entries)

let test_journal_not_a_journal () =
  let p = fresh_path () in
  let oc = open_out p in
  output_string oc "<not-a-journal/>\n";
  close_out oc;
  match J.read p with
  | exception J.Journal_error _ -> ()
  | _ -> Alcotest.fail "bad header must be rejected"

let test_committed_truncate () =
  (* savepoint rollback: a truncate record drops the suffix *)
  let i n = J.Intent { txn = 7; seq = n; strategy = "optimized"; payload = string_of_int n } in
  let entries = [ i 0; i 1; i 2; J.Truncate { txn = 7; keep = 1 }; i 3; J.Commit { txn = 7 } ] in
  match J.committed entries with
  | [ (7, [ J.Intent { payload = "0"; _ }; J.Intent { payload = "3"; _ } ]) ] -> ()
  | _ -> Alcotest.fail "truncate must drop intents past the savepoint"

let test_failpoint_mid_write () =
  let p = fresh_path () in
  let j = J.open_ p in
  J.append j (J.Commit { txn = 1 });
  FP.set ~action:FP.Raise "mid_write";
  Fun.protect ~finally:FP.clear @@ fun () ->
  (match J.append j (J.Commit { txn = 2 }) with
   | exception FP.Triggered "mid_write" -> ()
   | () -> Alcotest.fail "armed failpoint must fire");
  (* the handle is poisoned, the file carries a torn tail *)
  FP.clear ();
  (match J.append j (J.Commit { txn = 3 }) with
   | exception J.Journal_error _ -> ()
   | () -> Alcotest.fail "append on a torn journal must be refused");
  let rr = J.read p in
  checkb "torn" true rr.J.torn;
  checki "only the first record" 1 (List.length rr.J.entries)

(* With tracing on, a firing failpoint leaves a zero-duration span event
   named after it, so fault-injection runs are visible in the trace. *)
let test_failpoint_records_span_event () =
  let module Obs = Xic_obs.Obs in
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
  @@ fun () ->
  Obs.Trace.reset ();
  let p = fresh_path () in
  let j = J.open_ p in
  FP.set ~action:FP.Raise "mid_write";
  (Fun.protect ~finally:FP.clear @@ fun () ->
   Obs.Trace.with_span "test" (fun () ->
       match J.append j (J.Commit { txn = 1 }) with
       | exception FP.Triggered "mid_write" -> ()
       | () -> Alcotest.fail "armed failpoint must fire"));
  let rec has name (sp : Obs.Trace.span) =
    sp.Obs.Trace.name = name || List.exists (has name) sp.Obs.Trace.children
  in
  checkb "failpoint:mid_write event in trace" true
    (List.exists (has "failpoint:mid_write") (Obs.Trace.roots ()))

(* ------------------------------------------------------------------ *)
(* Crash recovery properties                                           *)
(* ------------------------------------------------------------------ *)

(* For every named crash point, recovery from the journal must yield the
   pre-update state (the commit record never made it) with constraints
   intact — never a torn or half-applied document. *)
let test_crash_before_commit_recovers_pre_state () =
  List.iter
    (fun fp ->
      let p = fresh_path () in
      let repo = make_repo () in
      let before = snapshot repo in
      let j = J.open_ p in
      FP.set ~action:FP.Raise fp;
      (Fun.protect ~finally:FP.clear @@ fun () ->
       match Repository.guarded_update ~journal:j repo (legal_update ()) with
       | exception FP.Triggered _ -> ()
       | _ -> Alcotest.fail (fp ^ ": armed failpoint must fire"));
      (try J.close j with J.Journal_error _ -> ());
      let recovered, report = recover_fresh p in
      checks (fp ^ ": pre-update state") before (snapshot recovered);
      checki (fp ^ ": nothing replayed") 0 report.Repository.replayed_txns;
      checkb (fp ^ ": in-flight txn discarded") true
        (report.Repository.discarded_txns <= 1);
      Alcotest.(check (list string)) (fp ^ ": consistent") []
        report.Repository.post_violations)
    [ "before_apply"; "after_apply"; "before_commit"; "mid_write" ]

let test_committed_update_recovers_post_state () =
  let p = fresh_path () in
  let repo = make_repo () in
  let j = J.open_ p in
  (match Repository.guarded_update ~journal:j repo (legal_update ()) with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "legal update must apply via the optimized path");
  let after = snapshot repo in
  J.close j;
  let recovered, report = recover_fresh p in
  checks "post-update state" after (snapshot recovered);
  checki "one txn" 1 report.Repository.replayed_txns;
  checki "one statement" 1 report.Repository.replayed_statements;
  checkb "no torn tail" false report.Repository.torn_tail;
  Alcotest.(check (list string)) "consistent" [] report.Repository.post_violations

let test_refused_updates_leave_no_committed_trace () =
  let p = fresh_path () in
  let repo = make_repo () in
  let before = snapshot repo in
  let j = J.open_ p in
  (* rejected before execution: no records at all *)
  (match Repository.guarded_update ~journal:j repo (illegal_update ()) with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "self-review must be rejected early");
  (* executed, violating, compensated: intent + truncate + abort *)
  (match Repository.guarded_update ~journal:j repo (unmatched_update "Carl") with
   | Repository.Rolled_back "conflict" -> ()
   | _ -> Alcotest.fail "violating fallback must be rolled back");
  J.close j;
  checks "repository unchanged" before (snapshot repo);
  let recovered, report = recover_fresh p in
  checks "recovery yields the base state" before (snapshot recovered);
  checki "nothing replayed" 0 report.Repository.replayed_txns

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let test_txn_commit_and_recover () =
  let p = fresh_path () in
  let repo = make_repo () in
  let j = J.open_ p in
  let tx = Repository.begin_txn ~journal:j repo in
  (match Repository.txn_apply tx (legal_update ~title:"A" ~author:"Zoe" ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "statement 1 must apply");
  let sp = Repository.txn_savepoint tx in
  (match Repository.txn_apply tx (legal_update ~title:"B" ~author:"Max" ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "statement 2 must apply");
  Repository.txn_rollback_to tx sp;
  checki "statement 2 undone" 1 (Repository.txn_statements tx);
  (match Repository.txn_apply tx (legal_update ~title:"C" ~author:"Ada" ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "statement 3 must apply");
  Repository.commit_txn tx;
  let after = snapshot repo in
  J.close j;
  checkb "B was rolled back" false
    (let doc = Repository.doc repo in
     Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//sub/title") |> List.exists
       (fun n -> Xic_xml.Doc.text_content doc n = "B"));
  let recovered, report = recover_fresh p in
  checks "replay equals the committed state" after (snapshot recovered);
  checki "one txn, two effective statements" 2 report.Repository.replayed_statements;
  Alcotest.(check (list string)) "consistent" [] report.Repository.post_violations

let test_txn_statement_violation_keeps_txn_open () =
  let p = fresh_path () in
  let repo = make_repo () in
  let j = J.open_ p in
  let tx = Repository.begin_txn ~journal:j repo in
  (match Repository.txn_apply tx (legal_update ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "legal statement must apply");
  (* a violating full-check statement is compensated individually *)
  (match Repository.txn_apply tx (unmatched_update "Carl") with
   | Repository.Rolled_back "conflict" -> ()
   | _ -> Alcotest.fail "violating statement must be rolled back");
  checki "only the legal statement counted" 1 (Repository.txn_statements tx);
  Repository.commit_txn tx;
  let after = snapshot repo in
  J.close j;
  let recovered, _ = recover_fresh p in
  checks "replay skips the compensated statement" after (snapshot recovered)

let test_txn_rollback () =
  let p = fresh_path () in
  let repo = make_repo () in
  let before = snapshot repo in
  let j = J.open_ p in
  let tx = Repository.begin_txn ~journal:j repo in
  ignore (Repository.txn_apply tx (legal_update ~title:"A" ~author:"Zoe" ()));
  ignore (Repository.txn_apply tx (legal_update ~title:"B" ~author:"Max" ()));
  Repository.rollback_txn tx;
  J.close j;
  checks "rollback restores the document" before (snapshot repo);
  (match Repository.txn_apply tx (legal_update ()) with
   | exception Repository.Repository_error _ -> ()
   | _ -> Alcotest.fail "closed transaction must refuse statements");
  let recovered, report = recover_fresh p in
  checks "aborted txn is not replayed" before (snapshot recovered);
  checki "discarded" 1 report.Repository.discarded_txns

(* ------------------------------------------------------------------ *)
(* Evaluation budgets and graceful degradation                         *)
(* ------------------------------------------------------------------ *)

let test_budget_exceeded_raises () =
  let repo = make_repo () in
  let q = (List.hd (Repository.constraints repo)).Constr.xquery in
  (match
     Xic_xquery.Eval.with_budget ~steps:1 (fun () ->
         Xic_xquery.Eval.eval_bool (Repository.doc repo) q)
   with
   | exception Xic_xpath.Eval.Budget_exceeded -> ()
   | _ -> Alcotest.fail "one step cannot evaluate a full constraint");
  (* generous budgets do not change results; the budget is scoped *)
  checkb "result under ample budget" false
    (Xic_xquery.Eval.with_budget ~steps:1_000_000 (fun () ->
         Xic_xquery.Eval.eval_bool (Repository.doc repo) q));
  checkb "no budget left installed" false
    (match Xic_xquery.Eval.eval_bool (Repository.doc repo) q with
     | b -> b
     | exception Xic_xpath.Eval.Budget_exceeded ->
       Alcotest.fail "budget must be uninstalled outside with_budget")

let test_budget_datalog () =
  let repo = make_repo () in
  let s = Repository.store repo in
  let d = List.hd (List.hd (Repository.constraints repo)).Constr.datalog in
  (match
     Xic_datalog.Eval.with_budget ~steps:1 (fun () -> Xic_datalog.Eval.violated s d)
   with
   | exception Xic_datalog.Eval.Budget_exceeded -> ()
   | _ -> Alcotest.fail "one step cannot evaluate a denial");
  checkb "ample budget" false
    (Xic_datalog.Eval.with_budget ~steps:1_000_000 (fun () ->
         Xic_datalog.Eval.violated s d))

let test_exhausted_budget_degrades_to_full_check () =
  let repo = make_repo () in
  Repository.set_eval_budget repo (Some 1);
  (* the optimized pre-check cannot finish in one step: the update must
     still be applied — via the full check — and the report must say so *)
  let report = Repository.guarded_update_report repo (legal_update ()) in
  (match report.Repository.outcome with
   | Repository.Applied `Full_check -> ()
   | _ -> Alcotest.fail "exhausted budget must fall back to the full check");
  (match report.Repository.degradations with
   | [ { Repository.failed_check = "conflict"; reason } ] ->
     checks "reason" "step budget exhausted" reason
   | _ -> Alcotest.fail "the degradation must be reported");
  (* correctness is preserved: an illegal unmatched update is still refused *)
  let report = Repository.guarded_update_report repo (unmatched_update "Carl") in
  (match report.Repository.outcome with
   | Repository.Rolled_back "conflict" -> ()
   | _ -> Alcotest.fail "full-check fallback must still reject violations");
  Alcotest.(check (list string)) "consistent" [] (Repository.check_full repo);
  (* with the budget lifted the optimized path is back *)
  Repository.set_eval_budget repo None;
  match Repository.guarded_update repo (legal_update ~title:"Y" ~author:"Uma" ()) with
  | Repository.Applied `Optimized -> ()
  | _ -> Alcotest.fail "no budget: optimized path again"

let test_budget_degrades_runtime_simplification () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo rev_doc;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.set_eval_budget repo (Some 1);
  let report =
    Repository.guarded_update_report ~fallback:`Runtime_simplification repo
      (legal_update ())
  in
  (match report.Repository.outcome with
   | Repository.Applied `Full_check -> ()
   | _ -> Alcotest.fail "degraded runtime simplification must use the full check");
  checkb "degradation reported" true (report.Repository.degradations <> [])

let test_try_check_optimized_reports_degradations () =
  let repo = make_repo () in
  let u = legal_update () in
  match Repository.match_update repo u with
  | None -> Alcotest.fail "update must match the pattern"
  | Some (p, valuation) ->
    Repository.set_eval_budget repo (Some 1);
    let violated, degs = Repository.try_check_optimized repo p valuation in
    Alcotest.(check (list string)) "no verdict" [] violated;
    checki "one degradation" 1 (List.length degs);
    (* the raising variant keeps its legacy contract *)
    (match Repository.check_optimized repo p valuation with
     | exception Repository.Repository_error _ -> ()
     | _ -> Alcotest.fail "check_optimized must raise on degradation");
    Repository.set_eval_budget repo None;
    let violated, degs = Repository.try_check_optimized repo p valuation in
    Alcotest.(check (list string)) "legal" [] violated;
    checki "no degradation" 0 (List.length degs)

(* ------------------------------------------------------------------ *)
(* Statement serialization and atomicity                               *)
(* ------------------------------------------------------------------ *)

let test_xupdate_attribute_roundtrip () =
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "/review/track[1]";
        content =
          [ XU.Elem ("rev", [ ("id", "r9"); ("note", "a<b&\"c\"") ],
               [ XU.Elem ("name", [], [ XU.Text "Eve" ]) ]) ];
      } ]
  in
  let s = XU.to_string u in
  let u' = XU.parse_string s in
  checks "serialization is a fixpoint" s (XU.to_string u');
  match u' with
  | [ { XU.content = [ XU.Elem ("rev", attrs, _) ]; _ } ] ->
    Alcotest.(check (list (pair string string)))
      "attributes survive" [ ("id", "r9"); ("note", "a<b&\"c\"") ] attrs
  | _ -> Alcotest.fail "unexpected parse"

let test_apply_is_atomic () =
  let repo = make_repo () in
  let before = snapshot repo in
  let u =
    legal_update ()
    @ [ { XU.op = XU.Remove;
          select = Xic_xpath.Parser.parse "//no-such-element";
          content = [] } ]
  in
  (match XU.apply (Repository.doc repo) u with
   | exception XU.Xupdate_error _ -> ()
   | _ -> Alcotest.fail "failing modification must raise");
  checks "prefix rolled back" before (snapshot repo)

let () =
  Alcotest.run "journal"
    [
      ( "journal file",
        [
          Alcotest.test_case "round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "torn at every byte offset" `Quick
            test_torn_at_every_byte_offset;
          Alcotest.test_case "corrupt mid-record" `Quick
            test_corrupt_mid_record;
          Alcotest.test_case "reset bumps the generation" `Quick
            test_reset_bumps_generation;
          Alcotest.test_case "bad header" `Quick test_journal_not_a_journal;
          Alcotest.test_case "truncate grouping" `Quick test_committed_truncate;
          Alcotest.test_case "mid-write failpoint" `Quick test_failpoint_mid_write;
          Alcotest.test_case "failpoint traced as span event" `Quick
            test_failpoint_records_span_event;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "crash before commit" `Quick
            test_crash_before_commit_recovers_pre_state;
          Alcotest.test_case "committed survives" `Quick
            test_committed_update_recovers_post_state;
          Alcotest.test_case "refused leaves no trace" `Quick
            test_refused_updates_leave_no_committed_trace;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit + savepoint + recover" `Quick
            test_txn_commit_and_recover;
          Alcotest.test_case "statement violation" `Quick
            test_txn_statement_violation_keeps_txn_open;
          Alcotest.test_case "rollback" `Quick test_txn_rollback;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "xquery budget" `Quick test_budget_exceeded_raises;
          Alcotest.test_case "datalog budget" `Quick test_budget_datalog;
          Alcotest.test_case "degrades to full check" `Quick
            test_exhausted_budget_degrades_to_full_check;
          Alcotest.test_case "degrades runtime simp" `Quick
            test_budget_degrades_runtime_simplification;
          Alcotest.test_case "try_check_optimized" `Quick
            test_try_check_optimized_reports_degradations;
        ] );
      ( "statements",
        [
          Alcotest.test_case "attribute round trip" `Quick
            test_xupdate_attribute_roundtrip;
          Alcotest.test_case "atomic apply" `Quick test_apply_is_atomic;
        ] );
    ]
