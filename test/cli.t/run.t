CLI end-to-end walkthrough of the paper's running example.

  $ cat > pub.dtd <<'XEOF'
  > <!ELEMENT dblp (pub)*>
  > <!ELEMENT pub (title, aut+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT aut (name)>
  > <!ELEMENT name (#PCDATA)>
  > XEOF
  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track)+>
  > <!ELEMENT track (name, rev+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT rev (name, sub+)>
  > <!ELEMENT sub (title, auts+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT auts (name)>
  > XEOF

The derived relational mapping (Section 4.1):

  $ xicheck schema --dtd pub.dtd=dblp --dtd rev.dtd=review
  pub(Id, Pos, IdParent_dblp, Title)
  aut(Id, Pos, IdParent_pub, Name)
  track(Id, Pos, IdParent_review, Name)
  rev(Id, Pos, IdParent_track, Name)
  sub(Id, Pos, IdParent_rev, Title)
  auts(Id, Pos, IdParent_sub, Name)

Compiling the conflict-of-interest constraint (Examples 1 and 3):

  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> A and (A = R or //pub[aut/name/text() -> A and aut/name/text() -> R])
  > XEOF
  $ xicheck compile --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl | grep -A3 datalog:
  datalog:
  conflict: :- rev(_IRev_2, _, _, R), sub(_ISub_5, _, _IRev_2, _), auts(_, _, _ISub_5, R)
  conflict: :- rev(_IRev_12, _, _, R), sub(_ISub_15, _, _IRev_12, _), auts(_, _, _ISub_15, A), aut(_, _, _IPub_22, A), aut(_, _, _IPub_22, R)
  xquery:

Checking documents:

  $ cat > pub.xml <<'XEOF'
  > <dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub></dblp>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ xicheck validate --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml
  pub.xml: valid
  rev.xml: valid
  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  $ xicheck check --datalog --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent

Parallel checking (-j) gives identical verdicts — the pool clamps to the
machine's cores, so this is safe on any runner — and --plan-stats shows
the closure-plan cache (one compilation per constraint, reused by every
check):

  $ xicheck check -j 4 --plan-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  plans: 0 hits, 1 misses, 1 cached

Simplifying w.r.t. the submission-insertion pattern (Example 6):

  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck simplify --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl --pattern pattern.xml | head -8
  -- update pattern U = { sub(%i_sub, %p, %anchor, %t), auts(%i_auts, 2, %i_sub, %n) }
  -- freshness hypotheses:
  :- sub(%i_sub, _, _, _)
  :- auts(_, _, %i_sub, _)
  :- auts(%i_auts, _, _, _)
  
  -- conflict
  conflict: :- rev(%anchor, _, _, %n)

Guarded updates: a co-author submission is rejected before execution.

  $ cat > bad.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Late</title><auts><name>Nora</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck guard --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update bad.xml
  rejected before execution: violates conflict
  [1]

A fresh author is fine, and the result validates:

  $ cat > good.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck guard --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --output out
  applied (validated by the optimized pre-check)
  wrote out.0.xml
  wrote out.1.xml
  $ xicheck validate --dtd pub.dtd=dblp --dtd rev.dtd=review --doc out.0.xml --doc out.1.xml
  out.0.xml: valid
  out.1.xml: valid

Violation witnesses point at the offending nodes:

  $ cat > broken.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>Self</title><auts><name>Nora</name></auts></sub></rev></track></review>
  > XEOF
  $ xicheck check --explain --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc broken.xml --constraints constraints.xpl | head -4
  conflict is violated:
    conflict: :- rev(_IRev_2, _, _, R), sub(_ISub_5, _, _IRev_2, _), auts(_, _, _ISub_5, R)
    with R = "Nora"
    at _IAuts_8 -> /review/track[1]/rev[1]/sub[1]/auts[1], _IRev_2 -> /review/track[1]/rev[1], _X_1 -> /review/track[1], _ISub_5 -> /review/track[1]/rev[1]/sub[1]

Publishing a design bundle:

  $ xicheck publish --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl --pattern pattern.xml --output design.bundle
  wrote design.bundle
  $ head -1 design.bundle
  xic-bundle 1
  $ grep -c '^checks' design.bundle
  1
