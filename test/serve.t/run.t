The resident check server: one process loads the documents, keeps the
arena, store, plan cache, indexes and materialized views warm, and
answers clients over a Unix-domain socket.

  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track*)>
  > <!ELEMENT track (name, rev*)>
  > <!ELEMENT rev (name, sub*)>
  > <!ELEMENT sub (title, auts)>
  > <!ELEMENT auts (name+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT title (#PCDATA)>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> R
  > XEOF
  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ cat > good.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ cat > bad.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Own</title><auts><name>Nora</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF

Start the server in the background and wait for the socket:

  $ xicheck serve --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --journal wal.j --socket srv.sock > serve.log 2>&1 &
  $ for i in $(seq 1 150); do test -S srv.sock && break; sleep 0.1; done

A round trip, a live check, a guarded update, and a refused one:

  $ xicheck client ping --socket srv.sock
  pong
  $ xicheck client check --socket srv.sock
  consistent (generation 0, live)
  $ xicheck client guard --socket srv.sock --update good.xml
  applied (validated by the optimized pre-check)
  $ xicheck client guard --socket srv.sock --update bad.xml
  rejected before execution: violates conflict
  [1]

Snapshot isolation: a pin keeps answering at its generation while
later guards commit newer ones.

  $ xicheck client pin --socket srv.sock
  pin 1 (generation 1)
  $ xicheck client guard --socket srv.sock --update good.xml
  applied (validated by the optimized pre-check)
  $ xicheck client check --socket srv.sock
  consistent (generation 2, live)
  $ xicheck client check --socket srv.sock --pin 1
  consistent (generation 1, pinned)
  $ xicheck client unpin --socket srv.sock --pin 1
  unpinned 1

Pipelined guards land in one server poll round and are applied as a
single batched transaction (one commit fsync, one composed delta
flush), with per-statement verdicts:

  $ xicheck client batch --socket srv.sock --update good.xml --update good.xml --update bad.xml
  statement 1: applied (validated by the optimized pre-check)
  statement 2: applied (validated by the optimized pre-check)
  statement 3: rejected before execution: violates conflict
  [1]

A streaming transaction: while it is open, plain checks are served
from the last committed generation.  (The generation number depends on
how the pipelined guards above landed in poll rounds, so it is
masked.)

  $ xicheck client begin --socket srv.sock
  transaction 1 open
  $ xicheck client stmt --socket srv.sock --update good.xml
  applied (validated by the optimized pre-check)
  $ xicheck client check --socket srv.sock | sed 's/generation [0-9]*/generation G/'
  consistent (generation G, pinned)
  $ xicheck client commit --socket srv.sock
  transaction committed (1 statements)

A checkpoint while serving truncates the journal under the pins:

  $ xicheck client checkpoint --socket srv.sock --path snap.xics
  checkpointed 43 node(s), 22 fact(s) to snap.xics (789 bytes)
  $ test -f snap.xics

The stats response carries server counters and the repository's own
metrics document (per-operation latency histograms included):

  $ xicheck client stats --socket srv.sock | grep -c '"requests"'
  1
  $ xicheck client stats --socket srv.sock | grep -c '"open_txn":false'
  1
  $ xicheck client stats --socket srv.sock | grep -c 'serve_guard_ms'
  1

Graceful shutdown, then the server's own log:

  $ xicheck client shutdown --socket srv.sock
  server stopping
  $ wait
  $ sed 's/pid [0-9]*/pid NNN/' serve.log
  serving on srv.sock (pid NNN)
  served 21 request(s); shutdown complete

The mid-session checkpoint + truncated journal reconstruct the full
committed state (all 5 applied statements) offline:

  $ xicheck recover --dtd rev.dtd=review --snapshot snap.xics --constraints constraints.xpl --journal wal.j --output rec
  replayed 0 transaction(s), 0 statement(s); discarded 0
  wrote rec.0.xml
  $ grep -c Fresh rec.0.xml
  5
