Observability walkthrough: --trace, --metrics, --explain, --slow-ms, and
the composed stats JSON.  Setup mirrors the CLI walkthrough (cli.t).

  $ cat > pub.dtd <<'XEOF'
  > <!ELEMENT dblp (pub)*>
  > <!ELEMENT pub (title, aut+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT aut (name)>
  > <!ELEMENT name (#PCDATA)>
  > XEOF
  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track)+>
  > <!ELEMENT track (name, rev+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT rev (name, sub+)>
  > <!ELEMENT sub (title, auts+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT auts (name)>
  > XEOF
  $ cat > pub.xml <<'XEOF'
  > <dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub></dblp>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> A and (A = R or //pub[aut/name/text() -> A and aut/name/text() -> R])
  > XEOF
  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF

A fully traced --explain run.  Pattern registration exercises simplify
and translate, the witness search exercises shred and the Datalog
evaluator, and the traced check exercises plan compilation and
evaluation.  Timings vary run to run, so they are masked:

  $ xicheck check --explain --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --trace out.json | sed -e 's/[0-9][0-9.]* ms/X ms/' -e 's/[0-9][0-9]* eval steps/N eval steps/'
  consistent
  
  == plan conflict
  some [$_IRev_2]
    bind $_IRev_2 @1: index probe //rev via $_IRev_2/name/text() = $_IRev_2/sub/auts/name/text()
    test @1: $_IRev_2/sub/auts/name/text() = $_IRev_2/name/text()
  some [$_IRev_12, $_IAut_25]
    bind $_IRev_12 @1: index probe //rev via $_IRev_12/name/text() = $_IAut_25/../aut/name/text()
    bind $_IAut_25 @2: index probe //aut via $_IAut_25/name/text() = $_IRev_12/sub/auts/name/text()
    test @2: $_IAut_25/../aut/name/text() = $_IRev_12/name/text() [hoist $_IRev_12/name/text() @1]
    test @2: $_IRev_12/sub/auts/name/text() = $_IAut_25/name/text() [hoist $_IRev_12/sub/auts/name/text() @1]
    join: hash $_IAut_25 on $_IAut_25/../aut/name/text(), probe with $_IRev_12/name/text()
  observed: 1 run(s), X ms, N eval steps
  wrote trace out.json

The trace is one Chrome trace_event JSON object whose complete events
cover every pipeline stage:

  $ grep -c '{"traceEvents":\[' out.json
  1
  $ grep -o '"name":"[a-z_:]*"' out.json | sort -u
  "name":"check:conflict"
  "name":"check_full"
  "name":"compile"
  "name":"datalog:eval"
  "name":"eval"
  "name":"index:build"
  "name":"ingest"
  "name":"simplify"
  "name":"translate"
  $ grep -o '"ph":"X"' out.json | sort -u
  "ph":"X"

'--trace -' prints the span tree as indented text on stderr (durations
and step counts masked):

  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --trace - 2>&1 >/dev/null | sed -e 's/ [0-9][0-9.]*ms//' -e 's/steps=[0-9]*/steps=N/'
  ingest
  ingest
  translate denials=2
  check_full
    compile constraint=conflict
    check:conflict
      eval steps=N
        index:build

--metrics alone prints the registry as one JSON object; the exact
counter values vary with machine and build, so only the shape is
asserted:

  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --metrics | tail -1 | grep -o '"counters":{\|"histograms":{\|"plan_cache_misses"\|"eval_steps"'
  "counters":{
  "eval_steps"
  "plan_cache_misses"
  "histograms":{

A single legacy flag keeps its historical one-line output:

  $ xicheck check --plan-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  plans: 0 hits, 1 misses, 1 cached

Several stats flags compose into one JSON object instead of
interleaved lines:

  $ xicheck check --plan-stats --index-stats --metrics --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl | tail -1 | grep -o '"plan_stats":{\|"index_stats":{\|"metrics":{'
  "plan_stats":{
  "index_stats":{
  "metrics":{
  $ xicheck check --plan-stats --index-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl | tail -1
  {"plan_stats":{"hits":0,"misses":1,"cached":1},"index_stats":{"hits":19,"misses":11,"fallbacks":2,"events":0}}

--slow-ms with a zero threshold logs every check to stderr:

  $ xicheck check --slow-ms 0 --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl 2>&1 >/dev/null | sed 's/ [0-9][0-9.]*ms//'
  slow checks:
    check:conflict
