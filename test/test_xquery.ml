open Xic_xml
module Q = Xic_xquery
module E = Xic_xpath.Eval

let doc =
  (Xml_parser.parse_string
     {|<review>
        <track><name>DB</name>
          <rev><name>Goofy</name>
            <sub><title>T1</title><auts><name>Mickey</name></auts></sub>
            <sub><title>T2</title><auts><name>Goofy</name></auts></sub>
          </rev>
          <rev><name>Minnie</name>
            <sub><title>T3</title><auts><name>Mickey</name></auts></sub>
          </rev>
        </track>
      </review>|})
    .Xml_parser.doc

let eval ?env ?params s = Q.Eval.eval doc ?env ?params (Q.Parser.parse s)
let ebool ?env ?params s = Q.Eval.eval_bool doc ?env ?params (Q.Parser.parse s)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Quantifiers                                                         *)
(* ------------------------------------------------------------------ *)

let test_some_basic () =
  checkb "self review exists" true
    (ebool "some $r in //rev satisfies $r/name/text() = $r/sub/auts/name/text()");
  checkb "no reviewer named Pluto" false
    (ebool "some $r in //rev satisfies $r/name/text() = \"Pluto\"")

let test_some_multi_binding () =
  checkb "pair" true
    (ebool
       "some $a in //rev, $b in //rev satisfies $a/name/text() != $b/name/text()");
  checkb "nested dependency" true
    (ebool "some $r in //rev, $s in $r/sub satisfies $s/title/text() = \"T3\"")

let test_every () =
  checkb "every rev has a sub" true
    (ebool "every $r in //rev satisfies count($r/sub) >= 1");
  checkb "not every rev has two subs" false
    (ebool "every $r in //rev satisfies count($r/sub) = 2")

let test_some_over_empty () =
  checkb "some over empty is false" false
    (ebool "some $x in //nonexistent satisfies true()");
  checkb "every over empty is true" true
    (ebool "every $x in //nonexistent satisfies false()")

(* ------------------------------------------------------------------ *)
(* FLWOR                                                               *)
(* ------------------------------------------------------------------ *)

let test_flwor_basic () =
  match eval "for $s in //sub return $s/title/text()" with
  | E.Nodes ns -> checki "four titles" 3 (List.length ns)
  | _ -> Alcotest.fail "expected nodes"

let test_flwor_where () =
  match eval "for $s in //sub where $s/auts/name/text() = \"Mickey\" return $s" with
  | E.Nodes ns -> checki "two Mickey subs" 2 (List.length ns)
  | _ -> Alcotest.fail "expected nodes"

let test_flwor_let_count () =
  checkb "let + count" true
    (ebool "exists(for $r in //rev let $d := $r/sub where count($d) > 1 return <idle/>)");
  checkb "threshold too high" false
    (ebool "exists(for $r in //rev let $d := $r/sub where count($d) > 2 return <idle/>)")

let test_flwor_nested_for () =
  match eval "for $r in //rev for $s in $r/sub return $s" with
  | E.Nodes ns -> checki "flattened product" 3 (List.length ns)
  | _ -> Alcotest.fail "expected nodes"

let test_constructor () =
  (match eval "<idle/>" with
   | E.Str s -> checks "constructor form" "<idle/>" s
   | _ -> Alcotest.fail "expected serialized element");
  checkb "exists of constructed sequence" true
    (ebool "exists(for $t in //track return <hit/>)")

let test_if () =
  checkb "if then else" true
    (ebool "if (count(//rev) = 2) then true() else false()")

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

let test_params_data () =
  let params = [ ("n", E.Str "Goofy") ] in
  checkb "author equals param" true (ebool ~params "//auts/name/text() = %n");
  checkb "unknown name" false
    (ebool ~params:[ ("n", E.Str "Scrooge") ] "//auts/name/text() = %n")

let test_params_node () =
  let rev1 =
    match Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "/review/track[1]/rev[1]") with
    | n :: _ -> n
    | [] -> Alcotest.fail "no rev"
  in
  let params = [ ("anchor", E.Nodes [ rev1 ]) ] in
  checkb "path from node param" true (ebool ~params "%anchor/name/text() = \"Goofy\"");
  checkb "count from node param" true (ebool ~params "count(%anchor/sub) = 2")

let test_params_missing () =
  match ebool "//rev/name/text() = %nope" with
  | exception Q.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected unbound parameter error"

let test_count_distinct () =
  checkb "distinct author names" true (ebool "count-distinct(//auts/name/text()) = 2");
  checkb "plain count differs" true (ebool "count(//auts/name/text()) = 3");
  (* Element nodes are distinct term instances even when their content
     coincides (two [auts] both read "Mickey") — the Datalog Cnt_D counts
     node identities, and the XQuery route must agree. *)
  checkb "content-identical elements stay distinct" true
    (ebool "count-distinct(//auts) = 3")

(* ------------------------------------------------------------------ *)
(* Parser round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip_cases =
  [
    "some $Ir in //rev, $H in //aut satisfies $H/name/text() = $Ir/name/text()";
    "exists(for $lr in //rev let $D := $lr/sub where count($D) > 4 return <idle/>)";
    "some $D in //aut satisfies $D/name/text() = %n and count(//sub) >= %k";
    "every $x in //track satisfies count($x/rev) > 0";
    "if (count(//a) = 1) then true() else false()";
    "%anchor/name/text() = %n";
  ]

let test_roundtrip () =
  List.iter
    (fun s ->
      let e = Q.Parser.parse s in
      let s' = Q.Ast.to_string e in
      let e' = Q.Parser.parse s' in
      Alcotest.(check bool) (s ^ " => " ^ s') true (e = e'))
    roundtrip_cases

let test_params_listing () =
  let e = Q.Parser.parse "some $a in //rev satisfies $a/name/text() = %n and count(%anchor/sub) > %k" in
  Alcotest.(check (list string)) "params in order" [ "n"; "anchor"; "k" ] (Q.Ast.params e)

let test_parse_errors () =
  let fails s =
    match Q.Parser.parse s with
    | exception Q.Parser.Parse_error _ -> true
    | _ -> false
  in
  checkb "missing satisfies" true (fails "some $x in //a");
  checkb "missing return" true (fails "for $x in //a where true()");
  checkb "bad binding" true (fails "for x in //a return $x");
  checkb "mismatched constructor" true (fails "<a>{1}</b>")

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

let test_let_shadowing () =
  checkb "inner let shadows outer" true
    (ebool
       "exists(for $r in //rev let $x := $r/sub let $x := $r/name where \
        count($x) = 1 return <i/>)")

let test_nested_quantifiers () =
  checkb "nested some" true
    (ebool
       "some $t in //track satisfies some $r in $t/rev satisfies \
        count($r/sub) >= 2");
  checkb "some under every" true
    (ebool
       "every $r in //rev satisfies some $s in $r/sub satisfies \
        count($s/auts) >= 1")

let test_flwor_multiple_where_bindings () =
  match
    eval
      "for $r in //rev, $s in $r/sub where $s/auts/name/text() = \
       $r/name/text() return $s"
  with
  | E.Nodes ns -> checki "self-reviewed subs" 1 (List.length ns)
  | _ -> Alcotest.fail "expected nodes"

let test_seq_result_concat () =
  match eval "for $t in //track return ($t/name/text(), $t/rev/name/text())" with
  | E.Nodes ns -> checki "interleaved names" 3 (List.length ns)
  | v ->
    Alcotest.fail
      ("expected nodes, got " ^ Xic_xpath.Eval.string_value doc v)

let test_if_inside_flwor () =
  checkb "if in where" true
    (ebool
       "exists(for $r in //rev where (if (count($r/sub) > 1) then true() \
        else false()) return <i/>)")

let test_constructor_with_content () =
  match eval "<wrap>{count(//sub)}</wrap>" with
  | E.Str s -> checks "constructed" "<wrap>3</wrap>" s
  | _ -> Alcotest.fail "expected serialized element"

let test_param_arithmetic () =
  let params = [ ("k", E.Num 2.0) ] in
  checkb "param in arithmetic" true (ebool ~params "count(//rev) = %k");
  checkb "param in comparison chain" true (ebool ~params "%k + 1 = 3")

let test_deep_param_in_path_predicate () =
  let params = [ ("n", E.Str "Minnie") ] in
  checkb "param inside qualifier" true (ebool ~params "exists(//rev[name/text() = %n])")

let test_every_vacuous_and_empty_exists () =
  checkb "exists empty flwor" false
    (ebool "exists(for $x in //track where count($x/rev) > 99 return <i/>)")

let () =
  Alcotest.run "xquery"
    [
      ( "quantifiers",
        [
          Alcotest.test_case "some basic" `Quick test_some_basic;
          Alcotest.test_case "some multi-binding" `Quick test_some_multi_binding;
          Alcotest.test_case "every" `Quick test_every;
          Alcotest.test_case "empty domains" `Quick test_some_over_empty;
        ] );
      ( "flwor",
        [
          Alcotest.test_case "basic" `Quick test_flwor_basic;
          Alcotest.test_case "where" `Quick test_flwor_where;
          Alcotest.test_case "let + count" `Quick test_flwor_let_count;
          Alcotest.test_case "nested for" `Quick test_flwor_nested_for;
          Alcotest.test_case "constructor" `Quick test_constructor;
          Alcotest.test_case "if" `Quick test_if;
        ] );
      ( "parameters",
        [
          Alcotest.test_case "data params" `Quick test_params_data;
          Alcotest.test_case "node params" `Quick test_params_node;
          Alcotest.test_case "missing param" `Quick test_params_missing;
          Alcotest.test_case "count-distinct" `Quick test_count_distinct;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "params listing" `Quick test_params_listing;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "let shadowing" `Quick test_let_shadowing;
          Alcotest.test_case "nested quantifiers" `Quick test_nested_quantifiers;
          Alcotest.test_case "multi-binding where" `Quick test_flwor_multiple_where_bindings;
          Alcotest.test_case "sequence results" `Quick test_seq_result_concat;
          Alcotest.test_case "if inside flwor" `Quick test_if_inside_flwor;
          Alcotest.test_case "constructor content" `Quick test_constructor_with_content;
          Alcotest.test_case "param arithmetic" `Quick test_param_arithmetic;
          Alcotest.test_case "param in qualifier" `Quick test_deep_param_in_path_predicate;
          Alcotest.test_case "empty flwor exists" `Quick test_every_vacuous_and_empty_exists;
        ] );
    ]
