(* The resident check server: protocol codec round trips, snapshot
   isolation (pinned readers vs a committing writer, and across
   checkpoint truncation), batched guarded updates vs serial parity,
   and graceful-shutdown durability — including a failpoint-driven
   crash in the shutdown path while a streaming transaction is open. *)

open Xic_core
module Conf = Xic_workload.Conference
module XU = Xic_xupdate.Xupdate
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint
module P = Xic_server.Protocol
module Srv = Xic_server.Server

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checksl = Alcotest.(check (list string))

let tmp_path =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xic_server_%d_%d_%s" (Unix.getpid ()) !n suffix)

(* ------------------------------------------------------------------ *)
(* Fixtures (the pub/rev conference pair from the paper)               *)
(* ------------------------------------------------------------------ *)

let fixed_pub =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let fixed_rev =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let make_repo ?(incremental = false) () =
  let s = Conf.schema () in
  let repo = Repository.create s in
  Repository.load_document repo fixed_pub;
  Repository.load_document repo fixed_rev;
  List.iter
    (Repository.add_constraint repo)
    [ Conf.conflict s; Conf.workload s; Conf.track_load s ];
  Repository.register_pattern repo (Conf.submission_pattern s);
  if incremental then Repository.set_incremental repo true;
  repo

let legal_insert ?(title = "Fresh") ?(author = "Zoe") () =
  Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title
    ~author

(* Inserting Carl as an author of a submission Carl reviews violates
   the conflict-of-interest denial. *)
let illegal_insert () =
  Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
    ~title:"Own" ~author:"Carl"

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    P.Obj
      [ ("op", P.String "check");
        ("n", P.Int (-42));
        ("x", P.Float 1.5);
        ("t", P.Bool true);
        ("z", P.Null);
        ("esc", P.String "a\"b\\c\nd\te\r\x01f");
        ("uni", P.String "caf\xc3\xa9");
        ("l", P.List [ P.Int 1; P.String "two"; P.List []; P.Obj [] ]) ]
  in
  let s = P.to_string v in
  checkb "round trip" true (P.of_string s = v);
  (* escapes survive a second round *)
  checks "stable" s (P.to_string (P.of_string s));
  (* \uXXXX escapes decode to UTF-8 *)
  (match P.of_string "{\"u\":\"\\u00e9A\"}" with
   | P.Obj [ ("u", P.String s) ] -> checks "unicode escape" "\xc3\xa9A" s
   | _ -> Alcotest.fail "unicode escape object expected");
  checkb "whitespace tolerated" true
    (P.of_string " { \"a\" : [ 1 , 2 ] } " = P.Obj [ ("a", P.List [ P.Int 1; P.Int 2 ]) ])

let test_json_raw () =
  checks "raw embedded verbatim"
    {|{"ok":true,"metrics":{"a":[1,2]}}|}
    (P.to_string
       (P.Obj [ ("ok", P.Bool true); ("metrics", P.Raw {|{"a":[1,2]}|}) ]))

let test_json_errors () =
  let fails s =
    match P.of_string s with
    | exception P.Protocol_error _ -> true
    | _ -> false
  in
  checkb "trailing garbage" true (fails {|{"a":1} x|});
  checkb "truncated" true (fails {|{"a":|});
  checkb "bad literal" true (fails "trve");
  checkb "unterminated string" true (fails {|"abc|})

let frame payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  Bytes.to_string hdr ^ payload

let test_split_frames () =
  let a = frame "{\"a\":1}" and b = frame "{\"b\":2}" in
  let partial = String.sub (frame "{\"c\":3}") 0 6 in
  let payloads, rest = P.split_frames (a ^ b ^ partial) in
  checksl "two complete frames" [ "{\"a\":1}"; "{\"b\":2}" ] payloads;
  checks "partial remainder" partial rest;
  let payloads, rest = P.split_frames "\x00\x00" in
  checkb "short header kept" true (payloads = [] && rest = "\x00\x00");
  (match P.split_frames "\x7f\xff\xff\xff rest" with
   | exception P.Protocol_error _ -> ()
   | _ -> Alcotest.fail "oversized frame length must be refused")

(* ------------------------------------------------------------------ *)
(* Snapshot isolation                                                  *)
(* ------------------------------------------------------------------ *)

let test_pin_across_commit () =
  let repo = make_repo () in
  checki "fresh repository at generation 0" 0 (Repository.generation repo);
  let p0 = Repository.pin repo in
  checki "pin records the generation" 0 (Repository.pin_generation p0);
  checksl "pinned state consistent" [] (Repository.check_pinned repo p0);
  (* the writer commits generation 1 *)
  (match Repository.guarded_update repo (legal_insert ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "legal insertion should apply");
  checki "commit bumps the generation" 1 (Repository.generation repo);
  checksl "old pin verdict unchanged" [] (Repository.check_pinned repo p0);
  (* mutate the live store into a violating state behind the pin's back *)
  ignore (Repository.apply_unchecked repo (illegal_insert ()) : XU.undo);
  checkb "live state violated" true (Repository.check_full repo <> []);
  checksl "pinned reader still sees generation 0 as consistent" []
    (Repository.check_pinned repo p0);
  let p1 = Repository.pin repo in
  checkb "fresh pin sees the violation" true
    (Repository.check_pinned repo p1 <> [])

let test_pin_across_checkpoint () =
  let jpath = tmp_path "pin.j" and spath = tmp_path "pin.xics" in
  let j = J.open_ jpath in
  let repo = make_repo () in
  (match Repository.guarded_update ~journal:j repo (legal_insert ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "legal insertion should apply");
  let p = Repository.pin repo in
  checki "pin at generation 1" 1 (Repository.pin_generation p);
  (* checkpoint truncates the journal the pinned generation was built
     from; the pin must not care *)
  let r = Repository.checkpoint ~journal:j repo spath in
  checkb "journal reset by checkpoint" true r.Repository.wal_reset;
  checksl "pin survives checkpoint truncation" []
    (Repository.check_pinned repo p);
  (match Repository.guarded_update ~journal:j repo (legal_insert ~title:"Next" ~author:"Kim" ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "post-checkpoint insertion should apply");
  checksl "pin unaffected by post-checkpoint commits" []
    (Repository.check_pinned repo p);
  J.close j;
  Sys.remove jpath;
  Sys.remove spath

(* Through the server: a pinned check keeps answering at its generation
   while guards commit newer ones, and plain checks during a streaming
   transaction are served from the last committed pin. *)
let test_server_isolation () =
  let repo = make_repo ~incremental:true () in
  let srv = Srv.create repo in
  let rq j = Srv.handle srv j in
  let gen resp = Option.value ~default:(-1) (P.int_field "generation" resp) in
  let pin_resp = rq (P.Obj [ ("op", P.String "pin") ]) in
  let pid = Option.get (P.int_field "pin" pin_resp) in
  checki "pin at generation 0" 0 (gen pin_resp);
  let g =
    rq
      (P.Obj
         [ ("op", P.String "guard");
           ("update", P.String (XU.to_string (legal_insert ()))) ])
  in
  checks "guard applied" "applied" (Option.get (P.string_field "outcome" g));
  let live = rq (P.Obj [ ("op", P.String "check") ]) in
  checki "live check at generation 1" 1 (gen live);
  checks "live isolation" "live" (Option.get (P.string_field "isolation" live));
  let pinned = rq (P.Obj [ ("op", P.String "check"); ("pin", P.Int pid) ]) in
  checki "pinned check stays at generation 0" 0 (gen pinned);
  checks "pinned isolation" "pinned"
    (Option.get (P.string_field "isolation" pinned));
  (* while a streaming transaction holds uncommitted statements, a plain
     check is served from the last committed generation *)
  ignore (rq (P.Obj [ ("op", P.String "txn_begin") ]));
  let s =
    rq
      (P.Obj
         [ ("op", P.String "txn_stmt");
           ("update", P.String (XU.to_string (legal_insert ~title:"Mid" ~author:"Kim" ()))) ])
  in
  checks "statement applied" "applied"
    (Option.get (P.string_field "outcome" s));
  let during = rq (P.Obj [ ("op", P.String "check") ]) in
  checks "check during txn is pinned" "pinned"
    (Option.get (P.string_field "isolation" during));
  checki "check during txn sees the committed generation" 1 (gen during);
  ignore (rq (P.Obj [ ("op", P.String "txn_commit") ]));
  let after = rq (P.Obj [ ("op", P.String "check") ]) in
  checks "check after commit is live again" "live"
    (Option.get (P.string_field "isolation" after));
  checki "commit bumped the generation" 2 (gen after)

(* Time travel over retained generations: released pins stay in the
   bounded history and answer [check {as_of}] until a checkpoint prunes
   them; a still-referenced generation survives the checkpoint. *)
let test_time_travel () =
  let spath = tmp_path "tt.xics" in
  let repo = make_repo ~incremental:true () in
  let srv =
    Srv.create
      ~config:{ Srv.default_config with snapshot_path = Some spath }
      repo
  in
  let rq j = Srv.handle srv j in
  let guard u =
    let resp =
      rq
        (P.Obj
           [ ("op", P.String "guard"); ("update", P.String (XU.to_string u)) ])
    in
    checks "guard applied" "applied"
      (Option.get (P.string_field "outcome" resp))
  in
  let pin_release () =
    let resp = rq (P.Obj [ ("op", P.String "pin") ]) in
    let pid = Option.get (P.int_field "pin" resp) in
    let g = Option.get (P.int_field "generation" resp) in
    ignore (rq (P.Obj [ ("op", P.String "unpin"); ("pin", P.Int pid) ]));
    g
  in
  let g0 = pin_release () in
  guard (legal_insert ());
  let g1 = pin_release () in
  guard (legal_insert ~title:"Two" ~author:"Kim" ());
  checki "first pin at generation 0" 0 g0;
  checki "second pin at generation 1" 1 g1;
  (* both released generations sit in the retained history *)
  let retained () =
    let hist = rq (P.Obj [ ("op", P.String "history") ]) in
    checkb "history ok" true (P.bool_field "ok" hist);
    match P.list_field "retained" hist with
    | Some rs -> List.filter_map (fun x -> P.int_field "generation" x) rs
    | None -> []
  in
  let gens = retained () in
  checkb "generation 0 retained" true (List.mem g0 gens);
  checkb "generation 1 retained" true (List.mem g1 gens);
  let asof g = rq (P.Obj [ ("op", P.String "check"); ("as_of", P.Int g) ]) in
  let r0 = asof g0 in
  checkb "as_of 0 ok" true (P.bool_field "ok" r0);
  checks "as_of isolation tag" "as_of"
    (Option.get (P.string_field "isolation" r0));
  checki "as_of echoes its generation" g0
    (Option.get (P.int_field "generation" r0));
  (* pin and as_of in one request are refused *)
  checkb "pin+as_of refused" false
    (P.bool_field "ok"
       (rq
          (P.Obj
             [ ("op", P.String "check");
               ("pin", P.Int 0);
               ("as_of", P.Int g0) ])));
  (* an explicit pin of a retained past generation reads through it *)
  let presp = rq (P.Obj [ ("op", P.String "pin"); ("generation", P.Int g1) ]) in
  checkb "pin {generation} ok" true (P.bool_field "ok" presp);
  checki "pin {generation} echoes it" g1
    (Option.get (P.int_field "generation" presp));
  let pid = Option.get (P.int_field "pin" presp) in
  let through =
    rq (P.Obj [ ("op", P.String "check"); ("pin", P.Int pid) ])
  in
  checki "read through the past pin" g1
    (Option.get (P.int_field "generation" through));
  (* checkpoint prunes the zero-ref history but not the held pin *)
  checkb "checkpoint ok" true
    (P.bool_field "ok" (rq (P.Obj [ ("op", P.String "checkpoint") ])));
  checkb "generation 0 pruned by checkpoint" false
    (P.bool_field "ok" (asof g0));
  checkb "held generation survives checkpoint" true
    (P.bool_field "ok" (asof g1));
  ignore (rq (P.Obj [ ("op", P.String "unpin"); ("pin", P.Int pid) ]));
  (try Sys.remove spath with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Batched guards                                                      *)
(* ------------------------------------------------------------------ *)

let batch_updates () =
  [ legal_insert ();
    legal_insert ~title:"Second" ~author:"Kim" ();
    illegal_insert ();
    legal_insert ~title:"Third" ~author:"Uma" () ]

let outcome_tag = function
  | Repository.Applied _ -> "applied"
  | Repository.Rejected_early c -> "rejected:" ^ c
  | Repository.Rolled_back c -> "rolled_back:" ^ c

let test_batch_serial_parity () =
  let ja = tmp_path "batch_a.j" and jb = tmp_path "batch_b.j" in
  let a = make_repo ~incremental:true () in
  let b = make_repo ~incremental:true () in
  let japh = J.open_ ja and jbph = J.open_ jb in
  let batched =
    Repository.guarded_batch ~journal:japh a (batch_updates ())
    |> List.map (fun r -> outcome_tag r.Repository.outcome)
  in
  let serial =
    List.map
      (fun u -> outcome_tag (Repository.guarded_update ~journal:jbph b u))
      (batch_updates ())
  in
  checksl "batched outcomes = serial outcomes" serial batched;
  checksl "same final verdict" (Repository.check_full b)
    (Repository.check_full a);
  (* the batch journals ONE transaction; serial journals one per guard *)
  let committed path =
    match J.read path with
    | { J.entries; _ } -> J.committed_payloads entries
  in
  checki "batch = one journaled txn" 1 (List.length (committed ja));
  checki "serial = one txn per applied guard" 3 (List.length (committed jb));
  (* replaying both journals converges to the same state *)
  let replay path =
    let r = make_repo ~incremental:true () in
    let rep = Repository.recover (J.read path) r in
    checksl "no replay errors" []
      (List.map snd rep.Repository.replay_errors);
    Repository.check_full r
  in
  checksl "replayed batch = replayed serial" (replay jb) (replay ja);
  J.close japh;
  J.close jbph;
  Sys.remove ja;
  Sys.remove jb

let test_round_batching () =
  let repo = make_repo ~incremental:true () in
  let srv = Srv.create repo in
  let guard u =
    P.Obj [ ("op", P.String "guard"); ("update", P.String (XU.to_string u)) ]
  in
  let reqs =
    [ P.Obj [ ("op", P.String "ping") ];
      guard (legal_insert ());
      guard (illegal_insert ());
      guard (legal_insert ~title:"Tail" ~author:"Kim" ());
      P.Obj [ ("op", P.String "check") ] ]
  in
  let resps = Srv.handle_round srv reqs in
  checki "one response per request" (List.length reqs) (List.length resps);
  let nth n = List.nth resps n in
  checkb "guards in the run are marked batched" true
    (P.bool_field "batched" (nth 1)
     && P.bool_field "batched" (nth 2)
     && P.bool_field "batched" (nth 3));
  checksl "per-request verdicts inside the batch"
    [ "applied"; "rejected"; "applied" ]
    (List.filter_map (fun i -> P.string_field "outcome" (nth i)) [ 1; 2; 3 ]);
  checks "rejected statement names its constraint" "conflict"
    (Option.get (P.string_field "constraint" (nth 2)));
  (* all batched responses share the batch's commit generation *)
  let gens =
    List.filter_map (fun i -> P.int_field "generation" (nth i)) [ 1; 2; 3 ]
  in
  checkb "one shared generation" true
    (match gens with [ a; b; c ] -> a = b && b = c | _ -> false);
  (* a singleton guard is not batched *)
  let solo = Srv.handle_round srv [ guard (legal_insert ~title:"Solo" ~author:"Ann" ()) ] in
  checkb "singleton guard unbatched" true
    (match solo with [ r ] -> not (P.bool_field "batched" r) | _ -> false)

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

let last_entry_is_abort path txn =
  match J.read path with
  | { J.entries; _ } ->
    (match List.rev entries with
     | J.Abort { txn = t } :: _ -> t = txn
     | _ -> false)

let test_shutdown_aborts_open_txn () =
  let jpath = tmp_path "shutdown.j" in
  let j = J.open_ jpath in
  let repo = make_repo () in
  let srv = Srv.create ~config:{ Srv.default_config with journal = Some j } repo in
  let t = Srv.handle srv (P.Obj [ ("op", P.String "txn_begin") ]) in
  let txn_id = Option.get (P.int_field "txn" t) in
  let s =
    Srv.handle srv
      (P.Obj
         [ ("op", P.String "txn_stmt");
           ("update", P.String (XU.to_string (legal_insert ()))) ])
  in
  checks "statement applied in txn" "applied"
    (Option.get (P.string_field "outcome" s));
  Srv.shutdown srv;
  Srv.shutdown srv (* idempotent *);
  checkb "journal's last word on the in-flight txn is an Abort" true
    (last_entry_is_abort jpath txn_id);
  (* recovery finds nothing to replay: the interrupted txn is gone *)
  let fresh = make_repo () in
  let rep = Repository.recover (J.read jpath) fresh in
  checki "no committed txns to replay" 0 rep.Repository.replayed_txns;
  checki "the aborted txn is discarded (explicitly, not inferred)" 1
    rep.Repository.discarded_txns;
  checksl "recovered state is the pre-txn state" [] (Repository.check_full fresh);
  Sys.remove jpath

(* A SIGTERM-style crash *inside* the shutdown path, before the open
   transaction's abort runs: the journal is left with a dangling intent
   and recovery must discard it.  The child process arms the
   [serve_shutdown] failpoint and dies with exit code 42. *)
let test_shutdown_crash_failpoint () =
  let jpath = tmp_path "crash.j" in
  (match Unix.fork () with
   | 0 ->
     (* child: never let test-runner machinery run *)
     (try
        FP.set ~action:FP.Exit "serve_shutdown";
        let j = J.open_ jpath in
        let repo = make_repo () in
        let srv =
          Srv.create ~config:{ Srv.default_config with journal = Some j } repo
        in
        ignore (Srv.handle srv (P.Obj [ ("op", P.String "txn_begin") ]));
        ignore
          (Srv.handle srv
             (P.Obj
                [ ("op", P.String "txn_stmt");
                  ("update", P.String (XU.to_string (legal_insert ()))) ]));
        Srv.shutdown srv;
        (* unreachable: the failpoint exits first *)
        Unix._exit 99
      with _ -> Unix._exit 98)
   | pid ->
     let _, status = Unix.waitpid [] pid in
     (match status with
      | Unix.WEXITED 42 -> ()
      | Unix.WEXITED n -> Alcotest.failf "child exited %d, wanted 42" n
      | _ -> Alcotest.fail "child did not exit normally");
     (* the journal holds a dangling intent, no closing record *)
     (match J.read jpath with
      | { J.entries; _ } ->
        checkb "intent present" true
          (List.exists (function J.Intent _ -> true | _ -> false) entries);
        checkb "no commit, no abort" true
          (not
             (List.exists
                (function J.Commit _ | J.Abort _ -> true | _ -> false)
                entries)));
     let fresh = make_repo () in
     let rep = Repository.recover (J.read jpath) fresh in
     checki "in-flight txn discarded" 1 rep.Repository.discarded_txns;
     checki "nothing replayed" 0 rep.Repository.replayed_txns;
     checksl "recovered to the pre-txn state" [] (Repository.check_full fresh);
     Sys.remove jpath)

(* ------------------------------------------------------------------ *)
(* Observability: trace propagation, quantiles, exposition, slow ring, *)
(* frame-cap errors                                                    *)
(* ------------------------------------------------------------------ *)

module Obs = Xic_obs.Obs
module XLog = Xic_obs.Log

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_tracing f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    f

(* Client sends a trace_id -> the response echoes it, the server span
   carries it, and the Chrome export contains it. *)
let test_trace_roundtrip () =
  with_tracing @@ fun () ->
  let srv = Srv.create (make_repo ()) in
  let resp =
    Srv.handle srv
      (P.Obj
         [ ("op", P.String "check");
           ("trace_id", P.String "t-cafe01");
           ("span_id", P.String "client-7") ])
  in
  checkb "ok" true (P.bool_field "ok" resp);
  checks "trace id echoed" "t-cafe01"
    (Option.get (P.string_field "trace_id" resp));
  let span_id = Option.get (P.string_field "span_id" resp) in
  checkb "server span id assigned" true (span_id <> "");
  let roots = Srv.trace_roots srv in
  checkb "request span captured" true (roots <> []);
  let span = List.nth roots (List.length roots - 1) in
  checks "span name" "serve:check" span.Obs.Trace.name;
  let attr k = List.assoc_opt k span.Obs.Trace.attrs in
  checkb "span carries the trace id" true (attr "trace_id" = Some "t-cafe01");
  checkb "span carries the client span" true
    (attr "parent_span_id" = Some "client-7");
  checkb "span carries its own id" true (attr "span_id" = Some span_id);
  checkb "span carries the op" true (attr "op" = Some "check");
  checkb "chrome export carries the trace id" true
    (contains (Obs.Trace.to_chrome_json roots) "t-cafe01")

(* A log line emitted while handling a request carries its trace id. *)
let test_log_trace_correlation () =
  let logfile = tmp_path "srv.log" in
  (match XLog.open_path logfile with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  XLog.set_level XLog.Debug;
  XLog.set_format XLog.Json;
  Fun.protect
    ~finally:(fun () ->
      XLog.close ();
      XLog.set_level XLog.Info;
      XLog.set_format XLog.Text;
      try Sys.remove logfile with Sys_error _ -> ())
  @@ fun () ->
  let srv = Srv.create (make_repo ()) in
  ignore
    (Srv.handle srv
       (P.Obj [ ("op", P.String "ping"); ("trace_id", P.String "t-log42") ]));
  XLog.close ();
  let ic = open_in logfile in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  checkb "log line carries the trace id" true
    (contains body {|"trace":"t-log42"|});
  checkb "trace id cleared between requests" true
    (XLog.trace_id () = None)

(* The stats response surfaces per-op latency quantiles directly. *)
let test_stats_quantiles () =
  let srv = Srv.create (make_repo ()) in
  (* the serve_<op>_ms histograms are process-global, so measure the
     count as a delta across this test's own requests *)
  let check_count () =
    let resp = Srv.handle srv (P.Obj [ ("op", P.String "stats") ]) in
    match P.member "ops" resp with
    | Some (P.Obj ops) ->
      (match List.assoc_opt "check" ops with
       | Some o -> Option.value ~default:0 (P.int_field "count" o)
       | None -> 0)
    | _ -> Alcotest.fail "stats response lacks ops"
  in
  let before = check_count () in
  for _ = 1 to 5 do
    ignore (Srv.handle srv (P.Obj [ ("op", P.String "check") ]))
  done;
  let resp = Srv.handle srv (P.Obj [ ("op", P.String "stats") ]) in
  let num j k =
    match P.member k j with
    | Some (P.Float f) -> f
    | Some (P.Int i) -> float_of_int i
    | _ -> Alcotest.failf "missing %s" k
  in
  checkb "count grew by at least the five checks" true
    (check_count () >= before + 5);
  match P.member "ops" resp with
  | Some (P.Obj ops) ->
    (match List.assoc_opt "check" ops with
     | Some o ->
       let p50 = num o "p50_ms" and p99 = num o "p99_ms" in
       checkb "p50 positive" true (p50 > 0.0);
       checkb "p99 >= p50" true (p99 >= p50)
     | None -> Alcotest.fail "stats.ops lacks the check op")
  | _ -> Alcotest.fail "stats response lacks ops"

(* The metrics op returns parseable Prometheus text exposition with the
   serve gauges synced. *)
let test_metrics_exposition () =
  let srv = Srv.create (make_repo ()) in
  ignore (Srv.handle srv (P.Obj [ ("op", P.String "check") ]));
  ignore (Srv.handle srv (P.Obj [ ("op", P.String "pin") ]));
  let resp = Srv.handle srv (P.Obj [ ("op", P.String "metrics") ]) in
  checks "format" "prometheus"
    (Option.get (P.string_field "format" resp));
  let body = Option.get (P.string_field "body" resp) in
  (* line-format check: every non-empty line is a TYPE comment or
     "name[{labels}] value" with a float value *)
  List.iter
    (fun line ->
      if line <> "" then
        if String.length line >= 1 && line.[0] = '#' then begin
          if not (String.length line > 7 && String.sub line 0 7 = "# TYPE ")
          then Alcotest.failf "unexpected comment line: %s" line
        end
        else
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "no value on line: %s" line
          | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            (match float_of_string_opt v with
             | Some _ -> ()
             | None -> Alcotest.failf "unparseable value on line: %s" line))
    (String.split_on_char '\n' body);
  checkb "serve gauge present" true (contains body "xic_serve_open_txns 0");
  checkb "pin gauge live" true (contains body "xic_serve_pinned_generations 1");
  checkb "gauge typed as gauge" true
    (contains body "# TYPE xic_serve_pinned_generations gauge");
  checkb "latency summary quantiles" true (contains body "quantile=\"0.5\"");
  checkb "ms histograms exported in seconds" true
    (contains body "xic_serve_check_seconds")

(* The slow ring keeps the worst requests, worst-first, capped, with
   span trees when tracing is on. *)
let test_slow_ring () =
  with_tracing @@ fun () ->
  let config = { Srv.default_config with slow_capacity = 2 } in
  let srv = Srv.create ~config (make_repo ()) in
  ignore (Srv.handle srv (P.Obj [ ("op", P.String "ping") ]));
  for _ = 1 to 3 do
    ignore (Srv.handle srv (P.Obj [ ("op", P.String "check") ]))
  done;
  let resp = Srv.handle srv (P.Obj [ ("op", P.String "slow") ]) in
  checki "capacity reported" 2 (Option.get (P.int_field "capacity" resp));
  match P.list_field "slow" resp with
  | Some entries ->
    checki "ring capped" 2 (List.length entries);
    let ms e =
      match P.member "ms" e with
      | Some (P.Float f) -> f
      | Some (P.Int i) -> float_of_int i
      | _ -> Alcotest.fail "entry lacks ms"
    in
    (match entries with
     | [ a; b ] ->
       checkb "worst first" true (ms a >= ms b);
       checkb "entry names its op" true (P.string_field "op" a <> None);
       checkb "entry has a span id" true (P.string_field "span_id" a <> None);
       checkb "entry keeps the request document" true
         (P.string_field "request" a <> None);
       (match P.member "span" a with
        | Some span ->
          checkb "span tree attached" true
            (match P.string_field "name" span with
             | Some n -> contains n "serve:"
             | None -> false)
        | None -> Alcotest.fail "tracing was on: span tree expected")
     | _ -> Alcotest.fail "two entries expected")
  | None -> Alcotest.fail "slow response lacks entries"

(* Oversized and malformed frame lengths are refused with the cap and
   the offending length spelled out, on both the read and write side. *)
let test_frame_cap_errors () =
  let big = String.make (P.max_frame + 1) 'x' in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  (match P.write_frame a (P.String big) with
   | () -> Alcotest.fail "oversized write must be refused"
   | exception P.Protocol_error m ->
     checkb "write error names the cap" true (contains m "16 MiB");
     checkb "write error names the length" true
       (contains m (string_of_int (P.max_frame + 3))));
  (* a bogus header: ASCII "JUNK" decodes to a huge length *)
  ignore (Unix.write_substring a "JUNK" 0 4);
  (match P.read_frame b with
   | _ -> Alcotest.fail "bogus length must be refused"
   | exception P.Protocol_error m ->
     checkb "read error names the cap" true (contains m "16 MiB");
     checkb "read error names the length" true (contains m "1247104587"));
  (match P.split_frames "\x7f\xff\xff\xff rest" with
   | _ -> Alcotest.fail "split must refuse the oversized length"
   | exception P.Protocol_error m ->
     checkb "split error names the cap" true (contains m "16 MiB"))

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "raw embedding" `Quick test_json_raw;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "incremental framing" `Quick test_split_frames;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "pin across writer commit" `Quick
            test_pin_across_commit;
          Alcotest.test_case "pin across checkpoint" `Quick
            test_pin_across_checkpoint;
          Alcotest.test_case "time travel over retained generations" `Quick
            test_time_travel;
          Alcotest.test_case "server-level isolation" `Quick
            test_server_isolation;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batch = serial verdicts" `Quick
            test_batch_serial_parity;
          Alcotest.test_case "round batching over the wire shape" `Quick
            test_round_batching;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "graceful abort of open txn" `Quick
            test_shutdown_aborts_open_txn;
          Alcotest.test_case "crash inside shutdown (failpoint)" `Quick
            test_shutdown_crash_failpoint;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace id round trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "log/trace correlation" `Quick
            test_log_trace_correlation;
          Alcotest.test_case "stats quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_exposition;
          Alcotest.test_case "slow ring" `Quick test_slow_ring;
          Alcotest.test_case "frame cap errors" `Quick test_frame_cap_errors;
        ] );
    ]
