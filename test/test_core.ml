open Xic_core
module Conf = Xic_workload.Conference
module XU = Xic_xupdate.Xupdate
module T = Xic_datalog.Term

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checksl = Alcotest.(check (list string))

let schema = lazy (Conf.schema ())

let pub_doc =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let rev_doc =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let make_repo ?(constraints = true) () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo rev_doc;
  if constraints then begin
    Repository.add_constraint repo (Conf.conflict s);
    Repository.add_constraint repo (Conf.workload s);
    Repository.add_constraint repo (Conf.track_load s)
  end;
  repo

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_rendering () =
  let s = Schema.to_string (Lazy.force schema) in
  checkb "mentions rev relation" true
    (let needle = "rev(Id, Pos, IdParent_track, Name)" in
     let rec find i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_schema_bad_dtd () =
  match Schema.create [ ("<!ELEMENT", "r") ] with
  | exception Schema.Schema_error _ -> ()
  | _ -> Alcotest.fail "bad DTD must be rejected"

let test_load_validates () =
  let repo = Repository.create (Lazy.force schema) in
  (match Repository.load_document repo "<review><bogus/></review>" with
   | exception Repository.Repository_error _ -> ()
   | () -> Alcotest.fail "invalid document must be rejected");
  (* but loads fine with validation off *)
  Repository.load_document ~validate:false repo "<review><bogus/></review>"

let test_schema_from_doctype () =
  let s =
    Schema.of_inline_doctypes
      [ {|<!DOCTYPE team [<!ELEMENT team (member)*><!ELEMENT member (#PCDATA)>]>
          <team><member>Ada</member></team>|} ]
  in
  checkb "member is a predicate with text column" true
    (Xic_relmap.Mapping.schema_of (Schema.mapping s) "member" <> None);
  (match Schema.of_inline_doctypes [ "<team/>" ] with
   | exception Schema.Schema_error _ -> ()
   | _ -> Alcotest.fail "missing DOCTYPE must be rejected")

(* ------------------------------------------------------------------ *)
(* Constraints                                                         *)
(* ------------------------------------------------------------------ *)

let test_constraint_compiles () =
  let c = Conf.conflict (Lazy.force schema) in
  checki "two denials" 2 (List.length c.Constr.datalog);
  checkb "has xpathlog" true (c.Constr.xpathlog <> None)

let test_constraint_bad_source () =
  match Constr.make (Lazy.force schema) ~name:"bad" "<- //nonexistent -> X and X = \"a\"" with
  | exception Constr.Constraint_error _ -> ()
  | _ -> Alcotest.fail "unknown element must fail"

let test_check_full_consistent () =
  let repo = make_repo () in
  Alcotest.(check (list string)) "consistent" [] (Repository.check_full repo);
  Alcotest.(check (list string)) "datalog agrees" [] (Repository.check_full_datalog repo)

let test_check_full_detects_violation () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  (* Carl reviews a submission by his co-author Nora *)
  Repository.load_document repo
    {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S</title><auts><name>Nora</name></auts></sub></rev></track></review>|};
  Repository.add_constraint repo (Conf.conflict s);
  Alcotest.(check (list string)) "violated" [ "conflict" ] (Repository.check_full repo);
  Alcotest.(check (list string)) "datalog agrees" [ "conflict" ]
    (Repository.check_full_datalog repo)

let test_add_constraint_verify () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo
    {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S</title><auts><name>Carl</name></auts></sub></rev></track></review>|};
  (match Repository.add_constraint ~verify:true repo (Conf.conflict s) with
   | exception Repository.Repository_error _ -> ()
   | () -> Alcotest.fail "violated constraint must be rejected at registration");
  (* without verify it registers (the paper's framework assumes the user
     knows the state is consistent) *)
  Repository.add_constraint repo (Conf.conflict s)

let test_explain () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo
    {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S</title><auts><name>Carl</name></auts></sub></rev></track></review>|};
  Repository.add_constraint repo (Conf.conflict s);
  (* Carl reviewing himself violates both disjuncts: A = R, and the
     degenerate co-author case aut(Ip,Carl) ∧ aut(Ip,Carl). *)
  match Repository.explain repo with
  | [ w; _ ] ->
    checks "names the constraint" "conflict" w.Repository.witness_constraint;
    checkb "binds R to the reviewer" true
      (List.mem ("R", T.Str "Carl") w.Repository.bindings);
    checkb "locates the rev node" true
      (List.exists
         (fun (_, _, path) -> path = "/review/track[1]/rev[1]")
         w.Repository.nodes);
    checkb "printable" true (String.length (Repository.witness_to_string w) > 0)
  | ws -> Alcotest.fail (Printf.sprintf "expected two witnesses, got %d" (List.length ws))

let test_explain_consistent () =
  let repo = make_repo () in
  Alcotest.(check int) "no witnesses" 0 (List.length (Repository.explain repo))

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let test_pattern_atoms () =
  let p = Conf.submission_pattern (Lazy.force schema) in
  Alcotest.(check (list string)) "relational pattern"
    [ "sub(%i_sub, %p, %anchor, %t)"; "auts(%i_auts, 2, %i_sub, %n)" ]
    (List.map T.atom_str p.Pattern.atoms);
  Alcotest.(check (list string)) "fresh ids" [ "i_sub"; "i_auts" ] p.Pattern.fresh;
  Alcotest.(check (list string)) "data params" [ "t"; "n" ] p.Pattern.data_params

let test_pattern_match () =
  let repo = make_repo ~constraints:false () in
  let p = Conf.submission_pattern (Lazy.force schema) in
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"New"
      ~author:"Zoe"
  in
  match Pattern.match_modification (Lazy.force schema) (Repository.doc repo) p (List.hd u) with
  | Some valuation ->
    let find k = List.assoc k valuation in
    (match find "n" with
     | Pattern.Vstr s -> checks "author param" "Zoe" s
     | _ -> Alcotest.fail "n must be a string");
    (match find "t" with
     | Pattern.Vstr s -> checks "title param" "New" s
     | _ -> Alcotest.fail "t must be a string");
    (match find "anchor" with
     | Pattern.Vnode n ->
       checks "anchor is the rev" "rev"
         (Xic_xml.Doc.name (Repository.doc repo) n)
     | _ -> Alcotest.fail "anchor must be a node")
  | None -> Alcotest.fail "pattern must match"

let test_pattern_no_match_wrong_shape () =
  let repo = make_repo ~constraints:false () in
  let p = Conf.submission_pattern (Lazy.force schema) in
  (* two authors: different shape *)
  let u =
    [ { XU.op = XU.Insert_after;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]/sub[1]";
        content =
          [ XU.Elem ("sub", [],
               [ XU.Elem ("title", [], [ XU.Text "X" ]);
                 XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "A" ]) ]);
                 XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "B" ]) ]);
               ]) ];
      } ]
  in
  checkb "no match" true
    (Pattern.match_modification (Lazy.force schema) (Repository.doc repo) p (List.hd u) = None)

let test_pattern_no_match_wrong_anchor () =
  let repo = make_repo ~constraints:false () in
  let p = Conf.submission_pattern (Lazy.force schema) in
  let u =
    [ { (List.hd (Conf.insert_submission ~select:"//rev[1]" ~title:"X" ~author:"A")) with
        XU.select = Xic_xpath.Parser.parse "//rev[1]" } ]
  in
  checkb "anchor type mismatch" true
    (Pattern.match_modification (Lazy.force schema) (Repository.doc repo) p (List.hd u) = None)

let test_pattern_deletion_non_leaf_rejected () =
  (* sub has predicate children (auts): not a relational leaf *)
  match
    Pattern.make (Lazy.force schema) ~name:"del" ~op:XU.Remove ~anchor_type:"sub"
      ~content:[]
  with
  | exception Pattern.Pattern_error _ -> ()
  | _ -> Alcotest.fail "non-leaf deletion patterns are unsupported"

let test_pattern_deletion_leaf () =
  (* auts is a relational leaf (name is embedded) *)
  let p =
    Pattern.make (Lazy.force schema) ~name:"del_auts" ~op:XU.Remove
      ~anchor_type:"auts" ~content:[]
  in
  Alcotest.(check (list string)) "deletion pattern"
    [ "auts(%target, %p, %anchor, %c_name)" ]
    (List.map T.atom_str p.Pattern.del_atoms);
  Alcotest.(check (list string)) "no insertions" []
    (List.map T.atom_str p.Pattern.atoms)

let test_multi_fragment_pattern () =
  (* a pattern inserting two submissions at once: two anchored position
     parameters, each fragment's own fresh ids *)
  let s = Lazy.force schema in
  let sub_content title_p name_p =
    XU.Elem ("sub", [],
       [ XU.Elem ("title", [], [ XU.Text title_p ]);
         XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text name_p ]) ]) ])
  in
  let p =
    Pattern.make s ~name:"double_insert" ~op:XU.Insert_after ~anchor_type:"sub"
      ~content:[ sub_content "%t1" "%n1"; sub_content "%t2" "%n2" ]
  in
  Alcotest.(check (list string)) "four atoms"
    [ "sub(%i_sub, %p, %anchor, %t1)"; "auts(%i_auts, 2, %i_sub, %n1)";
      "sub(%i_sub2, %p2, %anchor, %t2)"; "auts(%i_auts2, 2, %i_sub2, %n2)" ]
    (List.map T.atom_str p.Pattern.atoms);
  (* end to end: a double insert where the second author conflicts *)
  let repo = make_repo () in
  Repository.register_pattern repo p;
  let u author2 =
    [ { XU.op = XU.Insert_after;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]/sub[1]";
        content = [ sub_content "First" "Fresh One"; sub_content "Second" author2 ];
      } ]
  in
  (match Repository.guarded_update repo (u "Carl") with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "conflicting second fragment must be rejected");
  (match Repository.guarded_update repo (u "Fresh Two") with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "clean double insert must be applied");
  Alcotest.(check (list string)) "still consistent" [] (Repository.check_full repo)

let test_recursive_dtd_constraints () =
  (* recursive content models: sections nest arbitrarily *)
  let s =
    Schema.create
      [ ( {|<!ELEMENT book (section)+>
            <!ELEMENT section (title, section*)>
            <!ELEMENT title (#PCDATA)>|},
          "book" ) ]
  in
  let c =
    Constr.make s ~name:"unique_titles"
      "<- //section[title/text() -> X] -> S1 and //section[title/text() -> X] -> S2 and S1 != S2"
  in
  let repo = Repository.create s in
  Repository.load_document repo
    {|<book><section><title>A</title><section><title>B</title></section></section></book>|};
  Repository.add_constraint repo c;
  Alcotest.(check (list string)) "nested sections consistent" []
    (Repository.check_full repo);
  Alcotest.(check (list string)) "datalog agrees" []
    (Repository.check_full_datalog repo);
  (* duplicate a nested title *)
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "//section[title/text() = \"B\"]";
        content =
          [ XU.Elem ("section", [], [ XU.Elem ("title", [], [ XU.Text "A" ]) ]) ];
      } ]
  in
  match Repository.guarded_update repo u with
  | Repository.Rolled_back "unique_titles" -> ()
  | _ -> Alcotest.fail "duplicate nested title must be caught by the full check"

(* ------------------------------------------------------------------ *)
(* Bundles                                                             *)
(* ------------------------------------------------------------------ *)

let test_bundle_roundtrip () =
  let s = Lazy.force schema in
  let repo = make_repo () in
  Repository.register_pattern repo (Conf.submission_pattern s);
  let text = Bundle.save repo in
  let repo2 = Bundle.load s text in
  Alcotest.(check (list string)) "constraints preserved"
    (List.map (fun (c : Constr.t) -> c.Constr.name) (Repository.constraints repo))
    (List.map (fun (c : Constr.t) -> c.Constr.name) (Repository.constraints repo2));
  Alcotest.(check (list string)) "patterns preserved"
    (List.map (fun p -> p.Pattern.name) (Repository.patterns repo))
    (List.map (fun p -> p.Pattern.name) (Repository.patterns repo2));
  (* the reloaded repository guards updates identically *)
  Repository.load_document repo2 pub_doc;
  Repository.load_document repo2 rev_doc;
  (match
     Repository.guarded_update repo2
       (Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
          ~title:"Bad" ~author:"Carl")
   with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "reloaded repo must reject early");
  (* and saving again yields a loadable, semantically identical bundle
     (fresh-variable numbering differs, the internal variant check in
     [load] verifies equivalence) *)
  let repo3 = Bundle.load s (Bundle.save repo2) in
  Alcotest.(check int) "third generation intact" 3
    (List.length (Repository.constraints repo3))

let test_bundle_stale_detection () =
  let s = Lazy.force schema in
  let repo = make_repo () in
  Repository.register_pattern repo (Conf.submission_pattern s);
  let text = Bundle.save repo in
  (* corrupt a stored check: claim the workload bound is different *)
  let replace ~needle ~by s =
    let b = Buffer.create (String.length s) in
    let n = String.length needle in
    let i = ref 0 in
    while !i < String.length s do
      if !i + n <= String.length s && String.sub s !i n = needle then begin
        Buffer.add_string b by;
        i := !i + n
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let stale = replace ~needle:"> 9" ~by:"> 7" text in
  if stale = text then Alcotest.fail "fixture did not change";
  match Bundle.load s stale with
  | exception Bundle.Bundle_error _ -> ()
  | _ -> Alcotest.fail "stale bundle must be rejected"

let test_bundle_bad_header () =
  match Bundle.load (Lazy.force schema) "something else" with
  | exception Bundle.Bundle_error _ -> ()
  | _ -> Alcotest.fail "bad header must be rejected"

(* ------------------------------------------------------------------ *)
(* Templates                                                           *)
(* ------------------------------------------------------------------ *)

let cat_schema =
  lazy
    (Schema.create
       [ ( {|<!ELEMENT catalog (journal*, article*)>
             <!ELEMENT journal (issn, title)>
             <!ELEMENT issn (#PCDATA)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT article (title, in)>
             <!ELEMENT in (#PCDATA)>|},
           "catalog" ) ])

let cat_repo docsrc constraints =
  let s = Lazy.force cat_schema in
  let repo = Repository.create s in
  Repository.load_document repo docsrc;
  List.iter (Repository.add_constraint repo) (constraints s);
  repo

let test_template_key () =
  let repo =
    cat_repo
      {|<catalog><journal><issn>1</issn><title>A</title></journal>
                 <journal><issn>1</issn><title>B</title></journal></catalog>|}
      (fun s -> [ Templates.key s ~elem:"journal" ~field:(Templates.Child "issn") () ])
  in
  Alcotest.(check (list string)) "key violated" [ "key_journal_issn" ]
    (Repository.check_full repo)

let test_template_foreign_key () =
  let ok =
    cat_repo
      {|<catalog><journal><issn>1</issn><title>A</title></journal>
                 <article><title>X</title><in>1</in></article></catalog>|}
      (fun s ->
        [ Templates.foreign_key s
            ~from:("article", Templates.Child "in")
            ~into:("journal", Templates.Child "issn") () ])
  in
  Alcotest.(check (list string)) "fk holds" [] (Repository.check_full ok);
  let bad =
    cat_repo
      {|<catalog><article><title>X</title><in>9</in></article></catalog>|}
      (fun s ->
        [ Templates.foreign_key s
            ~from:("article", Templates.Child "in")
            ~into:("journal", Templates.Child "issn") () ])
  in
  checkb "fk broken" true (Repository.check_full bad <> [])

let test_template_cardinality () =
  let repo =
    cat_repo
      {|<catalog><journal><issn>1</issn><title>A</title></journal></catalog>|}
      (fun s ->
        [ Templates.max_children s ~parent:"catalog" ~child:"journal" 1;
          Templates.min_children s ~parent:"catalog" ~child:"journal" 1 ])
  in
  Alcotest.(check (list string)) "both hold" [] (Repository.check_full repo)

let test_template_forbidden_value () =
  let repo =
    cat_repo
      {|<catalog><journal><issn>0000-0000</issn><title>A</title></journal></catalog>|}
      (fun s ->
        [ Templates.forbidden_value s ~elem:"journal"
            ~field:(Templates.Child "issn") "0000-0000" ])
  in
  checkb "forbidden value found" true (Repository.check_full repo <> [])

let test_template_distinct_siblings () =
  (* same value under different parents is fine; under one parent it is
     not *)
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo
    {|<review><track><name>DB</name>
        <rev><name>R1</name><sub><title>S</title><auts><name>Ann</name></auts></sub></rev>
        <rev><name>R1</name><sub><title>S</title><auts><name>Ann</name></auts></sub></rev>
      </track></review>|};
  let c =
    Templates.distinct_siblings s ~parent:"track" ~child:"rev"
      ~field:(Templates.Child "name") ()
  in
  Repository.add_constraint repo c;
  checkb "duplicate reviewer in one track" true (Repository.check_full repo <> []);
  checkb "datalog agrees" true (Repository.check_full_datalog repo <> [])

let test_template_simplifies () =
  (* templates go through the same simplification pipeline *)
  let s = Lazy.force cat_schema in
  let repo = Repository.create s in
  Repository.load_document repo
    {|<catalog><journal><issn>1</issn><title>A</title></journal></catalog>|};
  Repository.add_constraint repo
    (Templates.key s ~elem:"journal" ~field:(Templates.Child "issn") ());
  let pat =
    Pattern.make s ~name:"add_journal" ~op:XU.Append ~anchor_type:"catalog"
      ~content:
        [ XU.Elem ("journal", [],
             [ XU.Elem ("issn", [], [ XU.Text "%i" ]);
               XU.Elem ("title", [], [ XU.Text "%t" ]) ]) ]
  in
  Repository.register_pattern repo pat;
  match Repository.optimized_checks repo pat with
  | [ { Repository.simplified = [ d ]; _ } ] ->
    checkb "single-atom residual check" true
      (List.length d.T.body = 1)
  | _ -> Alcotest.fail "expected one simplified denial"

(* ------------------------------------------------------------------ *)
(* Guarded updates                                                     *)
(* ------------------------------------------------------------------ *)

let guarded_repo () =
  let repo = make_repo () in
  Repository.register_pattern repo (Conf.submission_pattern (Lazy.force schema));
  repo

let test_guarded_legal () =
  let repo = guarded_repo () in
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"Ok"
      ~author:"Zoe"
  in
  (match Repository.guarded_update repo u with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "legal update must be applied via the optimized path");
  Alcotest.(check (list string)) "still consistent" [] (Repository.check_full repo);
  checki "sub inserted" 3
    (List.length
       (Xic_xpath.Eval.select (Repository.doc repo) (Xic_xpath.Parser.parse "//sub")))

let test_guarded_self_review () =
  let repo = guarded_repo () in
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"Bad"
      ~author:"Carl"
  in
  (match Repository.guarded_update repo u with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "self-review must be rejected early");
  checki "nothing inserted" 2
    (List.length
       (Xic_xpath.Eval.select (Repository.doc repo) (Xic_xpath.Parser.parse "//sub")))

let test_guarded_coauthor () =
  let repo = guarded_repo () in
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"Bad"
      ~author:"Nora"
  in
  match Repository.guarded_update repo u with
  | Repository.Rejected_early "conflict" -> ()
  | _ -> Alcotest.fail "co-author submission must be rejected early"

let test_guarded_track_load () =
  let repo = guarded_repo () in
  (* four legal inserts fill reviewer Rita to the limit, the fifth breaks
     Example 7's bound of 4 per track *)
  let insert i =
    Conf.insert_submission ~select:"/review/track[1]/rev[2]/sub[1]"
      ~title:(Printf.sprintf "P%d" i) ~author:(Printf.sprintf "Author%d" i)
  in
  for i = 1 to 3 do
    match Repository.guarded_update repo (insert i) with
    | Repository.Applied _ -> ()
    | _ -> Alcotest.fail "filling insert must be applied"
  done;
  match Repository.guarded_update repo (insert 4) with
  | Repository.Rejected_early "track_load" -> ()
  | Repository.Applied _ -> Alcotest.fail "fifth submission must be rejected"
  | _ -> Alcotest.fail "unexpected outcome"

let test_guarded_fallback_full_check () =
  (* an update that matches no pattern is applied, checked, and kept *)
  let repo = guarded_repo () in
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]";
        content =
          [ XU.Elem ("sub", [],
               [ XU.Elem ("title", [], [ XU.Text "App" ]);
                 XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "Zed" ]) ]) ]) ];
      } ]
  in
  match Repository.guarded_update repo u with
  | Repository.Applied (`Full_check | `Runtime_simplified) -> ()
  | _ -> Alcotest.fail "unmatched legal update must be applied via full check"

let test_guarded_fallback_rollback () =
  let repo = guarded_repo () in
  let before = Xic_xml.Xml_printer.to_string (Repository.doc repo) in
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]";
        content =
          [ XU.Elem ("sub", [],
               [ XU.Elem ("title", [], [ XU.Text "Bad" ]);
                 XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "Carl" ]) ]) ]) ];
      } ]
  in
  (match Repository.guarded_update repo u with
   | Repository.Rolled_back "conflict" -> ()
   | _ -> Alcotest.fail "unmatched illegal update must be rolled back");
  checks "state restored" before (Xic_xml.Xml_printer.to_string (Repository.doc repo))

let test_optimized_equals_full_decision () =
  (* the optimized pre-check must agree with apply + full check + undo *)
  let repo = guarded_repo () in
  let p = List.hd (Repository.patterns repo) in
  List.iter
    (fun (author, _expect) ->
      let u =
        Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"T"
          ~author
      in
      match Repository.match_update repo u with
      | None -> Alcotest.fail "update must match the pattern"
      | Some (_, valuation) ->
        let optimized = Repository.check_optimized repo p valuation <> [] in
        let optimized_dl = Repository.check_optimized_datalog repo p valuation <> [] in
        let undo = Repository.apply_unchecked repo u in
        let full = Repository.check_full repo <> [] in
        Repository.rollback repo undo;
        Alcotest.(check bool) (author ^ ": optimized = full") full optimized;
        Alcotest.(check bool) (author ^ ": datalog agrees") full optimized_dl)
    [ ("Zoe", false); ("Carl", true); ("Nora", true); ("Rita", true); ("Ann", false) ]

let test_store_mirror_consistency () =
  let repo = guarded_repo () in
  let s1 = Xic_datalog.Store.freeze (Repository.store repo) in
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"T"
      ~author:"Zoe"
  in
  ignore (Repository.guarded_update repo u);
  let s2 = Repository.store repo in
  checkb "store updated" false (Xic_datalog.Store.equal s1 s2);
  checki "one more sub" 1
    (Xic_datalog.Store.cardinality s2 "sub" - Xic_datalog.Store.cardinality s1 "sub");
  (* the incrementally maintained mirror equals a full re-shred *)
  checkb "incremental = full re-shred" true
    (Xic_datalog.Store.equal s2
       (Xic_relmap.Shred.shred
          (Schema.mapping (Repository.schema repo))
          (Repository.doc repo)));
  (* and apply + rollback restores the mirror exactly *)
  let undo = Repository.apply_unchecked repo u in
  Repository.rollback repo undo;
  checkb "rollback restores mirror" true
    (Xic_datalog.Store.equal (Repository.store repo) s2)

let test_rollback_mirror_agreement () =
  (* after a compensated (rolled back) update, the incrementally
     maintained relational mirror must agree with the XQuery full check *)
  let repo = guarded_repo () in
  let before = Xic_datalog.Store.freeze (Repository.store repo) in
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[1]";
        content =
          [ XU.Elem ("sub", [],
               [ XU.Elem ("title", [], [ XU.Text "Bad" ]);
                 XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "Carl" ]) ]) ]) ];
      } ]
  in
  (match Repository.guarded_update repo u with
   | Repository.Rolled_back "conflict" -> ()
   | _ -> Alcotest.fail "violating update must be rolled back");
  Alcotest.(check (list string)) "full check clean" [] (Repository.check_full repo);
  Alcotest.(check (list string)) "datalog agrees after rollback" []
    (Repository.check_full_datalog repo);
  checkb "mirror equals the pre-update store" true
    (Xic_datalog.Store.equal before (Repository.store repo));
  checkb "mirror equals a full re-shred" true
    (Xic_datalog.Store.equal (Repository.store repo)
       (Xic_relmap.Shred.shred
          (Schema.mapping (Repository.schema repo))
          (Repository.doc repo)))

let test_guarded_deletion () =
  (* deletion patterns: removing an auts can orphan a submission *)
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo
    {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts><auts><name>Bob</name></auts></sub></rev></track></review>|};
  (* every submission keeps at least one author *)
  let keep_author =
    Constr.make s ~name:"keep_author" "<- //sub -> S and cnt{; S/auts} < 1"
  in
  Repository.add_constraint repo keep_author;
  let p = Pattern.make s ~name:"drop_author" ~op:XU.Remove ~anchor_type:"auts" ~content:[] in
  Repository.register_pattern repo p;
  (* upper-bound constraints can never be violated by this removal *)
  let simplified_names =
    List.map (fun (c : Repository.optimized_check) -> (c.constraint_name, c.simplified))
      (Repository.optimized_checks repo p)
  in
  (match List.assoc "keep_author" simplified_names with
   | [] -> Alcotest.fail "keep_author must have a residual check"
   | _ -> ());
  let remove_first_auts () =
    [ { XU.op = XU.Remove; select = Xic_xpath.Parser.parse "//sub[1]/auts[1]"; content = [] } ]
  in
  (match Repository.guarded_update repo (remove_first_auts ()) with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "first removal must be applied via the optimized path");
  (match Repository.guarded_update repo (remove_first_auts ()) with
   | Repository.Rejected_early "keep_author" -> ()
   | _ -> Alcotest.fail "removing the last author must be rejected early");
  checki "one author left" 1
    (List.length
       (Xic_xpath.Eval.select (Repository.doc repo) (Xic_xpath.Parser.parse "//auts")))

let test_pin_retention () =
  let repo = make_repo () in
  (* pins of the same clean generation share one frozen handle *)
  let p0 = Repository.pin repo in
  let p0' = Repository.pin repo in
  checkb "same generation, same handle" true
    (Repository.pin_store p0 == Repository.pin_store p0');
  checkb "handle is frozen" true
    (Xic_datalog.Store.is_frozen (Repository.pin_store p0));
  (match Repository.retained_generations repo with
   | [ (0, 2) ] -> ()
   | rs ->
     Alcotest.failf "expected [(0, 2)], got [%s]"
       (String.concat "; "
          (List.map (fun (g, r) -> Printf.sprintf "(%d, %d)" g r) rs)));
  (* a pristine suffix-sharing pin retains no heap beyond the writer *)
  checki "pristine pin retains nothing" 0 (Repository.retained_bytes repo);
  (* an uncommitted mutation must NOT be served from the stale handle *)
  let u =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
      ~title:"Mid" ~author:"Zoe"
  in
  let undo = Repository.apply_unchecked repo u in
  let pm = Repository.pin repo in
  checkb "mutated state gets a fresh handle" true
    (Repository.pin_store pm != Repository.pin_store p0);
  Repository.rollback repo undo;
  Repository.unpin repo pm;
  Repository.unpin repo p0;
  Repository.unpin repo p0';
  (* released generations stay addressable as bounded history *)
  (match Repository.pin_as_of repo 0 with
   | Some p ->
     checksl "time-travel verdict" [] (Repository.check_pinned repo p);
     Repository.unpin repo p
   | None -> Alcotest.fail "generation 0 must remain retained");
  checkb "check_as_of agrees" true (Repository.check_as_of repo 0 = Some []);
  checkb "unknown generation refused" true
    (Repository.check_as_of repo 99 = None)

let test_runtime_simplification () =
  (* no pattern registered: the runtime-simplification fallback derives a
     one-off pattern, still rejecting before execution *)
  let repo = make_repo () in
  let illegal =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"Bad"
      ~author:"Carl"
  in
  (match Repository.guarded_update ~fallback:`Runtime_simplification repo illegal with
   | Repository.Rejected_early "conflict" -> ()
   | Repository.Rolled_back _ -> Alcotest.fail "must be rejected BEFORE execution"
   | _ -> Alcotest.fail "unexpected outcome");
  checki "nothing inserted" 2
    (List.length
       (Xic_xpath.Eval.select (Repository.doc repo) (Xic_xpath.Parser.parse "//sub")));
  let legal =
    Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title:"Ok"
      ~author:"Zoe"
  in
  (match Repository.guarded_update ~fallback:`Runtime_simplification repo legal with
   | Repository.Applied `Runtime_simplified -> ()
   | _ -> Alcotest.fail "legal update must pass the runtime-simplified check");
  Alcotest.(check (list string)) "still consistent" [] (Repository.check_full repo)

let test_runtime_simplification_falls_back () =
  (* content outside the simplifiable fragment (removal of a non-leaf)
     silently reverts to the full check *)
  let repo = make_repo () in
  let u =
    [ { XU.op = XU.Remove;
        select = Xic_xpath.Parser.parse "/review/track[1]/rev[2]/sub[1]";
        content = [];
      } ]
  in
  match Repository.guarded_update ~fallback:`Runtime_simplification repo u with
  | Repository.Applied `Full_check -> ()
  | _ -> Alcotest.fail "non-simplifiable update must use the full check"

let test_duplicate_names_rejected () =
  let repo = make_repo () in
  (match Repository.add_constraint repo (Conf.conflict (Lazy.force schema)) with
   | exception Repository.Repository_error _ -> ()
   | _ -> Alcotest.fail "duplicate constraint must be rejected");
  Repository.register_pattern repo (Conf.submission_pattern (Lazy.force schema));
  match Repository.register_pattern repo (Conf.submission_pattern (Lazy.force schema)) with
  | exception Repository.Repository_error _ -> ()
  | _ -> Alcotest.fail "duplicate pattern must be rejected"

let () =
  Alcotest.run "core"
    [
      ( "schema",
        [
          Alcotest.test_case "rendering" `Quick test_schema_rendering;
          Alcotest.test_case "bad DTD" `Quick test_schema_bad_dtd;
          Alcotest.test_case "load validates" `Quick test_load_validates;
          Alcotest.test_case "from DOCTYPE" `Quick test_schema_from_doctype;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "compiles" `Quick test_constraint_compiles;
          Alcotest.test_case "bad source" `Quick test_constraint_bad_source;
          Alcotest.test_case "full check consistent" `Quick test_check_full_consistent;
          Alcotest.test_case "full check violation" `Quick test_check_full_detects_violation;
          Alcotest.test_case "verify at registration" `Quick test_add_constraint_verify;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "explain consistent" `Quick test_explain_consistent;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "relational atoms" `Quick test_pattern_atoms;
          Alcotest.test_case "matching" `Quick test_pattern_match;
          Alcotest.test_case "shape mismatch" `Quick test_pattern_no_match_wrong_shape;
          Alcotest.test_case "anchor mismatch" `Quick test_pattern_no_match_wrong_anchor;
          Alcotest.test_case "non-leaf deletion rejected" `Quick
            test_pattern_deletion_non_leaf_rejected;
          Alcotest.test_case "leaf deletion pattern" `Quick test_pattern_deletion_leaf;
          Alcotest.test_case "multi-fragment pattern" `Quick test_multi_fragment_pattern;
          Alcotest.test_case "recursive DTD" `Quick test_recursive_dtd_constraints;
        ] );
      ( "bundles",
        [
          Alcotest.test_case "roundtrip" `Quick test_bundle_roundtrip;
          Alcotest.test_case "stale detection" `Quick test_bundle_stale_detection;
          Alcotest.test_case "bad header" `Quick test_bundle_bad_header;
        ] );
      ( "templates",
        [
          Alcotest.test_case "key" `Quick test_template_key;
          Alcotest.test_case "foreign key" `Quick test_template_foreign_key;
          Alcotest.test_case "cardinality" `Quick test_template_cardinality;
          Alcotest.test_case "forbidden value" `Quick test_template_forbidden_value;
          Alcotest.test_case "distinct siblings" `Quick test_template_distinct_siblings;
          Alcotest.test_case "simplifies" `Quick test_template_simplifies;
        ] );
      ( "guarded updates",
        [
          Alcotest.test_case "legal" `Quick test_guarded_legal;
          Alcotest.test_case "self-review" `Quick test_guarded_self_review;
          Alcotest.test_case "co-author" `Quick test_guarded_coauthor;
          Alcotest.test_case "track load limit" `Quick test_guarded_track_load;
          Alcotest.test_case "fallback full check" `Quick test_guarded_fallback_full_check;
          Alcotest.test_case "fallback rollback" `Quick test_guarded_fallback_rollback;
          Alcotest.test_case "optimized = full decision" `Quick test_optimized_equals_full_decision;
          Alcotest.test_case "pin retention" `Quick test_pin_retention;
          Alcotest.test_case "store mirror" `Quick test_store_mirror_consistency;
          Alcotest.test_case "rollback mirror agreement" `Quick
            test_rollback_mirror_agreement;
          Alcotest.test_case "guarded deletion" `Quick test_guarded_deletion;
          Alcotest.test_case "runtime simplification" `Quick test_runtime_simplification;
          Alcotest.test_case "runtime simp fallback" `Quick
            test_runtime_simplification_falls_back;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_names_rejected;
        ] );
    ]
