Server observability: trace propagation from client to server spans
and log lines, structured JSON logs, Prometheus metrics exposition,
the slow-request ring, and the live `top` summary.

  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track*)>
  > <!ELEMENT track (name, rev*)>
  > <!ELEMENT rev (name, sub*)>
  > <!ELEMENT sub (title, auts)>
  > <!ELEMENT auts (name+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT title (#PCDATA)>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> R
  > XEOF

Serve with JSON logs at debug level, a Chrome trace, and a small
slow-request ring:

  $ xicheck serve --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --socket srv.sock --log serve.jsonl --log-level debug --log-format json --trace trace.json --slow-requests 4 > serve.log 2>&1 &
  $ for i in $(seq 1 150); do test -S srv.sock && break; sleep 0.1; done

A client-supplied trace id rides the request frame, is echoed in the
response, and tags the server-side span and log lines:

  $ xicheck client ping --socket srv.sock --trace-id t-cram01
  pong
  $ xicheck client check --socket srv.sock --trace-id t-cram01
  consistent (generation 0, live)

The metrics op returns Prometheus text exposition — counters, the
serve gauges, and per-op latency summaries in seconds:

  $ xicheck client metrics --socket srv.sock > metrics.prom
  $ grep -c '^# TYPE xic_serve_open_txns gauge$' metrics.prom
  1
  $ grep '^xic_serve_pinned_generations ' metrics.prom
  xic_serve_pinned_generations 0
  $ grep '^xic_serve_store_facts ' metrics.prom
  xic_serve_store_facts 7
  $ grep -c 'xic_serve_check_seconds{quantile="0.99"}' metrics.prom
  1
  $ grep -c '^xic_serve_check_seconds_count ' metrics.prom
  1

Every exposition line is either a TYPE comment or `name value`:

  $ grep -vE '^# TYPE [a-z_]+ (counter|gauge|summary)$' metrics.prom | grep -vcE '^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.eE+-]*$' || true
  0

The stats response carries per-op latency quantiles:

  $ xicheck client stats --socket srv.sock | grep -c '"p99_ms"'
  1

The slow op returns the worst requests with their full span trees;
the check entry carries its trace id and the route the check took:

  $ xicheck client slow --socket srv.sock > slow.json
  $ grep -c '"capacity":4' slow.json
  1
  $ grep -c '"name":"serve:check".*"trace_id":"t-cram01".*"route":"incremental"' slow.json
  1

The live summary renders gauges, per-op quantiles, and the slow ring
in one screen (numeric latencies masked):

  $ xicheck top --socket srv.sock --iterations 1 --no-clear | grep -v '^xicheck top' | grep -v '^uptime' | grep -vE '^ +[0-9.]+ms' | grep -v '^$' | sed -E 's/ +[0-9]+( +[0-9.]+){3}$/ N/'
  pins 0  open_txn false  incremental true
  xic_serve_connections 1
  xic_serve_journal_bytes_since_checkpoint 0
  xic_serve_open_txns 0
  xic_serve_pin_bytes 0
  xic_serve_pinned_generations 0
  xic_serve_retained_generations 0
  xic_serve_store_facts 7
  op                  count    p50_ms    p90_ms    p99_ms
  check N
  metrics N
  ping N
  slow N
  stats N
  slowest requests:

  $ xicheck client shutdown --socket srv.sock
  server stopping
  $ wait
  $ sed 's/pid [0-9]*/pid NNN/' serve.log
  serving on srv.sock (pid NNN)
  wrote trace trace.json
  served 9 request(s); shutdown complete

Structured log lines are JSON, stamped with level and source; the
lines for traced requests carry the client's trace id:

  $ grep -c '"level":"info".*"src":"xic.server"' serve.jsonl
  2
  $ grep '"trace":"t-cram01"' serve.jsonl | grep -c 'span='
  2

The Chrome trace export contains the correlated request spans:

  $ grep -o '"name":"serve:check"' trace.json | wc -l
  1
  $ grep -o '"trace_id":"t-cram01"' trace.json | wc -l
  2

A reply that is not a length-prefixed frame produces a clear client
error naming the 16 MiB cap and the offending length:

  $ python3 - > fake.log 2>&1 <<'EOF' &
  > import socket
  > s = socket.socket(socket.AF_UNIX)
  > s.bind("bogus.sock")
  > s.listen(1)
  > c, _ = s.accept()
  > c.recv(65536)
  > c.sendall(b"JUNKDATA")
  > c.close()
  > EOF
  $ for i in $(seq 1 50); do test -S bogus.sock && break; sleep 0.1; done
  $ xicheck client ping --socket bogus.sock
  xicheck: frame length 1247104587 exceeds the 16777216-byte (16 MiB) frame cap
  [1]
  $ wait
