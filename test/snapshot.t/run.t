Snapshot checkpointing end to end: cold start from a binary snapshot,
journal folding, crash-injected saves, and the recovery error taxonomy.

  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track*)>
  > <!ELEMENT track (name, rev*)>
  > <!ELEMENT rev (name, sub*)>
  > <!ELEMENT sub (title, auts)>
  > <!ELEMENT auts (name+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT title (#PCDATA)>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> R
  > XEOF
  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ cat > good.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF

Checkpoint the parsed documents into a binary snapshot, then check
directly from it — no XML parsing on the hot path:

  $ xicheck checkpoint --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --snapshot state.xis
  checkpointed 13 node(s), 7 fact(s) to state.xis (334 bytes)
  $ xicheck check --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl
  consistent

--snapshot and --doc are two sources for the same state, never both:

  $ xicheck check --dtd rev.dtd=review --snapshot state.xis --doc rev.xml --constraints constraints.xpl
  xicheck: --snapshot and --doc are mutually exclusive
  [1]

Guarded updates run against the snapshot and journal their intents;
checkpointing again folds the journal suffix in and truncates it:

  $ xicheck guard --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal wal.j
  applied (validated by the optimized pre-check)
  $ xicheck checkpoint --dtd rev.dtd=review --constraints constraints.xpl --snapshot state.xis --journal wal.j
  checkpointed 19 node(s), 10 fact(s) to state.xis (502 bytes)
  journal reset after folding 2 entries
  $ xicheck recover --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl --journal wal.j --output rec
  replayed 0 transaction(s), 0 statement(s); discarded 0
  wrote rec.0.xml
  $ grep -c Fresh rec.0.xml
  1

A crash during the snapshot write (torn temp file, injected via
XIC_FAILPOINT) leaves the previous snapshot untouched:

  $ xicheck guard --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal wal.j
  applied (validated by the optimized pre-check)
  $ XIC_FAILPOINT=snapshot_write=torn:0.5 xicheck checkpoint --dtd rev.dtd=review --constraints constraints.xpl --snapshot state.xis --journal wal.j
  [42]
  $ xicheck check --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl
  consistent

And the journal survived un-truncated, so recovery still replays the
committed suffix on top of the old snapshot:

  $ xicheck recover --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl --journal wal.j --output rec2
  replayed 1 transaction(s), 1 statement(s); discarded 0
  wrote rec2.0.xml
  $ grep -c Fresh rec2.0.xml
  2

A crash between the snapshot rename and the journal truncation is also
safe: the journal's generation tells recovery the snapshot already
contains its prefix (replayed 0, not doubled):

  $ XIC_FAILPOINT=checkpoint_truncate xicheck checkpoint --dtd rev.dtd=review --constraints constraints.xpl --snapshot state.xis --journal wal.j
  [42]
  $ xicheck recover --dtd rev.dtd=review --snapshot state.xis --constraints constraints.xpl --journal wal.j
  replayed 0 transaction(s), 0 statement(s); discarded 0

The recovery error taxonomy, by exit code.  A missing journal is exit 3:

  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal no-such.j
  xicheck: journal no-such.j not found
  [3]

A torn tail (crash mid-append) is expected and recovers the committed
prefix, exit 0:

  $ XIC_FAILPOINT=mid_write xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal torn.j
  [42]
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal torn.j
  discarded a torn record at the end of the journal
  replayed 0 transaction(s), 0 statement(s); discarded 0

Mid-file corruption (a full-length record failing its checksum — bit
rot, not a crash) replays the valid prefix but exits 4:

  $ xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal rot.j
  applied (validated by the optimized pre-check)
  $ size=$(wc -c < rot.j)
  $ printf '\377' | dd of=rot.j bs=1 seek=$((size - 18)) count=1 conv=notrunc status=none
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal rot.j
  checksum mismatch inside the journal: discarded 28 byte(s) from the first corrupt record onward
  replayed 0 transaction(s), 0 statement(s); discarded 1
  [4]
