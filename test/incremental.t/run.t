Incremental (delta-driven) checking from the command line:
--incremental routes verdicts through the materialized denial views,
--delta-stats reports the maintenance counters, and verdicts always
match the default full re-evaluation.

  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track*)>
  > <!ELEMENT track (name, rev*)>
  > <!ELEMENT rev (name, sub*)>
  > <!ELEMENT sub (title, auts)>
  > <!ELEMENT auts (name+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT title (#PCDATA)>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > bad.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Ann</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> R
  > XEOF

A consistent collection: the incremental verdict equals the default
path, and the stats line shows the materialized views.

  $ xicheck check --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl
  consistent
  $ xicheck check --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --incremental --delta-stats
  consistent
  delta: 0 flushes, +0/-0 facts; views: 1 denials, 0 rows, evals=0 reverifies=0 recomputes=1 skipped=0

A violated collection: same verdict and exit code either way.

  $ xicheck check --dtd rev.dtd=review --doc bad.xml --constraints constraints.xpl
  VIOLATED: conflict
  [1]
  $ xicheck check --dtd rev.dtd=review --doc bad.xml --constraints constraints.xpl --incremental
  VIOLATED: conflict
  [1]

The two flags are mutually exclusive.

  $ xicheck check --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --incremental --no-incremental
  xicheck: --incremental and --no-incremental are mutually exclusive
  [1]

A journaled transaction with incremental checking on: the fallback
verdict after each statement is answered from the maintained views,
and --delta-stats shows the flushed deltas.

  $ cat > ins.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck txn --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --update ins.xml --journal wal.j --incremental --delta-stats
  statement 1 (ins.xml): applied (validated by the full check)
  transaction committed (1 statements)
  delta: 1 flushes, +3/-0 facts; views: 1 denials, 0 rows, evals=0 reverifies=0 recomputes=1 skipped=0

Recovery replays the journal with the views maintained delta by delta.

  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal wal.j --incremental --delta-stats
  replayed 1 transaction(s), 1 statement(s); discarded 0
  delta: 1 flushes, +3/-0 facts; views: 1 denials, 0 rows, evals=0 reverifies=0 recomputes=1 skipped=0
