(* Differential test oracle (index layer): randomized conference-style
   documents, denials from the paper's constraint class, and random
   XUpdate sequences.  Eight evaluation routes must agree on every
   check — the indexed planner, the scan interpreter, the Datalog
   evaluation of the shredded relational mapping, the cached compiled
   plans, the parallel checker at [-j 2..4], the fully traced checker
   (spans + detailed metrics on), the fused single-pass loader
   (parse+intern+shred in one sweep, compared against the legacy
   parse-then-shred pipeline relation by relation), and the incremental
   delta-maintained checker (materialized denial views vs from-scratch
   recompute, [Store.equal] on the views) — and the incrementally
   maintained indexes must equal indexes rebuilt from scratch after
   every apply / undo / savepoint-rollback / crash-recovery sequence.

   Iteration count comes from [XIC_ORACLE_ITERS] (small by default so
   [dune runtest] stays fast); [dune build @oracle] runs 500.  The PRNG
   is seeded per iteration and every failure message carries the seed,
   so failures reproduce deterministically. *)

open Xic_core
module Conf = Xic_workload.Conference
module Prng = Xic_workload.Prng
module XU = Xic_xupdate.Xupdate
module XP = Xic_xpath
module J = Xic_journal.Journal
module Index = Xic_xml.Index
module Obs = Xic_obs.Obs

let checkb = Alcotest.(check bool)

let iters =
  match Sys.getenv_opt "XIC_ORACLE_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 30)
  | None -> 30

(* ------------------------------------------------------------------ *)
(* Random documents (valid against the pub/rev DTDs)                   *)
(* ------------------------------------------------------------------ *)

let names = [| "Ann"; "Bob"; "Carl"; "Dora"; "Ed"; "Fay"; "Gus"; "Hal"; "Ina" |]
let words = [| "Logic"; "Types"; "Query"; "Index"; "Proofs"; "Graphs"; "Views" |]

let buf_elt b tag s = Buffer.add_string b (Printf.sprintf "<%s>%s</%s>" tag s tag)

let gen_pub r =
  let b = Buffer.create 256 in
  Buffer.add_string b "<dblp>";
  for _ = 1 to Prng.int r 5 do
    Buffer.add_string b "<pub>";
    buf_elt b "title" (Prng.pick r words);
    for _ = 0 to Prng.int r 3 do
      Buffer.add_string b "<aut>";
      buf_elt b "name" (Prng.pick r names);
      Buffer.add_string b "</aut>"
    done;
    Buffer.add_string b "</pub>"
  done;
  Buffer.add_string b "</dblp>";
  Buffer.contents b

let gen_sub r b =
  Buffer.add_string b "<sub>";
  buf_elt b "title" (Prng.pick r words ^ " " ^ Prng.pick r words);
  for _ = 0 to Prng.int r 2 do
    Buffer.add_string b "<auts>";
    buf_elt b "name" (Prng.pick r names);
    Buffer.add_string b "</auts>"
  done;
  Buffer.add_string b "</sub>"

let gen_rev r =
  let b = Buffer.create 512 in
  Buffer.add_string b "<review>";
  for _ = 0 to Prng.int r 2 do
    Buffer.add_string b "<track>";
    buf_elt b "name" (Prng.pick r words);
    for _ = 0 to Prng.int r 2 do
      Buffer.add_string b "<rev>";
      buf_elt b "name" (Prng.pick r names);
      for _ = 0 to Prng.int r 3 do
        gen_sub r b
      done;
      Buffer.add_string b "</rev>"
    done;
    Buffer.add_string b "</track>"
  done;
  Buffer.add_string b "</review>";
  Buffer.contents b

let repo_of ~pub ~rev =
  let s = Conf.schema () in
  let repo = Repository.create s in
  Repository.load_document repo pub;
  Repository.load_document repo rev;
  List.iter
    (Repository.add_constraint repo)
    [ Conf.conflict s; Conf.workload s; Conf.track_load s ];
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

let random_repo r = repo_of ~pub:(gen_pub r) ~rev:(gen_rev r)

(* Same repository, built through the fused single-pass loader instead
   of parse-then-shred: the store is filled by the parser's sink. *)
let repo_of_fused ~pub ~rev =
  let s = Conf.schema () in
  let repo = Repository.create s in
  Repository.load_fused repo pub;
  Repository.load_fused repo rev;
  List.iter
    (Repository.add_constraint repo)
    [ Conf.conflict s; Conf.workload s; Conf.track_load s ];
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

(* ------------------------------------------------------------------ *)
(* Oracle assertions                                                   *)
(* ------------------------------------------------------------------ *)

let sorted l = List.sort compare l

(* Compare the five routes without toggling [set_use_index], so the
   live index stays incrementally maintained across the whole sequence
   instead of being dropped and rebuilt at every check.  [check_full]
   runs the cached closure plans (compiled route); re-running it with
   parallelism 2..4 additionally exercises the shared-index phase and
   the domain pool's deterministic merge. *)
let check_agreement ~seed repo what =
  let doc = Repository.doc repo in
  let idx = Repository.index repo in
  let verdict f =
    sorted
      (List.filter_map
         (fun c -> if f c then Some c.Constr.name else None)
         (Repository.constraints repo))
  in
  let indexed = verdict (fun c -> Constr.violated_xquery ?index:idx doc c) in
  let scan = verdict (fun c -> Constr.violated_xquery doc c) in
  let datalog = sorted (Repository.check_full_datalog repo) in
  let compiled = sorted (Repository.check_full repo) in
  Repository.set_parallelism repo (2 + (seed mod 3));
  let parallel = sorted (Repository.check_full repo) in
  Repository.set_parallelism repo 1;
  (* Sixth route: full instrumentation on.  Spans and detailed metrics
     must not change verdicts, and the observed counters must satisfy
     their structural invariants: every index probe enumerates at least
     one candidate event, and every plan-cache consultation is either a
     hit or a compilation. *)
  Obs.Trace.set_enabled true;
  Obs.Metrics.set_detailed true;
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Metrics.set_detailed false;
        Obs.Trace.reset ())
      (fun () -> sorted (Repository.check_full repo))
  in
  let counters, _ = Repository.metrics repo in
  let cval name = Option.value ~default:0 (List.assoc_opt name counters) in
  checkb
    (Printf.sprintf "[seed %d] %s: probes <= candidates" seed what)
    true
    (cval "eval_index_probes" <= cval "eval_candidates");
  checkb
    (Printf.sprintf "[seed %d] %s: plan hits + misses = requests" seed what)
    true
    (cval "plan_cache_hits" + cval "plan_cache_misses"
     = cval "plan_compile_requests");
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: indexed = scan" seed what)
    scan indexed;
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: datalog = scan" seed what)
    scan datalog;
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: compiled plans = scan" seed what)
    scan compiled;
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: parallel (-j 2..4) = scan" seed what)
    scan parallel;
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: traced = scan" seed what)
    scan traced

let check_index_consistent ~seed repo what =
  match Repository.index repo with
  | None -> Alcotest.failf "[seed %d] %s: index unexpectedly disabled" seed what
  | Some i ->
    ignore (Index.by_name i "sub" : Xic_xml.Doc.node_id list);
    (match Index.consistency_errors i with
     | [] -> ()
     | errs ->
       Alcotest.failf "[seed %d] %s: index inconsistent: %s" seed what
         (String.concat "; " errs))

(* ------------------------------------------------------------------ *)
(* Random updates                                                      *)
(* ------------------------------------------------------------------ *)

let count repo path =
  List.length (XP.Eval.select (Repository.doc repo) (XP.Parser.parse path))

let random_rev_path r repo =
  let t = 1 + Prng.int r (count repo "/review/track") in
  let rv = 1 + Prng.int r (count repo (Printf.sprintf "/review/track[%d]/rev" t)) in
  Printf.sprintf "/review/track[%d]/rev[%d]" t rv

let random_sub_path r repo =
  let rev = random_rev_path r repo in
  let ns = count repo (rev ^ "/sub") in
  if ns = 0 then None
  else Some (Printf.sprintf "%s/sub[%d]" rev (1 + Prng.int r ns))

let sub_content r =
  XU.Elem
    ( "sub",
      [],
      [ XU.Elem ("title", [], [ XU.Text (Prng.pick r words) ]);
        XU.Elem
          ("auts", [], [ XU.Elem ("name", [], [ XU.Text (Prng.pick r names) ]) ])
      ] )

let random_update r repo =
  let mk op select content =
    [ { XU.op; select = XP.Parser.parse select; content } ]
  in
  match Prng.int r 4 with
  | 0 ->
    Option.map
      (fun p ->
        Conf.insert_submission ~select:p ~title:(Prng.pick r words)
          ~author:(Prng.pick r names))
      (random_sub_path r repo)
  | 1 ->
    Option.map
      (fun p -> mk XU.Insert_before p [ sub_content r ])
      (random_sub_path r repo)
  | 2 -> Some (mk XU.Append (random_rev_path r repo) [ sub_content r ])
  | _ ->
    Option.map (fun p -> mk XU.Remove p []) (random_sub_path r repo)

(* ------------------------------------------------------------------ *)
(* Regression: rollback must not leave a stale index                   *)
(* ------------------------------------------------------------------ *)

let fixed_pub =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let fixed_rev =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let fixed_repo () = repo_of ~pub:fixed_pub ~rev:fixed_rev

(* Before the index was maintained at the [Doc] observer level, the undo
   path of [Xupdate] emitted no maintenance events: after a rollback the
   index still listed the reverted insertion.  This reproduces that. *)
let test_rollback_not_stale () =
  let repo = fixed_repo () in
  match Repository.index repo with
  | None -> Alcotest.fail "index expected"
  | Some i ->
    checkb "phantom absent before" true (Index.by_pcdata i ~tag:"title" "Phantom" = []);
    let u =
      Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
        ~title:"Phantom" ~author:"Zed"
    in
    let undo = Repository.apply_unchecked repo u in
    checkb "insertion indexed" true (Index.by_pcdata i ~tag:"title" "Phantom" <> []);
    Repository.rollback repo undo;
    checkb "rolled-back insertion purged from index" true
      (Index.by_pcdata i ~tag:"title" "Phantom" = []);
    checkb "index consistent after rollback" true (Index.consistent i)

let test_savepoint_rollback_not_stale () =
  let repo = fixed_repo () in
  match Repository.index repo with
  | None -> Alcotest.fail "index expected"
  | Some i ->
    ignore (Index.by_name i "sub" : Xic_xml.Doc.node_id list);
    let txn = Repository.begin_txn repo in
    let sp = Repository.txn_savepoint txn in
    (match
       Repository.txn_apply txn
         (Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
            ~title:"Ghost" ~author:"Zed")
     with
     | Repository.Applied _ -> ()
     | _ -> Alcotest.fail "legal insertion should apply");
    checkb "insertion indexed" true (Index.by_pcdata i ~tag:"title" "Ghost" <> []);
    Repository.txn_rollback_to txn sp;
    Repository.commit_txn txn;
    checkb "savepoint rollback purged from index" true
      (Index.by_pcdata i ~tag:"title" "Ghost" = []);
    checkb "index consistent after savepoint rollback" true (Index.consistent i)

(* ------------------------------------------------------------------ *)
(* Randomized oracles                                                  *)
(* ------------------------------------------------------------------ *)

let test_apply_undo_oracle () =
  for i = 1 to iters do
    let seed = 1000 + i in
    let r = Prng.create seed in
    let repo = random_repo r in
    check_index_consistent ~seed repo "initial";
    check_agreement ~seed repo "initial";
    let undos = ref [] in
    for s = 1 to 1 + Prng.int r 5 do
      match random_update r repo with
      | None -> ()
      | Some u ->
        undos := Repository.apply_unchecked repo u :: !undos;
        let what = Printf.sprintf "after apply %d" s in
        check_index_consistent ~seed repo what;
        check_agreement ~seed repo what
    done;
    (* Roll back a random suffix (possibly all) of the applied updates,
       in reverse application order. *)
    let k = Prng.int r (List.length !undos + 1) in
    List.iteri
      (fun n u ->
        if n < k then begin
          Repository.rollback repo u;
          check_index_consistent ~seed repo (Printf.sprintf "after undo %d" n)
        end)
      !undos;
    check_agreement ~seed repo "after undos"
  done

let test_txn_savepoint_oracle () =
  for i = 1 to max 1 (iters / 3) do
    let seed = 5000 + i in
    let r = Prng.create seed in
    let repo = random_repo r in
    check_index_consistent ~seed repo "initial";
    let txn = Repository.begin_txn repo in
    let apply_some n =
      for _ = 1 to n do
        match random_update r repo with
        | Some u -> ignore (Repository.txn_apply txn u : Repository.outcome)
        | None -> ()
      done
    in
    apply_some (1 + Prng.int r 3);
    let sp = Repository.txn_savepoint txn in
    apply_some (1 + Prng.int r 3);
    Repository.txn_rollback_to txn sp;
    check_index_consistent ~seed repo "after savepoint rollback";
    check_agreement ~seed repo "after savepoint rollback";
    apply_some 1;
    if Prng.bool r then Repository.commit_txn txn
    else Repository.rollback_txn txn;
    check_index_consistent ~seed repo "after txn close";
    check_agreement ~seed repo "after txn close"
  done

let fresh_path () = Test_tmp.fresh "test_oracle" ".j"

let test_recover_oracle () =
  for i = 1 to max 1 (iters / 3) do
    let seed = 9000 + i in
    (* Two generators with the same seed: [r] drives the original run,
       [r2] regenerates identical base documents for the crashed copy. *)
    let r = Prng.create seed in
    let r2 = Prng.create seed in
    let repo = random_repo r in
    let path = fresh_path () in
    let j = J.open_ ~sync:false path in
    let txn = Repository.begin_txn ~journal:j repo in
    for _ = 1 to 1 + Prng.int r 3 do
      match random_update r repo with
      | Some u -> ignore (Repository.txn_apply txn u : Repository.outcome)
      | None -> ()
    done;
    Repository.commit_txn txn;
    J.close j;
    (* "Crash": replay the journal against a fresh repository whose
       index is forced *before* recovery, so replay must maintain it. *)
    let repo2 = repo_of ~pub:(gen_pub r2) ~rev:(gen_rev r2) in
    check_index_consistent ~seed repo2 "before recover";
    ignore (Repository.recover (J.read path) repo2 : Repository.recovery_report);
    check_index_consistent ~seed repo2 "after recover";
    check_agreement ~seed repo2 "after recover";
    Alcotest.(check (list string))
      (Printf.sprintf "[seed %d] recovered verdicts = original" seed)
      (sorted (Repository.check_full repo))
      (sorted (Repository.check_full repo2));
    Sys.remove path
  done

(* ------------------------------------------------------------------ *)
(* Seventh route: fused loader vs legacy parse-then-shred              *)
(* ------------------------------------------------------------------ *)

module Store = Xic_datalog.Store

(* Relation-by-relation comparison with a named culprit on mismatch —
   [Store.equal] alone would only say "differs". *)
let check_stores_equal ~seed what legacy fused =
  (* Compare non-empty relations only, matching [Store.equal]: removing
     the last tuple of a relation leaves an empty record behind, which a
     from-scratch build never creates. *)
  let rels s =
    Store.relations s
    |> List.filter (fun n -> Store.cardinality s n > 0)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: same relations" seed what)
    (rels legacy) (rels fused);
  List.iter
    (fun rel ->
      let ts s = List.sort compare (Store.tuples s rel) in
      if ts legacy <> ts fused then
        Alcotest.failf "[seed %d] %s: relation %s differs (%d vs %d tuples)"
          seed what rel
          (Store.cardinality legacy rel)
          (Store.cardinality fused rel))
    (rels legacy);
  checkb
    (Printf.sprintf "[seed %d] %s: stores equal" seed what)
    true
    (Store.equal legacy fused)

let test_fused_loader_oracle () =
  let run ~seed ~pub ~rev what =
    let legacy = repo_of ~pub ~rev in
    let fused = repo_of_fused ~pub ~rev in
    check_stores_equal ~seed what (Repository.store legacy)
      (Repository.store fused);
    check_index_consistent ~seed fused what;
    Alcotest.(check (list string))
      (Printf.sprintf "[seed %d] %s: fused verdicts = legacy" seed what)
      (sorted (Repository.check_full legacy))
      (sorted (Repository.check_full fused));
    Alcotest.(check (list string))
      (Printf.sprintf "[seed %d] %s: fused datalog verdicts = legacy" seed what)
      (sorted (Repository.check_full_datalog legacy))
      (sorted (Repository.check_full_datalog fused))
  in
  (* The paper's running scenario: Example 1 (review conflict) and
     Example 2 (reviewer workload) over the fixed pub/rev documents,
     once consistent and once with a planted conflict (Carl reviews a
     submission he co-authored). *)
  run ~seed:0 ~pub:fixed_pub ~rev:fixed_rev "examples 1+2 consistent";
  let conflicted_rev =
    {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>Joint</title><auts><name>Carl</name></auts></sub></rev></track></review>|}
  in
  run ~seed:0 ~pub:fixed_pub ~rev:conflicted_rev "examples 1+2 violated";
  for i = 1 to iters do
    let seed = 13000 + i in
    let r = Prng.create seed in
    run ~seed ~pub:(gen_pub r) ~rev:(gen_rev r) "random"
  done

(* ------------------------------------------------------------------ *)
(* Eighth route: incremental maintenance vs recompute                  *)
(* ------------------------------------------------------------------ *)

(* Three-way agreement after every commit of a randomized transaction
   stream: (a) the incremental verdict equals the full check, (b) the
   event-maintained store equals a from-scratch re-shred, (c) the
   delta-maintained denial views equal views recomputed from scratch on
   the current store. *)
let check_incremental_agreement ~seed repo what =
  Alcotest.(check (list string))
    (Printf.sprintf "[seed %d] %s: incremental verdict = full" seed what)
    (sorted (Repository.check_full repo))
    (sorted (Repository.check_incremental repo));
  check_stores_equal ~seed
    (what ^ " (maintained store vs re-shred)")
    (Xic_relmap.Shred.shred
       (Schema.mapping (Repository.schema repo))
       (Repository.doc repo))
    (Repository.store repo);
  let maintained =
    match Repository.incr_view repo with
    | Some v -> Store.freeze v
    | None -> Alcotest.failf "[seed %d] %s: no materialized views" seed what
  in
  Repository.set_incremental repo false;  (* drop the views... *)
  Repository.set_incremental repo true;
  ignore (Repository.check_incremental repo : string list);  (* ...recompute *)
  match Repository.incr_view repo with
  | Some fresh ->
    check_stores_equal ~seed (what ^ " (maintained views vs recompute)")
      fresh maintained
  | None -> Alcotest.failf "[seed %d] %s: recompute built no views" seed what

let test_incremental_oracle () =
  (* the paper's fixed scenario, consistent and violated *)
  List.iter
    (fun (what, rev) ->
      let repo = repo_of ~pub:fixed_pub ~rev in
      Repository.set_incremental repo true;
      check_incremental_agreement ~seed:0 repo what)
    [ ("examples consistent", fixed_rev);
      ( "examples violated",
        {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>Joint</title><auts><name>Carl</name></auts></sub></rev></track></review>|}
      ) ];
  for i = 1 to iters do
    let seed = 17000 + i in
    let r = Prng.create seed in
    let repo = random_repo r in
    Repository.set_incremental repo true;
    check_incremental_agreement ~seed repo "initial";
    let path = fresh_path () in
    let j = J.open_ ~sync:false path in
    for round = 1 to 1 + Prng.int r 3 do
      let txn = Repository.begin_txn ~journal:j repo in
      for _ = 1 to 1 + Prng.int r 2 do
        match random_update r repo with
        | Some u -> ignore (Repository.txn_apply txn u : Repository.outcome)
        | None -> ()
      done;
      (* sometimes wind a savepoint forward and roll it back: the
         inverse deltas must retract exactly what the forward pass
         materialized *)
      if Prng.bool r then begin
        let sp = Repository.txn_savepoint txn in
        (match random_update r repo with
         | Some u -> ignore (Repository.txn_apply txn u : Repository.outcome)
         | None -> ());
        ignore (Repository.check_incremental repo : string list);
        Repository.txn_rollback_to txn sp
      end;
      if Prng.int r 4 = 0 then Repository.rollback_txn txn
      else Repository.commit_txn txn;
      check_incremental_agreement ~seed repo
        (Printf.sprintf "after txn round %d" round)
    done;
    J.close j;
    (* replay the journal into a fresh repository with views materialized
       before recovery: replay deltas must maintain them too *)
    let r2 = Prng.create seed in
    let repo2 = repo_of ~pub:(gen_pub r2) ~rev:(gen_rev r2) in
    Repository.set_incremental repo2 true;
    ignore (Repository.check_incremental repo2 : string list);
    ignore (Repository.recover (J.read path) repo2 : Repository.recovery_report);
    check_incremental_agreement ~seed repo2 "after recovery replay";
    Alcotest.(check (list string))
      (Printf.sprintf "[seed %d] recovered incremental verdict = original" seed)
      (sorted (Repository.check_incremental repo))
      (sorted (Repository.check_incremental repo2));
    Sys.remove path
  done

(* ------------------------------------------------------------------ *)
(* Route 9: the resident server                                        *)
(* ------------------------------------------------------------------ *)

(* A forked server child answers over a Unix-domain socket while the
   parent mirrors the same randomized workload onto a shadow repository
   through the library API.  Every step must agree verdict for verdict:
   live checks, guarded updates, transactional batches, and pinned
   reads (which must keep answering at their generation while newer
   ones commit).  A checkpoint fires mid-stream — truncating the
   server's journal under the pins — and after a graceful shutdown the
   parent restarts from snapshot + journal suffix and re-checks
   parity. *)

module Srv = Xic_server.Server
module Proto = Xic_server.Protocol

let outcome_tag9 = function
  | Repository.Applied `Optimized -> "applied:optimized"
  | Repository.Applied `Runtime_simplified -> "applied:runtime_simplified"
  | Repository.Applied `Full_check -> "applied:full_check"
  | Repository.Rejected_early c -> "rejected:" ^ c
  | Repository.Rolled_back c -> "rolled_back:" ^ c

let response_tag resp =
  if not (Proto.bool_field "ok" resp) then "error"
  else
    match Proto.string_field "outcome" resp with
    | Some "applied" ->
      (match Proto.string_field "strategy" resp with
       | Some s -> "applied:" ^ s
       | None -> "applied:?")
    | Some o ->
      o ^ ":"
      ^ Option.value ~default:"?" (Proto.string_field "constraint" resp)
    | None -> "error"

let connect_retry sock =
  let rec go n =
    match Proto.connect (Proto.Unix_sock sock) with
    | fd -> fd
    | exception _ when n > 0 ->
      ignore (Unix.select [] [] [] 0.05);
      go (n - 1)
  in
  go 100

let violated_of resp =
  match Proto.list_field "violated" resp with
  | Some vs ->
    sorted
      (List.filter_map
         (function Proto.String v -> Some v | _ -> None)
         vs)
  | None -> [ "<malformed>" ]

let test_server_oracle () =
  for i = 1 to max 2 (iters / 5) do
    let seed = 21000 + i in
    let r = Prng.create seed in
    let pub = gen_pub r and rev = gen_rev r in
    let sock = Test_tmp.fresh "oracle_srv" ".sock" in
    let jpath = Test_tmp.fresh "oracle_srv" ".j" in
    let spath = Test_tmp.fresh "oracle_srv" ".xics" in
    (match Unix.fork () with
     | 0 ->
       (try
          let repo = repo_of ~pub ~rev in
          Repository.set_incremental repo true;
          let j = J.open_ ~sync:false jpath in
          let srv =
            Srv.create
              ~config:
                { Srv.default_config with
                  Srv.journal = Some j; snapshot_path = Some spath }
              repo
          in
          let lfd = Srv.listen (Proto.Unix_sock sock) in
          Srv.serve ~idle_timeout:0.05 srv lfd;
          Unix._exit 0
        with _ -> Unix._exit 97)
     | child ->
       (* whatever happens, never leave the server child running — an
          orphan would hold the test runner's output pipe open forever *)
       Fun.protect ~finally:(fun () ->
           (try Unix.kill child Sys.sigkill with Unix.Unix_error _ -> ());
           (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ()))
       @@ fun () ->
       let shadow = repo_of ~pub ~rev in
       Repository.set_incremental shadow true;
       let fd = connect_retry sock in
       let rq j = Proto.request fd j in
       let fail fmt = Alcotest.failf ("[seed %d] server oracle: " ^^ fmt) seed in
       let errors = ref 0 in
       (* durable statement prefix (newest first) and the pin points
          recorded against it, for the end-of-run time-travel oracle *)
       let applied = ref [] in
       let asof_records = ref [] in
       let record_applied u tag =
         if String.starts_with ~prefix:"applied" tag then applied := u :: !applied
       in
       let guard_one u =
         let resp =
           rq
             (Proto.Obj
                [ ("op", Proto.String "guard");
                  ("update", Proto.String (XU.to_string u)) ])
         in
         let shadow_tag =
           match Repository.guarded_update shadow u with
           | o -> outcome_tag9 o
           | exception _ -> incr errors; "error"
         in
         let server_tag = response_tag resp in
         if shadow_tag <> server_tag then
           fail "guard diverged: server %s, shadow %s" server_tag shadow_tag;
         record_applied u shadow_tag
       in
       let check_parity what =
         let resp = rq (Proto.Obj [ ("op", Proto.String "check") ]) in
         Alcotest.(check (list string))
           (Printf.sprintf "[seed %d] %s: server check = shadow" seed what)
           (sorted (Repository.check_full shadow))
           (violated_of resp)
       in
       let steps = 8 + Prng.int r 6 in
       let checkpoint_at = steps / 2 in
       for step = 1 to steps do
         (match Prng.int r 4 with
          | 0 -> check_parity (Printf.sprintf "step %d" step)
          | 1 ->
            (match random_update r shadow with
             | Some u -> guard_one u
             | None -> ())
          | 2 ->
            (* a transactional batch, 1-3 statements generated against
               the pre-batch state on both sides *)
            let us =
              List.filter_map
                (fun _ -> random_update r shadow)
                (List.init (1 + Prng.int r 3) Fun.id)
            in
            if us <> [] then begin
              let resp =
                rq
                  (Proto.Obj
                     [ ("op", Proto.String "txn");
                       ( "updates",
                         Proto.List
                           (List.map
                              (fun u -> Proto.String (XU.to_string u))
                              us) ) ])
              in
              let shadow_tags =
                match Repository.guarded_batch shadow us with
                | rs ->
                  List.map (fun x -> outcome_tag9 x.Repository.outcome) rs
                | exception _ ->
                  incr errors;
                  List.map (fun _ -> "error") us
              in
              let server_tags =
                if not (Proto.bool_field "ok" resp) then begin
                  incr errors;
                  List.map (fun _ -> "error") us
                end
                else
                  match Proto.list_field "results" resp with
                  | Some rs -> List.map response_tag rs
                  | None -> [ "<malformed>" ]
              in
              Alcotest.(check (list string))
                (Printf.sprintf "[seed %d] step %d: txn batch verdicts" seed
                   step)
                shadow_tags server_tags;
              if List.length us = List.length shadow_tags then
                List.iter2 record_applied us shadow_tags
            end
          | _ ->
            (* a pinned reader opened before a write must keep answering
               the pre-write verdict *)
            let pre = sorted (Repository.check_full shadow) in
            let presp = rq (Proto.Obj [ ("op", Proto.String "pin") ]) in
            let pid =
              match Proto.int_field "pin" presp with
              | Some p -> p
              | None -> fail "pin request failed"
            in
            (* remember the generation and the statement prefix it
               closed over — the time-travel oracle below replays it *)
            (match Proto.int_field "generation" presp with
             | Some g -> asof_records := (g, List.length !applied) :: !asof_records
             | None -> fail "pin response lacks a generation");
            (match random_update r shadow with
             | Some u -> guard_one u
             | None -> ());
            let pinned =
              rq
                (Proto.Obj
                   [ ("op", Proto.String "check"); ("pin", Proto.Int pid) ])
            in
            Alcotest.(check (list string))
              (Printf.sprintf "[seed %d] step %d: pinned verdict is pre-write"
                 seed step)
              pre (violated_of pinned);
            ignore
              (rq
                 (Proto.Obj
                    [ ("op", Proto.String "unpin"); ("pin", Proto.Int pid) ])));
         if step = checkpoint_at then begin
           let cresp = rq (Proto.Obj [ ("op", Proto.String "checkpoint") ]) in
           if not (Proto.bool_field "ok" cresp) then
             fail "mid-stream checkpoint failed";
           check_parity "after mid-stream checkpoint"
         end
       done;
       check_parity "final";
       (* time-travel oracle: every recorded pin generation still in the
          server's retained history must answer exactly what a fresh
          repository replayed to that statement prefix answers; pruned
          generations (mid-stream checkpoint, retention bound) must be
          refused, never served stale *)
       if !errors = 0 then begin
         let hist = rq (Proto.Obj [ ("op", Proto.String "history") ]) in
         if not (Proto.bool_field "ok" hist) then fail "history failed";
         let still_retained =
           match Proto.list_field "retained" hist with
           | Some rs ->
             List.filter_map (fun x -> Proto.int_field "generation" x) rs
           | None -> []
         in
         let applied_fwd = Array.of_list (List.rev !applied) in
         List.iter
           (fun (g, n) ->
             let resp =
               rq
                 (Proto.Obj
                    [ ("op", Proto.String "check"); ("as_of", Proto.Int g) ])
             in
             if List.mem g still_retained then begin
               if not (Proto.bool_field "ok" resp) then
                 fail "as_of %d refused though retained" g;
               let replay = repo_of ~pub ~rev in
               Repository.set_incremental replay true;
               for k = 0 to n - 1 do
                 ignore (Repository.guarded_update replay applied_fwd.(k))
               done;
               Alcotest.(check (list string))
                 (Printf.sprintf
                    "[seed %d] as_of %d = fresh replay of %d statement(s)"
                    seed g n)
                 (sorted (Repository.check_full replay))
                 (violated_of resp)
             end
             else if Proto.bool_field "ok" resp then
               fail "as_of %d served though pruned from retention" g)
           !asof_records
       end;
       ignore (rq (Proto.Obj [ ("op", Proto.String "shutdown") ]));
       Unix.close fd;
       let _, status = Unix.waitpid [] child in
       (match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED n -> fail "server child exited %d" n
        | _ -> fail "server child killed");
       (* restart from the durable pair and re-check parity — skipped if
          an apply error interrupted a batch (both sides diverge from
          the journal identically, but not durably) *)
       if !errors = 0 && Sys.file_exists spath then begin
         let s = Conf.schema () in
         let repo2 = Repository.create s in
         List.iter
           (Repository.add_constraint repo2)
           [ Conf.conflict s; Conf.workload s; Conf.track_load s ];
         Repository.register_pattern repo2 (Conf.submission_pattern s);
         let meta = Repository.load_snapshot repo2 spath in
         let rr = J.read jpath in
         ignore
           (Repository.recover ~skip:(Repository.recover_skip meta rr) rr
              repo2
             : Repository.recovery_report);
         Alcotest.(check (list string))
           (Printf.sprintf "[seed %d] verdict after restart = shadow" seed)
           (sorted (Repository.check_full shadow))
           (sorted (Repository.check_full repo2))
       end;
       List.iter
         (fun p -> try Sys.remove p with Sys_error _ -> ())
         [ sock; jpath; spath ])
  done

(* ------------------------------------------------------------------ *)
(* Symbol interning round trip                                         *)
(* ------------------------------------------------------------------ *)

(* The global table is append-only and hash-consed: [name] must invert
   [intern], and re-interning must return the identical symbol without
   growing the table. *)
let test_intern_roundtrip () =
  let r = Prng.create 77 in
  let seen = Hashtbl.create 64 in
  for i = 1 to 300 do
    let s =
      String.init (1 + Prng.int r 12) (fun _ -> Char.chr (33 + Prng.int r 94))
    in
    let sym = Symbol.intern s in
    checkb (Printf.sprintf "name (intern %S) = %S (iter %d)" s s i) true
      (String.equal (Symbol.name sym) s);
    checkb "re-intern is the identical symbol" true
      (Symbol.equal (Symbol.intern s) sym);
    (match Hashtbl.find_opt seen s with
     | Some sym' -> checkb "stable across iterations" true (Symbol.equal sym sym')
     | None -> Hashtbl.replace seen s sym);
    checkb "interned strings are members" true (Symbol.mem s)
  done;
  let before = Symbol.count () in
  Hashtbl.iter (fun s _ -> ignore (Symbol.intern s : Symbol.t)) seen;
  Alcotest.(check int) "re-interning grows nothing" before (Symbol.count ())

let () =
  Alcotest.run "oracle"
    [
      ( "regression",
        [
          Alcotest.test_case "rollback purges index" `Quick test_rollback_not_stale;
          Alcotest.test_case "savepoint rollback purges index" `Quick
            test_savepoint_rollback_not_stale;
          Alcotest.test_case "symbol intern round trip" `Quick
            test_intern_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "apply/undo agreement" `Quick test_apply_undo_oracle;
          Alcotest.test_case "txn savepoints" `Quick test_txn_savepoint_oracle;
          Alcotest.test_case "crash recovery" `Quick test_recover_oracle;
          Alcotest.test_case "fused loader" `Quick test_fused_loader_oracle;
          Alcotest.test_case "incremental recompute" `Quick
            test_incremental_oracle;
          Alcotest.test_case "resident server" `Quick test_server_oracle;
        ] );
    ]
