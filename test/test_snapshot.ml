(* Crash-consistent snapshots: round trips, cross-process symbol
   remapping, the load-error taxonomy, and atomicity of the write path
   under injected faults. *)

open Xic_core
module Conf = Xic_workload.Conference
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint
module Snap = Xic_snapshot.Snapshot
module Doc = Xic_xml.Doc
module Store = Xic_datalog.Store

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Snapshot files live in a shared temp directory removed at exit. *)
let fresh_path () = Test_tmp.fresh "test_snapshot" ".xis"

let schema = lazy (Conf.schema ())

let pub_doc =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let rev_doc =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let make_repo () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo rev_doc;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

let xml repo = Xic_xml.Xml_printer.to_string (Repository.doc repo)

let legal_update ?(title = "Ok") ?(author = "Zoe") () =
  Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title ~author

(* Load a snapshot into a fresh repository and re-register the standard
   constraint, as a resident checker would on cold start. *)
let reload path =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  let meta = Repository.load_snapshot repo path in
  Repository.add_constraint repo (Conf.conflict s);
  (repo, meta)

let read_bin path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_bin path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let p = fresh_path () in
  let repo = make_repo () in
  let report = Repository.checkpoint repo p in
  checkb "bytes written" true (report.Repository.snapshot_bytes > 0);
  checkb "journal not reset without one" false report.Repository.wal_reset;
  let repo2, meta = reload p in
  checki "meta nodes" report.Repository.snapshot_nodes meta.Snap.nodes;
  checki "meta facts" report.Repository.snapshot_facts meta.Snap.facts;
  checki "no journal covered" 0 meta.Snap.journal_generation;
  checks "document round trip" (xml repo) (xml repo2);
  checkb "arena structure round trip" true
    (Doc.equal_structure (Repository.doc repo) (Repository.doc repo2));
  checkb "store round trip" true
    (Store.equal (Repository.store repo) (Repository.store repo2));
  Alcotest.(check (list string))
    "verdict equality" (Repository.check_full repo)
    (Repository.check_full repo2)

let test_roundtrip_after_updates () =
  let p = fresh_path () in
  let repo = make_repo () in
  (match Repository.guarded_update repo (legal_update ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "legal update must apply");
  ignore (Repository.checkpoint repo p);
  let repo2, _ = reload p in
  checks "post-update state round trips" (xml repo) (xml repo2);
  (* the loaded repository is live: further guarded updates work *)
  Repository.register_pattern repo2 (Conf.submission_pattern (Lazy.force schema));
  (match
     Repository.guarded_update repo2 (legal_update ~title:"N" ~author:"Uma" ())
   with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "loaded repository must accept updates");
  (match
     Repository.guarded_update repo2 (legal_update ~title:"B" ~author:"Carl" ())
   with
   | Repository.Rejected_early "conflict" | Repository.Rolled_back "conflict" ->
     ()
   | _ -> Alcotest.fail "loaded repository must still enforce constraints")

let test_read_meta () =
  let p = fresh_path () in
  let repo = make_repo () in
  let report = Repository.checkpoint repo p in
  let meta = Snap.read_meta p in
  checki "nodes" report.Repository.snapshot_nodes meta.Snap.nodes;
  checkb "symbols persisted" true (meta.Snap.symbols > 0)

(* Interning order is process-local, so snapshot symbol ids generally
   differ from the loader's: a child process shifts its table with junk
   symbols before building the state, and the parent must still load
   names (not raw ids) correctly. *)
let test_symbol_remap_across_processes () =
  let p = fresh_path () in
  match Unix.fork () with
  | 0 ->
    (* child — never runs the parent's test harness code again *)
    let code =
      try
        for i = 0 to 99 do
          ignore (Xic_symbol.Symbol.intern (Printf.sprintf "junk-%d" i))
        done;
        let repo = make_repo () in
        ignore (Repository.checkpoint repo p);
        0
      with _ -> 1
    in
    Unix._exit code
  | pid ->
    let expected = xml (make_repo ()) in
    let _, status = Unix.waitpid [] pid in
    checkb "child wrote the snapshot" true (status = Unix.WEXITED 0);
    let repo2, _ = reload p in
    checks "names survive the id shift" expected (xml repo2);
    Alcotest.(check (list string))
      "constraints evaluate on remapped state" []
      (Repository.check_full repo2)

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

let load_err path =
  match Snap.load path (Doc.create ()) with
  | _ -> Alcotest.fail (path ^ ": corrupted snapshot must not load")
  | exception Snap.Snapshot_error (_, e) -> e

let test_error_taxonomy () =
  let p = fresh_path () in
  let repo = make_repo () in
  ignore (Repository.checkpoint repo p);
  let good = read_bin p in
  let n = String.length good in
  (match load_err "no_such_snapshot.xis" with
   | Snap.Missing -> ()
   | e -> Alcotest.fail ("missing file: " ^ Snap.error_message e));
  let bad_magic = fresh_path () in
  write_bin bad_magic ("XXXSNAP1\n" ^ String.sub good 9 (n - 9));
  (match load_err bad_magic with
   | Snap.Not_a_snapshot -> ()
   | e -> Alcotest.fail ("bad magic: " ^ Snap.error_message e));
  let bad_version = fresh_path () in
  let b = Bytes.of_string good in
  (* version is a zigzag varint: one byte 0x42 decodes to 33 *)
  Bytes.set b 9 '\066';
  write_bin bad_version (Bytes.to_string b);
  (match load_err bad_version with
   | Snap.Unsupported_version 33 -> ()
   | e -> Alcotest.fail ("bad version: " ^ Snap.error_message e));
  (* cutting the end marker, or any suffix, is Truncated *)
  List.iter
    (fun keep ->
      let cut = fresh_path () in
      write_bin cut (String.sub good 0 keep);
      match load_err cut with
      | Snap.Truncated _ -> ()
      | e ->
        Alcotest.fail
          (Printf.sprintf "cut at %d: %s" keep (Snap.error_message e)))
    [ n - 1; n - 17; n / 2 ];
  (* flipping a payload byte is a checksum mismatch, and the document
     must not be half-restored *)
  let flipped = fresh_path () in
  let b = Bytes.of_string good in
  let mid = n / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  write_bin flipped (Bytes.to_string b);
  let doc = Doc.create () in
  (match Snap.load flipped doc with
   | _ -> Alcotest.fail "flipped byte must not load"
   | exception Snap.Snapshot_error (_, Snap.Checksum_mismatch _) -> ()
   | exception Snap.Snapshot_error (_, e) ->
     Alcotest.fail ("flipped byte: " ^ Snap.error_message e));
  checkb "document untouched by the failed load" false (Doc.has_root doc)

(* ------------------------------------------------------------------ *)
(* Atomicity under injected faults                                     *)
(* ------------------------------------------------------------------ *)

(* A save that dies at any failpoint — torn mid-write, before the
   rename — must leave the previous snapshot byte-identical. *)
let test_crashed_save_keeps_old_snapshot () =
  List.iter
    (fun (site, action) ->
      let p = fresh_path () in
      let repo = make_repo () in
      ignore (Repository.checkpoint repo p);
      let before = read_bin p in
      (match Repository.guarded_update repo (legal_update ()) with
       | Repository.Applied _ -> ()
       | _ -> Alcotest.fail "legal update must apply");
      FP.set ~action site;
      (Fun.protect ~finally:FP.clear @@ fun () ->
       match Repository.checkpoint repo p with
       | _ -> Alcotest.fail (site ^ ": armed failpoint must fire")
       | exception FP.Triggered _ -> ());
      checks (site ^ ": old snapshot intact") before (read_bin p);
      let repo2, _ = reload p in
      checkb (site ^ ": old snapshot still loads") true
        (Repository.check_full repo2 = []))
    [ ("snapshot_write", FP.Torn_write { keep = 0.5; crash = false });
      ("snapshot_fsync", FP.Raise);
      ("snapshot_rename", FP.Raise) ]

let test_short_read_is_truncated () =
  let p = fresh_path () in
  let repo = make_repo () in
  ignore (Repository.checkpoint repo p);
  FP.set ~action:(FP.Short_read { keep = 0.5 }) "snapshot_read";
  (Fun.protect ~finally:FP.clear @@ fun () ->
   match Snap.load p (Doc.create ()) with
   | _ -> Alcotest.fail "short read must not load"
   | exception Snap.Snapshot_error (_, Snap.Truncated _) -> ());
  (* the short read disarms after firing: the next load succeeds *)
  let repo2, _ = reload p in
  checks "full read after the fault" (xml repo) (xml repo2)

let test_injected_eio_is_retried () =
  let p = fresh_path () in
  let repo = make_repo () in
  FP.set ~action:(FP.Eio { failures = 2 }) "snapshot_write";
  let report =
    Fun.protect ~finally:FP.clear @@ fun () -> Repository.checkpoint repo p
  in
  checkb "save survives two injected EIOs" true
    (report.Repository.snapshot_bytes > 0);
  let repo2, _ = reload p in
  checks "snapshot readable" (xml repo) (xml repo2)

(* ------------------------------------------------------------------ *)
(* Checkpoint + journal: watermark and generation arithmetic           *)
(* ------------------------------------------------------------------ *)

let test_recover_skip_generation_rule () =
  let meta g w =
    { Snap.journal_generation = g; journal_watermark = w; nodes = 0;
      facts = 0; symbols = 0 }
  in
  let rr gen n =
    { J.entries = List.init n (fun i -> J.Commit { txn = i });
      torn = false; tail = J.Clean; generation = gen }
  in
  checki "newer journal replays in full" 0
    (Repository.recover_skip (meta 1 2) (rr 2 5));
  checki "same generation skips the watermark" 2
    (Repository.recover_skip (meta 1 2) (rr 1 5));
  checki "watermark capped at the entry count" 3
    (Repository.recover_skip (meta 1 5) (rr 1 3));
  checki "stale journal is skipped entirely" 5
    (Repository.recover_skip (meta 2 0) (rr 1 5))

(* The full cycle: journaled updates, checkpoint folds + truncates,
   more journaled updates, crash, recover = snapshot + suffix. *)
let test_checkpoint_folds_journal () =
  let p = fresh_path () in
  let jp = Printf.sprintf "%s.j" (fresh_path ()) in
  let repo = make_repo () in
  let j = J.open_ jp in
  (match Repository.guarded_update ~journal:j repo (legal_update ()) with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "update 1 must apply");
  let gen_before = J.generation j in
  let report = Repository.checkpoint ~journal:j repo p in
  checkb "journal reset" true report.Repository.wal_reset;
  checkb "entries folded" true (report.Repository.wal_entries_folded > 0);
  checki "generation bumped" (gen_before + 1) (J.generation j);
  checki "journal emptied" 0 (J.entry_count j);
  (* post-checkpoint update lands in the fresh generation *)
  (match
     Repository.guarded_update ~journal:j repo
       (legal_update ~title:"After" ~author:"Uma" ())
   with
   | Repository.Applied _ -> ()
   | _ -> Alcotest.fail "update 2 must apply");
  let after = xml repo in
  J.close j;
  (* cold recovery: load the snapshot, replay only the suffix *)
  let repo2, meta = reload p in
  let rr = J.read jp in
  let skip = Repository.recover_skip meta rr in
  checki "snapshot prefix skipped" 0 skip;
  let r = Repository.recover ~skip rr repo2 in
  checki "one suffix txn" 1 r.Repository.replayed_txns;
  checks "snapshot + suffix = crash state" after (xml repo2);
  (* a crash between snapshot rename and journal reset is also safe:
     same-generation skip drops the already-folded prefix *)
  let repo3, _ = reload p in
  let stale =
    { J.entries = rr.J.entries; torn = false; tail = J.Clean;
      generation = meta.Snap.journal_generation }
  in
  let skip3 = Repository.recover_skip meta stale in
  checki "watermark skip on the same generation" meta.Snap.journal_watermark
    skip3;
  ignore repo3

let () =
  Alcotest.run "snapshot"
    [
      ( "round trips",
        [
          Alcotest.test_case "state round trip" `Quick test_roundtrip;
          Alcotest.test_case "after updates" `Quick test_roundtrip_after_updates;
          Alcotest.test_case "read_meta" `Quick test_read_meta;
          Alcotest.test_case "symbol remap across processes" `Quick
            test_symbol_remap_across_processes;
        ] );
      ( "error taxonomy",
        [ Alcotest.test_case "classified load errors" `Quick test_error_taxonomy ] );
      ( "fault injection",
        [
          Alcotest.test_case "crashed save keeps the old snapshot" `Quick
            test_crashed_save_keeps_old_snapshot;
          Alcotest.test_case "short read" `Quick test_short_read_is_truncated;
          Alcotest.test_case "injected EIO retried" `Quick
            test_injected_eio_is_retried;
        ] );
      ( "checkpoint protocol",
        [
          Alcotest.test_case "recover_skip generations" `Quick
            test_recover_skip_generation_rule;
          Alcotest.test_case "checkpoint folds the journal" `Quick
            test_checkpoint_folds_journal;
        ] );
    ]
