(* Fault-injection torture harness: run a randomized XUpdate workload
   with a crash armed at every registered failpoint site in turn,
   recover from whatever the "crash" left on disk (snapshot + journal),
   and assert the recovered state is exactly a committed prefix of the
   golden fault-free run — never a torn or half-applied document.

   XIC_TORTURE_SEEDS bounds the number of randomized workloads
   (default 2; CI and `dune build @torture` may raise it). *)

open Xic_core
module Conf = Xic_workload.Conference
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint
module AF = Xic_journal.Atomic_file
module Snap = Xic_snapshot.Snapshot

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let seeds =
  match Option.bind (Sys.getenv_opt "XIC_TORTURE_SEEDS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 2

let schema = lazy (Conf.schema ())

let pub_doc =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut></pub></dblp>|}

let rev_doc =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let base_repo () =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  Repository.load_document repo pub_doc;
  Repository.load_document repo rev_doc;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

let xml repo = Xic_xml.Xml_printer.to_string (Repository.doc repo)

let insert ~title ~author =
  Conf.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]" ~title ~author

(* ------------------------------------------------------------------ *)
(* Deterministic workloads                                             *)
(* ------------------------------------------------------------------ *)

(* Op effects are pure functions of (seed, index), so the golden run and
   every faulted run execute byte-identical statements. *)
type op =
  | Legal of int  (** unique-author insert: must apply *)
  | Illegal  (** reviewer self-insert: must be refused, no state change *)
  | Txn of int list  (** several legal inserts as one atomic transaction *)
  | Ckpt  (** snapshot checkpoint + journal truncation: no state change *)

let gen_ops st n =
  let uid = ref 0 in
  let fresh () = incr uid; !uid in
  List.init n (fun _ ->
      match Random.State.int st 10 with
      | 0 | 1 -> Illegal
      | 2 | 3 -> Ckpt
      | 4 ->
        Txn (List.init (1 + Random.State.int st 2) (fun _ -> fresh ()))
      | _ -> Legal (fresh ()))

let legal_u seed k =
  insert ~title:(Printf.sprintf "T%d-%d" seed k)
    ~author:(Printf.sprintf "Aut%d-%d" seed k)

let illegal_u = insert ~title:"Bad" ~author:"Carl"

let apply_legal ~ctx repo journal u =
  match Repository.guarded_update ?journal repo u with
  | Repository.Applied _ -> ()
  | _ -> Alcotest.fail (ctx ^ ": legal update must apply")

(* Execute one op.  [snapshot = None] is the golden (fault-free,
   journal-free) run, where Ckpt is a no-op. *)
let exec ~ctx ~seed ~snapshot repo journal op =
  match op with
  | Legal k -> apply_legal ~ctx repo journal (legal_u seed k)
  | Illegal ->
    (match Repository.guarded_update ?journal repo illegal_u with
     | Repository.Rejected_early _ | Repository.Rolled_back _ -> ()
     | Repository.Applied _ -> Alcotest.fail (ctx ^ ": conflict must be refused"))
  | Txn ks ->
    let tx = Repository.begin_txn ?journal repo in
    List.iter
      (fun k ->
        match Repository.txn_apply tx (legal_u seed k) with
        | Repository.Applied _ -> ()
        | _ -> Alcotest.fail (ctx ^ ": txn statement must apply"))
      ks;
    Repository.commit_txn tx
  | Ckpt ->
    (match (snapshot, journal) with
     | Some path, Some j -> ignore (Repository.checkpoint ~journal:j repo path)
     | _ -> ())

(* golden.(i) = document state after the first [i] ops, fault-free. *)
let golden_states ~seed ops =
  let repo = base_repo () in
  let states = Array.make (List.length ops + 1) (xml repo) in
  List.iteri
    (fun i op ->
      exec ~ctx:"golden" ~seed ~snapshot:None repo None op;
      states.(i + 1) <- xml repo)
    ops;
  states

(* ------------------------------------------------------------------ *)
(* Recovery = snapshot (if any) + journal suffix                       *)
(* ------------------------------------------------------------------ *)

let recover_state ~ctx jpath spath =
  let s = Lazy.force schema in
  let repo = Repository.create s in
  let meta =
    if Sys.file_exists spath then Some (Repository.load_snapshot repo spath)
    else begin
      Repository.load_document repo pub_doc;
      Repository.load_document repo rev_doc;
      None
    end
  in
  Repository.add_constraint repo (Conf.conflict s);
  (* materialize the incremental denial views *before* replay, so the
     replay deltas must maintain them (and the recovery post-check reads
     the maintained views, not a recompute) *)
  Repository.set_incremental repo true;
  ignore (Repository.check_incremental repo : string list);
  if Sys.file_exists jpath then begin
    let rr = J.read jpath in
    let skip =
      match meta with Some m -> Repository.recover_skip m rr | None -> 0
    in
    let r = Repository.recover ~skip rr repo in
    Alcotest.(check (list (pair int string)))
      (ctx ^ ": replay is clean") [] r.Repository.replay_errors;
    Alcotest.(check (list string))
      (ctx ^ ": recovered state is consistent") []
      r.Repository.post_violations
  end;
  (* no stale materialized state survives a crash: the event-maintained
     store equals a from-scratch re-shred, and the delta-maintained
     views equal a from-scratch recompute *)
  let module Store = Xic_datalog.Store in
  checkb
    (ctx ^ ": maintained store = re-shred")
    true
    (Store.equal (Repository.store repo)
       (Xic_relmap.Shred.shred
          (Schema.mapping (Repository.schema repo))
          (Repository.doc repo)));
  let maintained =
    match Repository.incr_view repo with
    | Some v -> Store.freeze v
    | None -> Alcotest.fail (ctx ^ ": incremental views were dropped")
  in
  let verdict = Repository.check_incremental repo in
  Repository.set_incremental repo false;  (* drop the views... *)
  Repository.set_incremental repo true;
  let verdict' = Repository.check_incremental repo in  (* ...recompute *)
  Alcotest.(check (list string))
    (ctx ^ ": maintained verdict = recomputed verdict") verdict' verdict;
  (match Repository.incr_view repo with
   | Some fresh ->
     checkb
       (ctx ^ ": maintained views = recomputed views")
       true
       (Store.equal maintained fresh)
   | None -> Alcotest.fail (ctx ^ ": recompute produced no views"));
  xml repo

(* ------------------------------------------------------------------ *)
(* The crash sweep                                                     *)
(* ------------------------------------------------------------------ *)

(* Mediated write sites get a torn write (partial bytes, then the
   crash); everything else a plain in-process crash. *)
let action_for = function
  | "journal_write" | "snapshot_write" ->
    FP.Torn_write { keep = 0.5; crash = false }
  | _ -> FP.Raise

let is_crash = function
  | FP.Triggered _ | J.Journal_error _ | Snap.Snapshot_error (_, _)
  | AF.Atomic_file_error _ | Repository.Repository_error _
  | Unix.Unix_error _ -> true
  | _ -> false

let cleanup path = if Sys.file_exists path then Sys.remove path

let run_sweep seed =
  let st = Random.State.make [| 0x7041c3; seed |] in
  let ops = gen_ops st 12 in
  let golden = golden_states ~seed ops in
  let n = List.length ops in
  List.iter
    (fun site ->
      let ctx = Printf.sprintf "seed %d, crash at %s" seed site in
      let tag = Printf.sprintf "torture_%d_%s" seed site in
      let jpath = Test_tmp.file (tag ^ ".j")
      and spath = Test_tmp.file (tag ^ ".xis") in
      cleanup jpath;
      cleanup spath;
      FP.set ~action:(action_for site) ~after:(seed mod 3) site;
      let confirmed = ref 0 in
      let handle = ref None in
      (try
         let repo = base_repo () in
         let j = J.open_ jpath in
         handle := Some j;
         List.iter
           (fun op ->
             exec ~ctx ~seed ~snapshot:(Some spath) repo (Some j) op;
             incr confirmed)
           ops
       with e when is_crash e -> ());
      FP.clear ();
      (match !handle with
       | Some j -> ( try J.close j with J.Journal_error _ -> ())
       | None -> ());
      let recovered = recover_state ~ctx jpath spath in
      (* every confirmed op is durable; at most the op in flight at the
         crash may additionally have committed (its record reached the
         file before e.g. the fsync-site crash) *)
      let acceptable =
        recovered = golden.(!confirmed)
        || (!confirmed < n && recovered = golden.(!confirmed + 1))
      in
      if not acceptable then
        Alcotest.fail
          (Printf.sprintf
             "%s: recovered state matches no committed prefix (confirmed %d/%d)"
             ctx !confirmed n);
      cleanup jpath;
      cleanup spath)
    (FP.known ())

(* The registry must expose the full durability crash surface: the
   sweep is meaningless if module initialization stopped declaring. *)
let test_crash_surface_registered () =
  let known = FP.known () in
  List.iter
    (fun site ->
      checkb ("site registered: " ^ site) true (List.mem site known))
    [ "before_apply"; "after_apply"; "before_commit"; "mid_write";
      "journal_write"; "journal_fsync"; "journal_reset";
      "journal_reset_rename"; "checkpoint_truncate"; "snapshot_write";
      "snapshot_fsync"; "snapshot_rename"; "snapshot_dirsync";
      "snapshot_read" ];
  checkb "at least a dozen sites" true (List.length known >= 12)

(* ------------------------------------------------------------------ *)
(* I/O-error resilience (faults that must NOT lose the workload)       *)
(* ------------------------------------------------------------------ *)

let test_injected_eio_absorbed () =
  let seed = 9001 in
  let st = Random.State.make [| 0x7041c3; seed |] in
  let ops = gen_ops st 8 in
  let golden = golden_states ~seed ops in
  let jpath = Test_tmp.file "torture_eio.j"
  and spath = Test_tmp.file "torture_eio.xis" in
  cleanup jpath;
  cleanup spath;
  FP.set ~action:(FP.Eio { failures = 2 }) "journal_write";
  FP.set ~action:(FP.Eio { failures = 2 }) "snapshot_write";
  FP.set ~action:(FP.Delay { ms = 1.0 }) "before_commit";
  (Fun.protect ~finally:FP.clear @@ fun () ->
   let repo = base_repo () in
   let j = J.open_ jpath in
   List.iter
     (fun op -> exec ~ctx:"eio" ~seed ~snapshot:(Some spath) repo (Some j) op)
     ops;
   J.close j;
   checks "bounded retries absorb injected EIO" golden.(List.length ops)
     (xml repo));
  let recovered = recover_state ~ctx:"eio" jpath spath in
  checks "and the journal survives too" golden.(List.length ops) recovered;
  checkb "retries were actually exercised" true
    (Xic_obs.Obs.Metrics.(value (counter "io_retries")) > 0);
  cleanup jpath;
  cleanup spath

(* Exhausting the retry budget surfaces the error instead of spinning. *)
let test_eio_exhaustion_fails_cleanly () =
  let jpath = Test_tmp.file "torture_eio_exhaust.j" in
  cleanup jpath;
  let repo = base_repo () in
  let j = J.open_ jpath in
  FP.set ~action:(FP.Eio { failures = 99 }) "journal_write";
  (Fun.protect ~finally:FP.clear @@ fun () ->
   match Repository.guarded_update ~journal:j repo (legal_u 0 1) with
   | exception J.Journal_error _ -> ()
   | exception Unix.Unix_error (Unix.EIO, _, _) -> ()
   | _ -> Alcotest.fail "unbounded EIO must surface an error");
  (try J.close j with J.Journal_error _ -> ());
  (* the journal still recovers to the pre-update state *)
  let recovered =
    recover_state ~ctx:"eio-exhaust" jpath (Test_tmp.file "no_snapshot.xis")
  in
  checks "no partial state" (xml (base_repo ())) recovered;
  cleanup jpath

let () =
  let sweep =
    List.init seeds (fun s ->
        Alcotest.test_case (Printf.sprintf "seed %d" s) `Quick (fun () ->
            run_sweep s))
  in
  Alcotest.run "torture"
    [
      ( "crash surface",
        [ Alcotest.test_case "sites declared" `Quick
            test_crash_surface_registered ] );
      ("crash sweep", sweep);
      ( "io resilience",
        [
          Alcotest.test_case "injected EIO absorbed" `Quick
            test_injected_eio_absorbed;
          Alcotest.test_case "EIO exhaustion" `Quick
            test_eio_exhaustion_fails_cleanly;
        ] );
    ]
