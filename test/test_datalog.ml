module T = Xic_datalog.Term
module P = Xic_datalog.Parser
module S = Xic_datalog.Store
module E = Xic_datalog.Eval
module Sub = Xic_datalog.Subsume

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let i n = T.Int n
let s x = T.Str x

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_basic () =
  let st = S.create () in
  S.add st "p" [ i 1; s "a" ];
  S.add st "p" [ i 2; s "b" ];
  S.add st "q" [ i 1 ];
  checki "cardinality p" 2 (S.cardinality st "p");
  checki "total" 3 (S.total_tuples st);
  Alcotest.(check (list string)) "relations" [ "p"; "q" ] (S.relations st);
  checkb "mem" true (S.mem st "p" [ i 1; s "a" ]);
  checkb "not mem" false (S.mem st "p" [ i 1; s "b" ])

let test_store_remove () =
  let st = S.create () in
  S.add st "p" [ i 1; s "a" ];
  S.add st "p" [ i 1; s "a" ];
  checkb "remove one" true (S.remove st "p" [ i 1; s "a" ]);
  checki "bag semantics" 1 (S.cardinality st "p");
  checkb "remove second" true (S.remove st "p" [ i 1; s "a" ]);
  checkb "remove missing" false (S.remove st "p" [ i 1; s "a" ]);
  checki "empty" 0 (S.cardinality st "p")

let test_store_index () =
  let st = S.create () in
  for k = 1 to 100 do
    S.add st "p" [ i k; s "x" ]
  done;
  checki "indexed lookup" 1 (List.length (S.tuples_with_key st "p" (i 42)));
  S.add st "p" [ i 42; s "y" ];
  checki "two under key" 2 (List.length (S.tuples_with_key st "p" (i 42)))

let test_store_copy_equal () =
  let st = S.of_facts [ ("p", [ i 1 ]); ("q", [ i 2; s "b" ]) ] in
  let st' = S.copy st in
  checkb "copies equal" true (S.equal st st');
  S.add st' "p" [ i 9 ];
  checkb "diverged" false (S.equal st st');
  (* ...and the fork is two-way: the original keeps mutating too *)
  S.add st "q" [ i 3; s "c" ];
  checkb "fork isolated" false (S.mem st' "q" [ i 3; s "c" ])

let frozen_exn = Invalid_argument
    "Xic_datalog.Store: frozen generation handles are immutable"

let test_store_freeze () =
  let st = S.of_facts [ ("p", [ i 1 ]); ("p", [ i 1 ]); ("q", [ i 2; s "b" ]) ] in
  let g = S.freeze st in
  checkb "handle frozen" true (S.is_frozen g);
  checkb "writer not frozen" false (S.is_frozen st);
  checkb "handle equal" true (S.equal st g);
  Alcotest.check_raises "add raises" frozen_exn (fun () ->
    S.add g "p" [ i 9 ]);
  Alcotest.check_raises "remove raises" frozen_exn (fun () ->
    ignore (S.remove g "p" [ i 1 ]));
  Alcotest.check_raises "compact raises" frozen_exn (fun () ->
    S.compact g);
  (* the handle still serves indexed reads, privately *)
  checki "indexed read" 2 (List.length (S.tuples_with_key g "p" (i 1)));
  (* writer churn is invisible to the handle *)
  ignore (S.remove st "p" [ i 1 ]);
  S.add st "q" [ i 7; s "z" ];
  checki "handle p stable" 2 (S.cardinality g "p");
  checkb "handle q stable" false (S.mem g "q" [ i 7; s "z" ]);
  (* a fresh suffix-sharing handle costs no unshared heap *)
  checki "pristine pin is free" 0 (S.unshared_bytes ~live:st (S.freeze st))

(* ------------------------------------------------------------------ *)
(* Parser and printing                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_denial () =
  let d = P.parse_denial {| :- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R) |} in
  checki "three literals" 3 (List.length d.T.body);
  checks "printed" ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)"
    (T.denial_str d)

let test_parse_features () =
  let d = P.parse_denial {| :- p(%i, "x", 3), Y != %t, cnt(q(_, Y)) > 4, not r(Y) |} in
  checki "four literals" 4 (List.length d.T.body);
  Alcotest.(check (list string)) "params" [ "i"; "t" ] (T.denial_params d)

let test_parse_anon_distinct () =
  (* each _ is a fresh variable: p(_, _) must not force equal columns *)
  let d = P.parse_denial {| :- p(_, _) |} in
  let st = S.of_facts [ ("p", [ i 1; i 2 ]) ] in
  checkb "anonymous are independent" true (E.violated st d)

let test_parse_errors () =
  let fails x =
    match P.parse_denial x with exception P.Parse_error _ -> true | _ -> false
  in
  checkb "bare lowercase term" true (fails ":- p(X), X = abc");
  checkb "unclosed" true (fails ":- p(X");
  checkb "missing cmp" true (fails ":- X Y");
  checkb "trailing" true (fails ":- p(X) p(Y)")

let test_roundtrip () =
  List.iter
    (fun src ->
      let d = P.parse_denial src in
      let d2 = P.parse_denial (T.denial_str d) in
      checkb src true (Sub.variant d d2))
    [
      ":- p(X, Y), p(X, Z), Y != Z";
      ":- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 4";
      ":- q(X), sum(V; r(X, V)) >= 10";
      ":- person(%i, N), N != %n";
      ":- p(X), not q(X)";
      ":- cntd(It; track(It, _, _, _), rev(_, _, It, R)) > 3, rev(_, _, _, R)";
    ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let issn_store () =
  S.of_facts
    [ ("p", [ s "i1"; s "A" ]); ("p", [ s "i2"; s "B" ]); ("p", [ s "i3"; s "C" ]) ]

let test_eval_join () =
  let st = issn_store () in
  let d = P.parse_denial ":- p(X, Y), p(X, Z), Y != Z" in
  checkb "consistent" false (E.violated st d);
  S.add st "p" [ s "i1"; s "D" ];
  checkb "violated after dup" true (E.violated st d)

let test_eval_constants () =
  let st = issn_store () in
  checkb "constant match" true (E.violated st (P.parse_denial {| :- p("i2", _) |}));
  checkb "constant miss" false (E.violated st (P.parse_denial {| :- p("i9", _) |}))

let test_eval_negation () =
  let st = issn_store () in
  checkb "not finds missing" true
    (E.violated st (P.parse_denial {| :- p(X, _), not p(X, "A") |}));
  S.add st "q" [ s "i1" ];
  checkb "anti-join" true
    (E.violated st (P.parse_denial {| :- p(X, _), not q(X) |}))

let test_eval_negation_local_vars () =
  (* negation with purely-local anonymous variables: ¬∃ semantics *)
  let st = S.of_facts [ ("r", [ i 1 ]); ("w", [ i 2; i 9 ]) ] in
  checkb "no w for r=1" true
    (E.violated st (P.parse_denial ":- r(X), not w(X, _)"));
  S.add st "w" [ i 1; i 5 ];
  checkb "now satisfied" false
    (E.violated st (P.parse_denial ":- r(X), not w(X, _)"))

let test_eval_comparison_binding () =
  let st = issn_store () in
  checkb "eq binds" true (E.violated st (P.parse_denial {| :- p(X, Y), Y = "B" |}));
  checkb "order-insensitive" true
    (E.violated st (P.parse_denial {| :- Y = "B", p(X, Y) |}))

let test_eval_cmp_ops () =
  let st = S.of_facts [ ("n", [ i 5 ]) ] in
  let t op expect = checkb op expect (E.violated st (P.parse_denial (":- n(X), X " ^ op ^ " 5"))) in
  t "=" true; t "!=" false; t "<" false; t "<=" true; t ">" false; t ">=" true

let test_eval_params () =
  let st = issn_store () in
  let d = P.parse_denial {| :- p(%i, Y), Y != %t |} in
  checkb "param hit" true
    (E.violated ~params:[ ("i", s "i1"); ("t", s "Z") ] st d);
  checkb "param miss" false
    (E.violated ~params:[ ("i", s "i1"); ("t", s "A") ] st d);
  (match E.violated st d with
   | exception E.Unsafe _ -> ()
   | _ -> Alcotest.fail "unresolved params must be rejected")

let test_eval_violations_all () =
  let st = issn_store () in
  let d = P.parse_denial ":- p(X, _)" in
  checki "three witnesses" 3 (List.length (E.violations st d))

let test_eval_unsafe () =
  let st = issn_store () in
  (match E.violated st (P.parse_denial ":- X != Y") with
   | exception E.Unsafe _ -> ()
   | _ -> Alcotest.fail "unbound comparison must be unsafe")

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let agg_store () =
  S.of_facts
    [
      ("rev", [ i 1; i 1; i 0; s "G" ]);
      ("rev", [ i 2; i 2; i 0; s "M" ]);
      ("sub", [ i 10; i 1; i 1; s "T1" ]);
      ("sub", [ i 11; i 2; i 1; s "T2" ]);
      ("sub", [ i 12; i 3; i 1; s "T3" ]);
      ("sub", [ i 13; i 1; i 2; s "T4" ]);
    ]

let test_agg_cnt () =
  let st = agg_store () in
  checkb "cnt > 2 for rev 1" true
    (E.violated st (P.parse_denial ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) > 2"));
  checkb "cnt > 3 nobody" false
    (E.violated st (P.parse_denial ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) > 3"))

let test_agg_cntd_distinct () =
  let st = agg_store () in
  (* duplicate tuple counts twice for cnt, once for cntd *)
  S.add st "sub" [ i 13; i 1; i 2; s "T4" ];
  checkb "cnt sees dup" true
    (E.violated st (P.parse_denial ":- rev(Ir, _, _, M), M = \"M\", cnt(sub(_, _, Ir, _)) > 1"));
  checkb "cntd ignores dup" false
    (E.violated st (P.parse_denial ":- rev(Ir, _, _, M), M = \"M\", cntd(sub(_, _, Ir, _)) > 1"))

let test_agg_target_distinct () =
  let st =
    S.of_facts
      [ ("e", [ i 1; s "x" ]); ("e", [ i 2; s "x" ]); ("e", [ i 3; s "y" ]) ]
  in
  checkb "cntd over target var" true
    (E.violated st (P.parse_denial ":- cntd(V; e(_, V)) = 2, e(_, _)"))

let test_agg_sum_max_min () =
  let st = S.of_facts [ ("v", [ i 1; i 10 ]); ("v", [ i 2; i 30 ]); ("v", [ i 3; i 10 ]) ] in
  checkb "sum" true (E.violated st (P.parse_denial ":- sum(X; v(_, X)) = 50, v(_, _)"));
  checkb "sumd" true (E.violated st (P.parse_denial ":- sumd(X; v(_, X)) = 40, v(_, _)"));
  checkb "max" true (E.violated st (P.parse_denial ":- max(X; v(_, X)) = 30, v(_, _)"));
  checkb "min" true (E.violated st (P.parse_denial ":- min(X; v(_, X)) = 10, v(_, _)"))

let test_agg_multi_atom_join () =
  (* the Example 2 shape: distinct tracks a reviewer name serves in *)
  let st =
    S.of_facts
      [
        ("track", [ i 1; i 1; i 0; s "DB" ]);
        ("track", [ i 2; i 2; i 0; s "IR" ]);
        ("rev", [ i 10; i 1; i 1; s "G" ]);
        ("rev", [ i 11; i 1; i 2; s "G" ]);
        ("rev", [ i 12; i 2; i 2; s "M" ]);
      ]
  in
  let d k =
    P.parse_denial
      (Printf.sprintf
         ":- rev(_, _, _, R), cntd(It; track(It, _, _, _), rev(_, _, It, R)) > %d" k)
  in
  checkb "G serves 2 tracks" true (E.violated st (d 1));
  checkb "nobody serves 3" false (E.violated st (d 2))

let test_agg_empty_group () =
  let st = S.of_facts [ ("rev", [ i 1; i 1; i 0; s "G" ]) ] in
  checkb "cnt over empty = 0" true
    (E.violated st (P.parse_denial ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) = 0"))

(* ------------------------------------------------------------------ *)
(* Subsumption                                                         *)
(* ------------------------------------------------------------------ *)

let sub_test phi psi expect () =
  checkb
    (Printf.sprintf "%s subsumes %s" phi psi)
    expect
    (Sub.subsumes (P.parse_denial phi) (P.parse_denial psi))

let test_subsume_instance = sub_test ":- p(X, Y)" {| :- p("a", Z), q(Z) |} true
let test_subsume_reverse = sub_test {| :- p("a", Z), q(Z) |} ":- p(X, Y)" false
let test_subsume_join = sub_test ":- p(X), q(X)" ":- p(Y), q(Y), r(Y)" true
let test_subsume_join_fail = sub_test ":- p(X), q(X)" ":- p(Y), q(Z)" false
let test_subsume_param = sub_test ":- p(%i, _)" ":- p(%i, Y), q(Y)" true
let test_subsume_param_mismatch = sub_test ":- p(%i, _)" ":- p(%j, Y)" false

let test_subsume_cmp_symmetry () =
  checkb "eq sym" true
    (Sub.subsumes (P.parse_denial ":- p(X, Y), X = Y") (P.parse_denial ":- p(A, B), B = A"));
  checkb "neq sym" true
    (Sub.subsumes (P.parse_denial ":- p(X, Y), X != Y") (P.parse_denial ":- p(A, B), B != A"))

let test_subsume_cmp_normalize () =
  checkb "gt as lt" true
    (Sub.subsumes (P.parse_denial ":- p(X, Y), X < Y") (P.parse_denial ":- p(A, B), B > A"))

let test_subsume_agg_weakening () =
  let phi = P.parse_denial ":- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 3" in
  let psi = P.parse_denial ":- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 4" in
  checkb "weaker bound subsumes" true (Sub.subsumes phi psi);
  checkb "not conversely" false (Sub.subsumes psi phi)

let test_variant () =
  let a = P.parse_denial ":- p(X, Y), q(Y)" in
  let b = P.parse_denial ":- p(U, V), q(V)" in
  checkb "variants" true (Sub.variant a b);
  let c = P.parse_denial ":- p(X, X), q(X)" in
  checkb "not variant" false (Sub.variant a c)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random ground stores over p/2, q/1 with small constants. *)
let gen_store =
  let open QCheck2.Gen in
  let const = map (fun n -> i n) (int_bound 3) in
  let fact =
    oneof
      [ map2 (fun a b -> ("p", [ a; b ])) const const;
        map (fun a -> ("q", [ a ])) const ]
  in
  map S.of_facts (list_size (int_bound 12) fact)

let prop_violation_is_witness =
  QCheck2.Test.make ~name:"violation returns a real witness" ~count:200 gen_store
    (fun st ->
      let d = P.parse_denial ":- p(X, Y), q(Y)" in
      match E.violation st d with
      | None -> not (E.violated st d)
      | Some binds ->
        let x = List.assoc "X" binds and y = List.assoc "Y" binds in
        S.mem st "p" [ x; y ] && S.mem st "q" [ y ])

let prop_subsumption_semantic =
  (* if phi subsumes psi then every store violating psi violates phi *)
  QCheck2.Test.make ~name:"subsumption implies semantic entailment" ~count:200
    gen_store (fun st ->
      let phi = P.parse_denial ":- p(X, Y)" in
      let psi = P.parse_denial ":- p(X, X), q(X)" in
      (not (Sub.subsumes phi psi)) || (not (E.violated st psi)) || E.violated st phi)

let prop_cnt_matches_length =
  QCheck2.Test.make ~name:"cnt agrees with tuple count" ~count:200 gen_store
    (fun st ->
      let n = S.cardinality st "p" in
      let d = P.parse_denial (Printf.sprintf ":- q(_), cnt(p(_, _)) != %d" n) in
      (* if q is non-empty the aggregate literal must match exactly n *)
      S.cardinality st "q" = 0 || not (E.violated st d))

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

(* The solver's answer must not depend on body literal order. *)
let prop_order_independence =
  let open QCheck2.Gen in
  let shuffled_pair =
    let body = ":- p(X, Y), q(Y), X != Y, not p(Y, X)" in
    map (fun seed -> (body, seed)) (int_bound 1000)
  in
  QCheck2.Test.make ~name:"literal order independence" ~count:200
    (QCheck2.Gen.pair gen_store shuffled_pair)
    (fun (st, (body, seed)) ->
      let d = P.parse_denial body in
      let permuted =
        (* deterministic pseudo-shuffle of the body by the seed *)
        let arr = Array.of_list d.T.body in
        let n = Array.length arr in
        let s = ref seed in
        for i = n - 1 downto 1 do
          s := ((!s * 48271) + 11) mod 233280;
          let j = !s mod (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        { d with T.body = Array.to_list arr }
      in
      E.violated st d = E.violated st permuted)

(* A frozen generation must be bit-stable — byte-identical serialized
   image — under arbitrary writer mutations, including the compactions
   they trigger; and rolling every mutation back (inverse ops, reverse
   order — exactly what [Repository.rollback] replays) must bring the
   writer back to multiset equality with the generation. *)
let prop_frozen_generation_stable =
  let open QCheck2.Gen in
  let const = map (fun n -> i n) (int_bound 3) in
  let fact =
    oneof
      [ map2 (fun a b -> ("p", [ a; b ])) const const;
        map (fun a -> ("q", [ a ])) const ]
  in
  let op =
    frequency
      [ (4, map (fun f -> `Add f) fact);
        (3, map (fun f -> `Remove f) fact);
        (1, return `Clear_q);
        (1, return `Compact) ]
  in
  QCheck2.Test.make ~name:"frozen generation bit-stable under writer churn"
    ~count:200
    (pair gen_store (list_size (int_bound 24) op))
    (fun (st, ops) ->
      let image s =
        let b = Buffer.create 256 in
        S.serialize s b;
        Buffer.contents b
      in
      let gen = S.freeze st in
      let before = image gen in
      let undo =
        List.filter_map
          (fun op ->
            match op with
            | `Add (p, tup) ->
              S.add st p tup;
              Some (`Unadd (p, tup))
            | `Remove (p, tup) ->
              if S.remove st p tup then Some (`Unremove (p, tup)) else None
            | `Clear_q ->
              let saved = S.tuples st "q" in
              S.clear_sym st (Xic_symbol.Symbol.intern "q");
              Some (`Unclear saved)
            | `Compact ->
              S.compact st;
              None)
          ops
      in
      let mid = image gen in
      List.iter
        (fun u ->
          match u with
          | `Unadd (p, tup) -> ignore (S.remove st p tup)
          | `Unremove (p, tup) -> S.add st p tup
          | `Unclear saved -> List.iter (S.add st "q") saved)
        (List.rev undo);
      let after = image gen in
      S.is_frozen gen
      && String.equal before mid
      && String.equal before after
      && S.equal st gen)

let test_eval_param_only_atom () =
  let st = S.of_facts [ ("p", [ i 7 ]) ] in
  let d = P.parse_denial ":- p(%k)" in
  checkb "hit" true (E.violated ~params:[ ("k", i 7) ] st d);
  checkb "miss" false (E.violated ~params:[ ("k", i 8) ] st d)

let test_eval_cross_product () =
  (* no shared variables: plain cross product must still work *)
  let st = S.of_facts [ ("p", [ i 1 ]); ("q", [ i 2 ]) ] in
  checkb "cross" true (E.violated st (P.parse_denial ":- p(X), q(Y)"))

let test_eval_self_join_same_tuple () =
  (* p(X,Y), p(Y,X) satisfied by a symmetric pair or a diagonal tuple *)
  let st = S.of_facts [ ("p", [ i 1; i 2 ]) ] in
  checkb "no symmetric pair" false (E.violated st (P.parse_denial ":- p(X, Y), p(Y, X)"));
  S.add st "p" [ i 2; i 1 ];
  checkb "symmetric pair" true (E.violated st (P.parse_denial ":- p(X, Y), p(Y, X)"))

let test_eval_agg_bound_from_var () =
  (* the aggregate bound may be a variable bound by another literal *)
  let st = S.of_facts [ ("lim", [ i 2 ]); ("p", [ i 1 ]); ("p", [ i 2 ]); ("p", [ i 3 ]) ] in
  checkb "bound from relation" true
    (E.violated st (P.parse_denial ":- lim(K), cnt(p(_)) > K"))

let test_subsume_not_literal () =
  let phi = P.parse_denial ":- p(X), not q(X)" in
  let psi = P.parse_denial ":- p(Y), not q(Y), r(Y)" in
  checkb "negation matched" true (Sub.subsumes phi psi);
  let psi2 = P.parse_denial ":- p(Y), q(Y)" in
  checkb "polarity respected" false (Sub.subsumes phi psi2)

let test_subsume_multiset () =
  (* two distinct literals of phi may map onto one literal of psi *)
  let phi = P.parse_denial ":- p(X, Y), p(Z, Y)" in
  let psi = P.parse_denial ":- p(A, B)" in
  checkb "non-injective map" true (Sub.subsumes phi psi)

let test_rename_apart () =
  let d = P.parse_denial ":- p(X), q(X)" in
  let r = Xic_datalog.Subst.rename_denial d in
  checkb "still a variant" true (Sub.variant d r);
  checkb "no shared names" true
    (List.for_all (fun v -> not (List.mem v (T.denial_vars d))) (T.denial_vars r))

let test_params_partial_application () =
  let d = P.parse_denial ":- p(%a, %b)" in
  let d' = Xic_datalog.Subst.apply_params_denial [ ("a", i 1) ] d in
  Alcotest.(check (list string)) "b remains" [ "b" ] (T.denial_params d')

let () =
  Alcotest.run "datalog"
    [
      ( "store",
        [
          Alcotest.test_case "basic" `Quick test_store_basic;
          Alcotest.test_case "remove" `Quick test_store_remove;
          Alcotest.test_case "index" `Quick test_store_index;
          Alcotest.test_case "copy/equal" `Quick test_store_copy_equal;
          Alcotest.test_case "freeze" `Quick test_store_freeze;
        ] );
      ( "parser",
        [
          Alcotest.test_case "denial" `Quick test_parse_denial;
          Alcotest.test_case "features" `Quick test_parse_features;
          Alcotest.test_case "anonymous vars" `Quick test_parse_anon_distinct;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "constants" `Quick test_eval_constants;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "negation locals" `Quick test_eval_negation_local_vars;
          Alcotest.test_case "comparison binding" `Quick test_eval_comparison_binding;
          Alcotest.test_case "comparison ops" `Quick test_eval_cmp_ops;
          Alcotest.test_case "parameters" `Quick test_eval_params;
          Alcotest.test_case "all violations" `Quick test_eval_violations_all;
          Alcotest.test_case "unsafe" `Quick test_eval_unsafe;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "cnt" `Quick test_agg_cnt;
          Alcotest.test_case "cntd distinct" `Quick test_agg_cntd_distinct;
          Alcotest.test_case "cntd target" `Quick test_agg_target_distinct;
          Alcotest.test_case "sum/max/min" `Quick test_agg_sum_max_min;
          Alcotest.test_case "multi-atom join" `Quick test_agg_multi_atom_join;
          Alcotest.test_case "empty group" `Quick test_agg_empty_group;
        ] );
      ( "subsumption",
        [
          Alcotest.test_case "instance" `Quick test_subsume_instance;
          Alcotest.test_case "reverse" `Quick test_subsume_reverse;
          Alcotest.test_case "join" `Quick test_subsume_join;
          Alcotest.test_case "join fail" `Quick test_subsume_join_fail;
          Alcotest.test_case "param" `Quick test_subsume_param;
          Alcotest.test_case "param mismatch" `Quick test_subsume_param_mismatch;
          Alcotest.test_case "cmp symmetry" `Quick test_subsume_cmp_symmetry;
          Alcotest.test_case "cmp normalize" `Quick test_subsume_cmp_normalize;
          Alcotest.test_case "agg weakening" `Quick test_subsume_agg_weakening;
          Alcotest.test_case "variants" `Quick test_variant;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "param-only atom" `Quick test_eval_param_only_atom;
          Alcotest.test_case "cross product" `Quick test_eval_cross_product;
          Alcotest.test_case "self join" `Quick test_eval_self_join_same_tuple;
          Alcotest.test_case "agg bound from var" `Quick test_eval_agg_bound_from_var;
          Alcotest.test_case "subsume negation" `Quick test_subsume_not_literal;
          Alcotest.test_case "subsume multiset" `Quick test_subsume_multiset;
          Alcotest.test_case "rename apart" `Quick test_rename_apart;
          Alcotest.test_case "partial params" `Quick test_params_partial_application;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_violation_is_witness;
          QCheck_alcotest.to_alcotest prop_subsumption_semantic;
          QCheck_alcotest.to_alcotest prop_cnt_matches_length;
          QCheck_alcotest.to_alcotest prop_order_independence;
          QCheck_alcotest.to_alcotest prop_frozen_generation_stable;
        ] );
    ]
