Durability end to end: write-ahead journaling, crash injection via
XIC_FAILPOINT, and recovery.

  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track*)>
  > <!ELEMENT track (name, rev*)>
  > <!ELEMENT rev (name, sub*)>
  > <!ELEMENT sub (title, auts)>
  > <!ELEMENT auts (name+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT title (#PCDATA)>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>First</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> R
  > XEOF
  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ cat > good.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF

A journaled update that commits can be replayed against the base
documents:

  $ xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal wal.j
  applied (validated by the optimized pre-check)
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal wal.j --output rec
  replayed 1 transaction(s), 1 statement(s); discarded 0
  wrote rec.0.xml
  $ grep -c Fresh rec.0.xml
  1

A crash after the statement executed but before the commit record: the
in-flight transaction is discarded and recovery yields the pre-update
state.

  $ XIC_FAILPOINT=after_apply xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal crash.j
  [42]
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal crash.j --output crashrec
  replayed 0 transaction(s), 0 statement(s); discarded 1
  wrote crashrec.0.xml
  $ grep -c Fresh crashrec.0.xml
  0
  [1]

A crash in the middle of a record write leaves a torn tail, which
recovery (and re-opening for append) discards:

  $ XIC_FAILPOINT=mid_write xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal torn.j
  [42]
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal torn.j
  discarded a torn record at the end of the journal
  replayed 0 transaction(s), 0 statement(s); discarded 0

Multi-statement transactions journal as one atomic unit:

  $ cat > good2.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Next</title><auts><name>Kim</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck txn --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --update good2.xml --journal txn.j
  statement 1 (good.xml): applied (validated by the optimized pre-check)
  statement 2 (good2.xml): applied (validated by the optimized pre-check)
  transaction committed (2 statements)
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal txn.j --output txnrec
  replayed 1 transaction(s), 2 statement(s); discarded 0
  wrote txnrec.0.xml
  $ grep -c 'Fresh\|Next' txnrec.0.xml
  2

An aborted transaction is journaled but never replayed:

  $ xicheck txn --abort --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --journal abort.j
  statement 1 (good.xml): applied (validated by the optimized pre-check)
  transaction rolled back
  $ xicheck recover --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --journal abort.j
  replayed 0 transaction(s), 0 statement(s); discarded 1

An exhausted evaluation budget degrades the optimized pre-check to the
full check — the update still goes through, and the report says so:

  $ xicheck guard --dtd rev.dtd=review --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --eval-budget 1
  note: optimized check conflict degraded (step budget exhausted)
  applied (validated by the full check)
