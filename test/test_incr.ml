(* QCheck properties for the delta algebra (lib/datalog/delta.ml) and
   the incremental maintenance layer behind [Repository.set_incremental]:

   - a fact inserted and then deleted inside one batch nets to nothing;
   - the net multiset matches a reference counting model;
   - one batch delta equals the sequential composition of its split;
   - the lazy any-column store index is an exact column filter;
   - savepoint rollback restores the pre-savepoint materialization;
   - journal recovery replay maintains the same views as the live run. *)

module Store = Xic_datalog.Store
module Delta = Xic_datalog.Delta
module Term = Xic_datalog.Term
module Symbol = Xic_symbol.Symbol
open Xic_core
module Conf = Xic_workload.Conference
module Prng = Xic_workload.Prng
module XU = Xic_xupdate.Xupdate
module XP = Xic_xpath
module J = Xic_journal.Journal

(* ------------------------------------------------------------------ *)
(* Delta algebra                                                       *)
(* ------------------------------------------------------------------ *)

let syms = [| Symbol.intern "p"; Symbol.intern "q" |]

(* (add?, relation, tuple) over two relations and tiny constants, so
   collisions — the interesting case — are frequent. *)
let gen_op =
  let open QCheck2.Gen in
  let const = map (fun n -> Term.Int n) (int_bound 2) in
  map3
    (fun add s t -> (add, s, t))
    bool (int_bound 1)
    (list_size (return 2) const)

let gen_ops = QCheck2.Gen.(list_size (int_bound 24) gen_op)

let apply_ops d ops =
  List.iter
    (fun (add, s, tup) ->
      if add then Delta.add d syms.(s) tup else Delta.remove d syms.(s) tup)
    ops

let prop_cancellation =
  QCheck2.Test.make ~name:"insert then delete cancels" ~count:300 gen_ops
    (fun ops ->
      let d = Delta.create () in
      List.iter (fun (_, s, tup) -> Delta.add d syms.(s) tup) ops;
      List.iter (fun (_, s, tup) -> Delta.remove d syms.(s) tup) ops;
      Delta.is_empty d
      && Delta.added d = []
      && Delta.removed d = []
      && Delta.touched d = []
      && Delta.gross_added d = List.length ops
      && Delta.gross_removed d = List.length ops)

let prop_net_model =
  QCheck2.Test.make ~name:"net multiset matches counting model" ~count:300
    gen_ops (fun ops ->
      let d = Delta.create () in
      apply_ops d ops;
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, s, tup) ->
          let k = (s, tup) in
          let c = try Hashtbl.find model k with Not_found -> 0 in
          Hashtbl.replace model k (if add then c + 1 else c - 1))
        ops;
      let expect pos =
        Hashtbl.fold
          (fun (s, tup) c acc ->
            if (pos && c > 0) || ((not pos) && c < 0) then
              (syms.(s), tup, abs c) :: acc
            else acc)
          model []
      in
      let sort = List.sort compare in
      sort (Delta.added d) = sort (expect true)
      && sort (Delta.removed d) = sort (expect false))

let prop_compose =
  QCheck2.Test.make ~name:"batch delta = sequential composition" ~count:300
    QCheck2.Gen.(pair gen_ops (int_bound 24))
    (fun (ops, k) ->
      let batch = Delta.create () in
      apply_ops batch ops;
      let rec split i acc rest =
        match rest with
        | tl when i = 0 -> (List.rev acc, tl)
        | [] -> (List.rev acc, [])
        | x :: tl -> split (i - 1) (x :: acc) tl
      in
      let pre, suf = split (min k (List.length ops)) [] ops in
      let d1 = Delta.create () and d2 = Delta.create () in
      apply_ops d1 pre;
      apply_ops d2 suf;
      Delta.compose ~into:d1 d2;
      Delta.equal d1 batch
      && Delta.gross_added d1 = Delta.gross_added batch
      && Delta.gross_removed d1 = Delta.gross_removed batch)

(* The residual delta joins probe [Store.tuples_with_col]; the lazy
   secondary index must stay an exact filter on the column under
   interleaved adds and removes, whether built before or after the
   mutations. *)
let prop_col_index =
  QCheck2.Test.make ~name:"any-column index equals column filter" ~count:300
    QCheck2.Gen.(pair gen_ops (int_bound 1))
    (fun (ops, col) ->
      let s = Store.create () in
      let early = Store.create () in
      (* [early] builds the index before the mutations, [s] after. *)
      ignore (Store.tuples_with_col_sym early syms.(0) col (Term.Int 0));
      List.iter
        (fun (add, r, tup) ->
          if add then begin
            Store.add_sym s syms.(r) tup;
            Store.add_sym early syms.(r) tup
          end
          else begin
            ignore (Store.remove_sym s syms.(r) tup);
            ignore (Store.remove_sym early syms.(r) tup)
          end)
        ops;
      let sort = List.sort compare in
      List.for_all
        (fun key ->
          let expect r =
            List.filter
              (fun tup -> List.nth_opt tup col = Some (Term.Int key))
              (Store.tuples_sym r syms.(0))
            |> sort
          in
          sort (Store.tuples_with_col_sym s syms.(0) col (Term.Int key))
          = expect s
          && sort (Store.tuples_with_col_sym early syms.(0) col (Term.Int key))
             = expect early)
        [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Maintenance through the repository                                  *)
(* ------------------------------------------------------------------ *)

let names = [| "Ann"; "Bob"; "Carl"; "Dora"; "Ed" |]
let words = [| "Logic"; "Types"; "Query"; "Index" |]

let fixed_pub =
  {|<dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub><pub><title>Solo</title><aut><name>Ann</name></aut></pub></dblp>|}

let fixed_rev =
  {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev><rev><name>Rita</name><sub><title>S2</title><auts><name>Bob</name></auts></sub></rev></track></review>|}

let mk_repo () =
  let s = Conf.schema () in
  let repo = Repository.create s in
  Repository.load_document repo fixed_pub;
  Repository.load_document repo fixed_rev;
  List.iter
    (Repository.add_constraint repo)
    [ Conf.conflict s; Conf.workload s; Conf.track_load s ];
  Repository.set_incremental repo true;
  repo

let count repo path =
  List.length (XP.Eval.select (Repository.doc repo) (XP.Parser.parse path))

let random_rev_path r repo =
  let t = 1 + Prng.int r (count repo "/review/track") in
  let rv = 1 + Prng.int r (count repo (Printf.sprintf "/review/track[%d]/rev" t)) in
  Printf.sprintf "/review/track[%d]/rev[%d]" t rv

let random_sub_path r repo =
  let rev = random_rev_path r repo in
  let ns = count repo (rev ^ "/sub") in
  if ns = 0 then None
  else Some (Printf.sprintf "%s/sub[%d]" rev (1 + Prng.int r ns))

let sub_content r =
  XU.Elem
    ( "sub",
      [],
      [ XU.Elem ("title", [], [ XU.Text (Prng.pick r words) ]);
        XU.Elem
          ("auts", [], [ XU.Elem ("name", [], [ XU.Text (Prng.pick r names) ]) ])
      ] )

let random_update r repo =
  let mk op select content =
    [ { XU.op; select = XP.Parser.parse select; content } ]
  in
  match Prng.int r 4 with
  | 0 ->
    Option.map
      (fun p ->
        Conf.insert_submission ~select:p ~title:(Prng.pick r words)
          ~author:(Prng.pick r names))
      (random_sub_path r repo)
  | 1 ->
    Option.map
      (fun p -> mk XU.Insert_before p [ sub_content r ])
      (random_sub_path r repo)
  | 2 -> Some (mk XU.Append (random_rev_path r repo) [ sub_content r ])
  | _ -> Option.map (fun p -> mk XU.Remove p []) (random_sub_path r repo)

let apply_random r repo txn =
  match random_update r repo with
  | Some u -> ignore (Repository.txn_apply txn u : Repository.outcome)
  | None -> ()

let prop_savepoint_rollback =
  QCheck2.Test.make ~name:"rollback restores pre-savepoint materialization"
    ~count:40
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let r = Prng.create seed in
      let repo = mk_repo () in
      let txn = Repository.begin_txn repo in
      (* a committed-prefix update first, so the savepoint does not
         always sit at the initial state *)
      apply_random r repo txn;
      let verdict0 = Repository.check_incremental repo in
      let view0 =
        match Repository.incr_view repo with
        | Some v -> Store.freeze v
        | None -> Alcotest.fail "no materialized views"
      in
      let sp = Repository.txn_savepoint txn in
      for _ = 1 to 1 + Prng.int r 2 do
        apply_random r repo txn
      done;
      (* materialize mid-savepoint: the rollback's inverse deltas must
         retract exactly what this pass added *)
      ignore (Repository.check_incremental repo : string list);
      Repository.txn_rollback_to txn sp;
      Repository.commit_txn txn;
      let verdict1 = Repository.check_incremental repo in
      match Repository.incr_view repo with
      | Some v -> verdict0 = verdict1 && Store.equal view0 v
      | None -> false)

let prop_recovery_replay =
  QCheck2.Test.make ~name:"recovery replay maintains views like the live run"
    ~count:25
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let r = Prng.create seed in
      let live = mk_repo () in
      ignore (Repository.check_incremental live : string list);
      let path = Test_tmp.fresh "test_incr" ".j" in
      let j = J.open_ ~sync:false path in
      for _ = 1 to 1 + Prng.int r 2 do
        let txn = Repository.begin_txn ~journal:j live in
        for _ = 1 to 1 + Prng.int r 2 do
          apply_random r live txn
        done;
        if Prng.int r 4 = 0 then Repository.rollback_txn txn
        else Repository.commit_txn txn;
        ignore (Repository.check_incremental live : string list)
      done;
      J.close j;
      let fresh = mk_repo () in
      ignore (Repository.check_incremental fresh : string list);
      ignore (Repository.recover (J.read path) fresh : Repository.recovery_report);
      let live_verdict = Repository.check_incremental live in
      let fresh_verdict = Repository.check_incremental fresh in
      Sys.remove path;
      live_verdict = fresh_verdict
      &&
      match (Repository.incr_view live, Repository.incr_view fresh) with
      | Some a, Some b -> Store.equal a b
      | _ -> false)

let () =
  Alcotest.run "incr"
    [
      ( "delta algebra",
        [
          QCheck_alcotest.to_alcotest prop_cancellation;
          QCheck_alcotest.to_alcotest prop_net_model;
          QCheck_alcotest.to_alcotest prop_compose;
          QCheck_alcotest.to_alcotest prop_col_index;
        ] );
      ( "maintenance",
        [
          QCheck_alcotest.to_alcotest prop_savepoint_rollback;
          QCheck_alcotest.to_alcotest prop_recovery_replay;
        ] );
    ]
