(* Shared scratch directory for test artifacts (journals, snapshots).

   Tests used to write journals into the current working directory and
   never delete them — harmless under dune's sandbox, but `dune exec
   test/test_x.exe` (the CI oracle/torture smokes) runs in the repo
   root, which ended up littered with test_journal_*.j files.  Every
   artifact now lands in one per-process temp directory that is removed
   at exit. *)

let dir =
  lazy
    (let d =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "xic_test_%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     at_exit (fun () ->
         match Sys.readdir d with
         | files ->
           Array.iter
             (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
             files;
           (try Unix.rmdir d with Unix.Unix_error _ -> ())
         | exception Sys_error _ -> ());
     d)

let file name = Filename.concat (Lazy.force dir) name

(* Numbered fresh path, e.g. [fresh "test_journal" ".j"]. *)
let fresh =
  let n = ref 0 in
  fun prefix ext ->
    incr n;
    let p = file (Printf.sprintf "%s_%d%s" prefix !n ext) in
    if Sys.file_exists p then Sys.remove p;
    p
