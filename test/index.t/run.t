Indexed vs scan evaluation from the CLI: `--no-index` disables the
secondary indexes, `--index-stats` prints the cache counters.  Verdicts
must be identical either way.

  $ cat > pub.dtd <<'XEOF'
  > <!ELEMENT dblp (pub)*>
  > <!ELEMENT pub (title, aut+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT aut (name)>
  > <!ELEMENT name (#PCDATA)>
  > XEOF
  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track)+>
  > <!ELEMENT track (name, rev+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT rev (name, sub+)>
  > <!ELEMENT sub (title, auts+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT auts (name)>
  > XEOF
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> A and (A = R or //pub[aut/name/text() -> A and aut/name/text() -> R])
  > XEOF
  $ cat > pub.xml <<'XEOF'
  > <dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub></dblp>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF

A consistent collection: same verdict with and without the index, and the
indexed run reports its cache activity.

  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  $ xicheck check --no-index --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  $ xicheck check --index-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl | sed 's/[0-9][0-9]*/N/g'
  consistent
  index: N hits, N misses, N fallbacks
  $ xicheck check --no-index --index-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  consistent
  index: disabled

A violating collection: identical verdict and exit code on both routes.

  $ cat > broken.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>Self</title><auts><name>Nora</name></auts></sub></rev></track></review>
  > XEOF
  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc broken.xml --constraints constraints.xpl
  VIOLATED: conflict
  [1]
  $ xicheck check --no-index --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc broken.xml --constraints constraints.xpl
  VIOLATED: conflict
  [1]

Guarded updates behave identically too — a conflicting insertion is
rejected before execution on both routes.

  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ cat > bad.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Late</title><auts><name>Nora</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck guard --index-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update bad.xml | sed 's/[0-9][0-9]*/N/g'
  rejected before execution: violates conflict
  index: N hits, N misses, N fallbacks
  $ xicheck guard --no-index --index-stats --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update bad.xml
  rejected before execution: violates conflict
  index: disabled
  [1]
