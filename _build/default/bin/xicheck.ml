(* xicheck — command-line front end for the XML integrity checker.

   Subcommands:
     schema     derive and print the relational mapping of a set of DTDs
     compile    compile XPathLog constraints to Datalog and XQuery
     validate   validate documents against their DTDs
     check      evaluate constraints against documents
     simplify   simplify constraints w.r.t. an update pattern
     guard      run an XUpdate statement under integrity control
     generate   emit a synthetic conference dataset

   DTDs are given as FILE=ROOT pairs; constraints as files of XPathLog
   denials (one per line, optionally labelled "name: <- …"); update
   patterns as XUpdate statement templates whose text values may be
   %name parameters. *)

open Cmdliner
open Xic_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("xicheck: " ^ s); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let dtd_arg =
  let doc = "DTD file and its root element, as FILE=ROOT.  Repeatable." in
  Arg.(non_empty & opt_all string [] & info [ "dtd" ] ~docv:"FILE=ROOT" ~doc)

let docs_arg =
  let doc = "XML document file.  Repeatable." in
  Arg.(value & opt_all file [] & info [ "doc" ] ~docv:"FILE" ~doc)

let constraints_arg =
  let doc = "File of XPathLog denials (one per line; 'name: <- …')." in
  Arg.(value & opt (some file) None & info [ "constraints" ] ~docv:"FILE" ~doc)

let pattern_arg =
  let doc =
    "XUpdate statement template whose text values may be %name parameters; \
     used as the update pattern."
  in
  Arg.(value & opt (some file) None & info [ "pattern" ] ~docv:"FILE" ~doc)

let no_validate_arg =
  let doc = "Skip DTD validation when loading documents." in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let load_schema specs =
  let parse spec =
    match String.index_opt spec '=' with
    | Some i ->
      let file = String.sub spec 0 i in
      let root = String.sub spec (i + 1) (String.length spec - i - 1) in
      (read_file file, root)
    | None -> die "bad --dtd %S (expected FILE=ROOT)" spec
  in
  match Schema.create (List.map parse specs) with
  | s -> s
  | exception Schema.Schema_error m -> die "%s" m
  | exception Sys_error m -> die "%s" m

let load_repo ~validate schema docs =
  let repo = Repository.create schema in
  List.iter
    (fun path ->
      match Repository.load_document ~validate repo (read_file path) with
      | () -> ()
      | exception Repository.Repository_error m -> die "%s: %s" path m)
    docs;
  repo

let load_constraints schema = function
  | None -> []
  | Some path ->
    read_file path |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || (String.length line >= 2 && String.sub line 0 2 = "--")
           then None
           else Some line)
    |> List.mapi (fun i line ->
           let name, src =
             match String.index_opt line ':' with
             | Some j
               when j + 1 < String.length line
                    && line.[j + 1] <> '-'
                    && String.for_all
                         (fun c ->
                           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9') || c = '_')
                         (String.sub line 0 j) ->
               (String.sub line 0 j, String.sub line (j + 1) (String.length line - j - 1))
             | _ -> (Printf.sprintf "c%d" (i + 1), line)
           in
           match Constr.make schema ~name src with
           | c -> c
           | exception Constr.Constraint_error m -> die "%s" m)

let load_pattern schema = function
  | None -> None
  | Some path ->
    (match Xic_xupdate.Xupdate.parse_string (read_file path) with
     | [ m ] ->
       (match Pattern.of_modification schema ~name:"pattern" m with
        | p -> Some p
        | exception Pattern.Pattern_error e -> die "%s" e)
     | _ -> die "%s: the pattern template must contain one modification" path
     | exception Xic_xupdate.Xupdate.Xupdate_error m -> die "%s: %s" path m)

(* ------------------------------------------------------------------ *)
(* schema                                                              *)
(* ------------------------------------------------------------------ *)

let schema_cmd =
  let run dtds =
    let s = load_schema dtds in
    print_endline (Schema.to_string s)
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the relational mapping derived from the DTDs")
    Term.(const run $ dtd_arg)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run dtds constraints =
    let s = load_schema dtds in
    List.iter
      (fun (c : Constr.t) ->
        Printf.printf "-- %s\n%s\n" c.Constr.name c.Constr.source;
        Printf.printf "datalog:\n%s\n"
          (Xic_datalog.Term.denials_str c.Constr.datalog);
        Printf.printf "xquery:\n%s\n\n" (Xic_xquery.Ast.to_string c.Constr.xquery))
      (load_constraints s constraints)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile XPathLog constraints to Datalog denials and XQuery checks")
    Term.(const run $ dtd_arg $ constraints_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let run dtds docs =
    let s = load_schema dtds in
    let repo = Repository.create s in
    let ok = ref true in
    List.iter
      (fun path ->
        match Repository.load_document ~validate:true repo (read_file path) with
        | () -> Printf.printf "%s: valid\n" path
        | exception Repository.Repository_error m ->
          ok := false;
          Printf.printf "%s: INVALID (%s)\n" path m)
      docs;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate documents against their DTDs")
    Term.(const run $ dtd_arg $ docs_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let datalog_arg =
    let doc = "Evaluate over the relational mirror instead of XQuery." in
    Arg.(value & flag & info [ "datalog" ] ~doc)
  in
  let explain_arg =
    let doc = "Print a violation witness (bindings and node paths) per violated constraint." in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run dtds docs constraints no_validate use_datalog explain =
    let s = load_schema dtds in
    let repo = load_repo ~validate:(not no_validate) s docs in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    if explain then begin
      match Repository.explain repo with
      | [] -> print_endline "consistent"
      | ws ->
        List.iter (fun w -> print_endline (Repository.witness_to_string w)) ws;
        exit 1
    end
    else begin
      let violated =
        if use_datalog then Repository.check_full_datalog repo
        else Repository.check_full repo
      in
      match violated with
      | [] -> print_endline "consistent"
      | vs ->
        List.iter (Printf.printf "VIOLATED: %s\n") vs;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check integrity constraints against the documents")
    Term.(
      const run $ dtd_arg $ docs_arg $ constraints_arg $ no_validate_arg
      $ datalog_arg $ explain_arg)

(* ------------------------------------------------------------------ *)
(* simplify                                                            *)
(* ------------------------------------------------------------------ *)

let simplify_cmd =
  let run dtds constraints pattern =
    let s = load_schema dtds in
    let pattern =
      match load_pattern s pattern with
      | Some p -> p
      | None -> die "simplify requires --pattern"
    in
    Printf.printf "-- update pattern U = { %s }\n"
      (String.concat ", " (List.map Xic_datalog.Term.atom_str pattern.Pattern.atoms));
    Printf.printf "-- freshness hypotheses:\n%s\n\n"
      (Xic_datalog.Term.denials_str (Pattern.hypotheses s pattern));
    List.iter
      (fun (c : Constr.t) ->
        let simplified = Pattern.simplify s pattern c in
        Printf.printf "-- %s\n" c.Constr.name;
        (match simplified with
         | [] -> print_endline "(nothing to check for this pattern)"
         | ds ->
           print_endline (Xic_datalog.Term.denials_str ds);
           Printf.printf "xquery: %s\n"
             (Xic_xquery.Ast.to_string
                (Xic_translate.Translate.denials (Schema.mapping s) ds)));
        print_newline ())
      (load_constraints s constraints)
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Simplify constraints w.r.t. an update pattern (Simp of Section 5)")
    Term.(const run $ dtd_arg $ constraints_arg $ pattern_arg)

(* ------------------------------------------------------------------ *)
(* guard                                                               *)
(* ------------------------------------------------------------------ *)

let guard_cmd =
  let update_arg =
    let doc = "XUpdate statement to execute under integrity control." in
    Arg.(required & opt (some file) None & info [ "update" ] ~docv:"FILE" ~doc)
  in
  let output_arg =
    let doc = "Write the resulting collection to this file prefix (one file per root)." in
    Arg.(value & opt (some string) None & info [ "output" ] ~docv:"PREFIX" ~doc)
  in
  let runtime_simp_arg =
    let doc =
      "For updates matching no pattern, derive a one-off pattern and \
       simplify at runtime instead of execute-check-compensate."
    in
    Arg.(value & flag & info [ "runtime-simp" ] ~doc)
  in
  let run dtds docs constraints pattern no_validate runtime_simp update output =
    let s = load_schema dtds in
    let repo = load_repo ~validate:(not no_validate) s docs in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    let u =
      match Xic_xupdate.Xupdate.parse_string (read_file update) with
      | u -> u
      | exception Xic_xupdate.Xupdate.Xupdate_error m -> die "%s: %s" update m
    in
    let fallback =
      if runtime_simp then `Runtime_simplification else `Full_check
    in
    (match Repository.guarded_update ~fallback repo u with
     | Repository.Applied `Optimized ->
       print_endline "applied (validated by the optimized pre-check)"
     | Repository.Applied `Runtime_simplified ->
       print_endline "applied (validated by a runtime-simplified pre-check)"
     | Repository.Applied `Full_check ->
       print_endline "applied (validated by the full check)"
     | Repository.Rejected_early c ->
       Printf.printf "rejected before execution: violates %s\n" c;
       exit 1
     | Repository.Rolled_back c ->
       Printf.printf "rolled back: violates %s\n" c;
       exit 1);
    match output with
    | None -> ()
    | Some prefix ->
      let doc = Repository.doc repo in
      List.iteri
        (fun i root ->
          let path = Printf.sprintf "%s.%d.xml" prefix i in
          let oc = open_out path in
          output_string oc (Xic_xml.Xml_printer.node_to_string ~indent:true doc root);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %s\n" path)
        (Xic_xml.Doc.roots doc)
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:"Execute an XUpdate statement under integrity control")
    Term.(
      const run $ dtd_arg $ docs_arg $ constraints_arg $ pattern_arg
      $ no_validate_arg $ runtime_simp_arg $ update_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* publish                                                             *)
(* ------------------------------------------------------------------ *)

let publish_cmd =
  let output_arg =
    let doc = "Bundle file to write." in
    Arg.(required & opt (some string) None & info [ "output" ] ~docv:"FILE" ~doc)
  in
  let run dtds constraints pattern output =
    let s = load_schema dtds in
    let repo = Repository.create s in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    Bundle.save_file repo output;
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:
         "Compile constraints and patterns into a design-time bundle (the \
          simplified checks are persisted for runtimes and reviewers)")
    Term.(const run $ dtd_arg $ constraints_arg $ pattern_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let size_arg =
    let doc = "Approximate combined size in bytes." in
    Arg.(value & opt int 100_000 & info [ "size" ] ~docv:"BYTES" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let prefix_arg =
    let doc = "Output file prefix (PREFIX.pub.xml and PREFIX.rev.xml)." in
    Arg.(value & opt string "dataset" & info [ "output" ] ~docv:"PREFIX" ~doc)
  in
  let run size seed prefix =
    let ds = Xic_workload.Generator.generate ~seed ~target_bytes:size () in
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write (prefix ^ ".pub.xml") ds.Xic_workload.Generator.pub_xml;
    write (prefix ^ ".rev.xml") ds.Xic_workload.Generator.rev_xml;
    let st = ds.Xic_workload.Generator.stats in
    Printf.printf "%d pubs, %d tracks, %d reviewers, %d submissions (%d bytes)\n"
      st.Xic_workload.Generator.pubs st.Xic_workload.Generator.tracks
      st.Xic_workload.Generator.reviewers st.Xic_workload.Generator.submissions
      st.Xic_workload.Generator.bytes
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic conference dataset")
    Term.(const run $ size_arg $ seed_arg $ prefix_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "xicheck" ~version:"1.0.0"
      ~doc:"Efficient integrity checking over XML documents (EDBT 2006)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schema_cmd; compile_cmd; validate_cmd; check_cmd; simplify_cmd;
            guard_cmd; publish_cmd; generate_cmd ]))
