(* The paper's running example end to end: the pub.xml / rev.xml schema,
   the constraints of Examples 1, 2 and 7, the submission-insertion update
   pattern of Example 6, and the behaviour of Section 7's two scenarios
   (legal and illegal updates).

   Run with: dune exec examples/conference.exe *)

open Xic_core
module Conf = Xic_workload.Conference
module Gen = Xic_workload.Generator

let hr title = Printf.printf "\n=== %s ===\n" title

let () =
  let schema = Conf.schema () in
  hr "Relational mapping (Section 4.1)";
  print_endline (Schema.to_string schema);

  hr "Constraints (Examples 1, 2, 7)";
  let constraints = [ Conf.conflict schema; Conf.workload schema; Conf.track_load schema ] in
  List.iter
    (fun (c : Constr.t) ->
      Printf.printf "%s (XPathLog):\n  %s\n" c.Constr.name c.Constr.source;
      Printf.printf "as Datalog denials (Example 3):\n%s\n"
        (Xic_datalog.Term.denials_str c.Constr.datalog);
      Printf.printf "as XQuery (Section 6):\n  %s\n\n"
        (Xic_xquery.Ast.to_string c.Constr.xquery))
    constraints;

  hr "Dataset (synthetic DBLP-like, Section 7)";
  let ds = Gen.generate ~seed:1 ~target_bytes:80_000 () in
  Printf.printf "%d publications, %d tracks, %d reviewers, %d submissions (%d bytes)\n"
    ds.Gen.stats.Gen.pubs ds.Gen.stats.Gen.tracks ds.Gen.stats.Gen.reviewers
    ds.Gen.stats.Gen.submissions ds.Gen.stats.Gen.bytes;
  let repo = Repository.create schema in
  Repository.load_document repo ds.Gen.pub_xml;
  Repository.load_document repo ds.Gen.rev_xml;
  List.iter (Repository.add_constraint repo) constraints;
  Printf.printf "initial integrity: %s\n"
    (match Repository.check_full repo with
     | [] -> "consistent"
     | vs -> "VIOLATED: " ^ String.concat ", " vs);

  hr "Update pattern (Example 6)";
  let pattern = Conf.submission_pattern schema in
  Printf.printf "U = { %s }\n"
    (String.concat ", " (List.map Xic_datalog.Term.atom_str pattern.Pattern.atoms));
  Printf.printf "Delta (freshness hypotheses):\n%s\n"
    (Xic_datalog.Term.denials_str (Pattern.hypotheses schema pattern));
  Repository.register_pattern repo pattern;
  List.iter
    (fun (c : Repository.optimized_check) ->
      Printf.printf "\nSimp for %s:\n%s\nXQuery:\n  %s\n" c.Repository.constraint_name
        (Xic_datalog.Term.denials_str c.Repository.simplified)
        (Xic_xquery.Ast.to_string c.Repository.simplified_xquery))
    (Repository.optimized_checks repo pattern);

  hr "Guarded updates (Section 7's two scenarios)";
  let submit ~select ~title ~author ~label =
    let u = Conf.insert_submission ~select ~title ~author in
    match Repository.guarded_update repo u with
    | Repository.Applied `Optimized ->
      Printf.printf "%-28s -> applied (checked before execution)\n" label
    | Repository.Applied `Runtime_simplified ->
      Printf.printf "%-28s -> applied (runtime-simplified pre-check)\n" label
    | Repository.Applied `Full_check ->
      Printf.printf "%-28s -> applied (full check fallback)\n" label
    | Repository.Rejected_early c ->
      Printf.printf "%-28s -> rejected early, violates %s (update never executed)\n"
        label c
    | Repository.Rolled_back c ->
      Printf.printf "%-28s -> rolled back after violating %s\n" label c
  in
  submit ~select:ds.Gen.legal_select ~title:"Taming Web Services"
    ~author:ds.Gen.legal_author ~label:"legal submission";
  submit ~select:ds.Gen.conflict_select ~title:"A Self Review"
    ~author:ds.Gen.conflict_reviewer ~label:"self-review";
  submit ~select:ds.Gen.conflict_select ~title:"Friends and Co-Authors"
    ~author:ds.Gen.conflict_coauthor ~label:"co-author conflict";
  submit ~select:ds.Gen.busy_select ~title:"The Eleventh Paper"
    ~author:ds.Gen.legal_author ~label:"overloaded reviewer";

  Printf.printf "\nfinal integrity: %s\n"
    (match Repository.check_full repo with
     | [] -> "consistent"
     | vs -> "VIOLATED: " ^ String.concat ", " vs);

  hr "Explaining a violation";
  (* Force an inconsistency through an unchecked update and let the
     checker point at the offending nodes. *)
  let bad =
    Conf.insert_submission ~select:ds.Gen.conflict_select ~title:"Smuggled"
      ~author:ds.Gen.conflict_reviewer
  in
  let undo = Repository.apply_unchecked repo bad in
  List.iter
    (fun w -> print_endline (Repository.witness_to_string w))
    (Repository.explain repo);
  Repository.rollback repo undo;
  Printf.printf "\n(rolled back; repository %s)\n"
    (match Repository.check_full repo with [] -> "consistent again" | _ -> "STILL BROKEN")
