(* A lending library: aggregate constraints over attributed elements.
   Demonstrates XML attributes as relational columns, count aggregates
   with update-time decrements, and position qualifiers.

   Run with: dune exec examples/library_loans.exe *)

open Xic_core
module XU = Xic_xupdate.Xupdate

let dtd =
  {|<!ELEMENT library (reader*)>
    <!ELEMENT reader (loan*)>
    <!ATTLIST reader id CDATA #REQUIRED category CDATA #IMPLIED>
    <!ELEMENT loan (book)>
    <!ELEMENT book (#PCDATA)>|}

let () =
  let schema = Schema.create [ (dtd, "library") ] in
  Printf.printf "Mapping (attributes become columns):\n%s\n\n"
    (Schema.to_string schema);

  (* At most 3 simultaneous loans per reader. *)
  let loan_limit =
    Constr.make schema ~name:"loan_limit" "<- //reader -> R and cnt{; R/loan} > 3"
  in
  (* 'guest' readers may not borrow at all. *)
  let guest_block =
    Constr.make schema ~name:"guest_block"
      "<- //reader[@category -> C] -> R and R/loan and C = \"guest\""
  in
  Printf.printf "loan_limit: %s\n"
    (Xic_datalog.Term.denials_str loan_limit.Constr.datalog);
  Printf.printf "guest_block: %s\n\n"
    (Xic_datalog.Term.denials_str guest_block.Constr.datalog);

  let repo = Repository.create schema in
  Repository.load_document repo
    {|<library>
        <reader id="r1" category="member"><loan><book>SICP</book></loan><loan><book>TAPL</book></loan></reader>
        <reader id="r2" category="member"><loan><book>CLRS</book></loan><loan><book>K&amp;R</book></loan><loan><book>Dragon</book></loan></reader>
        <reader id="r3" category="guest"/>
      </library>|};
  Repository.add_constraint repo loan_limit;
  Repository.add_constraint repo guest_block;
  Printf.printf "initial: %s\n\n"
    (match Repository.check_full repo with [] -> "consistent" | vs -> String.concat "," vs);

  (* Pattern: lending one book to a reader (append a loan). *)
  let lend_pattern =
    Pattern.make schema ~name:"lend" ~op:XU.Append ~anchor_type:"reader"
      ~content:
        [ XU.Elem ("loan", [], [ XU.Elem ("book", [], [ XU.Text "%b" ]) ]) ]
  in
  Repository.register_pattern repo lend_pattern;
  List.iter
    (fun (c : Repository.optimized_check) ->
      Printf.printf "Simp for %s:\n  %s\n  -> %s\n" c.Repository.constraint_name
        (match c.Repository.simplified with
         | [] -> "(nothing to check)"
         | ds -> Xic_datalog.Term.denials_str ds)
        (Xic_xquery.Ast.to_string c.Repository.simplified_xquery))
    (Repository.optimized_checks repo lend_pattern);
  print_newline ();

  let lend reader book =
    let u =
      [ { XU.op = XU.Append;
          select =
            Xic_xpath.Parser.parse
              (Printf.sprintf "//reader[@id = \"%s\"]" reader);
          content = [ XU.Elem ("loan", [], [ XU.Elem ("book", [], [ XU.Text book ]) ]) ];
        } ]
    in
    match Repository.guarded_update repo u with
    | Repository.Applied `Optimized -> Printf.printf "+ %s borrows %S\n" reader book
    | Repository.Applied (`Full_check | `Runtime_simplified) ->
      Printf.printf "+ %s borrows %S (full check)\n" reader book
    | Repository.Rejected_early c ->
      Printf.printf "- %s refused %S before execution (%s)\n" reader book c
    | Repository.Rolled_back c ->
      Printf.printf "- %s: %S rolled back (%s)\n" reader book c
  in
  lend "r1" "The Art of Computer Programming";  (* 3rd loan: fine *)
  lend "r1" "Goedel Escher Bach";               (* 4th loan: over the limit *)
  lend "r2" "Real World OCaml";                 (* r2 already holds 3 *)
  lend "r3" "Anything";                         (* guests cannot borrow *)

  (* -------- deletions: returning books ---------------------------- *)
  (* Members must keep at least one active loan. *)
  let keep_one =
    Constr.make schema ~name:"keep_one"
      "<- //reader[@category -> C] -> R and C = \"member\" and cnt{; R/loan} < 1"
  in
  Repository.add_constraint repo keep_one;
  let return_pattern =
    Pattern.make schema ~name:"return_book" ~op:XU.Remove ~anchor_type:"loan"
      ~content:[]
  in
  Repository.register_pattern repo return_pattern;
  Printf.printf "\ndeletion pattern: { %s }\n"
    (String.concat ", "
       (List.map Xic_datalog.Term.atom_str return_pattern.Pattern.del_atoms));
  List.iter
    (fun (c : Repository.optimized_check) ->
      Printf.printf "Simp for %s under returns: %s\n" c.Repository.constraint_name
        (match c.Repository.simplified with
         | [] -> "(returns can never violate it)"
         | ds -> Xic_datalog.Term.denials_str ds))
    (Repository.optimized_checks repo return_pattern);
  print_newline ();
  let return_book reader =
    let u =
      [ { XU.op = XU.Remove;
          select =
            Xic_xpath.Parser.parse
              (Printf.sprintf "//reader[@id = \"%s\"]/loan[1]" reader);
          content = [];
        } ]
    in
    match Repository.guarded_update repo u with
    | Repository.Applied `Optimized -> Printf.printf "+ %s returns a book\n" reader
    | Repository.Applied (`Full_check | `Runtime_simplified) ->
      Printf.printf "+ %s returns a book (full check)\n" reader
    | Repository.Rejected_early c ->
      Printf.printf "- %s may not return: would violate %s\n" reader c
    | Repository.Rolled_back c -> Printf.printf "- %s: return rolled back (%s)\n" reader c
  in
  return_book "r1";
  return_book "r1";
  return_book "r1";  (* would leave a member with zero loans: rejected *)

  Printf.printf "\nloans per reader: %s\n"
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "%s=%d"
              (Option.value ~default:"?"
                 (Xic_xml.Doc.attr (Repository.doc repo) r "id"))
              (List.length
                 (Xic_xpath.Eval.eval_steps (Repository.doc repo) [ r ]
                    [ { Xic_xpath.Ast.axis = Xic_xpath.Ast.Child;
                        test = Xic_xpath.Ast.Name_test "loan";
                        preds = [] } ]
                  |> function Xic_xpath.Eval.Nodes ns -> ns | _ -> [])))
          (Xic_xpath.Eval.select (Repository.doc repo)
             (Xic_xpath.Parser.parse "//reader"))));
  Printf.printf "final: %s\n"
    (match Repository.check_full repo with [] -> "consistent" | vs -> String.concat "," vs)
