(* A publication catalogue with key and referential constraints — the XML
   rendition of the paper's relational Examples 4/5 (ISSN uniqueness),
   plus a foreign-key-style constraint expressed as a safe negation.

   Run with: dune exec examples/publication_catalog.exe *)

open Xic_core
module XU = Xic_xupdate.Xupdate

let dtd =
  {|<!ELEMENT catalog (journal*, article*)>
    <!ELEMENT journal (issn, title)>
    <!ELEMENT issn (#PCDATA)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT article (title, in)>
    <!ELEMENT in (#PCDATA)>|}

let () =
  let schema = Schema.create [ (dtd, "catalog") ] in
  Printf.printf "Mapping:\n%s\n\n" (Schema.to_string schema);

  (* Example 4's phi: no two journals share an ISSN with different titles
     — spelled over XML. *)
  let unique_issn =
    Constr.make schema ~name:"unique_issn"
      "<- //journal[issn/text() -> I][title/text() -> Y] and \
       //journal[issn/text() -> I][title/text() -> Z] and Y != Z"
  in
  (* Referential integrity: every article's [in] names an existing
     journal ISSN.  Negation compiles to a 'not' literal. *)
  let article_fk =
    Constr.make schema ~name:"article_fk"
      "<- //article/in/text() -> I and not(//journal[issn/text() -> I])"
  in
  Printf.printf "unique_issn datalog:\n%s\n"
    (Xic_datalog.Term.denials_str unique_issn.Constr.datalog);
  Printf.printf "article_fk datalog:\n%s\n\n"
    (Xic_datalog.Term.denials_str article_fk.Constr.datalog);

  let repo = Repository.create schema in
  Repository.load_document repo
    {|<catalog>
        <journal><issn>1066-8888</issn><title>The VLDB Journal</title></journal>
        <journal><issn>0362-5915</issn><title>ACM TODS</title></journal>
        <article><title>Integrity Checking Revisited</title><in>1066-8888</in></article>
      </catalog>|};
  Repository.add_constraint repo unique_issn;
  Repository.add_constraint repo article_fk;

  (* Pattern: registering a new journal (Example 4's update). *)
  let add_journal_pattern =
    Pattern.make schema ~name:"add_journal" ~op:XU.Append ~anchor_type:"catalog"
      ~content:
        [ XU.Elem
            ( "journal",
              [],
              [ XU.Elem ("issn", [], [ XU.Text "%i" ]);
                XU.Elem ("title", [], [ XU.Text "%t" ]) ] )
        ]
  in
  Repository.register_pattern repo add_journal_pattern;
  Printf.printf "update pattern U = { %s }\n\n"
    (String.concat ", "
       (List.map Xic_datalog.Term.atom_str add_journal_pattern.Pattern.atoms));
  List.iter
    (fun (c : Repository.optimized_check) ->
      Printf.printf "Simp for %s: %s\n" c.Repository.constraint_name
        (match c.Repository.simplified with
         | [] -> "(nothing to check)"
         | ds -> Xic_datalog.Term.denials_str ds))
    (Repository.optimized_checks repo add_journal_pattern);

  print_newline ();
  let add_journal issn title =
    let u =
      [ { XU.op = XU.Append;
          select = Xic_xpath.Parser.parse "/catalog";
          content =
            [ XU.Elem
                ( "journal",
                  [],
                  [ XU.Elem ("issn", [], [ XU.Text issn ]);
                    XU.Elem ("title", [], [ XU.Text title ]) ] )
            ];
        } ]
    in
    match Repository.guarded_update repo u with
    | Repository.Applied _ -> Printf.printf "+ journal %s %S accepted\n" issn title
    | Repository.Rejected_early c ->
      Printf.printf "- journal %s %S rejected early (%s)\n" issn title c
    | Repository.Rolled_back c ->
      Printf.printf "- journal %s %S rolled back (%s)\n" issn title c
  in
  (* Same ISSN, same title: allowed (the denial needs different titles,
     exactly as the paper's simplified check "there must not already exist
     another publication with the same ISSN and a different title"). *)
  add_journal "2154-0357" "Journal of Reproducibility";
  add_journal "1066-8888" "The VLDB Journal";
  add_journal "1066-8888" "A Different Title";

  (* An article referencing an unknown journal: no registered pattern
     matches, so the fallback applies it, detects the violation with the
     full check, and compensates. *)
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "/catalog";
        content =
          [ XU.Elem
              ( "article",
                [],
                [ XU.Elem ("title", [], [ XU.Text "Dangling Reference" ]);
                  XU.Elem ("in", [], [ XU.Text "9999-9999" ]) ] )
          ];
      } ]
  in
  (match Repository.guarded_update repo u with
   | Repository.Rolled_back c ->
     Printf.printf "- dangling article rolled back by full check (%s)\n" c
   | _ -> Printf.printf "- unexpected outcome for dangling article\n");

  Printf.printf "\nfinal: %s, %d journals\n"
    (match Repository.check_full repo with [] -> "consistent" | _ -> "violated")
    (List.length
       (Xic_xpath.Eval.select (Repository.doc repo) (Xic_xpath.Parser.parse "//journal")))
