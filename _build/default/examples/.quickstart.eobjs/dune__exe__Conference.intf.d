examples/conference.mli:
