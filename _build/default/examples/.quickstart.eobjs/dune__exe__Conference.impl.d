examples/conference.ml: Constr List Pattern Printf Repository Schema String Xic_core Xic_datalog Xic_workload Xic_xquery
