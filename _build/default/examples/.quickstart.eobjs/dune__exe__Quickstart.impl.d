examples/quickstart.ml: Constr List Pattern Printf Repository Schema Xic_core Xic_datalog Xic_xml Xic_xpath Xic_xquery Xic_xupdate
