examples/publication_catalog.ml: Constr List Pattern Printf Repository Schema String Xic_core Xic_datalog Xic_xpath Xic_xupdate
