examples/publication_catalog.mli:
