examples/library_loans.ml: Constr List Option Pattern Printf Repository Schema String Xic_core Xic_datalog Xic_xml Xic_xpath Xic_xquery Xic_xupdate
