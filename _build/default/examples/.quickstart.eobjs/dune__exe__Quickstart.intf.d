examples/quickstart.mli:
