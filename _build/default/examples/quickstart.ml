(* Quickstart: declare a schema, a constraint and an update pattern, then
   let the repository guard updates.

   Run with: dune exec examples/quickstart.exe *)

open Xic_core

let dtd =
  {|<!ELEMENT team (member)*>
    <!ELEMENT member (name, role)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT role (#PCDATA)>|}

let () =
  (* 1. Schema: a DTD per document, with its root element name. *)
  let schema = Schema.create [ (dtd, "team") ] in
  Printf.printf "Relational mapping:\n%s\n\n" (Schema.to_string schema);

  (* 2. An integrity constraint in XPathLog: member names are unique. *)
  let unique_names =
    Constr.make schema ~name:"unique_names"
      "<- //member[name/text() -> N] -> M1 and //member[name/text() -> N] -> M2 and M1 != M2"
  in
  Printf.printf "Compiled to Datalog:\n%s\n\n"
    (Xic_datalog.Term.denials_str unique_names.Constr.datalog);
  Printf.printf "Translated to XQuery:\n%s\n\n"
    (Xic_xquery.Ast.to_string unique_names.Constr.xquery);

  (* 3. A repository with a document. *)
  let repo = Repository.create schema in
  Repository.load_document repo
    {|<team><member><name>Ada</name><role>lead</role></member>
           <member><name>Alan</name><role>dev</role></member></team>|};
  Repository.add_constraint repo unique_names;

  (* 4. An update pattern: appending a new member.  Registered once, it is
     simplified against every constraint at "schema design time". *)
  let pattern =
    Pattern.make schema ~name:"add_member" ~op:Xic_xupdate.Xupdate.Append
      ~anchor_type:"team"
      ~content:
        [ Xic_xupdate.Xupdate.Elem
            ( "member",
              [],
              [ Xic_xupdate.Xupdate.Elem ("name", [], [ Xic_xupdate.Xupdate.Text "%n" ]);
                Xic_xupdate.Xupdate.Elem ("role", [], [ Xic_xupdate.Xupdate.Text "%r" ]);
              ] )
        ]
  in
  Repository.register_pattern repo pattern;
  List.iter
    (fun (c : Repository.optimized_check) ->
      Printf.printf "Simplified check for %s:\n  %s\n  %s\n\n"
        c.Repository.constraint_name
        (Xic_datalog.Term.denials_str c.Repository.simplified)
        (Xic_xquery.Ast.to_string c.Repository.simplified_xquery))
    (Repository.optimized_checks repo pattern);

  (* 5. Guarded updates: the optimized check runs before execution. *)
  let add name role =
    let u =
      [ { Xic_xupdate.Xupdate.op = Xic_xupdate.Xupdate.Append;
          select = Xic_xpath.Parser.parse "/team";
          content =
            [ Xic_xupdate.Xupdate.Elem
                ( "member",
                  [],
                  [ Xic_xupdate.Xupdate.Elem ("name", [], [ Xic_xupdate.Xupdate.Text name ]);
                    Xic_xupdate.Xupdate.Elem ("role", [], [ Xic_xupdate.Xupdate.Text role ]);
                  ] )
            ];
        } ]
    in
    match Repository.guarded_update repo u with
    | Repository.Applied `Optimized ->
      Printf.printf "+ %-8s accepted (optimized pre-check)\n" name
    | Repository.Applied (`Full_check | `Runtime_simplified) ->
      Printf.printf "+ %-8s accepted (full check)\n" name
    | Repository.Rejected_early c ->
      Printf.printf "- %-8s rejected before execution (violates %s)\n" name c
    | Repository.Rolled_back c ->
      Printf.printf "- %-8s rolled back (violates %s)\n" name c
  in
  add "Grace" "dev";
  add "Ada" "dev";  (* duplicate name: rejected early *)
  add "Edsger" "qa";

  Printf.printf "\nFinal document:\n%s\n"
    (Xic_xml.Xml_printer.to_string ~indent:true (Repository.doc repo))
