lib/relmap/mapping.mli: Dtd Xic_xml
