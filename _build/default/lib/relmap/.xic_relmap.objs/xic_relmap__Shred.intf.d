lib/relmap/shred.mli: Doc Mapping Xic_datalog Xic_xml
