lib/relmap/mapping.ml: Dtd Hashtbl List Printf String Xic_xml
