lib/relmap/shred.ml: Doc List Mapping Option Printf Xic_datalog Xic_xml
