lib/xpathlog/ast.ml: Buffer List String Xic_datalog
