lib/xpathlog/compile.ml: Ast List Option Parser Printf String Xic_datalog Xic_relmap Xic_xml
