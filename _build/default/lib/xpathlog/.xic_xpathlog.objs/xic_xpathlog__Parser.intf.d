lib/xpathlog/parser.mli: Ast
