lib/xpathlog/ast.mli: Xic_datalog
