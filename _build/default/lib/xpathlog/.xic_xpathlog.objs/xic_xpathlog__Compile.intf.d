lib/xpathlog/compile.mli: Ast Xic_datalog Xic_relmap
