lib/xpathlog/parser.ml: Ast List Printf String Xic_datalog Xic_xpath
