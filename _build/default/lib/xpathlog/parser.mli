(** Parser for XPathLog denials in ASCII syntax.

    {v
    <- //rev[name/text() -> R]/sub/auts/name/text() -> A
       and (A = R or //pub[aut/name/text() -> A and aut/name/text() -> R])

    <- cntd{[R]; //track[rev/name/text() -> R]} > 3
       and cntd{[R]; //rev[name/text() -> R]/sub} > 10
    v}

    Conventions: capitalized identifiers are variables, lowercase names
    are element names, [@name] selects an attribute, [text()] the text
    content, [-> V] binds the selected node/value, [%name] is a parameter,
    [[…]] encloses qualifiers (with context-relative paths), and the
    aggregate syntax is [op{Target [G1, …]; path} cmp bound] with [op] one
    of [cnt], [cntd], [sum], [sumd], [max], [min].  A leading [<-] or
    [:-] introduces the denial. *)

exception Parse_error of string

val parse_denial : ?label:string -> string -> Ast.denial
val parse_formula : string -> Ast.formula
val parse_path : string -> Ast.path

val parse_denials : string -> Ast.denial list
(** One denial per non-blank line; [--] comments skipped.  A line of the
    form [name: <- …] labels the denial. *)
