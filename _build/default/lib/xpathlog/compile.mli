(** Compilation of XPathLog denials into Datalog denials over the
    relational schema of {!Xic_relmap.Mapping} (Section 4.2 of the paper).

    Each traversed non-embedded element type contributes an atom
    [type(Id, Pos, IdParent, …)]; parent–child traversal links the [Id] of
    the container to the [IdParent] of the contained atom; [text()] steps
    on embedded children read the corresponding column; disjunctions have
    already been expanded away by {!Ast.dnf}, so one XPathLog denial
    yields one Datalog denial per disjunct (times one per DTD chain when a
    mid-path [//] step is ambiguous).

    After compilation, variable-to-variable and variable-to-constant
    equalities introduced by repeated bindings are inlined, and redundant
    container atoms (those used only as existence witnesses for a child
    whose only possible container they are) are pruned — reproducing the
    compact form of the paper's Example 3. *)

exception Compile_error of string

val compile_denial :
  Xic_relmap.Mapping.t -> Ast.denial -> Xic_datalog.Term.denial list
(** @raise Compile_error on paths that do not type-check against the DTDs,
    unsafe negation, or unsupported constructs (documented in the
    error message). *)

val compile :
  Xic_relmap.Mapping.t -> Ast.denial list -> Xic_datalog.Term.denial list

val parse_and_compile :
  Xic_relmap.Mapping.t -> ?label:string -> string -> Xic_datalog.Term.denial list
(** Convenience: {!Parser.parse_denial} followed by {!compile_denial}. *)
