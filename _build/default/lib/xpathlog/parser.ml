exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

module XpTok = Xic_xpath.Parser
module C = XpTok.Cursor
module T = Xic_datalog.Term

let guard f = try f () with XpTok.Parse_error m -> raise (Parse_error m)

let is_capitalized s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let agg_ops =
  [ ("cnt", T.Cnt); ("cntd", T.CntD); ("sum", T.Sum); ("sumd", T.SumD);
    ("max", T.Max); ("min", T.Min) ]

let cmp_of_token = function
  | XpTok.EQ -> Some T.Eq
  | XpTok.NEQ -> Some T.Neq
  | XpTok.LT -> Some T.Lt
  | XpTok.LE -> Some T.Le
  | XpTok.GT -> Some T.Gt
  | XpTok.GE -> Some T.Ge
  | _ -> None

open Ast

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

(* step := (name | text() | @name) qualifier* ('->' Var)? qualifier* *)
let rec parse_step c ~desc =
  let test =
    match C.next c with
    | XpTok.DOTDOT -> Parent_nav
    | XpTok.NAME "text" when C.peek c = XpTok.LPAREN ->
      guard (fun () -> C.eat c XpTok.LPAREN);
      guard (fun () -> C.eat c XpTok.RPAREN);
      Text_fun
    | XpTok.NAME n when not (is_capitalized n) -> Elem n
    | XpTok.AT ->
      (match C.next c with
       | XpTok.NAME n -> Attr n
       | t -> fail "expected attribute name, got %s" (XpTok.token_str t))
    | t -> fail "expected a step, got %s" (XpTok.token_str t)
  in
  let rec quals acc =
    if C.peek c = XpTok.LBRACK then begin
      guard (fun () -> C.eat c XpTok.LBRACK);
      let f = parse_formula_at c in
      guard (fun () -> C.eat c XpTok.RBRACK);
      quals (f :: acc)
    end
    else List.rev acc
  in
  let qualifiers = quals [] in
  let binding =
    if C.peek c = XpTok.ARROW then begin
      guard (fun () -> C.eat c XpTok.ARROW);
      match C.next c with
      | XpTok.NAME v when is_capitalized v -> Some v
      | t -> fail "expected a variable after ->, got %s" (XpTok.token_str t)
    end
    else None
  in
  let qualifiers = qualifiers @ quals [] in
  { desc; test; qualifiers; binding }

and parse_steps c first_desc =
  let rec go acc desc =
    let s = parse_step c ~desc in
    match C.peek c with
    | XpTok.SLASH ->
      ignore (C.next c);
      go (s :: acc) false
    | XpTok.DSLASH ->
      ignore (C.next c);
      go (s :: acc) true
    | _ -> List.rev (s :: acc)
  in
  go [] first_desc

and parse_path_at c =
  match C.peek c with
  | XpTok.SLASH ->
    ignore (C.next c);
    { start = From_root; steps = parse_steps c false }
  | XpTok.DSLASH ->
    ignore (C.next c);
    { start = From_any; steps = parse_steps c true }
  | XpTok.NAME v when is_capitalized v && (C.peek2 c = XpTok.SLASH || C.peek2 c = XpTok.DSLASH) ->
    ignore (C.next c);
    let desc = C.next c = XpTok.DSLASH in
    { start = From_var v; steps = parse_steps c desc }
  | XpTok.NAME _ | XpTok.AT | XpTok.DOTDOT ->
    { start = From_ctx; steps = parse_steps c false }
  | t -> fail "expected a path, got %s" (XpTok.token_str t)

(* ------------------------------------------------------------------ *)
(* Operands and formulas                                               *)
(* ------------------------------------------------------------------ *)

and parse_operand c =
  match C.peek c with
  | XpTok.NAME v when is_capitalized v ->
    if C.peek2 c = XpTok.SLASH || C.peek2 c = XpTok.DSLASH then O_path (parse_path_at c)
    else begin
      ignore (C.next c);
      O_var v
    end
  | XpTok.STR s ->
    ignore (C.next c);
    O_const (T.Str s)
  | XpTok.NUM f ->
    ignore (C.next c);
    O_const (T.Int (int_of_float f))
  | XpTok.PARAM p ->
    ignore (C.next c);
    O_param p
  | XpTok.SLASH | XpTok.DSLASH | XpTok.NAME _ | XpTok.AT | XpTok.DOTDOT ->
    O_path (parse_path_at c)
  | t -> fail "expected an operand, got %s" (XpTok.token_str t)

and parse_agg c op =
  ignore (C.next c);  (* the aggregate name *)
  guard (fun () -> C.eat c XpTok.LBRACE);
  let target =
    match C.peek c with
    | XpTok.NAME v when is_capitalized v && C.peek2 c <> XpTok.SLASH && C.peek2 c <> XpTok.DSLASH ->
      ignore (C.next c);
      Some v
    | _ -> None
  in
  let groups =
    if C.peek c = XpTok.LBRACK then begin
      guard (fun () -> C.eat c XpTok.LBRACK);
      let rec vars acc =
        match C.next c with
        | XpTok.NAME v when is_capitalized v ->
          (match C.peek c with
           | XpTok.COMMA ->
             ignore (C.next c);
             vars (v :: acc)
           | _ -> List.rev (v :: acc))
        | t -> fail "expected a group variable, got %s" (XpTok.token_str t)
      in
      let gs = vars [] in
      guard (fun () -> C.eat c XpTok.RBRACK);
      gs
    end
    else []
  in
  guard (fun () -> C.eat c XpTok.SEMI);
  let path = parse_path_at c in
  guard (fun () -> C.eat c XpTok.RBRACE);
  let acmp =
    match cmp_of_token (C.next c) with
    | Some op -> op
    | None -> fail "expected a comparison after the aggregate"
  in
  let bound = parse_operand c in
  F_agg { op; target; groups; path; acmp; bound }

and parse_unary c =
  match C.peek c with
  | XpTok.NAME "not" when C.peek2 c = XpTok.LPAREN ->
    ignore (C.next c);
    guard (fun () -> C.eat c XpTok.LPAREN);
    let f = parse_formula_at c in
    guard (fun () -> C.eat c XpTok.RPAREN);
    F_not f
  | XpTok.LPAREN ->
    ignore (C.next c);
    let f = parse_formula_at c in
    guard (fun () -> C.eat c XpTok.RPAREN);
    f
  | XpTok.NAME "position" when C.peek2 c = XpTok.LPAREN ->
    ignore (C.next c);
    guard (fun () -> C.eat c XpTok.LPAREN);
    guard (fun () -> C.eat c XpTok.RPAREN);
    (match cmp_of_token (C.next c) with
     | Some op -> F_pos (op, parse_operand c)
     | None -> fail "expected a comparison after position()")
  | XpTok.NAME n when List.mem_assoc n agg_ops && C.peek2 c = XpTok.LBRACE ->
    parse_agg c (List.assoc n agg_ops)
  | XpTok.NUM f when cmp_of_token (C.peek2 c) = None ->
    (* bare integer qualifier [n] *)
    ignore (C.next c);
    F_pos (T.Eq, O_const (T.Int (int_of_float f)))
  | _ ->
    let lhs = parse_operand c in
    (match cmp_of_token (C.peek c) with
     | Some op ->
       ignore (C.next c);
       F_cmp (op, lhs, parse_operand c)
     | None ->
       (match lhs with
        | O_path p -> F_path p
        | O_var v -> fail "a bare variable %s is not a formula" v
        | _ -> fail "expected a comparison or a path"))

and parse_conj c =
  let lhs = parse_unary c in
  match C.peek c with
  | XpTok.NAME "and" ->
    ignore (C.next c);
    F_and (lhs, parse_conj c)
  | _ -> lhs

and parse_formula_at c =
  let lhs = parse_conj c in
  match C.peek c with
  | XpTok.NAME "or" ->
    ignore (C.next c);
    F_or (lhs, parse_formula_at c)
  | _ -> lhs

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let strip_arrow src =
  let src = String.trim src in
  if String.length src >= 2 && (String.sub src 0 2 = "<-" || String.sub src 0 2 = ":-")
  then String.sub src 2 (String.length src - 2)
  else src

let cursor_of src = guard (fun () -> C.of_string src)

let parse_denial ?label src =
  let c = cursor_of (strip_arrow src) in
  let body = parse_formula_at c in
  if not (C.at_eof c) then fail "trailing tokens after the denial";
  { label; body }

let parse_formula src =
  let c = cursor_of src in
  let f = parse_formula_at c in
  if not (C.at_eof c) then fail "trailing tokens after the formula";
  f

let parse_path src =
  let c = cursor_of src in
  let p = parse_path_at c in
  if not (C.at_eof c) then fail "trailing tokens after the path";
  p

let parse_denials src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else if String.length line >= 2 && String.sub line 0 2 = "--" then None
         else begin
           (* optional 'name:' label prefix *)
           let label, rest =
             match String.index_opt line ':' with
             | Some i
               when i + 1 < String.length line
                    && line.[i + 1] <> '-'
                    && String.for_all
                         (fun c ->
                           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9') || c = '_')
                         (String.sub line 0 i) ->
               ( Some (String.sub line 0 i),
                 String.sub line (i + 1) (String.length line - i - 1) )
             | _ -> (None, line)
           in
           Some (parse_denial ?label rest)
         end)
