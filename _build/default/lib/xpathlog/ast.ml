(** Abstract syntax of XPathLog constraints (May 2004; Section 3.1 of the
    paper).

    A constraint is a {e denial}: a headless clause whose body must never
    be satisfiable.  Bodies combine reference expressions — path
    expressions whose steps may bind selected nodes or text values to
    variables with [-> Var] — with comparisons, connectives and
    aggregates. *)

type cmp = Xic_datalog.Term.cmp
type agg_op = Xic_datalog.Term.agg_op

(** Where a path starts. *)
type start =
  | From_root        (** [/steps] — the document root; inside a qualifier,
                         relative to the context node (the paper writes
                         [track[/rev/…]] for child steps) *)
  | From_any         (** [//steps] — any descendant of the document root *)
  | From_ctx         (** [steps] — the qualifier's context node *)
  | From_var of string  (** [V/steps] — a node variable bound elsewhere *)

(** Node test of a step (attribute steps are written [@name]). *)
type test =
  | Elem of string
  | Attr of string
  | Text_fun
  | Parent_nav         (** [text()] *)

type step = {
  desc : bool;            (** reached via [//] rather than [/] *)
  test : test;
  qualifiers : formula list;
  binding : string option;  (** [-> Var] *)
}

and path = {
  start : start;
  steps : step list;
}

and operand =
  | O_var of string
  | O_const of Xic_datalog.Term.const
  | O_param of string
  | O_path of path   (** value of a nested path (node id or text) *)

and formula =
  | F_path of path                    (** existence / bindings *)
  | F_cmp of cmp * operand * operand
  | F_pos of cmp * operand
      (** positional qualifier: [position() cmp e] or bare [n];
          only valid inside qualifiers *)
  | F_and of formula * formula
  | F_or of formula * formula
  | F_not of formula
  | F_agg of agg

(** [op{target [groups]; path} cmp bound].  [groups] are variables shared
    with the rest of the constraint (group-by); [target] is the summed
    variable for [sum]/[max]/[min] ([None] counts path results). *)
and agg = {
  op : agg_op;
  target : string option;
  groups : string list;
  path : path;
  acmp : cmp;
  bound : operand;
}

type denial = {
  label : string option;
  body : formula;
}

(* ------------------------------------------------------------------ *)
(* Printing (round-trips through the parser)                           *)
(* ------------------------------------------------------------------ *)

let rec path_str p =
  let prefix = match p.start with
    | From_root -> "/"
    | From_any -> "//"
    | From_ctx -> "."
    | From_var v -> v
  in
  let buf = Buffer.create 32 in
  List.iteri
    (fun i s ->
      let sep =
        if i = 0 then
          match p.start with
          | From_root -> if s.desc then "//" else "/"
          | From_any -> "//"
          | From_ctx -> if s.desc then ".//" else ""
          | From_var v -> v ^ (if s.desc then "//" else "/")
        else if s.desc then "//"
        else "/"
      in
      Buffer.add_string buf sep;
      Buffer.add_string buf (test_str s.test);
      List.iter
        (fun q -> Buffer.add_string buf ("[" ^ formula_str q ^ "]"))
        s.qualifiers;
      match s.binding with
      | Some v -> Buffer.add_string buf (" -> " ^ v)
      | None -> ())
    p.steps;
  if p.steps = [] then prefix else Buffer.contents buf

and test_str = function
  | Elem n -> n
  | Attr n -> "@" ^ n
  | Text_fun -> "text()"
  | Parent_nav -> ".."

and operand_str = function
  | O_var v -> v
  | O_const c -> Xic_datalog.Term.const_str c
  | O_param p -> "%" ^ p
  | O_path p -> path_str p

and formula_str = function
  | F_path p -> path_str p
  | F_cmp (op, a, b) ->
    operand_str a ^ " " ^ Xic_datalog.Term.cmp_str op ^ " " ^ operand_str b
  | F_pos (op, a) -> "position() " ^ Xic_datalog.Term.cmp_str op ^ " " ^ operand_str a
  | F_and (a, b) -> binder "and" a b
  | F_or (a, b) -> binder "or" a b
  | F_not f -> "not(" ^ formula_str f ^ ")"
  | F_agg g ->
    let groups = if g.groups = [] then "" else "[" ^ String.concat ", " g.groups ^ "] " in
    let target = match g.target with Some v -> v ^ " " | None -> "" in
    Xic_datalog.Term.agg_op_str g.op ^ "{" ^ target ^ groups ^ "; " ^ path_str g.path
    ^ "} " ^ Xic_datalog.Term.cmp_str g.acmp ^ " " ^ operand_str g.bound

and binder kw a b =
  let wrap f =
    match f with
    | F_or _ | F_and _ -> "(" ^ formula_str f ^ ")"
    | _ -> formula_str f
  in
  wrap a ^ " " ^ kw ^ " " ^ wrap b

let denial_str d =
  (match d.label with Some l -> l ^ ": " | None -> "") ^ "<- " ^ formula_str d.body

(* ------------------------------------------------------------------ *)
(* Disjunctive normal form                                             *)
(* ------------------------------------------------------------------ *)

(** Push negations inward (negated comparisons flip their operator;
    negated paths and aggregates are kept as [F_not]/flipped aggregates)
    and expand to a list of conjunctions (each itself a flat formula
    list).  Qualifier formulas are normalized recursively: a disjunctive
    qualifier splits the enclosing path into one copy per disjunct. *)
let rec dnf (f : formula) : formula list list =
  match f with
  | F_and (a, b) ->
    let da = dnf a and db = dnf b in
    List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
  | F_or (a, b) -> dnf a @ dnf b
  | F_not inner -> dnf_neg inner
  | F_path p -> List.map (fun p -> [ F_path p ]) (split_path p)
  | F_agg g ->
    List.map (fun path -> [ F_agg { g with path } ]) (split_path g.path)
  | (F_cmp _ | F_pos _) as flat -> [ [ flat ] ]

and dnf_neg (f : formula) : formula list list =
  match f with
  | F_or (a, b) ->
    let da = dnf_neg a and db = dnf_neg b in
    List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
  | F_and (a, b) -> dnf_neg a @ dnf_neg b
  | F_not inner -> dnf inner
  | F_cmp (op, a, b) -> [ [ F_cmp (Xic_datalog.Term.negate_cmp op, a, b) ] ]
  | F_pos (op, a) -> [ [ F_pos (Xic_datalog.Term.negate_cmp op, a) ] ]
  | F_agg g -> [ [ F_agg { g with acmp = Xic_datalog.Term.negate_cmp g.acmp } ] ]
  | F_path p -> [ [ F_not (F_path p) ] ]

(* Split a path whose qualifiers contain disjunctions into one path per
   combination of qualifier disjuncts. *)
and split_path (p : path) : path list =
  let rec split_steps = function
    | [] -> [ [] ]
    | s :: rest ->
      let qual_alternatives =
        (* Each qualifier normalizes to a list of conjunctions; a
           conjunction becomes a list of qualifiers again. *)
        List.map
          (fun q -> List.map (fun conj -> conj) (dnf q))
          s.qualifiers
      in
      let rec combos = function
        | [] -> [ [] ]
        | alts :: more ->
          List.concat_map
            (fun choice -> List.map (fun tail -> choice @ tail) (combos more))
            alts
      in
      let qual_choices = combos qual_alternatives in
      let rests = split_steps rest in
      List.concat_map
        (fun quals -> List.map (fun tail -> { s with qualifiers = quals } :: tail) rests)
        qual_choices
  in
  List.map (fun steps -> { p with steps }) (split_steps p.steps)
