(** Abstract syntax of XPathLog constraints (May 2004; Section 3.1 of the
    paper): denials over reference expressions — path expressions whose
    steps may bind selected nodes or text values to variables with
    [-> Var] — combined with comparisons, connectives and aggregates. *)

type cmp = Xic_datalog.Term.cmp
type agg_op = Xic_datalog.Term.agg_op

(** Where a path starts. *)
type start =
  | From_root  (** [/steps]; inside a qualifier, relative to the context *)
  | From_any   (** [//steps] — any descendant of the document root *)
  | From_ctx   (** [steps] — the qualifier's context node *)
  | From_var of string  (** [V/steps] — a node variable bound elsewhere *)

type test =
  | Elem of string
  | Attr of string  (** [@name] *)
  | Text_fun        (** [text()] *)
  | Parent_nav      (** [..] — the unique container type *)

type step = {
  desc : bool;  (** reached via [//] rather than [/] *)
  test : test;
  qualifiers : formula list;
  binding : string option;  (** [-> Var] *)
}

and path = {
  start : start;
  steps : step list;
}

and operand =
  | O_var of string
  | O_const of Xic_datalog.Term.const
  | O_param of string
  | O_path of path  (** value of a nested path (node id or text) *)

and formula =
  | F_path of path  (** existence / bindings *)
  | F_cmp of cmp * operand * operand
  | F_pos of cmp * operand
      (** positional qualifier [position() cmp e] or bare [n]; only valid
          inside qualifiers *)
  | F_and of formula * formula
  | F_or of formula * formula
  | F_not of formula
  | F_agg of agg

(** [op{target [groups]; path} cmp bound]; [groups] are variables shared
    with the rest of the constraint. *)
and agg = {
  op : agg_op;
  target : string option;
  groups : string list;
  path : path;
  acmp : cmp;
  bound : operand;
}

type denial = {
  label : string option;
  body : formula;
}

val path_str : path -> string
val operand_str : operand -> string
val formula_str : formula -> string
val denial_str : denial -> string
(** Concrete syntax, reparsable by {!Parser}. *)

val dnf : formula -> formula list list
(** Disjunctive normal form: negations are pushed inward (comparisons and
    aggregate bounds flip; negated paths stay as [F_not]), disjunctions —
    including those inside step qualifiers, which split the enclosing path
    — expand into one conjunction (flat formula list) per disjunct. *)

val split_path : path -> path list
(** Expand disjunctive qualifiers of a single path. *)
