module T = Xic_datalog.Term
module M = Xic_relmap.Mapping

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Compilation state                                                   *)
(* ------------------------------------------------------------------ *)

type binding = {
  term : T.term;
  etype : string option;  (* element type when the variable names a node *)
}

type st = {
  lits : T.lit list;  (* reversed *)
  env : (string * binding) list;
}

let empty_st = { lits = []; env = [] }

let fresh_anon () = T.Var (T.fresh_var ~base:"_X" ())

(* Fresh node-id variables are '_'-prefixed so that single-occurrence ones
   print as "_" like other anonymous variables. *)
let fresh_id tag = T.Var (T.fresh_var ~base:("_I" ^ tag) ())

(* Result of a (partial) path. *)
type ctx =
  | RNode of { id : T.term; etype : string; pos : T.term; args : T.term list }
  | RText of T.term
  | REmb of T.term   (* embedded child awaiting text() *)
  | RRoot of string  (* elided root element type *)

let add_lit st l = { st with lits = l :: st.lits }

(* Bind an XPathLog variable to a term.  The binding is recorded as an
   equality between the user-named Datalog variable and the term; the
   equality-inlining pass later substitutes the internal variable away, so
   user names survive into the compiled denial (as in the paper's
   Example 3). *)
let bind st v term etype =
  match List.assoc_opt v st.env with
  | Some b -> add_lit st (T.Cmp (T.Eq, b.term, term))
  | None ->
    let st = { st with env = (v, { term = T.Var v; etype }) :: st.env } in
    add_lit st (T.Cmp (T.Eq, T.Var v, term))

let lookup_var st v = List.assoc_opt v st.env

(* ------------------------------------------------------------------ *)
(* Schema helpers                                                      *)
(* ------------------------------------------------------------------ *)

let schema_exn mapping tag =
  match M.schema_of mapping tag with
  | Some s -> s
  | None -> fail "<%s> does not map to a predicate" tag

(* Make an atom for element type [tag] with the given parent term and
   optionally a fixed id term; returns (st', ctx). *)
let make_atom ?id mapping st tag parent_term =
  let schema = schema_exn mapping tag in
  let id =
    match id with Some t -> t | None -> fresh_id (String.capitalize_ascii tag)
  in
  let pos = fresh_anon () in
  let cols = List.map (fun _ -> fresh_anon ()) schema.M.columns in
  let args = id :: pos :: parent_term :: cols in
  let st = add_lit st (T.Rel { T.pred = tag; T.args }) in
  (st, RNode { id; etype = tag; pos; args })

let column_term mapping (node : ctx) source_match =
  match node with
  | RNode { etype; args; _ } ->
    let schema = schema_exn mapping etype in
    let rec go i = function
      | [] -> None
      | (c : M.column) :: rest ->
        if source_match c then Some (List.nth args (3 + i)) else go (i + 1) rest
    in
    go 0 schema.M.columns
  | _ -> None

(* DTD chains from [t] (exclusive) down to [t'] (inclusive), passing only
   through predicate element types; used to expand mid-path [//]. *)
let chains mapping ~from ~target =
  let rec go current visited =
    if List.mem current visited then []
    else begin
      let children =
        List.concat_map
          (fun (dtd, _) ->
            match Xic_xml.Dtd.find dtd current with
            | None -> []
            | Some _ -> Xic_xml.Dtd.child_names dtd current)
          (M.dtds mapping)
        |> List.sort_uniq compare
      in
      List.concat_map
        (fun c ->
          let tails =
            if c = target then [ [ c ] ] else []
          in
          let deeper =
            match M.repr_of mapping c with
            | M.Predicate _ ->
              List.map (fun rest -> c :: rest) (go c (current :: visited))
            | _ -> []
          in
          tails @ deeper)
        children
    end
  in
  go from []

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let rec compile_step mapping (st, node) (s : Ast.step) : (st * ctx) list =
  let open Ast in
  let finish st ctx =
    (* qualifiers, then binding *)
    let alts = List.fold_left
        (fun alts q ->
          List.concat_map (fun (st, ctx) -> compile_qualifier mapping st ctx q) alts)
        [ (st, ctx) ] s.qualifiers
    in
    List.map
      (fun (st, ctx) ->
        match s.binding with
        | None -> (st, ctx)
        | Some v ->
          (match ctx with
           | RNode { id; etype; _ } -> (bind st v id (Some etype), ctx)
           | REmb col | RText col -> (bind st v col None, ctx)
           | RRoot r -> fail "cannot bind the elided root <%s> to %s" r v))
      alts
  in
  match (node, s.test) with
  | RText _, _ -> fail "cannot navigate below a text value"
  | REmb col, Text_fun ->
    if s.desc then fail "text() cannot follow //";
    finish st (RText col)
  | REmb _, _ -> fail "an embedded element only supports a text() step"
  | RRoot r, Elem t ->
    (* Children of an elided root: the parent link is unconstrained (the
       root is the only possible container). *)
    let ok_child =
      List.exists
        (fun (dtd, root) ->
          root = r && List.mem t (Xic_xml.Dtd.child_names dtd r))
        (M.dtds mapping)
    in
    let expand_chain () =
      List.concat_map
        (fun chain -> compile_chain mapping st (fresh_anon ()) chain |> fun (st, ctx) -> finish st ctx)
        (chains mapping ~from:r ~target:t)
    in
    if s.desc then begin
      match expand_chain () with
      | [] -> fail "<%s> is not a descendant type of root <%s>" t r
      | alts -> alts
    end
    else if ok_child then begin
      match M.repr_of mapping t with
      | M.Predicate _ ->
        let st, ctx = make_atom mapping st t (fresh_anon ()) in
        finish st ctx
      | M.Embedded -> fail "embedded element <%s> directly under a root" t
      | M.Elided -> fail "nested elided element <%s>" t
    end
    else fail "<%s> is not a child type of root <%s>" t r
  | RRoot _, (Text_fun | Attr _ | Parent_nav) ->
    fail "roots have no text, attributes or parents"
  | RNode { id; etype; _ }, Elem t ->
    if s.desc then begin
      let alts =
        List.concat_map
          (fun chain -> [ compile_chain mapping st id chain ])
          (chains mapping ~from:etype ~target:t)
      in
      match alts with
      | [] -> fail "<%s> is not a descendant type of <%s>" t etype
      | _ -> List.concat_map (fun (st, ctx) -> finish st ctx) alts
    end
    else if M.is_embedded_in mapping ~parent:etype ~child:t then begin
      match column_term mapping node (function
          | { M.source = M.From_pcdata_child c; _ } -> c = t
          | _ -> false) with
      | Some col -> finish st (REmb col)
      | None -> fail "no column for embedded <%s> in <%s>" t etype
    end
    else begin
      let is_child =
        List.exists
          (fun (dtd, _) ->
            match Xic_xml.Dtd.find dtd etype with
            | None -> false
            | Some _ -> List.mem t (Xic_xml.Dtd.child_names dtd etype))
          (M.dtds mapping)
      in
      if not is_child then fail "<%s> is not a child type of <%s>" t etype;
      match M.repr_of mapping t with
      | M.Predicate _ ->
        let st, ctx = make_atom mapping st t id in
        finish st ctx
      | M.Embedded -> assert false (* handled above *)
      | M.Elided -> fail "elided type <%s> below <%s>" t etype
    end
  | RNode _, Text_fun ->
    (match column_term mapping node (function
         | { M.source = M.From_text; _ } -> true
         | _ -> false) with
     | Some col -> finish st (RText col)
     | None ->
       (match node with
        | RNode { etype; _ } ->
          fail "text() on <%s>, which has no text column (element content)" etype
        | _ -> assert false))
  | RNode _, Attr a ->
    (match column_term mapping node (function
         | { M.source = M.From_attr x; _ } -> x = a
         | _ -> false) with
     | Some col -> finish st (RText col)
     | None ->
       (match node with
        | RNode { etype; _ } -> fail "<%s> has no attribute @%s" etype a
        | _ -> assert false))
  | RNode { id; etype; args; _ }, Parent_nav ->
    if s.desc then fail "'..' cannot follow //";
    (match M.containers_of mapping etype with
     | [ ptype ] ->
       (* The parent term: the atom's third argument when available; a
          From_var re-entry carries no argument list, so re-assert the
          child atom with a fresh parent variable (sound: ids are keys). *)
       let st, parent_term =
         match args with
         | _ :: _ :: par :: _ -> (st, par)
         | _ ->
           let pv = fresh_anon () in
           let st, _ = make_atom ~id mapping st etype pv in
           (st, pv)
       in
       (match M.repr_of mapping ptype with
        | M.Elided -> finish st (RRoot ptype)
        | M.Predicate _ ->
          let st, pctx = make_atom ~id:parent_term mapping st ptype (fresh_anon ()) in
          finish st pctx
        | M.Embedded -> fail "container <%s> is embedded (internal)" ptype)
     | [] -> fail "<%s> has no container type" etype
     | ps ->
       fail "'..' from <%s> is ambiguous (containers: %s)" etype
         (String.concat ", " ps))

(* Emit atoms for a //-chain of predicate types below [parent_id]. *)
and compile_chain mapping st parent_id chain =
  match chain with
  | [] -> fail "empty descendant chain"
  | _ ->
    List.fold_left
      (fun (st, parent) tag ->
        let parent_term =
          match parent with
          | RNode { id; _ } -> id
          | _ -> assert false
        in
        ignore parent_term;
        make_atom mapping st tag
          (match parent with RNode { id; _ } -> id | _ -> assert false))
      (make_atom_start mapping st parent_id (List.hd chain))
      (List.tl chain)

and make_atom_start mapping st parent_id tag = make_atom mapping st tag parent_id

and compile_qualifier mapping st ctx (q : Ast.formula) : (st * ctx) list =
  match q with
  | Ast.F_pos (op, operand) ->
    (match ctx with
     | RNode { pos; _ } ->
       let st, t = compile_operand mapping st ~ctx:(Some ctx) operand in
       [ (add_lit st (T.Cmp (op, pos, t)), ctx) ]
     | _ -> fail "position() qualifier on a non-element step")
  | q ->
    List.map
      (fun st -> (st, ctx))
      (compile_flat mapping st ~ctx:(Some ctx) q)

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)
(* ------------------------------------------------------------------ *)

and compile_path mapping st ~ctx (p : Ast.path) : (st * ctx) list =
  let open Ast in
  let initial : (st * ctx) list =
    match (p.start, ctx) with
    | From_var v, _ ->
      (match lookup_var st v with
       | Some { term; etype = Some t } ->
         (* Re-enter the node: we rebuild a pseudo-context without column
            access (columns of the original atom are not recoverable), so
            only child/descendant steps are allowed from here.  We emit no
            new atom; navigation below uses the id. *)
         [ (st, RNode { id = term; etype = t; pos = fresh_anon (); args = [] }) ]
       | Some { etype = None; _ } -> fail "variable %s is not bound to a node" v
       | None -> fail "unbound path variable %s" v)
    | (From_ctx | From_root), Some node -> [ (st, node) ]
    | From_any, Some _ | From_any, None -> [ (st, RRoot "") ]
    | From_root, None -> [ (st, RRoot "") ]
    | From_ctx, None -> fail "a context-relative path needs a qualifier context"
  in
  (* A pseudo RRoot "" means the (virtual) document node: the first step
     resolves globally. *)
  let step_from (st, node) (s : step) =
    match node with
    | RRoot "" ->
      (match s.test with
       | Elem t ->
         (match M.repr_of mapping t with
          | M.Predicate _ ->
            (* Any instance of t in the collection; parent unconstrained. *)
            let st, ctx = make_atom mapping st t (fresh_anon ()) in
            apply_quals_binding mapping st ctx s
          | M.Elided -> apply_quals_binding mapping st (RRoot t) s
          | M.Embedded ->
            (match containers_unique mapping t with
             | Some parent ->
               (* //name for an embedded type: navigate via its container. *)
               let st, pctx = make_atom mapping st parent (fresh_anon ()) in
               (match column_term mapping pctx (function
                    | { M.source = M.From_pcdata_child c; _ } -> c = t
                    | _ -> false) with
                | Some col -> apply_quals_binding mapping st (REmb col) s
                | None -> fail "no column for <%s> in <%s>" t parent)
             | None ->
               fail
                 "embedded type <%s> cannot be addressed absolutely (multiple containers)"
                 t))
       | Text_fun | Attr _ | Parent_nav ->
         fail "absolute paths must start with an element step")
    | _ -> compile_step mapping (st, node) s
  in
  List.fold_left
    (fun alts s -> List.concat_map (fun sc -> step_from sc s) alts)
    initial p.steps

and containers_unique mapping t =
  match M.containers_of mapping t with [ p ] -> Some p | _ -> None

and apply_quals_binding mapping st ctx (s : Ast.step) =
  (* Shared tail of compile_step for the document-node case. *)
  let alts =
    List.fold_left
      (fun alts q ->
        List.concat_map (fun (st, ctx) -> compile_qualifier mapping st ctx q) alts)
      [ (st, ctx) ] s.qualifiers
  in
  List.map
    (fun (st, ctx) ->
      match s.binding with
      | None -> (st, ctx)
      | Some v ->
        (match ctx with
         | RNode { id; etype; _ } -> (bind st v id (Some etype), ctx)
         | REmb col | RText col -> (bind st v col None, ctx)
         | RRoot r -> fail "cannot bind the elided root <%s>" r))
    alts

and compile_operand mapping st ~ctx (o : Ast.operand) : st * T.term =
  match o with
  | Ast.O_const c -> (st, T.Const c)
  | Ast.O_param p -> (st, T.Param p)
  | Ast.O_var v ->
    (match lookup_var st v with
     | Some b -> (st, b.term)
     | None ->
       (* Forward reference: introduce the variable now; a later binding
          occurrence will unify with it. *)
       let term = T.Var v in
       ({ st with env = (v, { term; etype = None }) :: st.env }, term))
  | Ast.O_path p ->
    (match compile_path mapping st ~ctx p with
     | [ (st, RText t) ] -> (st, t)
     | [ (st, RNode { id; _ }) ] -> (st, id)
     | [ (_, (REmb _ | RRoot _)) ] ->
       fail "path operand %s does not denote a value" (Ast.path_str p)
     | [] -> fail "path operand %s matches no schema path" (Ast.path_str p)
     | _ :: _ :: _ ->
       fail "ambiguous // in path operand %s (multiple DTD chains)" (Ast.path_str p))

(* Flat formulas inside an already-DNF conjunct. *)
and compile_flat mapping st ~ctx (f : Ast.formula) : st list =
  match f with
  | Ast.F_path p -> List.map fst (compile_path mapping st ~ctx p)
  | Ast.F_cmp (op, a, b) ->
    let st, ta = compile_operand mapping st ~ctx a in
    let st, tb = compile_operand mapping st ~ctx b in
    [ add_lit st (T.Cmp (op, ta, tb)) ]
  | Ast.F_pos _ -> fail "position() is only allowed inside qualifiers"
  | Ast.F_not (Ast.F_path p) ->
    (* Safe negation: the path must compile to atoms only (binding
       equalities are inlined first, their variables staying local to the
       negation), and introduce no new variable bindings used elsewhere. *)
    let sub = compile_path mapping { st with lits = [] } ~ctx p in
    (match sub with
     | [ (st', _) ] ->
       let new_lits, _ = inline_agg_lits (List.rev st'.lits) None in
       let atoms = new_lits in
       (match atoms with
        | [ a ] -> [ add_lit { st' with lits = st.lits } (T.Not a) ]
        | _ ->
          fail
            "negated path %s spans %d relations; only single-relation negation is safe"
            (Ast.path_str p) (List.length atoms))
     | _ -> fail "ambiguous negated path %s" (Ast.path_str p))
  | Ast.F_not _ -> fail "negation is only supported on paths"
  | Ast.F_and _ | Ast.F_or _ -> fail "formula not in DNF (internal error)"
  | Ast.F_agg g -> [ compile_agg mapping st ~ctx g ]

and compile_agg mapping st ~ctx (g : Ast.agg) : st =
  (* Compile the aggregate path in a sub-state sharing the environment so
     group variables unify with their outer occurrences, then inline the
     equalities so that only atoms remain. *)
  (* Pre-bind group variables (so they appear as shared Datalog vars). *)
  let st =
    List.fold_left
      (fun st v ->
        match lookup_var st v with
        | Some _ -> st
        | None -> { st with env = (v, { term = T.Var v; etype = None }) :: st.env })
      st g.Ast.groups
  in
  let sub = compile_path mapping { st with lits = [] } ~ctx g.Ast.path in
  match sub with
  | [ (st', res) ] ->
    let target_term =
      match (g.Ast.target, res) with
      | Some v, _ ->
        (match lookup_var st' v with
         | Some b -> Some b.term
         | None -> fail "aggregate target %s is not bound by the path" v)
      | None, RNode { id; _ } -> Some id
      | None, (RText t | REmb t) -> Some t
      | None, RRoot _ -> fail "aggregate path does not denote nodes"
    in
    let new_lits = List.rev st'.lits in
    (* Inline equalities among the aggregate's literals. *)
    let atoms, target_term =
      inline_agg_lits new_lits target_term
    in
    let st = { st' with lits = st.lits } in
    let st, bound = compile_operand mapping st ~ctx g.Ast.bound in
    add_lit st
      (T.Agg { T.op = g.Ast.op; target = target_term; atoms; acmp = g.Ast.acmp; bound })
  | [] -> fail "aggregate path matches no schema path"
  | _ -> fail "ambiguous // in aggregate path %s" (Ast.path_str g.Ast.path)

(* Equalities inside an aggregate pattern are resolved by substitution;
   anything else is unsupported there. *)
and inline_agg_lits lits target =
  let eqs, rest =
    List.partition (function T.Cmp (T.Eq, _, _) -> true | _ -> false) lits
  in
  (* Substitute the internal variable away, keeping user-named ones. *)
  let internal v =
    String.length v > 0 && (v.[0] = '_' || String.contains v '_')
  in
  let subst_of =
    List.fold_left
      (fun s l ->
        match l with
        | T.Cmp (T.Eq, T.Var a, t) when internal a -> Xic_datalog.Subst.add a t s
        | T.Cmp (T.Eq, t, T.Var a) when internal a -> Xic_datalog.Subst.add a t s
        | T.Cmp (T.Eq, T.Var a, t) -> Xic_datalog.Subst.add a t s
        | T.Cmp (T.Eq, t, T.Var a) -> Xic_datalog.Subst.add a t s
        | _ -> fail "unsupported literal in aggregate: %s" (T.lit_str l))
      Xic_datalog.Subst.empty eqs
  in
  let atoms =
    List.map
      (function
        | T.Rel a -> Xic_datalog.Subst.apply_atom subst_of a
        | l -> fail "unsupported literal in aggregate: %s" (T.lit_str l))
      rest
  in
  (atoms, Option.map (Xic_datalog.Subst.apply_term subst_of) target)

(* ------------------------------------------------------------------ *)
(* Post-processing                                                     *)
(* ------------------------------------------------------------------ *)

(* Inline Var=term equalities.  When a user-named variable meets an
   internal one (prefix I/_/…), prefer keeping the user name. *)
let is_internal v =
  String.length v > 0
  && (v.[0] = '_'
      || (String.contains v '_'
          && (let i = String.rindex v '_' in
              i + 1 < String.length v
              && String.for_all
                   (fun c -> c >= '0' && c <= '9')
                   (String.sub v (i + 1) (String.length v - i - 1))
              && v.[0] = 'I')))

let inline_equalities (d : T.denial) : T.denial =
  let rec loop body =
    let rec find acc = function
      | [] -> None
      | T.Cmp (T.Eq, T.Var a, T.Var b) :: rest when a = b ->
        Some (List.rev_append acc rest, Xic_datalog.Subst.empty)
      | T.Cmp (T.Eq, T.Var a, t) :: rest
        when (match t with T.Var b -> is_internal a || not (is_internal b) | _ -> true) ->
        (* substitute a := t, unless that would replace a user var by an
           internal one (then flip). *)
        let s =
          match t with
          | T.Var b when is_internal b && not (is_internal a) ->
            Xic_datalog.Subst.add b (T.Var a) Xic_datalog.Subst.empty
          | _ -> Xic_datalog.Subst.add a t Xic_datalog.Subst.empty
        in
        Some (List.rev_append acc rest, s)
      | T.Cmp (T.Eq, t, T.Var a) :: rest ->
        let s =
          match t with
          | T.Var b when not (is_internal b) && is_internal a ->
            Xic_datalog.Subst.add a (T.Var b) Xic_datalog.Subst.empty
          | _ -> Xic_datalog.Subst.add a t Xic_datalog.Subst.empty
        in
        Some (List.rev_append acc rest, s)
      | l :: rest -> find (l :: acc) rest
    in
    match find [] body with
    | None -> body
    | Some (body', s) -> loop (List.map (Xic_datalog.Subst.apply_lit s) body')
  in
  { d with T.body = loop d.T.body }

(* Drop container atoms that only witness the existence of a child whose
   sole possible container type they are (the paper drops the [pub] atom
   in Example 3's second denial — wait, it keeps it; we keep a switch). *)
let prune_redundant_parents mapping (d : T.denial) : T.denial =
  let body = d.T.body in
  let used_elsewhere skip v =
    List.exists
      (fun l -> l != skip && List.mem v (T.lit_vars l))
      body
  in
  let keep l =
    match l with
    | T.Rel a ->
      (match a.T.args with
       | T.Var id :: rest ->
         (* Candidate for pruning: every other argument is unused
            elsewhere, and the id var occurs elsewhere only in parent
            position of atoms whose unique container is this pred. *)
         let others_unused =
           List.for_all
             (fun t ->
               match t with
               | T.Var v -> not (used_elsewhere l v)
               | T.Const _ | T.Param _ -> false)
             rest
         in
         if not others_unused then true
         else begin
           let uses_ok = ref true and used = ref false in
           List.iter
             (fun l' ->
               if l' != l then
                 match l' with
                 | T.Rel a' ->
                   List.iteri
                     (fun i t ->
                       if t = T.Var id then begin
                         used := true;
                         if i <> 2 then uses_ok := false
                         else begin
                           match M.containers_of mapping a'.T.pred with
                           | [ c ] when c = a.T.pred -> ()
                           | _ -> uses_ok := false
                         end
                       end)
                     a'.T.args
                 | _ ->
                   if List.mem id (T.lit_vars l') then begin
                     used := true;
                     uses_ok := false
                   end)
             body;
           not (!used && !uses_ok)
         end
       | _ -> true)
    | _ -> true
  in
  { d with T.body = List.filter keep body }

(* Group variables of aggregates and comparison variables must have
   positive support (range restriction): add a domain atom when a
   variable occurs only inside aggregates. *)
let add_domain_atoms (d : T.denial) : T.denial =
  let positive_vars =
    List.concat_map
      (function T.Rel a -> T.atom_vars a | _ -> [])
      d.T.body
  in
  let needed = ref [] in
  List.iter
    (function
      | T.Agg g ->
        let local = T.agg_local_vars d.T.body (g : T.agg) in
        List.iter
          (fun a ->
            List.iter
              (fun v ->
                if
                  (not (List.mem v local))
                  && (not (List.mem v positive_vars))
                  && not (List.mem_assoc v !needed)
                then begin
                  (* Domain atom: this aggregate atom with all variables
                     other than [v] anonymized. *)
                  let dom =
                    { a with
                      T.args =
                        List.map
                          (fun t -> if t = T.Var v then t else fresh_anon ())
                          a.T.args;
                    }
                  in
                  needed := (v, T.Rel dom) :: !needed
                end)
              (T.atom_vars a))
          g.T.atoms
      | _ -> ())
    d.T.body;
  if !needed = [] then d
  else { d with T.body = List.map snd (List.rev !needed) @ d.T.body }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let compile_conjunct mapping label (conj : Ast.formula list) : T.denial list =
  (* Compile paths first (they create bindings), then everything else. *)
  let paths, rest =
    List.partition (function Ast.F_path _ -> true | _ -> false) conj
  in
  let sts =
    List.fold_left
      (fun sts f -> List.concat_map (fun st -> compile_flat mapping st ~ctx:None f) sts)
      [ empty_st ]
      (paths @ rest)
  in
  List.map
    (fun st ->
      T.denial ?label (List.rev st.lits)
      |> inline_equalities
      |> prune_redundant_parents mapping
      |> add_domain_atoms)
    sts

let compile_denial mapping (d : Ast.denial) : T.denial list =
  let conjunctions = Ast.dnf d.Ast.body in
  try List.concat_map (compile_conjunct mapping d.Ast.label) conjunctions
  with M.Mapping_error m -> fail "%s" m

let compile mapping ds = List.concat_map (compile_denial mapping) ds

let parse_and_compile mapping ?label src =
  compile_denial mapping (Parser.parse_denial ?label src)
