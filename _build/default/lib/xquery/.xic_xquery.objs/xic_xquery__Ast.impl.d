lib/xquery/ast.ml: List Option String Xic_xpath
