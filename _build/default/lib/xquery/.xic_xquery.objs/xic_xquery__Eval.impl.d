lib/xquery/eval.ml: Ast Doc Float List Printf String Xic_xml Xic_xpath
