lib/xquery/parser.ml: Ast List Xic_xpath
