lib/xquery/ast.mli: Xic_xpath
