lib/xquery/eval.mli: Ast Doc Xic_xml Xic_xpath
