exception Parse_error of string

module Xp = Xic_xpath.Parser
module C = Xp.Cursor

let keywords = [ "some"; "every"; "for"; "let"; "if" ]

let is_keyword = function
  | Xp.NAME n -> List.mem n keywords
  | Xp.LT -> true (* element constructor *)
  | _ -> false

(* Wrap the shared cursor failure into our own exception type. *)
let guard f c =
  try f c with Xp.Parse_error m -> raise (Parse_error m)

open Ast

let rec parse_expr c = parse_or c

and parse_or c =
  let lhs = parse_and c in
  match C.peek c with
  | Xp.NAME "or" ->
    ignore (C.next c);
    Binop (Xic_xpath.Ast.Or, lhs, parse_or c)
  | _ -> lhs

and parse_and c =
  let lhs = parse_cmp c in
  match C.peek c with
  | Xp.NAME "and" ->
    ignore (C.next c);
    Binop (Xic_xpath.Ast.And, lhs, parse_and c)
  | _ -> lhs

and parse_cmp c =
  let lhs = parse_add c in
  let op =
    match C.peek c with
    | Xp.EQ -> Some Xic_xpath.Ast.Eq
    | Xp.NEQ -> Some Xic_xpath.Ast.Neq
    | Xp.LT -> Some Xic_xpath.Ast.Lt
    | Xp.LE -> Some Xic_xpath.Ast.Le
    | Xp.GT -> Some Xic_xpath.Ast.Gt
    | Xp.GE -> Some Xic_xpath.Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    ignore (C.next c);
    Binop (op, lhs, parse_add c)

and parse_add c =
  let rec loop lhs =
    match C.peek c with
    | Xp.PLUS ->
      ignore (C.next c);
      loop (Binop (Xic_xpath.Ast.Add, lhs, parse_mul c))
    | Xp.MINUS ->
      ignore (C.next c);
      loop (Binop (Xic_xpath.Ast.Sub, lhs, parse_mul c))
    | _ -> lhs
  in
  loop (parse_mul c)

and parse_mul c =
  let rec loop lhs =
    match C.peek c with
    | Xp.STAR ->
      ignore (C.next c);
      loop (Binop (Xic_xpath.Ast.Mul, lhs, parse_operand c))
    | Xp.NAME "div" ->
      ignore (C.next c);
      loop (Binop (Xic_xpath.Ast.Div, lhs, parse_operand c))
    | Xp.NAME "mod" ->
      ignore (C.next c);
      loop (Binop (Xic_xpath.Ast.Mod, lhs, parse_operand c))
    | _ -> lhs
  in
  loop (parse_operand c)

and parse_operand c =
  match C.peek c with
  | Xp.NAME "some" -> parse_quant c Some_
  | Xp.NAME "every" -> parse_quant c Every
  | Xp.NAME "for" | Xp.NAME "let" -> parse_flwor c
  | Xp.NAME "if" when C.peek2 c = Xp.LPAREN -> parse_if c
  | Xp.LT -> parse_elem c
  | Xp.NAME f
    when C.peek2 c = Xp.LPAREN && is_keyword (C.peekn c 2) ->
    (* Function call with XQuery-level arguments, e.g. exists(for …). *)
    ignore (C.next c);
    guard (fun c -> C.eat c Xp.LPAREN) c;
    let rec args acc =
      if C.peek c = Xp.RPAREN then List.rev acc
      else begin
        let a = parse_expr c in
        if C.peek c = Xp.COMMA then begin
          ignore (C.next c);
          args (a :: acc)
        end
        else List.rev (a :: acc)
      end
    in
    let args = args [] in
    guard (fun c -> C.eat c Xp.RPAREN) c;
    Call (f, args)
  | Xp.LPAREN ->
    (* Parenthesized XQuery expression or sequence; sequences cannot be
       delegated to the XPath parser. *)
    ignore (C.next c);
    let e = parse_expr c in
    let e =
      if C.peek c = Xp.COMMA then begin
        let rec more acc =
          if C.peek c = Xp.COMMA then begin
            ignore (C.next c);
            more (parse_expr c :: acc)
          end
          else List.rev acc
        in
        Seq (e :: more [])
      end
      else e
    in
    guard (fun c -> C.eat c Xp.RPAREN) c;
    e
  | _ -> Xp (guard Xp.parse_path_expr_at c)

and parse_quant c q =
  ignore (C.next c);
  let rec binds acc =
    match C.next c with
    | Xp.VAR v ->
      guard (fun c -> C.eat_name c "in") c;
      let e = parse_expr c in
      if C.peek c = Xp.COMMA then begin
        ignore (C.next c);
        binds ((v, e) :: acc)
      end
      else List.rev ((v, e) :: acc)
    | t -> raise (Parse_error ("expected $var in quantifier, got " ^ Xp.token_str t))
  in
  let binds = binds [] in
  guard (fun c -> C.eat_name c "satisfies") c;
  Quant (q, binds, parse_expr c)

and parse_flwor c =
  let rec clauses acc =
    match C.peek c with
    | Xp.NAME "for" ->
      ignore (C.next c);
      let rec vars acc =
        match C.next c with
        | Xp.VAR v ->
          guard (fun c -> C.eat_name c "in") c;
          let e = parse_expr c in
          if C.peek c = Xp.COMMA then begin
            ignore (C.next c);
            vars (For (v, e) :: acc)
          end
          else For (v, e) :: acc
        | t -> raise (Parse_error ("expected $var in for, got " ^ Xp.token_str t))
      in
      clauses (vars acc)
    | Xp.NAME "let" ->
      ignore (C.next c);
      let rec vars acc =
        match C.next c with
        | Xp.VAR v ->
          guard (fun c -> C.eat c Xp.ASSIGN) c;
          let e = parse_expr c in
          if C.peek c = Xp.COMMA then begin
            ignore (C.next c);
            vars (Let (v, e) :: acc)
          end
          else Let (v, e) :: acc
        | t -> raise (Parse_error ("expected $var in let, got " ^ Xp.token_str t))
      in
      clauses (vars acc)
    | _ -> List.rev acc
  in
  let clauses = clauses [] in
  if clauses = [] then raise (Parse_error "expected for/let clause");
  let where =
    if C.peek c = Xp.NAME "where" then begin
      ignore (C.next c);
      Some (parse_expr c)
    end
    else None
  in
  guard (fun c -> C.eat_name c "return") c;
  Flwor (clauses, where, parse_expr c)

and parse_if c =
  ignore (C.next c);
  guard (fun c -> C.eat c Xp.LPAREN) c;
  let cond = parse_expr c in
  guard (fun c -> C.eat c Xp.RPAREN) c;
  guard (fun c -> C.eat_name c "then") c;
  let t = parse_expr c in
  guard (fun c -> C.eat_name c "else") c;
  let f = parse_expr c in
  If (cond, t, f)

and parse_elem c =
  guard (fun c -> C.eat c Xp.LT) c;
  let tag =
    match C.next c with
    | Xp.NAME n -> n
    | t -> raise (Parse_error ("expected element name, got " ^ Xp.token_str t))
  in
  match C.next c with
  | Xp.SLASH ->
    guard (fun c -> C.eat c Xp.GT) c;
    Elem (tag, [])
  | Xp.GT ->
    let rec body acc =
      match C.peek c with
      | Xp.LBRACE ->
        ignore (C.next c);
        let e = parse_expr c in
        guard (fun c -> C.eat c Xp.RBRACE) c;
        body (e :: acc)
      | _ -> List.rev acc
    in
    let body = body [] in
    guard (fun c -> C.eat c Xp.LT) c;
    guard (fun c -> C.eat c Xp.SLASH) c;
    let close =
      match C.next c with
      | Xp.NAME n -> n
      | t -> raise (Parse_error ("expected closing tag name, got " ^ Xp.token_str t))
    in
    if close <> tag then raise (Parse_error ("mismatched constructor tags " ^ tag ^ "/" ^ close));
    guard (fun c -> C.eat c Xp.GT) c;
    Elem (tag, body)
  | t -> raise (Parse_error ("malformed element constructor at " ^ Xp.token_str t))

let parse src =
  let c = try C.of_string src with Xp.Parse_error m -> raise (Parse_error m) in
  let e = parse_expr c in
  if not (C.at_eof c) then
    raise (Parse_error "trailing tokens after XQuery expression");
  e
