(** Parser for the XQuery subset of {!Ast}.

    Reuses the shared lexer of {!Xic_xpath.Parser}; pure path/arithmetic
    fragments are delegated to the XPath parser, while the XQuery keywords
    ([for], [let], [where], [return], [some], [every], [satisfies], [if])
    and element constructors are handled here.  Keyword names take
    precedence over element names at operand positions. *)

exception Parse_error of string

val parse : string -> Ast.expr
(** @raise Parse_error on malformed input or trailing tokens. *)
