lib/xupdate/xupdate.mli: Doc Xic_xml Xic_xpath
