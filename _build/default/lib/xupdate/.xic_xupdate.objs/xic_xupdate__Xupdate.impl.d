lib/xupdate/xupdate.ml: Buffer Doc List Printf String Xic_xml Xic_xpath Xml_parser Xml_printer
