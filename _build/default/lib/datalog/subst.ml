(** Substitutions over Datalog terms: finite maps from variable names to
    terms, applied simultaneously. *)

module M = Map.Make (String)

type t = Term.term M.t

let empty : t = M.empty
let is_empty = M.is_empty
let bindings = M.bindings
let of_list l = M.of_seq (List.to_seq l)
let add v t (s : t) : t = M.add v t s
let find v (s : t) = M.find_opt v s
let mem v (s : t) = M.mem v s

let rec apply_term (s : t) = function
  | Term.Var v ->
    (match M.find_opt v s with
     | Some (Term.Var v') when v' = v -> Term.Var v
     | Some t -> apply_term s t  (* follow chains; acyclic by construction *)
     | None -> Term.Var v)
  | (Term.Const _ | Term.Param _) as t -> t

let apply_atom s (a : Term.atom) = { a with Term.args = List.map (apply_term s) a.args }

let apply_agg s (g : Term.agg) =
  {
    g with
    Term.target = Option.map (apply_term s) g.Term.target;
    Term.atoms = List.map (apply_atom s) g.Term.atoms;
    Term.bound = apply_term s g.Term.bound;
  }

let apply_lit s = function
  | Term.Rel a -> Term.Rel (apply_atom s a)
  | Term.Not a -> Term.Not (apply_atom s a)
  | Term.Cmp (op, t1, t2) -> Term.Cmp (op, apply_term s t1, apply_term s t2)
  | Term.Agg g -> Term.Agg (apply_agg s g)

let apply_denial s (d : Term.denial) =
  { d with Term.body = List.map (apply_lit s) d.Term.body }

(** Substitute parameters by constants (the update-time valuation). *)
let rec apply_params_term (vals : (string * Term.const) list) = function
  | Term.Param p ->
    (match List.assoc_opt p vals with
     | Some c -> Term.Const c
     | None -> Term.Param p)
  | t -> t

and apply_params_atom vals (a : Term.atom) =
  { a with Term.args = List.map (apply_params_term vals) a.args }

let apply_params_lit vals = function
  | Term.Rel a -> Term.Rel (apply_params_atom vals a)
  | Term.Not a -> Term.Not (apply_params_atom vals a)
  | Term.Cmp (op, t1, t2) ->
    Term.Cmp (op, apply_params_term vals t1, apply_params_term vals t2)
  | Term.Agg g ->
    Term.Agg
      {
        g with
        Term.target = Option.map (apply_params_term vals) g.Term.target;
        Term.atoms = List.map (apply_params_atom vals) g.Term.atoms;
        Term.bound = apply_params_term vals g.Term.bound;
      }

let apply_params_denial vals (d : Term.denial) =
  { d with Term.body = List.map (apply_params_lit vals) d.Term.body }

(** Rename all variables of a denial with fresh names (used before
    resolution/subsumption across denials to avoid capture). *)
let rename_denial (d : Term.denial) =
  let table = Hashtbl.create 8 in
  let rename_var v =
    match Hashtbl.find_opt table v with
    | Some v' -> v'
    | None ->
      let v' = Term.fresh_var ~base:(if String.length v > 0 && v.[0] = '_' then "_R" else "R") () in
      Hashtbl.add table v v';
      v'
  in
  let rec go_term = function
    | Term.Var v -> Term.Var (rename_var v)
    | t -> t
  and go_atom a = { a with Term.args = List.map go_term a.Term.args } in
  let go_lit = function
    | Term.Rel a -> Term.Rel (go_atom a)
    | Term.Not a -> Term.Not (go_atom a)
    | Term.Cmp (op, t1, t2) -> Term.Cmp (op, go_term t1, go_term t2)
    | Term.Agg g ->
      Term.Agg
        {
          g with
          Term.target = Option.map go_term g.Term.target;
          Term.atoms = List.map go_atom g.Term.atoms;
          Term.bound = go_term g.Term.bound;
        }
  in
  { d with Term.body = List.map go_lit d.Term.body }
