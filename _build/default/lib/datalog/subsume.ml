(** Subsumption between denials.

    [subsumes phi psi] holds when there is a substitution θ of [phi]'s
    variables such that every literal of [phi]θ occurs in (or is implied
    by) the body of [psi].  Then the denial [phi] logically implies the
    denial [psi] (any model violating [psi] would violate [phi]), so [psi]
    is redundant in a set containing [phi].

    Comparison literals are normalized (only [=], [!=], [<], [<=] remain,
    and symmetric operators also match with swapped arguments).  Aggregate
    literals additionally allow integer-bound weakening: [cnt(a) > 3]
    subsumes [cnt(a) > 4]. *)

open Term

(* Normalize a comparison literal: Gt/Ge become Lt/Le with swapped args. *)
let norm_cmp (op, t1, t2) =
  match op with
  | Gt -> (Lt, t2, t1)
  | Ge -> (Le, t2, t1)
  | op -> (op, t1, t2)

let norm_agg_cmp (g : agg) =
  (* Put the aggregate expression on the left: [k < cnt(a)] is not
     representable (bound is a term on the right), so only normalize the
     operator direction on the bound. *)
  g

(* One-way matching of terms: extends [theta] mapping phi-variables to
   psi-terms.  Parameters and constants match only themselves. *)
let match_term theta (pt : term) (st : term) =
  match pt with
  | Const c -> (match st with Const c' when c = c' -> Some theta | _ -> None)
  | Param p -> (match st with Param p' when p = p' -> Some theta | _ -> None)
  | Var v ->
    (match Subst.find v theta with
     | Some t -> if t = st then Some theta else None
     | None -> Some (Subst.add v st theta))

let match_terms theta pts sts =
  if List.length pts <> List.length sts then None
  else
    List.fold_left2
      (fun acc pt st -> match acc with None -> None | Some th -> match_term th pt st)
      (Some theta) pts sts

let match_atom theta (pa : atom) (sa : atom) =
  if pa.pred <> sa.pred then None else match_terms theta pa.args sa.args

(* Integer-bound weakening: does [cmp x b1] imply [cmp x b2] ... we need
   the converse direction: the phi-literal must be implied by the
   psi-literal.  phi: agg cmp b_phi; psi: agg cmp b_psi.  psi implies phi
   when for all x, (x cmp b_psi) → (x cmp b_phi). *)
let bound_weakens cmp (b_phi : term) (b_psi : term) =
  match (b_phi, b_psi) with
  | t1, t2 when t1 = t2 -> true
  | Const (Int k1), Const (Int k2) ->
    (match cmp with
     | Gt | Ge -> k1 <= k2
     | Lt | Le -> k1 >= k2
     | Eq | Neq -> k1 = k2)
  | _ -> false

let match_lit theta (pl : lit) (sl : lit) =
  match (pl, sl) with
  | Rel pa, Rel sa | Not pa, Not sa -> Option.to_list (match_atom theta pa sa)
  | Cmp (po, p1, p2), Cmp (so, s1, s2) ->
    let po, p1, p2 = norm_cmp (po, p1, p2) in
    let so, s1, s2 = norm_cmp (so, s1, s2) in
    if po <> so then []
    else begin
      let direct = match_terms theta [ p1; p2 ] [ s1; s2 ] in
      let swapped =
        if po = Eq || po = Neq then match_terms theta [ p1; p2 ] [ s2; s1 ] else None
      in
      List.filter_map (fun x -> x) [ direct; swapped ]
    end
  | Agg pg, Agg sg ->
    let pg = norm_agg_cmp pg and sg = norm_agg_cmp sg in
    if pg.op <> sg.op || pg.acmp <> sg.acmp then []
    else begin
      let match_atoms theta pas sas =
        if List.length pas <> List.length sas then None
        else
          List.fold_left2
            (fun acc pa sa ->
              match acc with None -> None | Some th -> match_atom th pa sa)
            (Some theta) pas sas
      in
      match match_atoms theta pg.atoms sg.atoms with
      | None -> []
      | Some theta ->
        let theta_t =
          match (pg.target, sg.target) with
          | None, None -> Some theta
          | Some pt, Some st -> match_term theta pt st
          | _ -> None
        in
        (match theta_t with
         | None -> []
         | Some theta ->
           (* Either the bounds match as terms, or integer weakening
              applies to already-ground bounds. *)
           (match match_term theta pg.bound sg.bound with
            | Some theta' -> [ theta' ]
            | None ->
              let pb = Subst.apply_term theta pg.bound in
              if bound_weakens pg.acmp pb sg.bound then [ theta ] else []))
    end
  | _ -> []

(* Backtracking search: map every literal of [phi] into some literal of
   [psi] (non-injectively), extending theta consistently. *)
let subsumes_with (phi : denial) (psi : denial) =
  let rec go theta = function
    | [] -> Some theta
    | pl :: rest ->
      let candidates = List.concat_map (fun sl -> match_lit theta pl sl) psi.body in
      List.fold_left
        (fun found theta' -> match found with Some _ -> found | None -> go theta' rest)
        None candidates
  in
  go Subst.empty phi.body

let subsumes phi psi = subsumes_with phi psi <> None

(** Equality up to variable renaming (both directions of subsumption and
    equal body sizes). *)
let variant phi psi =
  List.length phi.body = List.length psi.body
  && subsumes phi psi && subsumes psi phi

(** Is [psi] implied (made redundant) by some denial in [set]?  Denials in
    [set] are renamed apart first. *)
let implied_by set psi =
  List.exists (fun phi -> subsumes (Subst.rename_denial phi) psi) set
