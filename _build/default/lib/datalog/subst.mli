(** Substitutions over Datalog terms: finite maps from variable names to
    terms, applied with chain following (a variable may map to another
    substituted variable; bindings are acyclic by construction). *)

type t

val empty : t
val is_empty : t -> bool
val bindings : t -> (string * Term.term) list
val of_list : (string * Term.term) list -> t
val add : string -> Term.term -> t -> t
val find : string -> t -> Term.term option
val mem : string -> t -> bool

val apply_term : t -> Term.term -> Term.term
val apply_atom : t -> Term.atom -> Term.atom
val apply_agg : t -> Term.agg -> Term.agg
val apply_lit : t -> Term.lit -> Term.lit
val apply_denial : t -> Term.denial -> Term.denial

(** {2 Parameter valuation} *)

val apply_params_term : (string * Term.const) list -> Term.term -> Term.term
val apply_params_lit : (string * Term.const) list -> Term.lit -> Term.lit

val apply_params_denial :
  (string * Term.const) list -> Term.denial -> Term.denial
(** Substitute parameters by the constants known at update time;
    parameters absent from the valuation are left in place. *)

val rename_denial : Term.denial -> Term.denial
(** Rename all variables apart with fresh names (used before resolution or
    subsumption across denials to avoid capture). *)
