(** Terms, atoms, literals and denials of the Datalog dialect used by the
    simplification framework (Section 5 of the paper).

    Besides variables and constants, terms include {e parameters}
    (the paper's boldface [a], [b], …): placeholders for constants that
    become known only at update time.  A parameter behaves like an unknown
    but fixed constant: two distinct parameters may or may not denote the
    same value. *)

type const =
  | Int of int
  | Str of string

type term =
  | Var of string     (** capitalized in concrete syntax; names starting
                          with ['_'] are anonymous (each occurrence
                          distinct) *)
  | Const of const
  | Param of string   (** [%name] in concrete syntax *)

type atom = {
  pred : string;
  args : term list;
}

(** Comparison operators of built-in literals. *)
type cmp = Eq | Neq | Lt | Le | Gt | Ge

(** Aggregate operators ([D] suffix = distinct, as in the paper's
    [Cnt_D]). *)
type agg_op = Cnt | CntD | Sum | SumD | Max | Min

(** An aggregate condition [op{target; atoms} cmp bound].  The aggregate
    ranges over the joins of the store tuples matching the conjunction
    [atoms]; variables also occurring outside the aggregate act as
    group-by variables.  [Cnt] counts join rows; [CntD] counts distinct
    values of [target] (or distinct whole local-variable vectors when
    [target] is [None]). *)
type agg = {
  op : agg_op;
  target : term option;  (** the counted/summed/extremized term *)
  atoms : atom list;     (** conjunctive pattern, joined left to right *)
  acmp : cmp;
  bound : term;
}

type lit =
  | Rel of atom         (** positive database literal *)
  | Not of atom         (** negated database literal *)
  | Cmp of cmp * term * term
  | Agg of agg

(** A denial [← l1 ∧ … ∧ ln]: consistent iff the body is unsatisfiable. *)
type denial = {
  label : string option;  (** provenance, e.g. the source constraint name *)
  body : lit list;
}

let denial ?label body = { label; body }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let is_anon = function Var v -> String.length v > 0 && v.[0] = '_' | _ -> false

let term_vars = function Var v -> [ v ] | Const _ | Param _ -> []

let atom_vars a = List.concat_map term_vars a.args

let lit_vars = function
  | Rel a | Not a -> atom_vars a
  | Cmp (_, t1, t2) -> term_vars t1 @ term_vars t2
  | Agg g ->
    List.concat_map atom_vars g.atoms
    @ (match g.target with Some t -> term_vars t | None -> [])
    @ term_vars g.bound

let dedup xs =
  List.rev (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let denial_vars d = dedup (List.concat_map lit_vars d.body)

let term_params = function Param p -> [ p ] | Const _ | Var _ -> []

let lit_params = function
  | Rel a | Not a -> List.concat_map term_params a.args
  | Cmp (_, t1, t2) -> term_params t1 @ term_params t2
  | Agg g ->
    List.concat_map (fun (a : atom) -> List.concat_map term_params a.args) g.atoms
    @ (match g.target with Some t -> term_params t | None -> [])
    @ term_params g.bound

let denial_params d = dedup (List.concat_map lit_params d.body)

(* Variables of an aggregate that are local to it: they occur in the
   aggregated atom (or target) but nowhere else in the denial body. *)
let agg_local_vars denial_body g =
  let inside = dedup (List.concat_map atom_vars g.atoms) in
  let outside =
    List.concat_map
      (fun l -> if l = Agg g then [] else lit_vars l)
      denial_body
  in
  List.filter (fun v -> not (List.mem v outside)) inside

let negate_cmp = function
  | Eq -> Neq | Neq -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

let eval_cmp op (a : const) (b : const) =
  (* Int/Str comparisons are within the same kind; mixed kinds compare by
     their printed form, which only matters for degenerate inputs. *)
  let r =
    match (a, b) with
    | Int x, Int y -> compare x y
    | Str x, Str y -> compare x y
    | Int x, Str y -> compare (string_of_int x) y
    | Str x, Int y -> compare x (string_of_int y)
  in
  match op with
  | Eq -> r = 0
  | Neq -> r <> 0
  | Lt -> r < 0
  | Le -> r <= 0
  | Gt -> r > 0
  | Ge -> r >= 0

(* ------------------------------------------------------------------ *)
(* Fresh variable renaming                                             *)
(* ------------------------------------------------------------------ *)

let counter = ref 0

let fresh_var ?(base = "V") () =
  incr counter;
  base ^ "_" ^ string_of_int !counter

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let cmp_str = function
  | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let agg_op_str = function
  | Cnt -> "cnt" | CntD -> "cntd" | Sum -> "sum" | SumD -> "sumd"
  | Max -> "max" | Min -> "min"

let const_str = function
  | Int i -> string_of_int i
  | Str s -> "\"" ^ s ^ "\""

let term_str = function
  | Var v -> v
  | Const c -> const_str c
  | Param p -> "%" ^ p

let atom_str a = a.pred ^ "(" ^ String.concat ", " (List.map term_str a.args) ^ ")"

let lit_str = function
  | Rel a -> atom_str a
  | Not a -> "not " ^ atom_str a
  | Cmp (op, t1, t2) -> term_str t1 ^ " " ^ cmp_str op ^ " " ^ term_str t2
  | Agg g ->
    let atoms = String.concat ", " (List.map atom_str g.atoms) in
    let inner =
      match g.target with
      | Some t -> term_str t ^ "; " ^ atoms
      | None -> atoms
    in
    agg_op_str g.op ^ "(" ^ inner ^ ") " ^ cmp_str g.acmp ^ " " ^ term_str g.bound

(* Anonymous variables that occur more than once in a denial are join
   positions, so they must keep their name in the printed form;
   single-occurrence ones print as "_". *)
let denial_str d =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter
        (fun v ->
          Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        (lit_vars l))
    d.body;
  let collapse = function
    | Var v
      when String.length v > 0 && v.[0] = '_'
           && Option.value ~default:0 (Hashtbl.find_opt counts v) <= 1 ->
      Var "_"
    | t -> t
  in
  let collapse_atom a = { a with args = List.map collapse a.args } in
  let collapse_lit = function
    | Rel a -> Rel (collapse_atom a)
    | Not a -> Not (collapse_atom a)
    | Cmp (op, t1, t2) -> Cmp (op, collapse t1, collapse t2)
    | Agg g ->
      Agg
        {
          g with
          target = Option.map collapse g.target;
          atoms = List.map collapse_atom g.atoms;
          bound = collapse g.bound;
        }
  in
  (match d.label with Some l -> l ^ ": " | None -> "")
  ^ ":- "
  ^ String.concat ", " (List.map (fun l -> lit_str (collapse_lit l)) d.body)

let denials_str ds = String.concat "\n" (List.map denial_str ds)

let pp_denial fmt d = Format.pp_print_string fmt (denial_str d)
