(** Terms, atoms, literals and denials of the Datalog dialect used by the
    simplification framework (Section 5 of the paper).

    Besides variables and constants, terms include {e parameters} (the
    paper's boldface [a], [b], …): placeholders for constants that become
    known only at update time.  A parameter behaves like an unknown but
    fixed constant. *)

type const =
  | Int of int
  | Str of string

type term =
  | Var of string
      (** capitalized in concrete syntax; names starting with ['_'] are
          anonymous (each occurrence distinct) *)
  | Const of const
  | Param of string  (** [%name] in concrete syntax *)

type atom = {
  pred : string;
  args : term list;
}

(** Comparison operators of built-in literals. *)
type cmp = Eq | Neq | Lt | Le | Gt | Ge

(** Aggregate operators ([D] suffix = distinct, as in the paper's
    [Cnt_D]). *)
type agg_op = Cnt | CntD | Sum | SumD | Max | Min

(** An aggregate condition [op{target; atoms} cmp bound].  The aggregate
    ranges over the joins of the store tuples matching the conjunction
    [atoms]; variables also occurring outside the aggregate act as
    group-by variables.  [Cnt] counts join rows; [CntD] counts distinct
    values of [target] (or distinct whole local-variable vectors when
    [target] is [None]). *)
type agg = {
  op : agg_op;
  target : term option;
  atoms : atom list;  (** conjunctive pattern, joined left to right *)
  acmp : cmp;
  bound : term;
}

type lit =
  | Rel of atom  (** positive database literal *)
  | Not of atom  (** negated database literal *)
  | Cmp of cmp * term * term
  | Agg of agg

(** A denial [← l1 ∧ … ∧ ln]: consistent iff the body is unsatisfiable. *)
type denial = {
  label : string option;  (** provenance, e.g. the source constraint name *)
  body : lit list;
}

val denial : ?label:string -> lit list -> denial

(** {2 Structural helpers} *)

val is_anon : term -> bool
(** Is the term an anonymous variable (name starting with ['_'])? *)

val term_vars : term -> string list
val atom_vars : atom -> string list
val lit_vars : lit -> string list
val denial_vars : denial -> string list
(** Variables in first-occurrence order, without duplicates. *)

val denial_params : denial -> string list
(** Parameter names, first-occurrence order, without duplicates. *)

val agg_local_vars : lit list -> agg -> string list
(** Variables of the aggregate occurring nowhere else in the given body
    (the aggregate's existential locals). *)

val negate_cmp : cmp -> cmp
val eval_cmp : cmp -> const -> const -> bool

val fresh_var : ?base:string -> unit -> string
(** Globally fresh variable name ["base_<n>"]. *)

(** {2 Printing} *)

val cmp_str : cmp -> string
val agg_op_str : agg_op -> string
val const_str : const -> string
val term_str : term -> string
val atom_str : atom -> string
val lit_str : lit -> string

val denial_str : denial -> string
(** Concrete syntax accepted back by {!Parser}; single-occurrence
    anonymous variables print as ["_"]. *)

val denials_str : denial list -> string
val pp_denial : Format.formatter -> denial -> unit
