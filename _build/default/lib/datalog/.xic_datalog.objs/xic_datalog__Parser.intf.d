lib/datalog/parser.mli: Term
