lib/datalog/term.ml: Format Hashtbl List Option String
