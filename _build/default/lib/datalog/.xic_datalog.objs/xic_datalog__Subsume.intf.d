lib/datalog/subsume.mli: Subst Term
