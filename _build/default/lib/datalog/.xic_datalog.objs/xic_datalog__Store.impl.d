lib/datalog/store.ml: Hashtbl List Term
