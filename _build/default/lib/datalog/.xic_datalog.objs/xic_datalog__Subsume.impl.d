lib/datalog/subsume.ml: List Option Subst Term
