lib/datalog/eval.ml: Hashtbl List Printf Store String Subst Term
