lib/datalog/subst.mli: Term
