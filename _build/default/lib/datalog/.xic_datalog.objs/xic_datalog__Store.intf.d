lib/datalog/store.mli: Term
