lib/datalog/parser.ml: List Printf String Term
