lib/datalog/subst.ml: Hashtbl List Map Option String Term
