lib/datalog/eval.mli: Store Term
