(** Subsumption between denials.

    [subsumes phi psi] holds when a substitution θ of [phi]'s variables
    maps every literal of [phi] into (or onto one implied by) the body of
    [psi]; then the denial [phi] logically implies the denial [psi], so
    [psi] is redundant in any set containing [phi].

    Comparison literals are normalized ([>]/[>=] become [<]/[<=] with
    swapped arguments; [=]/[!=] also match commuted) and aggregate
    literals allow integer-bound weakening: [cnt(a) > 3] subsumes
    [cnt(a) > 4]. *)

val match_term : Subst.t -> Term.term -> Term.term -> Subst.t option
(** One-way matching: extends the substitution on the left term's
    variables; constants and parameters match only themselves. *)

val match_atom : Subst.t -> Term.atom -> Term.atom -> Subst.t option

val subsumes_with : Term.denial -> Term.denial -> Subst.t option
val subsumes : Term.denial -> Term.denial -> bool

val variant : Term.denial -> Term.denial -> bool
(** Equality up to variable renaming. *)

val implied_by : Term.denial list -> Term.denial -> bool
(** Is the denial implied by some member of the set (renamed apart)? *)
