exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | LNAME of string   (* lowercase identifier: predicate or keyword *)
  | UNAME of string   (* capitalized identifier: variable *)
  | ANON              (* _ *)
  | INT of int
  | STRING of string
  | PARAM of string
  | LPAREN | RPAREN | COMMA | SEMI
  | CMP of Term.cmp
  | IMPLIED           (* :- or <- *)
  | EOF

let token_str = function
  | LNAME s -> s
  | UNAME s -> s
  | ANON -> "_"
  | INT i -> string_of_int i
  | STRING s -> "\"" ^ s ^ "\""
  | PARAM p -> "%" ^ p
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | SEMI -> ";"
  | CMP c -> Term.cmp_str c
  | IMPLIED -> ":-"
  | EOF -> "<eof>"

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident c = is_lower c || is_upper c || is_digit c || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if is_ws c then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_lower c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      push (LNAME (String.sub src start (!i - start)))
    end
    else if is_upper c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      push (UNAME (String.sub src start (!i - start)))
    end
    else if c = '_' then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      if !i - start = 1 then push ANON
      else push (UNAME (String.sub src start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '"' || c = '\'' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> c do
        incr i
      done;
      if !i >= n then fail "unterminated string";
      push (STRING (String.sub src start (!i - start)));
      incr i
    end
    else if c = '%' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      if !i = start then fail "expected name after %%";
      push (PARAM (String.sub src start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      (match two with
       | ":-" | "<-" -> push IMPLIED; incr i
       | "!=" | "<>" -> push (CMP Term.Neq); incr i
       | "<=" -> push (CMP Term.Le); incr i
       | ">=" -> push (CMP Term.Ge); incr i
       | _ ->
         (match c with
          | '(' -> push LPAREN
          | ')' -> push RPAREN
          | ',' -> push COMMA
          | ';' -> push SEMI
          | '=' -> push (CMP Term.Eq)
          | '<' -> push (CMP Term.Lt)
          | '>' -> push (CMP Term.Gt)
          | c -> fail "illegal character %C" c));
      incr i
    end
  done;
  List.rev (EOF :: !toks)

type cursor = { mutable toks : token list; mutable anon : int }

let peek c = match c.toks with [] -> EOF | t :: _ -> t

let next c =
  match c.toks with
  | [] -> EOF
  | t :: rest ->
    c.toks <- rest;
    t

let eat c t =
  let got = next c in
  if got <> t then fail "expected %s, got %s" (token_str t) (token_str got)

let fresh_anon c =
  c.anon <- c.anon + 1;
  Term.Var (Printf.sprintf "_%d" c.anon)

let agg_ops =
  [ ("cnt", Term.Cnt); ("cntd", Term.CntD); ("sum", Term.Sum);
    ("sumd", Term.SumD); ("max", Term.Max); ("min", Term.Min) ]

let rec parse_term_at c =
  match next c with
  | UNAME v -> Term.Var v
  | ANON -> fresh_anon c
  | INT i -> Term.Const (Term.Int i)
  | STRING s -> Term.Const (Term.Str s)
  | PARAM p -> Term.Param p
  | LNAME n -> fail "unexpected lowercase name %S as a term (quote string constants)" n
  | t -> fail "expected a term, got %s" (token_str t)

and parse_atom_at c =
  match next c with
  | LNAME pred ->
    eat c LPAREN;
    let rec args acc =
      let t = parse_term_at c in
      match next c with
      | COMMA -> args (t :: acc)
      | RPAREN -> List.rev (t :: acc)
      | tok -> fail "expected , or ) in atom, got %s" (token_str tok)
    in
    let args = if peek c = RPAREN then (eat c RPAREN; []) else args [] in
    { Term.pred; Term.args }
  | t -> fail "expected a predicate name, got %s" (token_str t)

let parse_lit_at c =
  match peek c with
  | LNAME "not" ->
    ignore (next c);
    Term.Not (parse_atom_at c)
  | LNAME name when List.mem_assoc name agg_ops ->
    let op = List.assoc name agg_ops in
    ignore (next c);
    eat c LPAREN;
    (* Either agg(atom, …) or agg(Target; atom, …). *)
    let target =
      match peek c with
      | UNAME _ | ANON | INT _ | STRING _ | PARAM _ ->
        let t = parse_term_at c in
        eat c SEMI;
        Some t
      | _ -> None
    in
    let rec atoms acc =
      let a = parse_atom_at c in
      if peek c = COMMA then begin
        ignore (next c);
        atoms (a :: acc)
      end
      else List.rev (a :: acc)
    in
    let atoms = atoms [] in
    eat c RPAREN;
    let acmp =
      match next c with
      | CMP op -> op
      | t -> fail "expected comparison after aggregate, got %s" (token_str t)
    in
    let bound = parse_term_at c in
    Term.Agg { Term.op; target; atoms; acmp; bound }
  | LNAME _ -> Term.Rel (parse_atom_at c)
  | _ ->
    let t1 = parse_term_at c in
    (match next c with
     | CMP op -> Term.Cmp (op, t1, parse_term_at c)
     | t -> fail "expected comparison operator, got %s" (token_str t))

let parse_body c =
  let rec go acc =
    let l = parse_lit_at c in
    match peek c with
    | COMMA ->
      ignore (next c);
      go (l :: acc)
    | LNAME "and" ->
      ignore (next c);
      go (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  go []

let parse_denial ?label src =
  let c = { toks = tokenize src; anon = 0 } in
  if peek c = IMPLIED then ignore (next c);
  let body = parse_body c in
  (match peek c with
   | EOF -> ()
   | t -> fail "trailing token %s after denial" (token_str t));
  Term.denial ?label body

let parse_term src =
  let c = { toks = tokenize src; anon = 0 } in
  parse_term_at c

let parse_atom src =
  let c = { toks = tokenize src; anon = 0 } in
  parse_atom_at c

let parse_denials src =
  (* Split on newlines; a denial may span lines only via explicit '.' —
     keep it simple: each non-blank, non-comment line is one denial. *)
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else if String.length line >= 2 && String.sub line 0 2 = "--" then None
         else Some (parse_denial line))
