(** Concrete syntax for Datalog denials.

    {v
    :- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)
    :- p(X, Y), p(X, Z), Y != Z
    :- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 4
    :- q(X), sum(V; r(X, V)) >= 10
    :- person(%i, N), N != %n
    v}

    Conventions: capitalized identifiers are variables, [_] is a fresh
    anonymous variable per occurrence, [%name] is a parameter, quoted
    strings and integers are constants, [not] negates an atom, and commas
    or [and] separate body literals.  Aggregates are
    [cnt]/[cntd]/[sum]/[sumd]/[max]/[min]; [sum(V; atom)] sums variable
    [V].  A leading [:-] or [<-] introduces the denial. *)

exception Parse_error of string

val parse_denial : ?label:string -> string -> Term.denial
val parse_denials : string -> Term.denial list
(** Parse a newline/[.]-separated list of denials; blank lines and [--]
    comments are skipped. *)

val parse_term : string -> Term.term
val parse_atom : string -> Term.atom
