open Xic_xml
module T = Xic_datalog.Term
module M = Xic_relmap.Mapping
module XU = Xic_xupdate.Xupdate

type t = {
  name : string;
  op : XU.op;
  anchor_type : string;
  content : XU.content list;
  atoms : T.atom list;
  del_atoms : T.atom list;
  fresh : string list;
  anchor_param : string;
  data_params : string list;
}

exception Pattern_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Pattern_error s)) fmt

let is_param_text s =
  String.length s > 1 && s.[0] = '%'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_')
       (String.sub s 1 (String.length s - 1))

let param_of_text s = String.sub s 1 (String.length s - 1)

(* The text of a content template node (for embedded children). *)
let template_text kids =
  String.concat ""
    (List.filter_map (function XU.Text s -> Some s | XU.Elem _ -> None) kids)

let text_term s = if is_param_text s then T.Param (param_of_text s) else T.Const (T.Str s)

(* ------------------------------------------------------------------ *)
(* Pattern derivation                                                  *)
(* ------------------------------------------------------------------ *)

(* Removal patterns: the removed type must be a relational leaf (every
   child embedded) so the subtree is exactly one tuple. *)
let make_removal schema ~name ~anchor_type =
  let mapping = Schema.mapping schema in
  (match M.repr_of mapping anchor_type with
   | M.Predicate _ -> ()
   | _ -> fail "%s: <%s> does not map to a predicate" name anchor_type
   | exception M.Mapping_error m -> fail "%s: %s" name m);
  (match M.predicate_children mapping anchor_type with
   | [] -> ()
   | kids ->
     fail "%s: cannot remove <%s>: its children %s map to predicates themselves"
       name anchor_type (String.concat ", " kids));
  let schema_cols =
    match M.schema_of mapping anchor_type with
    | Some s -> s.M.columns
    | None -> assert false
  in
  let col_params =
    List.map (fun (c : M.column) -> T.Param ("c_" ^ c.M.col_name)) schema_cols
  in
  {
    name;
    op = XU.Remove;
    anchor_type;
    content = [];
    atoms = [];
    del_atoms =
      [ { T.pred = anchor_type;
          T.args = T.Param "target" :: T.Param "p" :: T.Param "anchor" :: col_params;
        } ];
    fresh = [];
    anchor_param = "anchor";
    data_params = List.map (fun (c : M.column) -> "c_" ^ c.M.col_name) schema_cols;
  }

let make schema ~name ~op ~anchor_type ~content =
  (match op with
   | XU.Remove when content <> [] -> fail "%s: removal patterns take no content" name
   | _ -> ());
  if op = XU.Remove then make_removal schema ~name ~anchor_type
  else begin
  let mapping = Schema.mapping schema in
  let parent_type =
    match op with
    | XU.Append -> anchor_type
    | XU.Insert_after | XU.Insert_before ->
      (match M.containers_of mapping anchor_type with
       | [ p ] -> p
       | [] -> fail "%s: <%s> has no container type" name anchor_type
       | ps ->
         fail "%s: <%s> has several container types (%s); use append patterns"
           name anchor_type (String.concat ", " ps))
    | XU.Remove -> assert false
  in
  let atoms = ref [] in
  let fresh = ref [] in
  let data_params = ref [] in
  let tag_counts = Hashtbl.create 8 in
  let fresh_param base =
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tag_counts base) in
    Hashtbl.replace tag_counts base n;
    if n = 1 then base else Printf.sprintf "%s%d" base n
  in
  let note_data t =
    match t with
    | T.Param p when not (List.mem p !data_params) -> data_params := p :: !data_params
    | _ -> ()
  in
  let rec walk parent_term parent_type pos_term = function
    | XU.Text _ -> fail "%s: bare text content is not supported" name
    | XU.Elem (tag, attrs, kids) ->
      (match M.repr_of mapping tag with
       | exception M.Mapping_error m -> fail "%s: %s" name m
       | M.Elided -> fail "%s: cannot insert the root type <%s>" name tag
       | M.Embedded ->
         fail "%s: embedded <%s> reached outside its container (internal)" name tag
       | M.Predicate pschema ->
         (* Type-check against the DTD edge. *)
         let ok_edge =
           List.exists
             (fun (dtd, _) ->
               match Xic_xml.Dtd.find dtd parent_type with
               | None -> false
               | Some _ -> List.mem tag (Xic_xml.Dtd.child_names dtd parent_type))
             (Schema.dtds schema)
         in
         if not ok_edge then
           fail "%s: <%s> is not a valid child of <%s>" name tag parent_type;
         let idp = fresh_param ("i_" ^ tag) in
         fresh := idp :: !fresh;
         let cols =
           List.map
             (fun (c : M.column) ->
               match c.M.source with
               | M.From_attr a ->
                 let v = Option.value ~default:"" (List.assoc_opt a attrs) in
                 let t = text_term v in
                 note_data t;
                 t
               | M.From_pcdata_child ch ->
                 let txt =
                   List.find_map
                     (function
                       | XU.Elem (t, _, ks) when t = ch -> Some (template_text ks)
                       | _ -> None)
                     kids
                 in
                 let t = text_term (Option.value ~default:"" txt) in
                 note_data t;
                 t
               | M.From_text ->
                 let t = text_term (template_text kids) in
                 note_data t;
                 t)
             pschema.M.columns
         in
         atoms :=
           { T.pred = tag; T.args = T.Param idp :: pos_term :: parent_term :: cols }
           :: !atoms;
         (* Recurse into non-embedded element children. *)
         let elem_kids =
           List.filter_map (function XU.Elem _ as e -> Some e | XU.Text _ -> None) kids
         in
         List.iteri
           (fun i kid ->
             match kid with
             | XU.Elem (ktag, _, _) when not (M.is_embedded_in mapping ~parent:tag ~child:ktag) ->
               walk (T.Param idp) tag (T.Const (T.Int (i + 1))) kid
             | _ -> ())
           elem_kids)
  in
  List.iteri
    (fun i c ->
      let pos =
        match op with
        | XU.Append | XU.Insert_after | XU.Insert_before ->
          (* The final position depends on the target node: a parameter. *)
          ignore i;
          T.Param (fresh_param "p")
        | XU.Remove -> assert false
      in
      walk (T.Param "anchor") parent_type pos c)
    content;
  {
    name;
    op;
    anchor_type;
    content;
    atoms = List.rev !atoms;
    del_atoms = [];
    fresh = List.rev !fresh;
    anchor_param = "anchor";
    data_params = List.rev !data_params;
  }
  end

let of_modification schema ~name (m : XU.modification) =
  let anchor_type =
    match m.XU.select with
    | Xic_xpath.Ast.Path (_, steps) when steps <> [] ->
      (match (List.nth steps (List.length steps - 1)).Xic_xpath.Ast.test with
       | Xic_xpath.Ast.Name_test n -> n
       | _ -> fail "%s: the select template must end in a named step" name)
    | _ -> fail "%s: the select template must be a location path" name
  in
  make schema ~name ~op:m.XU.op ~anchor_type ~content:m.XU.content

(* ------------------------------------------------------------------ *)
(* Simplification interface                                            *)
(* ------------------------------------------------------------------ *)

let hypotheses schema t =
  let mapping = Schema.mapping schema in
  Xic_simplify.Simp.freshness_hypotheses ~fresh:t.fresh
    ~children:(fun p ->
      List.map
        (fun c -> (c, M.arity mapping c))
        (M.predicate_children mapping p))
    ~arity:(M.arity mapping)
    t.atoms

let simplify schema t (c : Constr.t) =
  Xic_simplify.Simp.simp ~hypotheses:(hypotheses schema t)
    ~deletions:t.del_atoms ~update:t.atoms c.Constr.datalog

(* ------------------------------------------------------------------ *)
(* Runtime matching                                                    *)
(* ------------------------------------------------------------------ *)

type value =
  | Vnode of Doc.node_id
  | Vstr of string
  | Vint of int

type valuation = (string * value) list

(* Match template content against concrete content, binding %x texts. *)
let rec match_content binds (pat : XU.content) (conc : XU.content) =
  match (pat, conc) with
  | XU.Text p, XU.Text c ->
    if is_param_text p then Some ((param_of_text p, Vstr c) :: binds)
    else if p = c then Some binds
    else None
  | XU.Elem (t1, a1, k1), XU.Elem (t2, a2, k2) ->
    if t1 <> t2 then None
    else begin
      let rec attrs binds = function
        | [] -> if List.length a1 = List.length a2 then Some binds else None
        | (k, pv) :: rest ->
          (match List.assoc_opt k a2 with
           | None -> None
           | Some cv ->
             if is_param_text pv then attrs ((param_of_text pv, Vstr cv) :: binds) rest
             else if pv = cv then attrs binds rest
             else None)
      in
      match attrs binds a1 with
      | None -> None
      | Some binds ->
        if List.length k1 <> List.length k2 then None
        else
          List.fold_left2
            (fun acc p c -> match acc with None -> None | Some b -> match_content b p c)
            (Some binds) k1 k2
    end
  | _ -> None

let match_removal schema doc t target =
  let parent = Doc.parent doc target in
  if parent = Doc.no_node then None
  else begin
    let mapping = Schema.mapping schema in
    match Xic_relmap.Shred.fact_of_element mapping doc target with
    | Some (_, _ :: _ :: _ :: cols) ->
      let col_vals =
        List.map2
          (fun p c ->
            ( p,
              match c with
              | T.Str s -> Vstr s
              | T.Int i -> Vint i ))
          t.data_params cols
      in
      Some
        ( [ ("target", Vnode target);
            (t.anchor_param, Vnode parent);
            ("p", Vint (Doc.position doc target)) ]
          @ col_vals )
    | _ -> None
  end

let match_modification schema doc t (m : XU.modification) =
  if m.XU.op <> t.op then None
  else begin
    match Xic_xpath.Eval.eval doc m.XU.select with
    | exception Xic_xpath.Eval.Eval_error _ -> None
    | Xic_xpath.Eval.Nodes (target :: _) ->
      if (not (Doc.is_element doc target)) || Doc.name doc target <> t.anchor_type then
        None
      else if t.op = XU.Remove then match_removal schema doc t target
      else begin
        let anchor =
          match t.op with
          | XU.Append -> Some target
          | XU.Insert_after | XU.Insert_before ->
            let p = Doc.parent doc target in
            if p = Doc.no_node then None else Some p
          | XU.Remove -> None
        in
        match anchor with
        | None -> None
        | Some anchor ->
          if List.length m.XU.content <> List.length t.content then None
          else begin
            let binds =
              List.fold_left2
                (fun acc p c ->
                  match acc with None -> None | Some b -> match_content b p c)
                (Some []) t.content m.XU.content
            in
            match binds with
            | None -> None
            | Some binds ->
              let pos =
                match t.op with
                | XU.Insert_after -> Doc.position doc target + 1
                | XU.Insert_before -> Doc.position doc target
                | XU.Append ->
                  List.length (Doc.element_children doc target) + 1
                | XU.Remove -> 0
              in
              (* Position parameters p, p2, … count up from the insertion
                 point. *)
              let pos_params =
                List.mapi
                  (fun i c ->
                    ignore c;
                    ((if i = 0 then "p" else Printf.sprintf "p%d" (i + 1)), Vint (pos + i)))
                  t.content
              in
              Some (((t.anchor_param, Vnode anchor) :: pos_params) @ List.rev binds)
          end
      end
    | _ -> None
  end

let xquery_params (v : valuation) =
  List.map
    (fun (p, value) ->
      ( p,
        match value with
        | Vnode n -> Xic_xpath.Eval.Nodes [ n ]
        | Vstr s -> Xic_xpath.Eval.Str s
        | Vint i -> Xic_xpath.Eval.Num (float_of_int i) ))
    v

let datalog_params ?(fresh_base = 1_000_000) t (v : valuation) =
  let concrete =
    List.map
      (fun (p, value) ->
        ( p,
          match value with
          | Vnode n -> T.Int n
          | Vstr s -> T.Str s
          | Vint i -> T.Int i ))
      v
  in
  let fresh_ids = List.mapi (fun i p -> (p, T.Int (fresh_base + i))) t.fresh in
  concrete @ fresh_ids
