lib/core/schema.ml: Doc Dtd List Printf Xic_relmap Xic_xml Xml_parser
