lib/core/schema.mli: Doc Dtd Xic_relmap Xic_xml
