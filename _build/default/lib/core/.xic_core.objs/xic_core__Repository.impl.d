lib/core/repository.ml: Constr Doc List Pattern Printf Schema String Xic_datalog Xic_relmap Xic_simplify Xic_translate Xic_xml Xic_xquery Xic_xupdate Xml_parser
