lib/core/constr.mli: Schema Xic_datalog Xic_xml Xic_xpathlog Xic_xquery
