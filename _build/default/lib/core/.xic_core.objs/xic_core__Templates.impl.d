lib/core/templates.ml: Constr Option Printf Schema Xic_relmap
