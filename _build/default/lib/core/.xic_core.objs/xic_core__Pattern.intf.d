lib/core/pattern.mli: Constr Doc Schema Xic_datalog Xic_xml Xic_xquery Xic_xupdate
