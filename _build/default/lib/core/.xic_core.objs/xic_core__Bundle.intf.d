lib/core/bundle.mli: Repository Schema
