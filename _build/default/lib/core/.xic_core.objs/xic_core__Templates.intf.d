lib/core/templates.mli: Constr Schema
