lib/core/bundle.ml: Buffer Constr List Pattern Printf Repository String Xic_datalog Xic_xpath Xic_xupdate
