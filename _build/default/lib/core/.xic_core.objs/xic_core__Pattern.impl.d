lib/core/pattern.ml: Constr Doc Hashtbl List Option Printf Schema String Xic_datalog Xic_relmap Xic_simplify Xic_xml Xic_xpath Xic_xupdate
