lib/core/repository.mli: Constr Doc Pattern Schema Xic_datalog Xic_xml Xic_xquery Xic_xupdate
