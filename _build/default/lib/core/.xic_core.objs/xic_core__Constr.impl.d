lib/core/constr.ml: List Printf Schema Xic_datalog Xic_translate Xic_xpathlog Xic_xquery
