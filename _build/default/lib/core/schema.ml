open Xic_xml

type t = {
  dtds : (Dtd.t * string) list;
  mapping : Xic_relmap.Mapping.t;
}

exception Schema_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let of_dtds dtds =
  match Xic_relmap.Mapping.build dtds with
  | mapping -> { dtds; mapping }
  | exception Xic_relmap.Mapping.Mapping_error m -> fail "%s" m

let create sources =
  let dtds =
    List.map
      (fun (src, root) ->
        match Dtd.parse src with
        | dtd -> (dtd, root)
        | exception Dtd.Parse_error m -> fail "DTD for <%s>: %s" root m)
      sources
  in
  of_dtds dtds

let of_inline_doctypes sources =
  let dtds =
    List.map
      (fun src ->
        match Xml_parser.parse_string src with
        | { Xml_parser.doc; dtd_text = Some text } ->
          let root = Doc.name doc (Doc.root doc) in
          (match Dtd.parse text with
           | dtd -> (dtd, root)
           | exception Dtd.Parse_error m -> fail "DOCTYPE for <%s>: %s" root m)
        | { Xml_parser.dtd_text = None; _ } ->
          fail "document has no internal DOCTYPE subset"
        | exception Xml_parser.Parse_error { line; col; msg } ->
          fail "XML error at %d:%d: %s" line col msg)
      sources
  in
  of_dtds dtds

let mapping t = t.mapping
let dtds t = t.dtds

let dtd_for_root t root =
  List.assoc_opt root (List.map (fun (d, r) -> (r, d)) t.dtds)

let validate_root t doc node =
  if not (Doc.is_element doc node) then Error "root is not an element"
  else begin
    let name = Doc.name doc node in
    match dtd_for_root t name with
    | None -> Error (Printf.sprintf "no DTD declares <%s> as a root" name)
    | Some dtd -> Dtd.validate ~root:node dtd doc
  end

let to_string t = Xic_relmap.Mapping.schema_to_string t.mapping
