open Xic_xml
module T = Xic_datalog.Term
module XU = Xic_xupdate.Xupdate

type optimized_check = {
  constraint_name : string;
  simplified : T.denial list;
  simplified_xquery : Xic_xquery.Ast.expr;
}

type t = {
  schema : Schema.t;
  doc : Doc.t;
  mutable constraints : Constr.t list;
  mutable compiled : (Pattern.t * optimized_check list) list;
  mutable store : Xic_datalog.Store.t option;
}

exception Repository_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Repository_error s)) fmt

let create schema =
  { schema; doc = Doc.create (); constraints = []; compiled = []; store = None }

let schema t = t.schema
let doc t = t.doc

let invalidate_store t = t.store <- None

let add_document_root ?(validate = true) t root =
  if validate then begin
    match Schema.validate_root t.schema t.doc root with
    | Ok () -> ()
    | Error m -> fail "document rejected: %s" m
  end;
  Doc.add_root t.doc root;
  invalidate_store t

let load_document ?validate t source =
  let nodes =
    try Xml_parser.parse_fragment t.doc source
    with Xml_parser.Parse_error { line; col; msg } ->
      fail "XML parse error at %d:%d: %s" line col msg
  in
  match List.filter (Doc.is_element t.doc) nodes with
  | [ root ] -> add_document_root ?validate t root
  | _ -> fail "expected exactly one root element"

let compile_checks t (p : Pattern.t) =
  List.map
    (fun (c : Constr.t) ->
      let simplified = Pattern.simplify t.schema p c in
      let simplified_xquery =
        Xic_translate.Translate.denials (Schema.mapping t.schema) simplified
      in
      { constraint_name = c.Constr.name; simplified; simplified_xquery })
    t.constraints

let recompile t =
  t.compiled <- List.map (fun (p, _) -> (p, compile_checks t p)) t.compiled

let add_constraint ?(verify = false) t c =
  if List.exists (fun c' -> c'.Constr.name = c.Constr.name) t.constraints then
    fail "duplicate constraint name %s" c.Constr.name;
  if verify && Constr.violated_xquery t.doc c then
    fail "the current documents already violate %s" c.Constr.name;
  t.constraints <- t.constraints @ [ c ];
  recompile t

let register_pattern t p =
  if List.exists (fun (p', _) -> p'.Pattern.name = p.Pattern.name) t.compiled then
    fail "duplicate pattern name %s" p.Pattern.name;
  t.compiled <- t.compiled @ [ (p, compile_checks t p) ]

let constraints t = t.constraints
let patterns t = List.map fst t.compiled

let optimized_checks t p =
  match
    List.find_opt (fun (p', _) -> p'.Pattern.name = p.Pattern.name) t.compiled
  with
  | Some (_, checks) -> checks
  | None -> fail "pattern %s is not registered" p.Pattern.name

let store t =
  match t.store with
  | Some s -> s
  | None ->
    let s = Xic_relmap.Shred.shred (Schema.mapping t.schema) t.doc in
    t.store <- Some s;
    s

let check_full t =
  List.filter_map
    (fun c -> if Constr.violated_xquery t.doc c then Some c.Constr.name else None)
    t.constraints

let check_full_datalog t =
  let s = store t in
  List.filter_map
    (fun c -> if Constr.violated_datalog s c then Some c.Constr.name else None)
    t.constraints

let match_update t (u : XU.t) =
  match u with
  | [ m ] ->
    List.find_map
      (fun (p, _) ->
        match Pattern.match_modification t.schema t.doc p m with
        | Some v -> Some (p, v)
        | None -> None)
      t.compiled
  | _ -> None

let check_optimized t p valuation =
  let checks = optimized_checks t p in
  let params = Pattern.xquery_params valuation in
  List.filter_map
    (fun ch ->
      match Xic_xquery.Eval.eval_bool t.doc ~params ch.simplified_xquery with
      | true -> Some ch.constraint_name
      | false -> None
      | exception Xic_xquery.Eval.Eval_error m ->
        fail "optimized check %s failed: %s" ch.constraint_name m)
    checks

let check_optimized_datalog t p valuation =
  let checks = optimized_checks t p in
  let params = Pattern.datalog_params p valuation in
  let s = store t in
  List.filter_map
    (fun ch ->
      if List.exists (fun d -> Xic_datalog.Eval.violated ~params s d) ch.simplified
      then Some ch.constraint_name
      else None)
    checks

type witness = {
  witness_constraint : string;
  denial : T.denial;
  bindings : (string * T.const) list;
  nodes : (string * Doc.node_id * string) list;
}

(* Variables standing in id or parent positions of the denial's atoms
   denote document nodes. *)
let node_vars_of (d : T.denial) =
  List.concat_map
    (function
      | T.Rel a | T.Not a ->
        (match a.T.args with
         | id :: _ :: par :: _ ->
           List.concat_map T.term_vars [ id; par ]
         | _ -> [])
      | _ -> [])
    d.T.body
  |> List.sort_uniq compare

let explain t =
  let s = store t in
  List.concat_map
    (fun (c : Constr.t) ->
      List.filter_map
        (fun d ->
          match Xic_datalog.Eval.violation s d with
          | None -> None
          | Some bindings ->
            let node_vars = node_vars_of d in
            let nodes =
              List.filter_map
                (fun (v, const) ->
                  match const with
                  | T.Int id
                    when List.mem v node_vars && Doc.live t.doc id ->
                    Some (v, id, Xic_relmap.Shred.path_to_node t.doc id)
                  | _ -> None)
                bindings
            in
            Some { witness_constraint = c.Constr.name; denial = d; bindings; nodes })
        c.Constr.datalog)
    t.constraints

let witness_to_string w =
  (* internal (underscore-prefixed) variables are noise for humans *)
  let named (v, _) = String.length v > 0 && v.[0] <> '_' in
  let shown = List.filter named w.bindings in
  let nodes = List.filter (fun (v, _, _) -> named (v, ())) w.nodes in
  let nodes = if nodes = [] then w.nodes else nodes in
  Printf.sprintf "%s is violated:\n  %s%s%s" w.witness_constraint
    (T.denial_str w.denial)
    (match shown with
     | [] -> ""
     | bs ->
       "\n  with "
       ^ String.concat ", " (List.map (fun (v, c) -> v ^ " = " ^ T.const_str c) bs))
    (match nodes with
     | [] -> ""
     | ns ->
       "\n  at "
       ^ String.concat ", " (List.map (fun (v, _, p) -> v ^ " -> " ^ p) ns))

type outcome =
  | Applied of [ `Optimized | `Runtime_simplified | `Full_check ]
  | Rejected_early of string
  | Rolled_back of string

(* The relational mirror is maintained incrementally for insert-only
   updates (the paper's focus); anything touching removal invalidates it
   and the next [store] call re-shreds. *)
let apply_unchecked t u =
  let undo = XU.apply t.doc u in
  (match t.store with
   | Some s when XU.removed_nodes undo = [] ->
     List.iter
       (Xic_relmap.Shred.shred_into (Schema.mapping t.schema) t.doc s)
       (XU.inserted_nodes undo)
   | Some _ -> invalidate_store t
   | None -> ());
  undo

let rollback t undo =
  (match t.store with
   | Some s when XU.removed_nodes undo = [] ->
     (* unshred while the inserted nodes are still alive *)
     List.iter
       (Xic_relmap.Shred.unshred_from (Schema.mapping t.schema) t.doc s)
       (XU.inserted_nodes undo)
   | Some _ -> invalidate_store t
   | None -> ());
  XU.rollback t.doc undo

let full_check_fallback t u =
  let undo = apply_unchecked t u in
  match check_full t with
  | [] -> Applied `Full_check
  | violated :: _ ->
    rollback t undo;
    Rolled_back violated

(* Derive a one-off pattern from the concrete statement, simplify on the
   spot and pre-check; any failure along the way reverts to the
   execute–check–compensate strategy. *)
let runtime_simplified t (m : XU.modification) =
  match Pattern.of_modification t.schema ~name:"<runtime>" m with
  | exception Pattern.Pattern_error _ -> None
  | p ->
    (match Pattern.match_modification t.schema t.doc p m with
     | None -> None
     | Some valuation ->
       let params = Pattern.xquery_params valuation in
       let rec check = function
         | [] -> Some `Consistent
         | (c : Constr.t) :: rest ->
           (match Pattern.simplify t.schema p c with
            | exception Xic_simplify.After.Unsupported _ -> None
            | simplified ->
              (match
                 Xic_translate.Translate.denials (Schema.mapping t.schema)
                   simplified
               with
               | exception Xic_translate.Translate.Untranslatable _ -> None
               | q ->
                 (match Xic_xquery.Eval.eval_bool t.doc ~params q with
                  | exception Xic_xquery.Eval.Eval_error _ -> None
                  | true -> Some (`Violated c.Constr.name)
                  | false -> check rest)))
       in
       check t.constraints)

let guarded_update ?(fallback = `Full_check) t (u : XU.t) =
  match match_update t u with
  | Some (p, valuation) ->
    (match check_optimized t p valuation with
     | [] ->
       let _undo = apply_unchecked t u in
       Applied `Optimized
     | violated :: _ -> Rejected_early violated)
  | None ->
    (match (fallback, u) with
     | `Runtime_simplification, [ m ] ->
       (match runtime_simplified t m with
        | Some `Consistent ->
          let _undo = apply_unchecked t u in
          Applied `Runtime_simplified
        | Some (`Violated c) -> Rejected_early c
        | None -> full_check_fallback t u)
     | _ -> full_check_fallback t u)
