(** Ready-made constraint templates for the most common integrity
    requirements — the XML Schema-style constraints the paper's Section 3
    compares against, expressed through the same XPathLog pipeline so they
    benefit from update-pattern simplification like any hand-written
    denial. *)

(** Where a scalar value lives on an element. *)
type field =
  | Child of string  (** a [(#PCDATA)] child, e.g. [issn] *)
  | Attr of string   (** an XML attribute *)
  | Text             (** the element's own text *)

exception Template_error of string

val key : Schema.t -> ?name:string -> elem:string -> field:field -> unit -> Constr.t
(** No two [elem] elements share the field's value (a key/unique
    constraint). *)

val foreign_key :
  Schema.t ->
  ?name:string ->
  from:string * field ->
  into:string * field ->
  unit ->
  Constr.t
(** Every value of [from] occurs as a value of [into] (referential
    integrity).  Compiles to a safely negated denial. *)

val max_children :
  Schema.t -> ?name:string -> parent:string -> child:string -> int -> Constr.t
(** At most [n] children of type [child] per [parent] element. *)

val min_children :
  Schema.t -> ?name:string -> parent:string -> child:string -> int -> Constr.t
(** At least [n] children of type [child] per [parent] element (violated
    by deletions; pairs with removal patterns). *)

val forbidden_value :
  Schema.t -> ?name:string -> elem:string -> field:field -> string -> Constr.t
(** The field of [elem] never takes the given value. *)

val distinct_siblings :
  Schema.t -> ?name:string -> parent:string -> child:string -> field:field -> unit -> Constr.t
(** Within one [parent], no two [child] elements share the field's value
    (a relative key, as in XML Schema's scoped [xs:unique]). *)
