type field =
  | Child of string
  | Attr of string
  | Text

exception Template_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Template_error s)) fmt

let field_path = function
  | Child c -> c ^ "/text()"
  | Attr a -> "@" ^ a
  | Text -> "text()"

let field_label = function Child c -> c | Attr a -> a | Text -> "text"

let make schema name src =
  match Constr.make schema ~name src with
  | c -> c
  | exception Constr.Constraint_error m -> fail "%s" m

let key schema ?name ~elem ~field () =
  let name = Option.value name ~default:(Printf.sprintf "key_%s_%s" elem (field_label field)) in
  make schema name
    (Printf.sprintf
       "<- //%s[%s -> V] -> E1 and //%s[%s -> V] -> E2 and E1 != E2"
       elem (field_path field) elem (field_path field))

let foreign_key schema ?name ~from:(felem, ffield) ~into:(telem, tfield) () =
  let name =
    Option.value name
      ~default:(Printf.sprintf "fk_%s_%s__%s_%s" felem (field_label ffield) telem (field_label tfield))
  in
  make schema name
    (Printf.sprintf "<- //%s/%s -> V and not(//%s[%s -> V])"
       felem (field_path ffield) telem (field_path tfield))

(* An elided root cannot be bound to a variable; since it is the unique
   instance of its type, counting its children is counting all instances
   of the child type below it. *)
let is_elided schema parent =
  match Xic_relmap.Mapping.repr_of (Schema.mapping schema) parent with
  | Xic_relmap.Mapping.Elided -> true
  | _ -> false
  | exception Xic_relmap.Mapping.Mapping_error m -> fail "%s" m

let children_count schema ?name ~parent ~child ~op n ~label =
  let name = Option.value name ~default:(Printf.sprintf "%s_%d_%s_per_%s" label n child parent) in
  if is_elided schema parent then
    make schema name (Printf.sprintf "<- cnt{; /%s/%s} %s %d" parent child op n)
  else
    make schema name
      (Printf.sprintf "<- //%s -> P and cnt{; P/%s} %s %d" parent child op n)

let max_children schema ?name ~parent ~child n =
  children_count schema ?name ~parent ~child ~op:">" n ~label:"max"

let min_children schema ?name ~parent ~child n =
  children_count schema ?name ~parent ~child ~op:"<" n ~label:"min"

let forbidden_value schema ?name ~elem ~field value =
  let name =
    Option.value name ~default:(Printf.sprintf "no_%s_%s" elem (field_label field))
  in
  make schema name
    (Printf.sprintf "<- //%s[%s -> V] and V = %S" elem (field_path field) value)

let distinct_siblings schema ?name ~parent ~child ~field () =
  let name =
    Option.value name
      ~default:(Printf.sprintf "distinct_%s_in_%s" child parent)
  in
  make schema name
    (Printf.sprintf
       "<- //%s -> P and P/%s[%s -> V] -> C1 and P/%s[%s -> V] -> C2 and C1 != C2"
       parent child (field_path field) child (field_path field))
