(** A repository schema: the DTDs of the document collection plus the
    relational mapping derived from them. *)

open Xic_xml

type t

exception Schema_error of string

val create : (string * string) list -> t
(** [create [(dtd_source, root_name); …]] parses each DTD and builds the
    combined mapping.  @raise Schema_error on DTD or mapping errors. *)

val of_dtds : (Dtd.t * string) list -> t

val of_inline_doctypes : string list -> t
(** Build the schema from XML documents carrying internal DOCTYPE subsets
    ([<!DOCTYPE root [ <!ELEMENT …> ]>]); the root element name is taken
    from each document.  @raise Schema_error when a document lacks an
    internal subset or does not parse. *)

val mapping : t -> Xic_relmap.Mapping.t
val dtds : t -> (Dtd.t * string) list

val dtd_for_root : t -> string -> Dtd.t option
(** The DTD whose declared root element is the given name. *)

val validate_root : t -> Doc.t -> Doc.node_id -> (unit, string) result
(** Validate one tree of the collection against the DTD matching its root
    element name. *)

val to_string : t -> string
(** The derived relational schema, in the paper's notation. *)
