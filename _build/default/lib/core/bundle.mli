(** Design-time bundles.

    The paper has updates "choosing among a set of patterns published at
    schema design time" (Section 7, footnote 4).  A bundle is that
    artifact: a plain-text file carrying the constraint sources, the
    update-pattern templates and the {e pre-simplified} checks, so a
    runtime can load everything without re-running [Simp], and reviewers
    can audit exactly which residual checks guard each pattern. *)

exception Bundle_error of string

val save : Repository.t -> string
(** Serialize the repository's constraints, patterns and their compiled
    simplified checks (not the documents). *)

val save_file : Repository.t -> string -> unit

val load : Schema.t -> string -> Repository.t
(** Rebuild a repository (without documents) from a bundle: constraints
    are recompiled from their sources, patterns re-derived from their
    templates, and the stored simplified checks installed verbatim after
    validation against freshly computed ones.
    @raise Bundle_error on malformed bundles or on a mismatch between
    stored and recomputed checks (a stale bundle). *)

val load_file : Schema.t -> string -> Repository.t
