(** Parametric update patterns (Section 5).

    A pattern describes a class of XUpdate insertions: an operation, the
    element type targeted by the [select] expression, and a content
    template in which text values may be parameters (written [%name]).
    From the pattern we derive, once at schema-design time:

    {ul
    {- the relational update pattern — ground atoms with parameters (the
       paper's [U = {sub(is, ps, ir, t), auts(ia, pa, is, n)}]);}
    {- the freshness hypotheses Δ for the new node identifiers;}
    {- for a set of constraints, the simplified checks
       [SimpᵁΔ(Γ)] and their XQuery translations.}}

    At update time, {!match_update} recognizes concrete XUpdate statements
    that instantiate the pattern and extracts the parameter valuation. *)

open Xic_xml
module T := Xic_datalog.Term

type t = {
  name : string;
  op : Xic_xupdate.Xupdate.op;
  anchor_type : string;
      (** element type of the node selected by the statement's [select] *)
  content : Xic_xupdate.Xupdate.content list;
      (** template; [Text "%x"] is the parameter [x]; empty for removals *)
  atoms : T.atom list;      (** inserted-tuple pattern *)
  del_atoms : T.atom list;  (** deleted-tuple pattern (removal patterns) *)
  fresh : string list;      (** parameters that denote new node ids *)
  anchor_param : string;    (** parameter bound to the (future) parent node *)
  data_params : string list;
}

exception Pattern_error of string

val make :
  Schema.t ->
  name:string ->
  op:Xic_xupdate.Xupdate.op ->
  anchor_type:string ->
  content:Xic_xupdate.Xupdate.content list ->
  t
(** Derive the relational pattern.

    Insertion patterns ([Insert_after]/[Insert_before]/[Append]) require a
    content template.  Removal patterns ([Remove]) take no content and are
    supported for {e relational leaves}: element types all of whose
    children are embedded, so the removed subtree maps to a single tuple
    [type(%target, %p, %anchor, %c_col…)]; at update time the column
    parameters are read off the node being removed.

    @raise Pattern_error on content that does not type-check against the
    schema, or a removal of a non-leaf type. *)

val of_modification :
  Schema.t -> name:string -> Xic_xupdate.Xupdate.modification -> t
(** Derive a pattern from an XUpdate statement template whose text values
    may be [%name] parameters; the anchor type is taken from the last step
    of the template's [select] path.  @raise Pattern_error when the select
    does not end in a named child step. *)

val hypotheses : Schema.t -> t -> T.denial list
(** Freshness hypotheses Δ for the pattern's new node identifiers. *)

val simplify : Schema.t -> t -> Constr.t -> T.denial list
(** [SimpᵁΔ] of the constraint's denials w.r.t. this pattern. *)

(** A parameter valuation extracted from a concrete update. *)
type valuation = (string * value) list

and value =
  | Vnode of Doc.node_id  (** node-valued (anchor parent) *)
  | Vstr of string        (** data-valued *)
  | Vint of int           (** position-valued *)

val match_modification :
  Schema.t -> Doc.t -> t -> Xic_xupdate.Xupdate.modification -> valuation option
(** Try to recognize a concrete modification as an instance of the
    pattern; on success the valuation binds the anchor parameter to the
    (future) parent node and every data parameter to its concrete text.
    For insertions, fresh node-id parameters are {e not} bound (they never
    survive into the simplified checks; the freshness hypotheses discharge
    them).  For removals, [target] is bound to the node being removed and
    the column parameters to its current data. *)

val xquery_params : valuation -> (string * Xic_xquery.Eval.value) list
(** The valuation in the form expected by {!Xic_xquery.Eval.eval}. *)

val datalog_params :
  ?fresh_base:int -> t -> valuation -> (string * T.const) list
(** The valuation as Datalog constants, additionally assigning fresh
    integer ids (starting at [fresh_base]) to the fresh parameters, for
    store-level checking. *)
