(** The repository: an XML document collection with declared constraints
    and update patterns, supporting full and optimized (incremental)
    integrity checking with early detection of illegal updates.

    Checking semantics (Section 7 of the paper):
    {ul
    {- {e full check}: evaluate every constraint's XQuery translation
       against the current documents;}
    {- {e optimized check}: when an incoming update instantiates a
       registered pattern, evaluate the pattern's pre-compiled simplified
       checks with the extracted parameter valuation — {e before} the
       update executes, so illegal updates are never applied;}
    {- {e fallback}: updates matching no pattern are applied, fully
       checked, and rolled back on violation (compensating action).}} *)

open Xic_xml

type t

(** A simplified check, pre-compiled at pattern-registration time. *)
type optimized_check = {
  constraint_name : string;
  simplified : Xic_datalog.Term.denial list;
  simplified_xquery : Xic_xquery.Ast.expr;
}

exception Repository_error of string

val create : Schema.t -> t
val schema : t -> Schema.t
val doc : t -> Doc.t

val load_document : ?validate:bool -> t -> string -> unit
(** Parse an XML document and add it to the collection; with [validate]
    (default true) it must conform to the DTD declaring its root type.
    @raise Repository_error on parse or validation failure. *)

val add_document_root : ?validate:bool -> t -> Doc.node_id -> unit
(** Register an already-built tree (e.g. from a generator) as a root. *)

val add_constraint : ?verify:bool -> t -> Constr.t -> unit
(** Register a constraint; simplified checks are (re)compiled for every
    registered pattern.  With [verify] (default false), the constraint is
    first evaluated against the current documents and registration fails
    if they already violate it — the simplification framework assumes a
    consistent starting state. *)

val register_pattern : t -> Pattern.t -> unit
(** Register an update pattern: runs [Simp] against every constraint and
    pre-translates the simplified checks to XQuery. *)

val constraints : t -> Constr.t list
val patterns : t -> Pattern.t list

val optimized_checks : t -> Pattern.t -> optimized_check list
(** The pre-compiled simplified checks of a registered pattern.
    @raise Repository_error for unregistered patterns. *)

val check_full : t -> string list
(** Names of currently violated constraints (empty = consistent), via the
    full XQuery checks. *)

val check_full_datalog : t -> string list
(** Same, evaluated over the relational mirror (shredded on demand). *)

val match_update : t -> Xic_xupdate.Xupdate.t -> (Pattern.t * Pattern.valuation) option
(** Recognize a single-modification update against the registered
    patterns (first match wins). *)

val check_optimized : t -> Pattern.t -> Pattern.valuation -> string list
(** Names of constraints whose simplified check reports a violation for
    the proposed update (evaluated on the {e current} state). *)

val check_optimized_datalog : t -> Pattern.t -> Pattern.valuation -> string list
(** Ablation variant: evaluate the simplified denials over the relational
    mirror instead of via XQuery. *)

(** Result of a guarded update. *)
type outcome =
  | Applied of [ `Optimized | `Runtime_simplified | `Full_check ]
      (** executed; which checking strategy validated it *)
  | Rejected_early of string
      (** refused before execution (optimized check); the violated
          constraint's name *)
  | Rolled_back of string
      (** executed, found violating by the full check, compensated *)

val guarded_update :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  t ->
  Xic_xupdate.Xupdate.t ->
  outcome
(** Apply an update under integrity control.

    When the update instantiates a registered pattern, its pre-compiled
    simplified checks run before execution.  Otherwise [fallback] decides
    (Section 7, footnote 4 of the paper): with [`Full_check] (default) the
    update is executed, fully checked, and compensated on violation; with
    [`Runtime_simplification] a one-off pattern is derived from the
    concrete statement (its text values as constants), [Simp] runs on the
    spot, and the residual checks still execute {e before} the update —
    reverting to the full-check strategy only when the statement falls
    outside the simplifiable fragment. *)

val apply_unchecked : t -> Xic_xupdate.Xupdate.t -> Xic_xupdate.Xupdate.undo
val rollback : t -> Xic_xupdate.Xupdate.undo -> unit

val store : t -> Xic_datalog.Store.t
(** The relational mirror of the current documents (rebuilt lazily after
    updates). *)

(** A concrete witness of a constraint violation. *)
type witness = {
  witness_constraint : string;
  denial : Xic_datalog.Term.denial;  (** the violated disjunct *)
  bindings : (string * Xic_datalog.Term.const) list;
      (** satisfying substitution over the denial's variables *)
  nodes : (string * Doc.node_id * string) list;
      (** variable, node, and its positional root path, for the bindings
          that denote document nodes *)
}

val explain : t -> witness list
(** One witness per violated constraint disjunct (evaluated over the
    relational mirror) — empty iff consistent.  Use the [nodes] paths to
    point users at the offending elements. *)

val witness_to_string : witness -> string
