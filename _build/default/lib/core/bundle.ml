exception Bundle_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bundle_error s)) fmt

let header = "xic-bundle 1"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* ------------------------------------------------------------------ *)
(* Saving                                                              *)
(* ------------------------------------------------------------------ *)

let template_of_pattern (p : Pattern.t) =
  Xic_xupdate.Xupdate.to_string
    [ { Xic_xupdate.Xupdate.op =
          (if p.Pattern.op = Xic_xupdate.Xupdate.Remove then
             Xic_xupdate.Xupdate.Remove
           else p.Pattern.op);
        select =
          Xic_xpath.Ast.Path
            ( Xic_xpath.Ast.Abs,
              [ Xic_xpath.Ast.desc_step;
                { Xic_xpath.Ast.axis = Xic_xpath.Ast.Child;
                  test = Xic_xpath.Ast.Name_test p.Pattern.anchor_type;
                  preds = [];
                } ] );
        content = p.Pattern.content;
      } ]

let save repo =
  let b = Buffer.create 1024 in
  Buffer.add_string b (header ^ "\n\n");
  List.iter
    (fun (c : Constr.t) ->
      match c.Constr.xpathlog with
      | Some _ ->
        Buffer.add_string b
          (Printf.sprintf "constraint %s\n  %s\n\n" c.Constr.name
             (one_line c.Constr.source))
      | None ->
        Buffer.add_string b (Printf.sprintf "constraint-datalog %s\n" c.Constr.name);
        List.iter
          (fun d ->
            Buffer.add_string b
              ("  " ^ one_line (Xic_datalog.Term.denial_str { d with Xic_datalog.Term.label = None }) ^ "\n"))
          c.Constr.datalog;
        Buffer.add_char b '\n')
    (Repository.constraints repo);
  List.iter
    (fun (p : Pattern.t) ->
      Buffer.add_string b
        (Printf.sprintf "pattern %s\n  %s\n\n" p.Pattern.name (template_of_pattern p));
      List.iter
        (fun (ch : Repository.optimized_check) ->
          Buffer.add_string b
            (Printf.sprintf "checks %s %s\n" p.Pattern.name ch.Repository.constraint_name);
          List.iter
            (fun d ->
              Buffer.add_string b
                ("  "
                 ^ one_line
                     (Xic_datalog.Term.denial_str { d with Xic_datalog.Term.label = None })
                 ^ "\n"))
            ch.Repository.simplified;
          Buffer.add_char b '\n')
        (Repository.optimized_checks repo p))
    (Repository.patterns repo);
  Buffer.contents b

let save_file repo path =
  let oc = open_out path in
  output_string oc (save repo);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

type section = {
  kind : string;
  arg : string;
  body : string list;
}

let parse_sections text =
  let lines = String.split_on_char '\n' text in
  (match lines with
   | first :: _ when String.trim first = header -> ()
   | _ -> fail "not a %s file" header);
  let sections = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some s -> sections := { s with body = List.rev s.body } :: !sections
    | None -> ()
  in
  List.iteri
    (fun i line ->
      if i = 0 || String.trim line = "" then ()
      else if String.length line >= 2 && String.sub line 0 2 = "  " then begin
        match !current with
        | Some s -> current := Some { s with body = String.trim line :: s.body }
        | None -> fail "line %d: continuation outside a section" (i + 1)
      end
      else begin
        flush ();
        match String.index_opt line ' ' with
        | Some j ->
          current :=
            Some
              { kind = String.sub line 0 j;
                arg = String.sub line (j + 1) (String.length line - j - 1);
                body = [];
              }
        | None -> fail "line %d: malformed section header %S" (i + 1) line
      end)
    lines;
  flush ();
  List.rev !sections

let load schema text =
  let sections = parse_sections text in
  let repo = Repository.create schema in
  (* constraints first *)
  List.iter
    (fun s ->
      match s.kind with
      | "constraint" ->
        (match s.body with
         | [ src ] ->
           (match Constr.make schema ~name:s.arg src with
            | c -> Repository.add_constraint repo c
            | exception Constr.Constraint_error m -> fail "%s" m)
         | _ -> fail "constraint %s: expected one source line" s.arg)
      | "constraint-datalog" ->
        let denials =
          List.map
            (fun line ->
              match Xic_datalog.Parser.parse_denial ~label:s.arg line with
              | d -> d
              | exception Xic_datalog.Parser.Parse_error m -> fail "%s: %s" s.arg m)
            s.body
        in
        (match Constr.of_datalog schema ~name:s.arg denials with
         | c -> Repository.add_constraint repo c
         | exception Constr.Constraint_error m -> fail "%s" m)
      | _ -> ())
    sections;
  (* then patterns, and validate the stored checks *)
  List.iter
    (fun s ->
      if s.kind = "pattern" then begin
        match s.body with
        | [ template ] ->
          (match Xic_xupdate.Xupdate.parse_string template with
           | [ m ] ->
             (match Pattern.of_modification schema ~name:s.arg m with
              | p -> Repository.register_pattern repo p
              | exception Pattern.Pattern_error e -> fail "%s" e)
           | _ -> fail "pattern %s: expected one modification" s.arg
           | exception Xic_xupdate.Xupdate.Xupdate_error m -> fail "%s: %s" s.arg m)
        | _ -> fail "pattern %s: expected one template line" s.arg
      end)
    sections;
  (* stale-bundle detection: stored checks must be variants of the
     recomputed ones *)
  List.iter
    (fun s ->
      if s.kind = "checks" then begin
        match String.split_on_char ' ' s.arg with
        | [ pname; cname ] ->
          let p =
            match
              List.find_opt (fun p -> p.Pattern.name = pname) (Repository.patterns repo)
            with
            | Some p -> p
            | None -> fail "checks refer to unknown pattern %s" pname
          in
          let stored =
            List.map
              (fun line ->
                match Xic_datalog.Parser.parse_denial line with
                | d -> d
                | exception Xic_datalog.Parser.Parse_error m ->
                  fail "checks %s: %s" s.arg m)
              s.body
          in
          let current =
            match
              List.find_opt
                (fun (c : Repository.optimized_check) ->
                  c.Repository.constraint_name = cname)
                (Repository.optimized_checks repo p)
            with
            | Some c -> c.Repository.simplified
            | None -> fail "checks refer to unknown constraint %s" cname
          in
          if
            List.length stored <> List.length current
            || not (List.for_all2 Xic_datalog.Subsume.variant stored current)
          then
            fail
              "stale bundle: stored checks for pattern %s / constraint %s differ \
               from the recompiled ones"
              pname cname
        | _ -> fail "malformed checks header %S" s.arg
      end)
    sections;
  repo

let load_file schema path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  load schema text
