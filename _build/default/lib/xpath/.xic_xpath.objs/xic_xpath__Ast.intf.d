lib/xpath/ast.mli:
