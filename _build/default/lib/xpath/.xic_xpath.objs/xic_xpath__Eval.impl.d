lib/xpath/eval.ml: Ast Buffer Doc Float List Printf String Xic_xml
