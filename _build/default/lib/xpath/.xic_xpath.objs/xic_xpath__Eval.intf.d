lib/xpath/eval.mli: Ast Doc Xic_xml
