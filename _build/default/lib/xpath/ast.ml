(** Abstract syntax of the XPath subset.

    This covers XPath 1.0 location paths with all axes named in the paper
    (Section 3.1), plus the expression language needed by predicates and by
    the XQuery translation: literals, numbers, variables, boolean
    connectives, comparisons, arithmetic and a fixed set of functions. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Self
  | Attribute
  | Following_sibling
  | Preceding_sibling

type nodetest =
  | Name_test of string  (** element (or attribute) name *)
  | Wildcard             (** [*] *)
  | Text_test            (** [text()] *)
  | Node_test            (** [node()] *)

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div | Mod
  | Union

(** Where a location path starts. *)
type start =
  | Abs           (** [/steps] — from the document root *)
  | Rel           (** [steps] — from the context node *)
  | From of expr  (** [expr/steps] — from each node produced by [expr] *)

and step = {
  axis : axis;
  test : nodetest;
  preds : expr list;
}

and expr =
  | Path of start * step list
  | Literal of string
  | Number of float
  | Var of string        (** [$name]; resolved from the environment *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Call of string * expr list

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Self -> "self"
  | Attribute -> "attribute"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let axis_of_name = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "self" -> Some Self
  | "attribute" -> Some Attribute
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | _ -> None

(* The descendant-or-self::node() step that [//] abbreviates. *)
let desc_step = { axis = Descendant_or_self; test = Node_test; preds = [] }

let binop_name = function
  | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod"
  | Union -> "|"

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6
  | Union -> 7

(** Render back to XPath concrete syntax, re-abbreviating
    [descendant-or-self::node()] steps to [//] and child/attribute axes to
    their short forms. *)
let rec to_string e = expr_str 0 e

and expr_str prec e =
  match e with
  | Literal s -> "\"" ^ s ^ "\""
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Var v ->
    (* Variables with the reserved '%' prefix are parameter holes and are
       rendered back in the paper's [%name] notation. *)
    if String.length v > 0 && v.[0] = '%' then v else "$" ^ v
  | Neg e -> "-" ^ expr_str 10 e
  | Call (f, args) -> f ^ "(" ^ String.concat ", " (List.map to_string args) ^ ")"
  | Binop (op, a, b) ->
    let p = precedence op in
    let s =
      expr_str p a ^ " " ^ binop_name op ^ " " ^ expr_str (p + 1) b
    in
    if p < prec then "(" ^ s ^ ")" else s
  | Path (start, steps) -> path_str start steps

and path_str start steps =
  let prefix, steps =
    match (start, steps) with
    | Abs, s :: rest when s = desc_step -> ("//", rest)
    | Abs, _ -> ("/", steps)
    | Rel, _ -> ("", steps)
    | From e, s :: rest when s = desc_step -> (expr_str 10 e ^ "//", rest)
    | From e, _ -> (expr_str 10 e ^ "/", steps)
  in
  let rec walk acc = function
    | [] -> List.rev acc
    | s :: rest when s = desc_step && rest <> [] ->
      (* Re-abbreviate a // in the middle of the path. *)
      (match walk [] rest with
       | s1 :: more -> List.rev_append acc (("/" ^ s1) :: more)
       | [] -> List.rev acc)
    | s :: rest -> walk (step_str s :: acc) rest
  in
  match walk [] steps with
  | [] -> if prefix = "" then "." else prefix
  | parts -> prefix ^ String.concat "/" parts

and step_str { axis; test; preds } =
  let base =
    match (axis, test) with
    | Child, Name_test n -> n
    | Child, Wildcard -> "*"
    | Child, Text_test -> "text()"
    | Child, Node_test -> "node()"
    | Attribute, Name_test n -> "@" ^ n
    | Attribute, Wildcard -> "@*"
    | Parent, Node_test -> ".."
    | Self, Node_test -> "."
    | axis, test -> axis_name axis ^ "::" ^ test_str test
  in
  base ^ String.concat "" (List.map (fun p -> "[" ^ to_string p ^ "]") preds)

and test_str = function
  | Name_test n -> n
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Node_test -> "node()"

let equal (a : expr) (b : expr) = a = b
