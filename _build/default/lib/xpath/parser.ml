exception Parse_error of string

type token =
  | NAME of string
  | NUM of float
  | STR of string
  | VAR of string
  | SLASH | DSLASH | LBRACK | RBRACK | LPAREN | RPAREN
  | AT | DOT | DOTDOT | DCOLON | COMMA | PIPE
  | PLUS | MINUS | STAR | EQ | NEQ | LT | LE | GT | GE
  | ARROW
  | LBRACE | RBRACE | SEMI | COLON | ASSIGN
  | PARAM of string
  | EOF

let token_str = function
  | NAME s -> s
  | NUM f -> string_of_float f
  | STR s -> "\"" ^ s ^ "\""
  | VAR v -> "$" ^ v
  | SLASH -> "/" | DSLASH -> "//" | LBRACK -> "[" | RBRACK -> "]"
  | LPAREN -> "(" | RPAREN -> ")" | AT -> "@" | DOT -> "." | DOTDOT -> ".."
  | DCOLON -> "::" | COMMA -> "," | PIPE -> "|"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | EQ -> "=" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ARROW -> "->" | LBRACE -> "{" | RBRACE -> "}" | SEMI -> ";" | COLON -> ":"
  | ASSIGN -> ":=" | PARAM p -> "%" ^ p | EOF -> "<eof>"

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek_at k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if is_ws c then incr i
    else if is_name_start c then begin
      let start = !i in
      (* Names may contain '-' but a name never ends with '-' followed by
         '>', so [->] after a name still lexes as an arrow. *)
      while
        !i < n
        && is_name_char src.[!i]
        && not (src.[!i] = '-' && peek_at 1 = '>')
      do
        incr i
      done;
      push (NAME (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
        incr i
      done;
      push (NUM (float_of_string (String.sub src start (!i - start))))
    end
    else if c = '"' || c = '\'' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> c do
        incr i
      done;
      if !i >= n then fail "unterminated string literal";
      push (STR (String.sub src start (!i - start)));
      incr i
    end
    else if c = '$' || c = '%' then begin
      incr i;
      let start = !i in
      while !i < n && is_name_char src.[!i] do
        incr i
      done;
      if !i = start then fail "expected a name after %C" c;
      let name = String.sub src start (!i - start) in
      push (if c = '$' then VAR name else PARAM name)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "//" -> push DSLASH; i := !i + 2
      | "::" -> push DCOLON; i := !i + 2
      | ":=" -> push ASSIGN; i := !i + 2
      | "!=" -> push NEQ; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "->" -> push ARROW; i := !i + 2
      | ".." -> push DOTDOT; i := !i + 2
      | _ ->
        (match c with
         | '/' -> push SLASH | '[' -> push LBRACK | ']' -> push RBRACK
         | '(' -> push LPAREN | ')' -> push RPAREN | '@' -> push AT
         | '.' -> push DOT | ',' -> push COMMA | '|' -> push PIPE
         | '+' -> push PLUS | '-' -> push MINUS | '*' -> push STAR
         | '=' -> push EQ | '<' -> push LT | '>' -> push GT
         | '{' -> push LBRACE | '}' -> push RBRACE | ';' -> push SEMI
         | ':' -> push COLON
         | c -> fail "illegal character %C" c);
        incr i
    end
  done;
  List.rev (EOF :: !toks)

(* ------------------------------------------------------------------ *)
(* Token cursor                                                        *)
(* ------------------------------------------------------------------ *)

module Cursor = struct
  type t = { mutable toks : token list }

  let of_tokens toks = { toks }
  let of_string s = { toks = tokenize s }

  let peek c = match c.toks with [] -> EOF | t :: _ -> t
  let peek2 c = match c.toks with _ :: t :: _ -> t | _ -> EOF
  let peekn c n = match List.nth_opt c.toks n with Some t -> t | None -> EOF

  let next c =
    match c.toks with
    | [] -> EOF
    | t :: rest ->
      c.toks <- rest;
      t

  let fail c msg =
    fail "%s (at %s)" msg
      (String.concat " " (List.map token_str (List.filteri (fun i _ -> i < 5) c.toks)))

  let eat c t =
    let got = next c in
    if got <> t then fail c (Printf.sprintf "expected %s, got %s" (token_str t) (token_str got))

  let eat_name c s =
    match next c with
    | NAME n when n = s -> ()
    | got -> fail c (Printf.sprintf "expected %s, got %s" s (token_str got))

  let at_eof c = peek c = EOF
end

open Ast

(* ------------------------------------------------------------------ *)
(* Recursive descent parser                                            *)
(* ------------------------------------------------------------------ *)

(* nodetest := name | '*' | 'text' '(' ')' | 'node' '(' ')' *)
let parse_nodetest c =
  match Cursor.next c with
  | STAR -> Wildcard
  | NAME ("text" as n) | NAME ("node" as n) when Cursor.peek c = LPAREN ->
    Cursor.eat c LPAREN;
    Cursor.eat c RPAREN;
    if n = "text" then Text_test else Node_test
  | NAME n -> Name_test n
  | t -> Cursor.fail c (Printf.sprintf "expected a node test, got %s" (token_str t))

let rec parse_step c =
  match Cursor.peek c with
  | DOT ->
    Cursor.eat c DOT;
    { axis = Self; test = Node_test; preds = parse_preds c }
  | DOTDOT ->
    Cursor.eat c DOTDOT;
    { axis = Parent; test = Node_test; preds = parse_preds c }
  | AT ->
    Cursor.eat c AT;
    let test = parse_nodetest c in
    { axis = Attribute; test; preds = parse_preds c }
  | NAME a when Cursor.peek2 c = DCOLON && axis_of_name a <> None ->
    let axis = match axis_of_name a with Some x -> x | None -> assert false in
    Cursor.eat c (NAME a);
    Cursor.eat c DCOLON;
    let test = parse_nodetest c in
    { axis; test; preds = parse_preds c }
  | _ ->
    let test = parse_nodetest c in
    { axis = Child; test; preds = parse_preds c }

and parse_preds c =
  if Cursor.peek c = LBRACK then begin
    Cursor.eat c LBRACK;
    let e = parse_or c in
    Cursor.eat c RBRACK;
    e :: parse_preds c
  end
  else []

(* steps after an initial '/' or '//' or a primary expression *)
and parse_rel_steps c acc =
  let acc = parse_step c :: acc in
  match Cursor.peek c with
  | SLASH ->
    Cursor.eat c SLASH;
    parse_rel_steps c acc
  | DSLASH ->
    Cursor.eat c DSLASH;
    parse_rel_steps c (desc_step :: acc)
  | _ -> List.rev acc

and starts_step c =
  match Cursor.peek c with
  | DOT | DOTDOT | AT | STAR -> true
  | NAME _ -> true
  | _ -> false

(* A path or primary expression. *)
and parse_path_expr c =
  match Cursor.peek c with
  | SLASH ->
    Cursor.eat c SLASH;
    if starts_step c then Path (Abs, parse_rel_steps c []) else Path (Abs, [])
  | DSLASH ->
    Cursor.eat c DSLASH;
    Path (Abs, desc_step :: parse_rel_steps c [])
  | _ ->
    let primary = parse_primary c in
    continue_path c primary

and continue_path c primary =
  match (primary, Cursor.peek c) with
  | _, SLASH ->
    Cursor.eat c SLASH;
    Path (From primary, parse_rel_steps c [])
  | _, DSLASH ->
    Cursor.eat c DSLASH;
    Path (From primary, desc_step :: parse_rel_steps c [])
  | _ -> primary

and parse_primary c =
  match Cursor.peek c with
  | LPAREN ->
    Cursor.eat c LPAREN;
    let e = parse_or c in
    Cursor.eat c RPAREN;
    with_filter_preds c e
  | STR s ->
    ignore (Cursor.next c);
    Literal s
  | NUM f ->
    ignore (Cursor.next c);
    Number f
  | VAR v ->
    ignore (Cursor.next c);
    with_filter_preds c (Var v)
  | PARAM p ->
    (* Parameter holes are represented as variables with a reserved '%'
       prefix so that they can occur anywhere in a path. *)
    ignore (Cursor.next c);
    with_filter_preds c (Var ("%" ^ p))
  | MINUS ->
    Cursor.eat c MINUS;
    Neg (parse_primary c)
  | NAME n
    when Cursor.peek2 c = LPAREN && n <> "text" && n <> "node"
         && axis_of_name n = None ->
    Cursor.eat c (NAME n);
    Cursor.eat c LPAREN;
    let rec args acc =
      if Cursor.peek c = RPAREN then List.rev acc
      else begin
        let a = parse_or c in
        if Cursor.peek c = COMMA then begin
          Cursor.eat c COMMA;
          args (a :: acc)
        end
        else List.rev (a :: acc)
      end
    in
    let args = args [] in
    Cursor.eat c RPAREN;
    with_filter_preds c (Call (n, args))
  | t when (match t with DOT | DOTDOT | AT | STAR | NAME _ -> true | _ -> false) ->
    Path (Rel, parse_rel_steps c [])
  | t -> Cursor.fail c (Printf.sprintf "unexpected token %s" (token_str t))

(* Predicates directly after a filter expression: [$x[2]/y]. *)
and with_filter_preds c e =
  if Cursor.peek c = LBRACK then begin
    let preds = parse_preds c in
    Path (From e, [ { axis = Self; test = Node_test; preds } ])
  end
  else e

and parse_union c =
  let lhs = parse_path_expr c in
  if Cursor.peek c = PIPE then begin
    Cursor.eat c PIPE;
    Binop (Union, lhs, parse_union c)
  end
  else lhs

and parse_unary c =
  if Cursor.peek c = MINUS then begin
    Cursor.eat c MINUS;
    Neg (parse_unary c)
  end
  else parse_union c

and parse_mul c =
  let rec loop lhs =
    match Cursor.peek c with
    | STAR ->
      Cursor.eat c STAR;
      loop (Binop (Mul, lhs, parse_unary c))
    | NAME "div" ->
      ignore (Cursor.next c);
      loop (Binop (Div, lhs, parse_unary c))
    | NAME "mod" ->
      ignore (Cursor.next c);
      loop (Binop (Mod, lhs, parse_unary c))
    | _ -> lhs
  in
  loop (parse_unary c)

and parse_add c =
  let rec loop lhs =
    match Cursor.peek c with
    | PLUS ->
      Cursor.eat c PLUS;
      loop (Binop (Add, lhs, parse_mul c))
    | MINUS ->
      Cursor.eat c MINUS;
      loop (Binop (Sub, lhs, parse_mul c))
    | _ -> lhs
  in
  loop (parse_mul c)

and parse_rel c =
  let rec loop lhs =
    match Cursor.peek c with
    | LT -> Cursor.eat c LT; loop (Binop (Lt, lhs, parse_add c))
    | LE -> Cursor.eat c LE; loop (Binop (Le, lhs, parse_add c))
    | GT -> Cursor.eat c GT; loop (Binop (Gt, lhs, parse_add c))
    | GE -> Cursor.eat c GE; loop (Binop (Ge, lhs, parse_add c))
    | _ -> lhs
  in
  loop (parse_add c)

and parse_eq c =
  let rec loop lhs =
    match Cursor.peek c with
    | EQ -> Cursor.eat c EQ; loop (Binop (Eq, lhs, parse_rel c))
    | NEQ -> Cursor.eat c NEQ; loop (Binop (Neq, lhs, parse_rel c))
    | _ -> lhs
  in
  loop (parse_eq_operand c)

and parse_eq_operand c = parse_rel c

and parse_and c =
  let rec loop lhs =
    match Cursor.peek c with
    | NAME "and" ->
      ignore (Cursor.next c);
      loop (Binop (And, lhs, parse_eq c))
    | _ -> lhs
  in
  loop (parse_eq c)

and parse_or c =
  let rec loop lhs =
    match Cursor.peek c with
    | NAME "or" ->
      ignore (Cursor.next c);
      loop (Binop (Or, lhs, parse_and c))
    | _ -> lhs
  in
  loop (parse_and c)

let parse_expr_at = parse_or
let parse_path_expr_at = parse_path_expr

let parse src =
  let c = Cursor.of_string src in
  let e = parse_or c in
  if not (Cursor.at_eof c) then
    Cursor.fail c "trailing tokens after XPath expression";
  e

let parse_path src =
  match parse src with
  | Path (start, steps) -> (start, steps)
  | _ -> fail "expected a location path: %s" src
