(** Abstract syntax of the XPath subset: XPath 1.0 location paths with all
    axes named in the paper (Section 3.1), plus the expression language
    needed by predicates and by the XQuery translation. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Self
  | Attribute
  | Following_sibling
  | Preceding_sibling

type nodetest =
  | Name_test of string  (** element (or attribute) name *)
  | Wildcard             (** [*] *)
  | Text_test            (** [text()] *)
  | Node_test            (** [node()] *)

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div | Mod
  | Union

(** Where a location path starts. *)
type start =
  | Abs           (** [/steps] — from the document root *)
  | Rel           (** [steps] — from the context node *)
  | From of expr  (** [expr/steps] — from each node produced by [expr] *)

and step = {
  axis : axis;
  test : nodetest;
  preds : expr list;
}

and expr =
  | Path of start * step list
  | Literal of string
  | Number of float
  | Var of string
      (** [$name]; names with the reserved ['%'] prefix are parameter
          holes ([%name] in concrete syntax) *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Call of string * expr list

val axis_name : axis -> string
val axis_of_name : string -> axis option

val desc_step : step
(** The [descendant-or-self::node()] step that [//] abbreviates. *)

val binop_name : binop -> string
val precedence : binop -> int

val to_string : expr -> string
(** Concrete syntax, re-abbreviating [//], [@], [..] and [.]; reparsable
    by {!Parser}. *)

val equal : expr -> expr -> bool
