(** Parser for the XPath expression subset of {!Ast}. *)

exception Parse_error of string

val parse : string -> Ast.expr
(** Parse a complete XPath expression.
    @raise Parse_error with a message pointing at the offending token. *)

val parse_path : string -> Ast.start * Ast.step list
(** Parse an expression and require it to be a location path.
    @raise Parse_error if the expression is not a path. *)

(** Tokens are exposed so that the XPathLog and XQuery parsers can reuse
    the lexer. *)
type token =
  | NAME of string
  | NUM of float
  | STR of string
  | VAR of string
  | SLASH | DSLASH | LBRACK | RBRACK | LPAREN | RPAREN
  | AT | DOT | DOTDOT | DCOLON | COMMA | PIPE
  | PLUS | MINUS | STAR | EQ | NEQ | LT | LE | GT | GE
  | ARROW        (** [->], used by XPathLog variable bindings *)
  | LBRACE | RBRACE | SEMI | COLON | ASSIGN  (** [:=] *)
  | PARAM of string  (** [%name], a parameter hole in generated XQuery *)
  | EOF

val tokenize : string -> token list
(** Lex a string into tokens (shared by the XPathLog/XQuery parsers).
    @raise Parse_error on illegal characters. *)

val token_str : token -> string

(** A mutable token cursor with the helpers used by all the recursive
    descent parsers in this project. *)
module Cursor : sig
  type t

  val of_tokens : token list -> t
  val of_string : string -> t
  val peek : t -> token
  val peek2 : t -> token

  val peekn : t -> int -> token
  (** Token at 0-based offset [n] from the cursor ([peekn c 0 = peek c]). *)

  val next : t -> token
  val eat : t -> token -> unit
  (** @raise Parse_error if the next token differs. *)

  val eat_name : t -> string -> unit
  (** Consume [NAME s]; @raise Parse_error otherwise. *)

  val fail : t -> string -> 'a
  val at_eof : t -> bool
end

val parse_expr_at : Cursor.t -> Ast.expr
(** Parse an XPath expression starting at the cursor (used by embedding
    parsers); stops at the first token that cannot continue the
    expression. *)

val parse_path_expr_at : Cursor.t -> Ast.expr
(** Parse only a path/primary expression (no binary operators), so that an
    embedding parser (XQuery) can provide its own operator layer. *)
