lib/xml/xml_printer.ml: Buffer Doc List String
