lib/xml/dtd.ml: Array Doc Hashtbl List Printf String
