lib/xml/xml_printer.mli: Buffer Doc
