lib/xml/dtd.mli: Doc Stdlib
