lib/xml/doc.ml: Array Buffer List
