lib/xml/doc.mli:
