lib/xml/xml_parser.ml: Buffer Char Doc List Printf String
