exception Parse_error of { line : int; col : int; msg : string }

type result = {
  doc : Doc.t;
  dtd_text : string option;
}

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_state src = { src; pos = 0; line = 1; col = 1 }

let fail st msg = raise (Parse_error { line = st.line; col = st.col; msg })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let skip_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then skip_n st (String.length s)
  else fail st (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity and character reference resolution ------------------------------ *)

let resolve_entity name =
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        if name.[1] = 'x' || name.[1] = 'X' then
          int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
        else int_of_string (String.sub name 1 (String.length name - 1))
      in
      (* Encode as UTF-8. *)
      let b = Buffer.create 4 in
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents b
    end
    else failwith (Printf.sprintf "unknown entity &%s;" name)

let unescape s =
  if not (String.contains s '&') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> failwith "unterminated entity reference"
        | Some j ->
          Buffer.add_string b (resolve_entity (String.sub s (!i + 1) (j - !i - 1)));
          i := j + 1
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

(* Lexical scanning of document pieces ------------------------------------ *)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    advance st
  done;
  if eof st then fail st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  try unescape raw with Failure m -> fail st m

let parse_attrs st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let k = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let v = parse_attr_value st in
      go ((k, v) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_until st stop =
  match
    let rec find i =
      if i + String.length stop > String.length st.src then None
      else if String.sub st.src i (String.length stop) = stop then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | None -> fail st (Printf.sprintf "unterminated construct, expected %S" stop)
  | Some i ->
    let text = String.sub st.src st.pos (i - st.pos) in
    while st.pos < i + String.length stop do
      advance st
    done;
    text

let skip_comment st =
  expect st "<!--";
  ignore (skip_until st "-->")

let skip_pi st =
  expect st "<?";
  ignore (skip_until st "?>")

(* DOCTYPE: capture the internal subset text, skip external ids. *)
let parse_doctype st =
  expect st "<!DOCTYPE";
  skip_ws st;
  let _name = parse_name st in
  skip_ws st;
  (* Optional SYSTEM/PUBLIC external id: skip quoted strings. *)
  while peek st <> '[' && peek st <> '>' && not (eof st) do
    if peek st = '"' || peek st = '\'' then ignore (parse_attr_value st) else advance st
  done;
  let subset =
    if peek st = '[' then begin
      advance st;
      let text = skip_until st "]" in
      Some text
    end
    else None
  in
  skip_ws st;
  expect st ">";
  subset

(* Content parsing --------------------------------------------------------- *)

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

let rec parse_content st doc ~keep_ws acc =
  if eof st then List.rev acc
  else if looking_at st "</" then List.rev acc
  else if looking_at st "<!--" then begin
    skip_comment st;
    parse_content st doc ~keep_ws acc
  end
  else if looking_at st "<![CDATA[" then begin
    skip_n st 9;
    let text = skip_until st "]]>" in
    let id = Doc.make_text doc text in
    parse_content st doc ~keep_ws (id :: acc)
  end
  else if looking_at st "<?" then begin
    skip_pi st;
    parse_content st doc ~keep_ws acc
  end
  else if peek st = '<' then begin
    let id = parse_element st doc ~keep_ws in
    parse_content st doc ~keep_ws (id :: acc)
  end
  else begin
    let start = st.pos in
    while (not (eof st)) && peek st <> '<' do
      advance st
    done;
    let raw = String.sub st.src start (st.pos - start) in
    if (not keep_ws) && all_ws raw then parse_content st doc ~keep_ws acc
    else begin
      let text = try unescape raw with Failure m -> fail st m in
      let id = Doc.make_text doc text in
      parse_content st doc ~keep_ws (id :: acc)
    end
  end

and parse_element st doc ~keep_ws =
  expect st "<";
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  let id = Doc.make_element doc ~attrs tag in
  if looking_at st "/>" then begin
    skip_n st 2;
    id
  end
  else begin
    expect st ">";
    let kids = parse_content st doc ~keep_ws [] in
    expect st "</";
    let close = parse_name st in
    if close <> tag then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close tag);
    skip_ws st;
    expect st ">";
    Doc.append_children doc ~parent:id kids;
    id
  end

let parse_prolog st =
  let dtd = ref None in
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<?" then skip_pi st
    else if looking_at st "<!--" then skip_comment st
    else if looking_at st "<!DOCTYPE" then dtd := parse_doctype st
    else continue := false
  done;
  !dtd

let parse_string ?(keep_ws = false) src =
  let st = make_state src in
  let doc = Doc.create () in
  let dtd_text = parse_prolog st in
  skip_ws st;
  if peek st <> '<' then fail st "expected root element";
  let root = parse_element st doc ~keep_ws in
  Doc.set_root doc root;
  skip_ws st;
  while not (eof st) do
    if looking_at st "<!--" then skip_comment st
    else if looking_at st "<?" then skip_pi st
    else fail st "content after root element"
  done;
  { doc; dtd_text }

let parse_file ?keep_ws path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ?keep_ws src

let parse_fragment doc src =
  let st = make_state src in
  let nodes = parse_content st doc ~keep_ws:false [] in
  if not (eof st) then fail st "trailing content in fragment";
  nodes
