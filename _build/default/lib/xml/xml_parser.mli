(** XML 1.0 subset parser producing a {!Doc.t} arena document.

    Supported: elements, attributes (single or double quoted), character
    data, CDATA sections, comments, processing instructions (skipped), the
    XML declaration, an optional internal or external DOCTYPE declaration
    (element declarations are exposed as raw text for {!Dtd}), and the five
    predefined entities plus decimal/hexadecimal character references.

    Not supported (rejected or ignored as noted): namespaces are treated as
    plain prefixed names; user-defined entity declarations are rejected. *)

exception Parse_error of { line : int; col : int; msg : string }

type result = {
  doc : Doc.t;
  dtd_text : string option;
      (** Raw text between the brackets of an internal DTD subset, if any. *)
}

val parse_string : ?keep_ws:bool -> string -> result
(** Parse a complete document.  Unless [keep_ws] is set, text nodes that
    consist solely of whitespace are dropped (the running-example DTDs are
    element-content only, where such whitespace is insignificant).
    @raise Parse_error on malformed input. *)

val parse_file : ?keep_ws:bool -> string -> result

val parse_fragment : Doc.t -> string -> Doc.node_id list
(** Parse a well-formed sequence of elements/text (no prolog) allocating the
    nodes inside an existing document; returns the detached top-level nodes.
    Used by XUpdate content construction.
    @raise Parse_error on malformed input. *)

val unescape : string -> string
(** Resolve predefined entities and character references in attribute or
    text content.  Raises [Failure] on unknown entities. *)
