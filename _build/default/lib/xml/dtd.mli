(** DTD (document type definition) subset: [<!ELEMENT …>] and
    [<!ATTLIST …>] declarations, validation, and the content-model
    analysis needed by the relational mapping of Section 4.1. *)

(** Occurrence indicator attached to a particle. *)
type occur =
  | One   (** exactly once *)
  | Opt   (** [?] *)
  | Star  (** [*] *)
  | Plus  (** [+] *)

(** Content particle. *)
type particle =
  | Name of string * occur
  | Seq of particle list * occur
  | Choice of particle list * occur

(** Content model of an element type. *)
type content =
  | PCData                      (** [(#PCDATA)] *)
  | Mixed of string list        (** [(#PCDATA | a | b)*] *)
  | Children of particle        (** element content *)
  | Empty                       (** [EMPTY] *)
  | Any                         (** [ANY] *)

type attr_decl = {
  attr_name : string;
  required : bool;              (** [#REQUIRED] vs anything else *)
}

type element_decl = {
  elem_name : string;
  content : content;
  attlist : attr_decl list;
}

type t

exception Parse_error of string

val parse : string -> t
(** Parse the text of a DTD internal subset (a sequence of [<!ELEMENT>] and
    [<!ATTLIST>] declarations; comments and parameter entities are not
    supported).  @raise Parse_error on malformed declarations. *)

val of_decls : element_decl list -> t

val declarations : t -> element_decl list
val find : t -> string -> element_decl option
val element_names : t -> string list

(** Multiplicity of a child element name within a parent's content model. *)
type multiplicity =
  | M_one       (** occurs exactly once in every valid instance *)
  | M_opt       (** occurs at most once *)
  | M_many      (** may occur more than once *)
  | M_none      (** cannot occur *)

val child_multiplicity : t -> parent:string -> child:string -> multiplicity

val child_names : t -> string -> string list
(** Element names that can appear as direct children, in first-occurrence
    order of the content model. *)

val is_pcdata_only : t -> string -> bool
(** True if the element's content model is [(#PCDATA)]. *)

val parents_of : t -> string -> string list
(** Element types that can directly contain the given type. *)

val descendant_types : t -> string -> string list
(** Element types reachable (strictly below) from the given type,
    including through recursion, computed as a fixpoint. *)

val validate : ?root:Doc.node_id -> t -> Doc.t -> (unit, string) Stdlib.result
(** Check the tree below [root] (default: the document's first root)
    against the DTD: every element declared, children sequences match
    content models, required attributes present, PCDATA-only elements
    contain no child elements. *)

val to_string : t -> string
(** Render back to [<!ELEMENT …>] declaration syntax. *)
