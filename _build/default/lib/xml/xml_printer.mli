(** Serialization of {!Doc.t} documents back to XML text. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for double-quoted
    attribute values. *)

val to_buffer : ?indent:bool -> Buffer.t -> Doc.t -> Doc.node_id -> unit
(** Serialize the subtree rooted at the given node.  With [indent] (default
    false) element-only content is pretty-printed with two-space
    indentation. *)

val node_to_string : ?indent:bool -> Doc.t -> Doc.node_id -> string

val to_string : ?indent:bool -> Doc.t -> string
(** Serialize the whole document (root element, no XML declaration). *)

val to_file : ?indent:bool -> string -> Doc.t -> unit
