(** The paper's running example: the [pub.xml]/[rev.xml] DTDs (Section
    3.2), the integrity constraints of Examples 1, 2 and 7, and the
    submission-insertion update pattern of Example 6. *)

val pub_dtd : string
val rev_dtd : string

val schema : unit -> Xic_core.Schema.t
(** The combined schema of both documents. *)

val conflict_source : string
(** Example 1: no conflict of interest (reviewer is never an author or a
    coauthor of an author of an assigned submission). *)

val workload_source : string
(** Example 2: a reviewer involved in more than three tracks must not
    review more than ten papers. *)

val track_load_source : string
(** Example 7: at most four submissions per reviewer per track. *)

val conflict : Xic_core.Schema.t -> Xic_core.Constr.t
val workload : Xic_core.Schema.t -> Xic_core.Constr.t
val track_load : Xic_core.Schema.t -> Xic_core.Constr.t

val submission_pattern : Xic_core.Schema.t -> Xic_core.Pattern.t
(** Example 6's update pattern: insert-after an existing [sub], a new
    [sub] with title [%t] and a single author [%n]. *)

val insert_submission :
  select:string -> title:string -> author:string -> Xic_xupdate.Xupdate.t
(** A concrete instance of the pattern: an XUpdate statement inserting a
    single-author submission after the node selected by [select]. *)
