(** Deterministic splitmix64 PRNG — the experiments must be reproducible
    across runs and machines, so the stdlib's [Random] is not used. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n); [n] must be positive. *)

val pick : t -> 'a array -> 'a
val bool : t -> bool
val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
