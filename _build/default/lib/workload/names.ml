(** Name and title-word pools for the DBLP-like synthetic generator. *)

let first_names =
  [| "Ada"; "Alan"; "Barbara"; "Claude"; "Dana"; "Donald"; "Edsger"; "Frances";
     "Grace"; "Hedy"; "Ivan"; "John"; "Karen"; "Leslie"; "Margaret"; "Niklaus";
     "Ole"; "Peter"; "Radia"; "Robin"; "Shafi"; "Tim"; "Ursula"; "Vint";
     "Whitfield"; "Xavier"; "Yukihiro"; "Zohar"; "Edgar"; "Jim"; "Michael";
     "Pat"; "Hector"; "Serge"; "Moshe"; "Ronald"; "Andrew"; "Butler"; "Tony";
     "Kristen" |]

let last_names =
  [| "Lovelace"; "Turing"; "Liskov"; "Shannon"; "Scott"; "Knuth"; "Dijkstra";
     "Allen"; "Hopper"; "Lamarr"; "Sutherland"; "McCarthy"; "Jones"; "Lamport";
     "Hamilton"; "Wirth"; "Dahl"; "Naur"; "Perlman"; "Milner"; "Goldwasser";
     "Berners-Lee"; "Franklin"; "Cerf"; "Diffie"; "Leroy"; "Matsumoto"; "Manna";
     "Codd"; "Gray"; "Stonebraker"; "Selinger"; "Garcia-Molina"; "Abiteboul";
     "Vardi"; "Rivest"; "Yao"; "Lampson"; "Hoare"; "Nygaard" |]

let title_words =
  [| "Efficient"; "Incremental"; "Scalable"; "Declarative"; "Adaptive";
     "Distributed"; "Optimal"; "Parallel"; "Semantic"; "Streaming";
     "Integrity"; "Checking"; "Validation"; "Indexing"; "Querying";
     "Optimization"; "Evaluation"; "Maintenance"; "Processing"; "Mining";
     "XML"; "Documents"; "Databases"; "Constraints"; "Views"; "Schemas";
     "Updates"; "Transactions"; "Workloads"; "Repositories"; "Fragments";
     "Patterns"; "Trees"; "Graphs"; "Queries"; "Joins" |]

let person rng =
  Prng.pick rng first_names ^ " " ^ Prng.pick rng last_names

let title rng =
  let n = Prng.range rng 3 7 in
  String.concat " " (List.init n (fun _ -> Prng.pick rng title_words))
