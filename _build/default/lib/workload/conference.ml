let pub_dtd =
  {|<!ELEMENT dblp (pub)*>
<!ELEMENT pub (title, aut+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT aut (name)>
<!ELEMENT name (#PCDATA)>|}

let rev_dtd =
  {|<!ELEMENT review (track)+>
<!ELEMENT track (name, rev+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT rev (name, sub+)>
<!ELEMENT sub (title, auts+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT auts (name)>|}

let schema () = Xic_core.Schema.create [ (pub_dtd, "dblp"); (rev_dtd, "review") ]

let conflict_source =
  "<- //rev[name/text() -> R]/sub/auts/name/text() -> A and (A = R or \
   //pub[aut/name/text() -> A and aut/name/text() -> R])"

let workload_source =
  "<- cntd{[R]; //track[rev/name/text() -> R]} > 3 and cntd{[R]; \
   //rev[name/text() -> R]/sub} > 10"

let track_load_source = "<- //rev -> Ir and cntd{; Ir/sub} > 4"

let conflict schema = Xic_core.Constr.make schema ~name:"conflict" conflict_source
let workload schema = Xic_core.Constr.make schema ~name:"workload" workload_source
let track_load schema = Xic_core.Constr.make schema ~name:"track_load" track_load_source

let submission_content =
  [ Xic_xupdate.Xupdate.Elem
      ( "sub",
        [],
        [ Xic_xupdate.Xupdate.Elem ("title", [], [ Xic_xupdate.Xupdate.Text "%t" ]);
          Xic_xupdate.Xupdate.Elem
            ( "auts",
              [],
              [ Xic_xupdate.Xupdate.Elem
                  ("name", [], [ Xic_xupdate.Xupdate.Text "%n" ])
              ] );
        ] )
  ]

let submission_pattern schema =
  Xic_core.Pattern.make schema ~name:"insert_submission"
    ~op:Xic_xupdate.Xupdate.Insert_after ~anchor_type:"sub"
    ~content:submission_content

let insert_submission ~select ~title ~author =
  [ { Xic_xupdate.Xupdate.op = Xic_xupdate.Xupdate.Insert_after;
      select = Xic_xpath.Parser.parse select;
      content =
        [ Xic_xupdate.Xupdate.Elem
            ( "sub",
              [],
              [ Xic_xupdate.Xupdate.Elem
                  ("title", [], [ Xic_xupdate.Xupdate.Text title ]);
                Xic_xupdate.Xupdate.Elem
                  ( "auts",
                    [],
                    [ Xic_xupdate.Xupdate.Elem
                        ("name", [], [ Xic_xupdate.Xupdate.Text author ])
                    ] );
              ] )
        ];
    }
  ]
