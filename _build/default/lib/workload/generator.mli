(** Deterministic generator of DBLP-like conference datasets at a target
    size (the paper remapped the real DBLP repository into the running
    example's schema; we synthesize equivalent shapes — see DESIGN.md).

    The generated data is consistent with the three running-example
    constraints {e by construction}, while keeping violation opportunities
    one update away:
    {ul
    {- submission authors and reviewers are disjoint name populations, and
       reviewers co-author publications only with other reviewers, so no
       conflict of interest exists — but inserting a submission authored
       by a reviewer (or by a reviewer's co-author) creates one;}
    {- one designated {e busy} reviewer sits in four tracks with exactly
       ten submissions, so any further assignment violates the workload
       constraint;}
    {- every reviewer has at most four submissions per track, with the
       busy reviewer's first track at exactly four (one insertion breaks
       Example 7's bound).}} *)

type dataset = {
  pub_xml : string;
  rev_xml : string;
  (* hooks for update generation *)
  legal_select : string;
      (** XPath of an existing [sub] whose reviewer has slack (anchor for
          a harmless insert-after) *)
  legal_author : string;  (** a name occurring nowhere in the dataset *)
  conflict_select : string;
      (** anchor under the reviewer involved in the conflict pair *)
  conflict_reviewer : string;
  conflict_coauthor : string;
      (** co-author of [conflict_reviewer] in [pub.xml] *)
  busy_select : string;  (** anchor under the busy reviewer (first track) *)
  busy_reviewer : string;
  stats : stats;
}

and stats = {
  pubs : int;
  tracks : int;
  reviewers : int;   (** rev elements (per-track assignments) *)
  submissions : int;
  bytes : int;       (** total serialized size of both documents *)
}

val generate : ?seed:int -> target_bytes:int -> unit -> dataset
(** Sizes are approximate: the generator scales element counts from
    average element sizes to land near [target_bytes] for the two
    documents combined. *)
