lib/workload/names.ml: List Prng String
