lib/workload/conference.ml: Xic_core Xic_xpath Xic_xupdate
