lib/workload/conference.mli: Xic_core Xic_xupdate
