lib/workload/names.mli: Prng
