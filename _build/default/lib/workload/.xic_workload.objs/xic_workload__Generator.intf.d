lib/workload/generator.mli:
