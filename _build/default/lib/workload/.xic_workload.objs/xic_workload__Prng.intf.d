lib/workload/prng.mli:
