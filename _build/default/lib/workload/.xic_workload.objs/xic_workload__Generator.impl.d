lib/workload/generator.ml: Array Buffer Char Hashtbl List Names Printf Prng String
