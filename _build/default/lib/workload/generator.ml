type dataset = {
  pub_xml : string;
  rev_xml : string;
  legal_select : string;
  legal_author : string;
  conflict_select : string;
  conflict_reviewer : string;
  conflict_coauthor : string;
  busy_select : string;
  busy_reviewer : string;
  stats : stats;
}

and stats = {
  pubs : int;
  tracks : int;
  reviewers : int;
  submissions : int;
  bytes : int;
}

(* Distinguished actors (outside the random pools by construction). *)
let legal_reviewer_name = "Larry L. Legal"
let busy_reviewer_name = "Betty B. Busy"
let conflict_reviewer_name = "Carl C. Conflict"
let conflict_coauthor_name = "Nora N. Nearby"
let fresh_author_name = "Zz Fresh Newcomer"

let dedup_names make n =
  let seen = Hashtbl.create (2 * n) in
  List.init n (fun _ ->
      let rec try_name k =
        let base = make () in
        let name = if k = 0 then base else Printf.sprintf "%s %d" base k in
        if Hashtbl.mem seen name then try_name (k + 1)
        else begin
          Hashtbl.add seen name ();
          name
        end
      in
      try_name 0)
  |> Array.of_list

let generate ?(seed = 42) ~target_bytes () =
  let rng = Prng.create seed in
  (* Size budget: 40% publications, 60% reviews. *)
  let n_pubs = max 3 (target_bytes * 2 / 5 / 140) in
  let n_subs_target = max 12 (target_bytes * 3 / 5 / 155) in
  let n_tracks = max 4 (min 40 (n_subs_target / 400 + 4)) in
  let revs_per_track = max 3 (n_subs_target / (n_tracks * 3)) in
  (* Name pools: reviewers get a middle initial, keeping the populations
     disjoint (consistency by construction, see the .mli). *)
  let authors =
    dedup_names (fun () -> Names.person rng) (max 10 (n_pubs / 2))
  in
  let reviewers =
    dedup_names
      (fun () ->
        Prng.pick rng Names.first_names
        ^ Printf.sprintf " %c. " (Char.chr (Char.code 'A' + Prng.int rng 26))
        ^ Prng.pick rng Names.last_names)
      (max 8 (n_tracks * revs_per_track / 2))
  in
  (* Each pooled reviewer may serve in at most 3 tracks. *)
  let allowed_tracks = Array.make (Array.length reviewers) [] in
  Array.iteri
    (fun i _ ->
      let t0 = Prng.int rng n_tracks in
      allowed_tracks.(i) <-
        List.sort_uniq compare
          [ t0; (t0 + 1) mod n_tracks; (t0 + 2) mod n_tracks ])
    reviewers;
  let n_reviewers = ref 0 and n_subs = ref 0 in

  (* ---- rev.xml ------------------------------------------------- *)
  let rb = Buffer.create (target_bytes * 3 / 5 + 1024) in
  let add = Buffer.add_string rb in
  let emit_sub title author_names =
    incr n_subs;
    add "<sub><title>";
    add title;
    add "</title>";
    List.iter
      (fun a ->
        add "<auts><name>";
        add a;
        add "</name></auts>")
      author_names;
    add "</sub>"
  in
  let emit_rev name n_subs_here =
    incr n_reviewers;
    add "<rev><name>";
    add name;
    add "</name>";
    for _ = 1 to n_subs_here do
      let n_auts = Prng.range rng 1 3 in
      emit_sub (Names.title rng)
        (List.init n_auts (fun _ -> Prng.pick rng authors))
    done;
    add "</rev>"
  in
  add "<review>";
  for t = 0 to n_tracks - 1 do
    add "<track><name>";
    add (Printf.sprintf "Track %d" (t + 1));
    add "</name>";
    if t = 0 then begin
      (* Fixed layout in track 1: rev[1] legal slack, rev[2] busy (4 of
         her 10 submissions), rev[3] the conflict reviewer. *)
      emit_rev legal_reviewer_name 2;
      emit_rev busy_reviewer_name 4;
      emit_rev conflict_reviewer_name 2
    end
    else if t >= 1 && t <= 3 then
      (* The busy reviewer's other tracks: 2 submissions each (total 10). *)
      emit_rev busy_reviewer_name 2;
    (* Random reviewers allowed in this track, distinct within it. *)
    let used = Hashtbl.create 8 in
    let candidates =
      Array.to_list
        (Array.mapi (fun i n -> (i, n)) reviewers)
      |> List.filter (fun (i, _) -> List.mem t allowed_tracks.(i))
    in
    let candidates = Array.of_list candidates in
    let n_here = min (Array.length candidates) revs_per_track in
    let filled = ref 0 and attempts = ref 0 in
    while !filled < n_here && !attempts < 20 * n_here do
      incr attempts;
      let i, name = Prng.pick rng candidates in
      if not (Hashtbl.mem used i) then begin
        Hashtbl.add used i ();
        emit_rev name (Prng.range rng 1 4);
        incr filled
      end
    done;
    add "</track>"
  done;
  add "</review>";

  (* ---- pub.xml ------------------------------------------------- *)
  let pb = Buffer.create (target_bytes * 2 / 5 + 1024) in
  let addp = Buffer.add_string pb in
  let emit_pub title author_names =
    addp "<pub><title>";
    addp title;
    addp "</title>";
    List.iter
      (fun a ->
        addp "<aut><name>";
        addp a;
        addp "</name></aut>")
      author_names;
    addp "</pub>"
  in
  addp "<dblp>";
  (* The conflict pair's joint publication. *)
  emit_pub "Joint Work on Integrity" [ conflict_reviewer_name; conflict_coauthor_name ];
  for _ = 1 to n_pubs - 1 do
    if Prng.int rng 20 = 0 && Array.length reviewers >= 2 then begin
      (* Reviewer-only collaborations (~5%). *)
      let a = Prng.pick rng reviewers and b = Prng.pick rng reviewers in
      emit_pub (Names.title rng) (if a = b then [ a ] else [ a; b ])
    end
    else begin
      let n_auts = Prng.range rng 1 4 in
      emit_pub (Names.title rng) (List.init n_auts (fun _ -> Prng.pick rng authors))
    end
  done;
  addp "</dblp>";

  let pub_xml = Buffer.contents pb and rev_xml = Buffer.contents rb in
  {
    pub_xml;
    rev_xml;
    legal_select = "/review/track[1]/rev[1]/sub[1]";
    legal_author = fresh_author_name;
    conflict_select = "/review/track[1]/rev[3]/sub[1]";
    conflict_reviewer = conflict_reviewer_name;
    conflict_coauthor = conflict_coauthor_name;
    busy_select = "/review/track[1]/rev[2]/sub[1]";
    busy_reviewer = busy_reviewer_name;
    stats =
      {
        pubs = n_pubs;
        tracks = n_tracks;
        reviewers = !n_reviewers;
        submissions = !n_subs;
        bytes = String.length pub_xml + String.length rev_xml;
      };
  }
