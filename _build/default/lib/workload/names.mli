(** Name and title-word pools for the DBLP-like synthetic generator. *)

val first_names : string array
val last_names : string array
val title_words : string array

val person : Prng.t -> string
(** A random ["First Last"] combination. *)

val title : Prng.t -> string
(** A random 3–7 word title. *)
