(** The [Optimize] transformation: sound rewrite rules that reduce denials
    in size and number and instantiate them as much as possible, under a
    set of trusted hypotheses Δ (Section 5 of the paper, after [16]).

    Rules applied to a fixpoint:
    {ul
    {- {b normalization}: ground comparisons are evaluated (a denial with
       a false literal is dropped; true literals are erased), equalities
       involving a variable are inlined by substitution, duplicate
       literals are removed, count aggregates with trivially true/false
       integer bounds are resolved;}
    {- {b subsumption}: a denial implied by a hypothesis or by another
       denial of the set (via {!Xic_datalog.Subsume}) is removed;}
    {- {b variant elimination}: denials equal up to renaming are kept
       once.}} *)

val normalize_denial : Xic_datalog.Term.denial -> Xic_datalog.Term.denial option
(** [None] when the denial is trivially satisfied (a literal is
    unsatisfiable). *)

val optimize :
  hypotheses:Xic_datalog.Term.denial list ->
  Xic_datalog.Term.denial list ->
  Xic_datalog.Term.denial list
