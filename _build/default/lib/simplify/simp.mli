(** The complete simplification procedure
    [SimpᵁΔ(Γ) = Optimize{Δ∪Γ}(Afterᵁ(Γ))] (Definition 3, Theorem 1).

    Given a database consistent with [Γ] and the extra hypotheses [Δ], the
    result holds in the present state iff [Γ] holds after executing the
    insertion [U].  The result is as instantiated as possible, so it is
    typically far cheaper to evaluate than [Γ]. *)

type update = Xic_datalog.Term.atom list

val simp :
  ?hypotheses:Xic_datalog.Term.denial list ->
  ?deletions:update ->
  update:update ->
  Xic_datalog.Term.denial list ->
  Xic_datalog.Term.denial list
(** [update] lists the insertions and [deletions] (default empty) the
    removals of the transaction.
    @raise After.Unsupported on update/constraint combinations outside the
    supported fragment (see {!After}). *)

val freshness_hypotheses :
  fresh:string list ->
  children:(string -> (string * int) list) ->
  arity:(string -> int) ->
  update ->
  Xic_datalog.Term.denial list
(** The hypotheses expressing that the parameters [fresh] are {e new} node
    identifiers (the paper's Δ in Example 6): for an addition [p(%k, …)]
    with [%k] fresh, no existing [p] tuple has id [%k] and no existing
    tuple of a child relation of [p] (as listed by [children], with
    arities) has [%k] as its parent.  [arity] gives the arity of [p]
    itself. *)
