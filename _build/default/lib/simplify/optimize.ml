module T = Xic_datalog.Term
module Subst = Xic_datalog.Subst
module Subsume = Xic_datalog.Subsume

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* Ground/trivial comparison evaluation: Some true / Some false when
   decidable, None otherwise.  Identical terms (including parameters,
   which denote fixed values) decide reflexive operators. *)
let decide_cmp op t1 t2 =
  match (t1, t2) with
  | T.Const c1, T.Const c2 -> Some (T.eval_cmp op c1 c2)
  | _ when t1 = t2 ->
    (match op with
     | T.Eq | T.Le | T.Ge -> Some true
     | T.Neq | T.Lt | T.Gt -> Some false)
  | _ -> None

(* Trivial count-aggregate bounds: a count is always >= 0. *)
let decide_agg (g : T.agg) =
  match (g.T.op, g.T.bound) with
  | (T.Cnt | T.CntD), T.Const (T.Int k) ->
    (match g.T.acmp with
     | T.Ge when k <= 0 -> Some true
     | T.Gt when k < 0 -> Some true
     | T.Lt when k <= 0 -> Some false
     | T.Le when k < 0 -> Some false
     | _ -> None)
  | _ -> None

exception Dropped

(* One pass: evaluate decidable literals; find one inlinable equality. *)
let rec normalize_body body =
  (* Phase 1: decide literals. *)
  let body =
    List.filter
      (fun l ->
        match l with
        | T.Cmp (op, t1, t2) ->
          (match decide_cmp op t1 t2 with
           | Some true -> false
           | Some false -> raise Dropped
           | None -> true)
        | T.Agg g ->
          (match decide_agg g with
           | Some true -> false
           | Some false -> raise Dropped
           | None -> true)
        | T.Rel _ | T.Not _ -> true)
      body
  in
  (* Phase 2: inline one variable equality and recurse. *)
  let prefer_subst a t =
    (* Keep user-ish names: substitute the "more internal" side away. *)
    let internal v = String.length v > 0 && (v.[0] = '_' || String.contains v '_') in
    match t with
    | T.Var b when internal b && not (internal a) ->
      Subst.add b (T.Var a) Subst.empty
    | _ -> Subst.add a t Subst.empty
  in
  let rec find acc = function
    | [] -> None
    | T.Cmp (T.Eq, T.Var a, t) :: rest -> Some (List.rev_append acc rest, prefer_subst a t)
    | T.Cmp (T.Eq, t, T.Var a) :: rest -> Some (List.rev_append acc rest, prefer_subst a t)
    | l :: rest -> find (l :: acc) rest
  in
  match find [] body with
  | Some (body', s) -> normalize_body (List.map (Subst.apply_lit s) body')
  | None ->
    (* Phase 3: drop duplicate literals. *)
    let rec dedup seen = function
      | [] -> List.rev seen
      | l :: rest -> if List.mem l seen then dedup seen rest else dedup (l :: seen) rest
    in
    dedup [] body

(* Intra-denial atom pruning: a positive literal L is redundant when some
   other positive literal L' matches it under a substitution θ whose
   domain variables occur nowhere outside L — any witness for L' then
   also witnesses L. *)
let prune_redundant_atoms body =
  let redundant others l =
    match l with
    | T.Rel a ->
      let occurs_outside v =
        List.exists (fun l' -> List.mem v (T.lit_vars l')) others
      in
      List.exists
        (fun l' ->
          match l' with
          | T.Rel a' when l' != l ->
            (match Subsume.match_atom Subst.empty a a' with
             | Some theta ->
               List.for_all
                 (fun (v, t) -> t = T.Var v || not (occurs_outside v))
                 (Subst.bindings theta)
             | None -> false)
          | _ -> false)
        others
    | _ -> false
  in
  (* Sequential scan so that two mutually-redundant atoms are not both
     dropped. *)
  let rec go kept = function
    | [] -> List.rev kept
    | l :: rest ->
      let others = List.rev_append kept rest in
      if redundant others l then go kept rest else go (l :: kept) rest
  in
  go [] body

let normalize_denial (d : T.denial) =
  match normalize_body d.T.body with
  | body -> Some { d with T.body = prune_redundant_atoms body }
  | exception Dropped -> None

(* ------------------------------------------------------------------ *)
(* Subsumption-based reduction                                         *)
(* ------------------------------------------------------------------ *)

(* Freshness-based (dis)equality resolution: a hypothesis of the shape
   [:- p(…, %k, …)] with a single parameter argument says that no [p]
   tuple carries [%k] at that position.  A body atom [p(…, t, …)] then
   guarantees [t ≠ %k]: disequalities between [t] and [%k] are erased and
   equalities make the denial trivially satisfied. *)
let freshness_facts hypotheses =
  List.filter_map
    (fun (h : T.denial) ->
      match h.T.body with
      | [ T.Rel a ] ->
        let params =
          List.mapi (fun i t -> (i, t)) a.T.args
          |> List.filter_map (fun (i, t) ->
                 match t with T.Param p -> Some (i, p) | _ -> None)
        in
        let all_others_anon =
          List.for_all
            (fun t -> match t with T.Param _ -> true | t -> T.is_anon t)
            a.T.args
        in
        (match (params, all_others_anon) with
         | [ (pos, p) ], true -> Some (a.T.pred, pos, p)
         | _ -> None)
      | _ -> None)
    hypotheses

exception Trivial

let apply_freshness facts (d : T.denial) =
  (* terms provably different from each fresh parameter *)
  let distinct = Hashtbl.create 8 in
  List.iter
    (fun l ->
      match l with
      | T.Rel a ->
        List.iter
          (fun (pred, pos, p) ->
            if a.T.pred = pred then
              match List.nth_opt a.T.args pos with
              | Some t -> Hashtbl.replace distinct (t, p) ()
              | None -> ())
          facts
      | _ -> ())
    d.T.body;
  let provably_distinct t1 t2 =
    match (t1, t2) with
    | t, T.Param p | T.Param p, t -> Hashtbl.mem distinct (t, p)
    | _ -> false
  in
  match
    List.filter
      (fun l ->
        match l with
        | T.Cmp (T.Neq, t1, t2) when provably_distinct t1 t2 -> false
        | T.Cmp (T.Eq, t1, t2) when provably_distinct t1 t2 -> raise Trivial
        | _ -> true)
      d.T.body
  with
  | body -> Some { d with T.body = body }
  | exception Trivial -> None

let optimize ~hypotheses denials =
  let facts = freshness_facts hypotheses in
  (* normalize first: equality inlining exposes the [t ≠ %k] forms the
     freshness pass discharges; then normalize again. *)
  let normalized =
    List.filter_map normalize_denial denials
    |> List.filter_map (apply_freshness facts)
    |> List.filter_map normalize_denial
  in
  (* Remove denials implied by a hypothesis. *)
  let survivors =
    List.filter
      (fun d -> not (Subsume.implied_by hypotheses d))
      normalized
  in
  (* Remove denials implied by an earlier survivor or a strictly smaller
     later one; variants collapse to their first occurrence. *)
  let rec reduce kept = function
    | [] -> List.rev kept
    | d :: rest ->
      let implied =
        List.exists (fun k -> Subsume.subsumes (Subst.rename_denial k) d) kept
        || List.exists (fun r -> Subsume.subsumes (Subst.rename_denial r) d) rest
      in
      if implied then reduce kept rest else reduce (d :: kept) rest
  in
  reduce [] survivors
