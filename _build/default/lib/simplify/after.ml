module T = Xic_datalog.Term

type update = T.atom list

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let additions_on update pred =
  List.filter (fun (a : T.atom) -> a.T.pred = pred) update

(* The per-position equalities asserting that the literal's arguments
   match an addition's.  Statically equal pairs produce no condition;
   statically different constants make the match impossible. *)
let match_conditions (args : T.term list) (addition : T.atom) =
  if List.length args <> List.length addition.T.args then
    unsupported "arity mismatch between constraint and update on %s" addition.T.pred;
  let rec go acc args adds =
    match (args, adds) with
    | [], [] -> Some (List.rev acc)
    | t :: args', u :: adds' ->
      if t = u then go acc args' adds'
      else begin
        match (t, u) with
        | T.Const c1, T.Const c2 when c1 <> c2 -> None
        | _ -> go ((t, u) :: acc) args' adds'
      end
    | _ -> None
  in
  go [] args addition.T.args

(* One alternative for a literal: the literals that replace it. *)
type alt = T.lit list

(* Alternatives for a positive literal under the update. *)
let positive_alts update (a : T.atom) : alt list =
  let keep = [ T.Rel a ] in
  let matches =
    List.filter_map
      (fun add ->
        match match_conditions a.T.args add with
        | Some conds -> Some (List.map (fun (t, u) -> T.Cmp (T.Eq, t, u)) conds)
        | None -> None)
      (additions_on update a.T.pred)
  in
  keep :: matches

(* Alternatives for a negative literal ¬p(t̄): the negation stays, and for
   every addition at least one argument must provably differ.  Argument
   positions holding existential locals of the negation (anonymous
   variables occurring only there) always match — ∃x. x = a is true — so
   they contribute no disequality branch; if no other position remains,
   the addition certainly satisfies p(t̄) and the denial becomes trivially
   satisfied after the update. *)
let negative_alts update body (a : T.atom) : alt list =
  let this = T.Not a in
  let local = function
    | T.Var v ->
      String.length v > 0 && v.[0] = '_'
      && not
           (List.exists
              (fun l -> l <> this && List.mem v (T.lit_vars l))
              body)
    | _ -> false
  in
  let per_addition =
    List.map
      (fun add ->
        match match_conditions a.T.args add with
        | None -> [ [] ]  (* statically cannot match: no condition *)
        | Some conds ->
          (match List.filter (fun (t, _) -> not (local t)) conds with
           | [] -> []  (* certain match: the denial is dropped *)
           | conds -> List.map (fun (t, u) -> [ T.Cmp (T.Neq, t, u) ]) conds))
      (additions_on update a.T.pred)
  in
  (* Cross product of the per-addition disequality choices, all combined
     with the kept negative literal. *)
  List.fold_left
    (fun alts choices ->
      List.concat_map (fun alt -> List.map (fun c -> alt @ c) choices) alts)
    [ [ T.Not a ] ] per_addition

(* Alternatives for a count aggregate.  Touched tuples (additions or
   deletions) are folded one at a time; each yields a "joins the group"
   branch with the bound shifted by [-shift] (an addition grows the
   post-state count, so the present-state bound drops; a deletion raises
   it) and one "provably does not join" branch per match condition. *)
let agg_alts ~shift update (g : T.agg) : alt list =
  let affected =
    List.exists (fun a -> additions_on update a.T.pred <> []) g.T.atoms
  in
  if not affected then [ [ T.Agg g ] ]
  else begin
    (match g.T.op with
     | T.Cnt | T.CntD -> ()
     | op ->
       unsupported "After on %s aggregates is not supported" (T.agg_op_str op));
    let dec_bound g =
      match g.T.bound with
      | T.Const (T.Int k) -> { g with T.bound = T.Const (T.Int (k - shift)) }
      | b ->
        unsupported "count aggregate with non-integer bound %s" (T.term_str b)
    in
    (* An addition joins the pattern through atom [idx] iff (i) its values
       agree with the atom's non-local arguments (equalities on group
       variables/constants) and (ii) the rest of the conjunctive pattern,
       with the atom's local variables instantiated by the addition's
       values, still has a witness (the remaining atoms become ordinary
       body literals of the match branch).  Local variables here are the
       '_'-anonymous ones: by construction of the XPathLog compiler,
       named variables inside aggregates are exactly the group
       variables. *)
    let branches_for_addition (g : T.agg) (idx : int) (add : T.atom) : (T.lit list * T.agg) list =
      let atom = List.nth g.T.atoms idx in
      let is_local = function
        | T.Var v -> String.length v > 0 && v.[0] = '_'
        | _ -> false
      in
      match match_conditions atom.T.args add with
      | None -> [ ([], g) ]  (* cannot match: aggregate unchanged *)
      | Some all_conds ->
        let local_conds, conds =
          List.partition (fun (t, _) -> is_local t) all_conds
        in
        (* Instantiate the pattern's local variables with the addition's
           values and collect the remaining atoms as match witnesses. *)
        let sigma =
          List.fold_left
            (fun s (t, u) ->
              match t with
              | T.Var v -> Xic_datalog.Subst.add v u s
              | _ -> s)
            Xic_datalog.Subst.empty local_conds
        in
        let remaining =
          List.filteri (fun i _ -> i <> idx) g.T.atoms
          |> List.map (Xic_datalog.Subst.apply_atom sigma)
        in
        (* The witness copies are separate existentials: rename their
           remaining local variables apart from the aggregate's own. *)
        let rename_locals (a : T.atom) =
          let table = Hashtbl.create 4 in
          { a with
            T.args =
              List.map
                (fun t ->
                  match t with
                  | T.Var v when is_local t ->
                    (match Hashtbl.find_opt table v with
                     | Some v' -> T.Var v'
                     | None ->
                       let v' = T.fresh_var ~base:"_W" () in
                       Hashtbl.add table v v';
                       T.Var v')
                  | t -> t)
                a.T.args;
          }
        in
        let remaining = List.map rename_locals remaining in
        (* A local variable shared between two remaining atoms would make
           the no-match branches (per-atom negations) unsound:
           ¬(A ∧ B) with a shared existential is not ¬A ∨ ¬B. *)
        let local_counts = Hashtbl.create 8 in
        List.iter
          (fun (a : T.atom) ->
            List.sort_uniq compare (T.atom_vars a)
            |> List.iter (fun v ->
                   if is_local (T.Var v) then
                     Hashtbl.replace local_counts v
                       (1 + Option.value ~default:0 (Hashtbl.find_opt local_counts v))))
          remaining;
        if Hashtbl.fold (fun _ c acc -> acc || c > 1) local_counts false then
          unsupported
            "update joins aggregate %s through an atom whose siblings share \
             local variables"
            (T.lit_str (T.Agg g));
        let match_branch =
          ( List.map (fun (t, u) -> T.Cmp (T.Eq, t, u)) conds
            @ List.map (fun a -> T.Rel a) remaining,
            dec_bound g )
        in
        let nomatch_branches =
          List.map (fun (t, u) -> ([ T.Cmp (T.Neq, t, u) ], g)) conds
          @ List.map (fun a -> ([ T.Not a ], g)) remaining
        in
        if conds = [] && remaining = [] then [ ([], dec_bound g) ]
        else match_branch :: nomatch_branches
    in
    let all_pairs =
      List.concat
        (List.mapi
           (fun idx atom ->
             List.map (fun add -> (idx, add)) (additions_on update atom.T.pred))
           g.T.atoms)
    in
    let states =
      List.fold_left
        (fun states (idx, add) ->
          List.concat_map
            (fun (conds, g) ->
              List.map
                (fun (conds', g') -> (conds @ conds', g'))
                (branches_for_addition g idx add))
            states)
        [ ([], g) ] all_pairs
    in
    List.map (fun (conds, g) -> conds @ [ T.Agg g ]) states
  end

(* ------------------------------------------------------------------ *)
(* Deletions (set semantics)                                           *)
(* ------------------------------------------------------------------ *)

(* A positive literal survives a deletion transaction iff it differs from
   every deleted tuple in at least one position.  Unlike the negative-
   literal case for insertions, positions holding the literal's own
   (anonymous) variables stay: they are bound by the chosen tuple when the
   disequality is evaluated. *)
let del_positive_alts del (a : T.atom) : alt list =
  let per_deletion =
    List.map
      (fun dd ->
        match match_conditions a.T.args dd with
        | None -> [ [] ]  (* statically different: unaffected *)
        | Some [] -> []   (* statically identical: the tuple is gone *)
        | Some conds -> List.map (fun (t, u) -> [ T.Cmp (T.Neq, t, u) ]) conds)
      (additions_on del a.T.pred)
  in
  List.fold_left
    (fun alts choices ->
      List.concat_map (fun alt -> List.map (fun c -> alt @ c) choices) alts)
    [ [ T.Rel a ] ] per_deletion

(* ¬p(t̄) holds after deletions iff it held before or the (unique, by set
   semantics) matching tuple is among the deleted ones.  Sound only when
   t̄ is determined by the rest of the body: positions holding variables
   local to the negation would need a universal quantification. *)
let del_negative_alts del body (a : T.atom) : alt list =
  let this = T.Not a in
  List.iter
    (fun t ->
      match t with
      | T.Var v
        when not
               (List.exists
                  (fun l -> l <> this && List.mem v (T.lit_vars l))
                  body) ->
        unsupported
          "deletion against a negated literal with local variables: %s"
          (T.lit_str this)
      | _ -> ())
    a.T.args;
  let became_absent =
    List.filter_map
      (fun dd ->
        match match_conditions a.T.args dd with
        | None -> None
        | Some conds -> Some (List.map (fun (t, u) -> T.Cmp (T.Eq, t, u)) conds))
      (additions_on del a.T.pred)
  in
  [ T.Not a ] :: became_absent

let lit_alts update body = function
  | T.Rel a -> positive_alts update a
  | T.Not a -> negative_alts update body a
  | T.Cmp _ as l -> [ [ l ] ]
  | T.Agg g -> agg_alts ~shift:1 update g

let del_lit_alts del body = function
  | T.Rel a -> del_positive_alts del a
  | T.Not a -> del_negative_alts del body a
  | T.Cmp _ as l -> [ [ l ] ]
  | T.Agg g -> agg_alts ~shift:(-1) del g

let expand per_lit (d : T.denial) : T.denial list =
  let alts_per_lit = List.map (per_lit d.T.body) d.T.body in
  let bodies =
    List.fold_left
      (fun acc alts ->
        List.concat_map (fun body -> List.map (fun alt -> body @ alt) alts) acc)
      [ [] ] alts_per_lit
  in
  List.map (fun body -> { d with T.body = body }) bodies

let denial update (d : T.denial) : T.denial list =
  expand (fun body l -> lit_alts update body l) d

let denials update ds = List.concat_map (denial update) ds

let denial_mixed ~ins ~del (d : T.denial) : T.denial list =
  (* insertions first, then deletions on every resulting denial; the two
     transformations commute on disjoint transactions. *)
  expand (fun body l -> lit_alts ins body l) d
  |> List.concat_map (expand (fun body l -> del_lit_alts del body l))

let denials_mixed ~ins ~del ds = List.concat_map (denial_mixed ~ins ~del) ds
