(** The [After] transformation (Definition 2 of the paper, extended to
    negated literals and count aggregates).

    Given an insertion transaction [U] (ground atoms, possibly containing
    parameters) and a set of denials that must hold {e after} [U], [After]
    produces denials that hold in the {e present} state iff the originals
    hold after the update:

    {ul
    {- a positive literal [p(t̄)] becomes the disjunction
       [p(t̄) ∨ t̄=ā₁ ∨ …] over the additions [p(āᵢ)], expanded into one
       output denial per choice;}
    {- a negative literal [¬p(t̄)] becomes
       [¬p(t̄) ∧ ¬(t̄=ā₁) ∧ …], each [¬(t̄=āᵢ)] expanded into one output
       denial per differing argument position;}
    {- a count aggregate [cnt{…} ⋈ k] is case-split per matching
       addition: a branch where the addition joins the aggregate's group
       (bound [k−1]) and branches where it provably does not (bound [k]).
       For [cntd] this relies on the added tuple being distinct from all
       existing ones, which the freshness hypotheses of new node
       identifiers guarantee (see {!Simp.freshness_hypotheses}).}}

    @raise Unsupported for [sum]/[max]/[min] aggregates affected by the
    update, or count aggregates with a non-integer bound. *)

type update = Xic_datalog.Term.atom list

exception Unsupported of string

val denial :
  update -> Xic_datalog.Term.denial -> Xic_datalog.Term.denial list

val denials :
  update -> Xic_datalog.Term.denial list -> Xic_datalog.Term.denial list

(** {2 Deletions}

    The dual transformation for deletion transactions, under set
    semantics (guaranteed by the XML mapping, whose first column is a
    unique node id) and assuming {e effective} deletions — every deleted
    tuple is present in the current state, which holds by construction
    when the deletion mirrors the removal of existing XML nodes:

    {ul
    {- a positive literal [p(t̄)] additionally requires [t̄ ≠ āᵢ] for every
       deletion [p(āᵢ)] (one output denial per differing position);}
    {- a negative literal [¬p(t̄)] becomes [¬p(t̄) ∨ t̄ = āᵢ]; it must be
       ground w.r.t. the rest of the body ({!Unsupported} otherwise);}
    {- count aggregates case-split like insertions with the bound
       {e incremented} on the matching branch.}} *)

val denial_mixed :
  ins:update ->
  del:update ->
  Xic_datalog.Term.denial ->
  Xic_datalog.Term.denial list
(** Insertions and deletions in one transaction (assumed disjoint). *)

val denials_mixed :
  ins:update ->
  del:update ->
  Xic_datalog.Term.denial list ->
  Xic_datalog.Term.denial list
