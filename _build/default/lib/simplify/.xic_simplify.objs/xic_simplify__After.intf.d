lib/simplify/after.mli: Xic_datalog
