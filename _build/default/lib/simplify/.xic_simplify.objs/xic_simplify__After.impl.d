lib/simplify/after.ml: Hashtbl List Option Printf String Xic_datalog
