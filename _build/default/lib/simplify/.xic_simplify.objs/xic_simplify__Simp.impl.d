lib/simplify/simp.ml: After List Optimize Xic_datalog
