lib/simplify/simp.mli: Xic_datalog
