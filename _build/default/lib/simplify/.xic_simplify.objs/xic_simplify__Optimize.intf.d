lib/simplify/optimize.mli: Xic_datalog
