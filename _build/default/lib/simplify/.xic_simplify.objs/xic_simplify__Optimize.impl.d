lib/simplify/optimize.ml: Hashtbl List String Xic_datalog
