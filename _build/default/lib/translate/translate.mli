(** Translation of Datalog denials back into XQuery boolean expressions
    (Section 6 of the paper).

    The generated expression returns [true] iff the denial's body is
    satisfiable in the document, i.e. iff integrity is {e violated}.

    Shape: without aggregates, a quantified expression
    [some $i1 in //p, $i2 in $i1/q, … satisfies cond]; with aggregates,
    [exists(for … let $a := path where cond return <idle/>)].

    Parameters of simplified denials become [%name] holes in the query —
    node-valued in id/parent positions (bound to the target node at check
    time), data-valued in column positions — mirroring the paper's
    [%r]/[%t]/[%n] placeholders.

    The paper's post-generation optimizations are applied: definitions of
    unused non-node variables are never emitted, and a variable used
    exactly once is inlined into its use site (so
    [$Is in $Ir/sub, $F in $Is/auts] collapses to [$F in $Ir/sub/auts]). *)

exception Untranslatable of string

val denial :
  Xic_relmap.Mapping.t -> Xic_datalog.Term.denial -> Xic_xquery.Ast.expr
(** @raise Untranslatable for denials outside the supported fragment
    (non-linear aggregate patterns, unsafe constructs). *)

val denials :
  Xic_relmap.Mapping.t -> Xic_datalog.Term.denial list -> Xic_xquery.Ast.expr
(** Disjunction of the individual translations ([false] for the empty
    set): true iff any denial is violated. *)
