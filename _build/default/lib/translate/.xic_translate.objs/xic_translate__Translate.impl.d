lib/translate/translate.ml: Hashtbl List Option Printf Xic_datalog Xic_relmap Xic_xpath Xic_xquery
