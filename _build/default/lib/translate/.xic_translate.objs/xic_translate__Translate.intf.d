lib/translate/translate.mli: Xic_datalog Xic_relmap Xic_xquery
