  $ cat > pub.dtd <<'XEOF'
  > <!ELEMENT dblp (pub)*>
  > <!ELEMENT pub (title, aut+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT aut (name)>
  > <!ELEMENT name (#PCDATA)>
  > XEOF
  $ cat > rev.dtd <<'XEOF'
  > <!ELEMENT review (track)+>
  > <!ELEMENT track (name, rev+)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT rev (name, sub+)>
  > <!ELEMENT sub (title, auts+)>
  > <!ELEMENT title (#PCDATA)>
  > <!ELEMENT auts (name)>
  > XEOF
  $ xicheck schema --dtd pub.dtd=dblp --dtd rev.dtd=review
  $ cat > constraints.xpl <<'XEOF'
  > conflict: <- //rev[name/text() -> R]/sub/auts/name/text() -> A and (A = R or //pub[aut/name/text() -> A and aut/name/text() -> R])
  > XEOF
  $ xicheck compile --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl | grep -A3 datalog:
  $ cat > pub.xml <<'XEOF'
  > <dblp><pub><title>Joint</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub></dblp>
  > XEOF
  $ cat > rev.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Carl</name><sub><title>S1</title><auts><name>Ann</name></auts></sub></rev></track></review>
  > XEOF
  $ xicheck validate --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml
  $ xicheck check --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  $ xicheck check --datalog --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl
  $ cat > pattern.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="//sub">
  >     <xupdate:element name="sub"><title>%t</title><auts><name>%n</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck simplify --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl --pattern pattern.xml | head -8
  $ cat > bad.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Late</title><auts><name>Nora</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck guard --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update bad.xml
  $ cat > good.xml <<'XEOF'
  > <xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
  >   <xupdate:insert-after select="/review/track[1]/rev[1]/sub[1]">
  >     <xupdate:element name="sub"><title>Fresh</title><auts><name>Zoe</name></auts></xupdate:element>
  >   </xupdate:insert-after>
  > </xupdate:modifications>
  > XEOF
  $ xicheck guard --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc rev.xml --constraints constraints.xpl --pattern pattern.xml --update good.xml --output out
  $ xicheck validate --dtd pub.dtd=dblp --dtd rev.dtd=review --doc out.0.xml --doc out.1.xml
  $ cat > broken.xml <<'XEOF'
  > <review><track><name>DB</name><rev><name>Nora</name><sub><title>Self</title><auts><name>Nora</name></auts></sub></rev></track></review>
  > XEOF
  $ xicheck check --explain --dtd pub.dtd=dblp --dtd rev.dtd=review --doc pub.xml --doc broken.xml --constraints constraints.xpl | head -4
  $ xicheck publish --dtd pub.dtd=dblp --dtd rev.dtd=review --constraints constraints.xpl --pattern pattern.xml --output design.bundle
  $ head -1 design.bundle
  $ grep -c '^checks' design.bundle
