open Xic_core
module Conf = Xic_workload.Conference
module Gen = Xic_workload.Generator
module Prng = Xic_workload.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    checkb "same stream" true (Prng.next a = Prng.next b)
  done

let test_prng_bounds () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    checkb "in range" true (x >= 0 && x < 10);
    let y = Prng.range r 5 8 in
    checkb "range" true (y >= 5 && y <= 8)
  done

let test_prng_spread () =
  let r = Prng.create 3 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (Prng.int r 10) ()
  done;
  checkb "covers most values" true (Hashtbl.length seen >= 8)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let dataset = lazy (Gen.generate ~seed:11 ~target_bytes:120_000 ())

let build_repo ds =
  let s = Conf.schema () in
  let repo = Repository.create s in
  Repository.load_document repo ds.Gen.pub_xml;
  Repository.load_document repo ds.Gen.rev_xml;
  Repository.add_constraint repo (Conf.conflict s);
  Repository.add_constraint repo (Conf.workload s);
  Repository.add_constraint repo (Conf.track_load s);
  Repository.register_pattern repo (Conf.submission_pattern s);
  repo

let test_generator_deterministic () =
  let a = Gen.generate ~seed:5 ~target_bytes:50_000 () in
  let b = Gen.generate ~seed:5 ~target_bytes:50_000 () in
  checkb "same documents" true (a.Gen.pub_xml = b.Gen.pub_xml && a.Gen.rev_xml = b.Gen.rev_xml);
  let c = Gen.generate ~seed:6 ~target_bytes:50_000 () in
  checkb "seed changes output" true (a.Gen.rev_xml <> c.Gen.rev_xml)

let test_generator_size () =
  let ds = Lazy.force dataset in
  let b = ds.Gen.stats.Gen.bytes in
  checkb (Printf.sprintf "size within 2x of target (%d)" b) true
    (b > 60_000 && b < 240_000)

let test_generator_valid () =
  (* loading validates against the DTDs *)
  let _repo = build_repo (Lazy.force dataset) in
  ()

let test_generator_consistent () =
  let repo = build_repo (Lazy.force dataset) in
  Alcotest.(check (list string)) "consistent by construction" []
    (Repository.check_full_datalog repo)

let test_hooks_present () =
  let ds = Lazy.force dataset in
  let repo = build_repo ds in
  let doc = Repository.doc repo in
  let selects =
    [ ds.Gen.legal_select; ds.Gen.conflict_select; ds.Gen.busy_select ]
  in
  List.iter
    (fun sel ->
      let ns = Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse sel) in
      checki (sel ^ " resolves to a sub") 1 (List.length ns);
      checkb "is a sub" true
        (Xic_xml.Doc.name doc (List.hd ns) = "sub"))
    selects

let test_busy_reviewer_on_threshold () =
  let ds = Lazy.force dataset in
  let repo = build_repo ds in
  let doc = Repository.doc repo in
  let q =
    Printf.sprintf
      "count(//rev[name/text() = \"%s\"]/sub) = 10 and count-distinct(//track[rev[name/text() = \"%s\"]]/name/text()) = 4"
      ds.Gen.busy_reviewer ds.Gen.busy_reviewer
  in
  checkb "10 subs across 4 tracks" true
    (Xic_xquery.Eval.eval_bool doc (Xic_xquery.Parser.parse q))

let test_update_hooks_behave () =
  let ds = Lazy.force dataset in
  let repo = build_repo ds in
  let outcome u = Repository.guarded_update repo u in
  (match
     outcome
       (Conf.insert_submission ~select:ds.Gen.legal_select ~title:"ok"
          ~author:ds.Gen.legal_author)
   with
   | Repository.Applied `Optimized -> ()
   | _ -> Alcotest.fail "legal hook must be applied");
  (match
     outcome
       (Conf.insert_submission ~select:ds.Gen.conflict_select ~title:"self"
          ~author:ds.Gen.conflict_reviewer)
   with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "self-review hook must be rejected");
  (match
     outcome
       (Conf.insert_submission ~select:ds.Gen.conflict_select ~title:"coauthor"
          ~author:ds.Gen.conflict_coauthor)
   with
   | Repository.Rejected_early "conflict" -> ()
   | _ -> Alcotest.fail "co-author hook must be rejected");
  (match
     outcome
       (Conf.insert_submission ~select:ds.Gen.busy_select ~title:"eleventh"
          ~author:ds.Gen.legal_author)
   with
   | Repository.Rejected_early name ->
     checkb "workload or track_load" true (name = "workload" || name = "track_load")
   | _ -> Alcotest.fail "busy hook must be rejected")

let test_scaling_counts () =
  let small = Gen.generate ~seed:2 ~target_bytes:30_000 () in
  let large = Gen.generate ~seed:2 ~target_bytes:300_000 () in
  checkb "more subs at larger size" true
    (large.Gen.stats.Gen.submissions > 3 * small.Gen.stats.Gen.submissions);
  checkb "more pubs at larger size" true
    (large.Gen.stats.Gen.pubs > 3 * small.Gen.stats.Gen.pubs)

(* ------------------------------------------------------------------ *)
(* Randomized end-to-end agreement                                     *)
(* ------------------------------------------------------------------ *)

(* Drive a repository with a random mix of legal and illegal submissions
   and verify, at every step, that (i) the XQuery and Datalog check paths
   agree, (ii) optimized pre-check decisions match post-hoc full checks,
   and (iii) the repository never ends in an inconsistent state. *)
let test_random_update_storm () =
  let ds = Gen.generate ~seed:77 ~target_bytes:60_000 () in
  let repo = build_repo ds in
  let rng = Prng.create 99 in
  let doc = Repository.doc repo in
  let subs () =
    Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//sub")
  in
  let applied = ref 0 and rejected = ref 0 in
  for step = 1 to 40 do
    let all = Array.of_list (subs ()) in
    let anchor = Prng.pick rng all in
    let select = Xic_relmap.Shred.path_to_node doc anchor in
    let author =
      match Prng.int rng 4 with
      | 0 -> ds.Gen.conflict_reviewer   (* likely illegal at that anchor *)
      | 1 -> ds.Gen.conflict_coauthor
      | _ -> Printf.sprintf "Random Person %d" step
    in
    let u =
      Conf.insert_submission ~select ~title:(Printf.sprintf "Storm %d" step)
        ~author
    in
    (match Repository.match_update repo u with
     | None -> Alcotest.fail "storm update must match the pattern"
     | Some (p, valuation) ->
       let opt_xq = Repository.check_optimized repo p valuation <> [] in
       let opt_dl = Repository.check_optimized_datalog repo p valuation <> [] in
       checkb (Printf.sprintf "step %d: xquery/datalog agree" step) opt_xq opt_dl;
       (* ground truth: apply, full check, roll back *)
       let undo = Repository.apply_unchecked repo u in
       let full = Repository.check_full repo <> [] in
       Repository.rollback repo undo;
       checkb (Printf.sprintf "step %d: optimized = full" step) full opt_xq;
       (* now run the real guarded update *)
       (match Repository.guarded_update repo u with
        | Repository.Applied _ -> incr applied
        | Repository.Rejected_early _ | Repository.Rolled_back _ -> incr rejected))
  done;
  checkb "some applied" true (!applied > 0);
  checkb "some rejected" true (!rejected > 0);
  Alcotest.(check (list string)) "final state consistent" []
    (Repository.check_full repo);
  Alcotest.(check (list string)) "mirror agrees" []
    (Repository.check_full_datalog repo)

let test_removal_storm () =
  (* random removals of auts under a keep-one-author constraint *)
  let s = Conf.schema () in
  let repo = Repository.create s in
  let ds = Gen.generate ~seed:5 ~target_bytes:30_000 () in
  Repository.load_document repo ds.Gen.pub_xml;
  Repository.load_document repo ds.Gen.rev_xml;
  Repository.add_constraint repo
    (Constr.make s ~name:"keep_author" "<- //sub -> S and cnt{; S/auts} < 1");
  Repository.register_pattern repo
    (Pattern.make s ~name:"drop_author" ~op:Xic_xupdate.Xupdate.Remove
       ~anchor_type:"auts" ~content:[]);
  let rng = Prng.create 3 in
  let doc = Repository.doc repo in
  for step = 1 to 30 do
    let all =
      Array.of_list (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//auts"))
    in
    let target = Prng.pick rng all in
    let u =
      [ { Xic_xupdate.Xupdate.op = Xic_xupdate.Xupdate.Remove;
          select = Xic_xpath.Parser.parse (Xic_relmap.Shred.path_to_node doc target);
          content = [];
        } ]
    in
    match Repository.guarded_update repo u with
    | Repository.Applied _ | Repository.Rejected_early _ -> ()
    | Repository.Rolled_back _ ->
      Alcotest.fail (Printf.sprintf "step %d: removal must never need rollback" step)
  done;
  Alcotest.(check (list string)) "storm leaves a consistent state" []
    (Repository.check_full repo)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "spread" `Quick test_prng_spread;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "size scaling" `Quick test_generator_size;
          Alcotest.test_case "DTD valid" `Quick test_generator_valid;
          Alcotest.test_case "consistent" `Quick test_generator_consistent;
          Alcotest.test_case "hooks resolve" `Quick test_hooks_present;
          Alcotest.test_case "busy reviewer threshold" `Quick test_busy_reviewer_on_threshold;
          Alcotest.test_case "update hooks behave" `Quick test_update_hooks_behave;
          Alcotest.test_case "count scaling" `Quick test_scaling_counts;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "update storm" `Slow test_random_update_storm;
          Alcotest.test_case "removal storm" `Slow test_removal_storm;
        ] );
    ]
