open Xic_xml
module XP = Xic_xpath
module E = XP.Eval

let doc =
  (Xml_parser.parse_string
     {|<review>
        <track><name>DB</name>
          <rev><name>Goofy</name>
            <sub><title>T1</title><auts><name>Mickey</name></auts></sub>
            <sub><title>T2</title><auts><name>Donald</name><name>Daisy</name></auts></sub>
          </rev>
          <rev><name>Minnie</name>
            <sub><title>T3</title><auts><name>Mickey</name></auts></sub>
          </rev>
        </track>
        <track><name>IR</name>
          <rev><name>Goofy</name>
            <sub><title>T4</title><auts><name>Pluto</name></auts></sub>
          </rev>
        </track>
      </review>|})
    .Xml_parser.doc

let attr_doc =
  (Xml_parser.parse_string {|<r><item id="1" cat="a">x</item><item id="2" cat="b">y</item></r>|})
    .Xml_parser.doc

let eval ?(d = doc) ?env s = E.eval d ?env (XP.Parser.parse s)

let nodes ?(d = doc) ?env s =
  match eval ~d ?env s with
  | E.Nodes ns -> ns
  | _ -> Alcotest.fail ("not a node-set: " ^ s)

let count ?(d = doc) s = List.length (nodes ~d s)
let str ?(d = doc) ?env s = E.string_value d (eval ~d ?env s)
let num ?(d = doc) s = E.number (eval ~d s)
let bool_ ?(d = doc) s = E.boolean (eval ~d s)

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let test_child_axis () =
  checki "tracks" 2 (count "/review/track");
  checki "revs in first track" 2 (count "/review/track[1]/rev")

let test_descendant_axis () =
  checki "all subs" 4 (count "//sub");
  checki "all names" 10 (count "//name");
  checki "names under track 2" 3 (count "/review/track[2]//name")

let test_self_and_parent () =
  checki "self" 1 (count "/review/track[1]/.");
  checki "parent of rev" 2 (count "//rev/..");
  checks "parent name" "DB" (str "/review/track[1]/rev[1]/../name/text()")

let test_ancestor_axis () =
  checki "ancestors of a title" 4
    (count "/review/track[1]/rev[1]/sub[1]/title/ancestor::*");
  checki "ancestor-or-self" 5
    (count "/review/track[1]/rev[1]/sub[1]/title/ancestor-or-self::*")

let test_sibling_axes () =
  checki "following" 1 (count "/review/track[1]/rev[1]/following-sibling::rev");
  checki "preceding" 1 (count "/review/track[1]/rev[2]/preceding-sibling::rev");
  checki "none before first" 0 (count "/review/track[1]/rev[1]/preceding-sibling::rev")

let test_explicit_axes () =
  checki "descendant::sub" 4 (count "/review/descendant::sub");
  checki "child::track" 2 (count "/review/child::track");
  (* //sub[1] selects the first sub of each rev (predicate applies per
     context), hence three nodes *)
  checki "descendant-or-self" 3 (count "//sub[1]/descendant-or-self::sub")

let test_wildcard_and_node () =
  checki "star children of track 1" 3 (count "/review/track[1]/*");
  checki "node() includes text" 1 (count "/review/track[1]/name/node()")

let test_attribute_axis () =
  (match eval ~d:attr_doc "//item/@id" with
   | E.Strs vs -> Alcotest.(check (list string)) "ids" [ "1"; "2" ] vs
   | _ -> Alcotest.fail "expected attribute strings");
  (match eval ~d:attr_doc "//item/@*" with
   | E.Strs vs -> checki "all attrs" 4 (List.length vs)
   | _ -> Alcotest.fail "expected attribute strings")

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let test_positional_predicates () =
  checks "second sub title" "T2" (str "/review/track[1]/rev[1]/sub[2]/title/text()");
  checks "last()" "T2" (str "/review/track[1]/rev[1]/sub[last()]/title/text()");
  checks "position()=1" "T1"
    (str "/review/track[1]/rev[1]/sub[position() = 1]/title/text()")

let test_value_predicates () =
  checki "revs named Goofy" 2 (count "//rev[name/text() = \"Goofy\"]");
  checki "subs with author Mickey" 2 (count "//sub[auts/name/text() = \"Mickey\"]");
  checki "empty filter" 0 (count "//rev[name/text() = \"Nobody\"]")

let test_predicate_chaining () =
  checki "chained" 1 (count "//rev[name/text() = \"Goofy\"][sub/title/text() = \"T4\"]");
  checki "count in predicate" 1 (count "//rev[count(sub) = 2]")

let test_nested_predicates () =
  checki "nested" 1 (count "//track[rev[name/text() = \"Minnie\"]]")

(* ------------------------------------------------------------------ *)
(* Expressions and functions                                           *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  checkf "add" 7.0 (num "3 + 4");
  checkf "mul prec" 11.0 (num "3 + 4 * 2");
  checkf "div" 2.5 (num "5 div 2");
  checkf "mod" 1.0 (num "7 mod 3");
  checkf "neg" (-3.0) (num "-3")

let test_comparisons_existential () =
  checkb "some author is Mickey" true (bool_ "//auts/name/text() = \"Mickey\"");
  checkb "inequality exists" true (bool_ "//auts/name/text() != \"Mickey\"");
  checkb "no author Scrooge" false (bool_ "//auts/name/text() = \"Scrooge\"");
  checkb "nodeset vs nodeset" true (bool_ "//rev/name/text() = //rev/name/text()")

let test_numeric_compare_on_nodes () =
  checkb "count compare" true (bool_ "count(//sub) > 3");
  checkb "count equal" true (bool_ "count(//track) = 2")

let test_functions () =
  checkf "count" 4.0 (num "count(//sub)");
  checkb "not" true (bool_ "not(count(//sub) = 0)");
  checks "concat" "a-b" (str "concat(\"a\", \"-\", \"b\")");
  checkb "contains" true (bool_ "contains(\"Duckburg\", \"ckb\")");
  checkb "starts-with" true (bool_ "starts-with(\"Duckburg\", \"Duck\")");
  checkf "string-length" 4.0 (num "string-length(\"abcd\")");
  checks "name fn" "review" (str "name(/review)");
  checkb "true/false" true (bool_ "true() and not(false())")

let test_boolean_connectives () =
  checkb "and" false (bool_ "count(//sub) = 4 and count(//track) = 3");
  checkb "or" true (bool_ "count(//sub) = 4 or count(//track) = 3")

let test_union () = checki "union dedups" 7 (count "//sub | //rev | //sub")

let test_variables () =
  let env = [ ("x", E.Str "Goofy"); ("n", E.Num 2.0) ] in
  checkb "var compare" true (E.boolean (eval ~env "//rev/name/text() = $x"));
  checkb "var arith" true (E.boolean (eval ~env "$n + 1 = 3"))

let test_node_variable_path () =
  let rev1 = List.hd (nodes "/review/track[1]/rev[1]") in
  let env = [ ("r", E.Nodes [ rev1 ]) ] in
  checki "steps from variable" 2 (List.length (nodes ~env "$r/sub"));
  checks "text from variable" "Goofy" (str ~env "$r/name/text()")

let test_position_of () =
  (* position among the rev's element children: name=1, sub=2, sub=3 *)
  let sub2 = List.nth (nodes "/review/track[1]/rev[1]/sub") 1 in
  let env = [ ("s", E.Nodes [ sub2 ]) ] in
  checkf "position-of" 3.0 (E.number (eval ~env "position-of($s)"))

let test_param_holes () =
  let env = [ ("%r", E.Str "Goofy") ] in
  checkb "param hole" true (E.boolean (eval ~env "//rev/name/text() = %r"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_errors () =
  let fails s =
    match XP.Parser.parse s with
    | exception XP.Parser.Parse_error _ -> true
    | _ -> false
  in
  checkb "empty" true (fails "");
  checkb "bad token" true (fails "a ? b");
  checkb "unclosed bracket" true (fails "a[1");
  checkb "trailing" true (fails "a b")

let roundtrip_cases =
  [
    "//rev/name/text()";
    "/review/track[2]/rev[5]/sub[6]";
    "//pub[title/text() = \"Duckburg tales\"]/aut/name/text()";
    "count(//sub) > 4 and not($x = 3)";
    "$a/b//c[@id = \"7\"][2]";
    "a | b | c/d";
    "3 + 4 * -2 - 1";
    "following-sibling::sub[position() = last()]";
    "//track[rev[name/text() = $r]]";
    "%anchor/name/text() = %n";
  ]

let test_roundtrip () =
  List.iter
    (fun s ->
      let e = XP.Parser.parse s in
      let s' = XP.Ast.to_string e in
      let e' = XP.Parser.parse s' in
      Alcotest.(check bool) (s ^ " => " ^ s') true (XP.Ast.equal e e'))
    roundtrip_cases

let test_eval_roundtrip_semantics () =
  List.iter
    (fun s ->
      let e = XP.Parser.parse s in
      let e' = XP.Parser.parse (XP.Ast.to_string e) in
      let v1 = E.eval doc e and v2 = E.eval doc e' in
      Alcotest.(check bool) s true (v1 = v2))
    [ "//sub"; "count(//rev)"; "/review/track[1]//name/text()" ]

(* ------------------------------------------------------------------ *)
(* Second wave: edge cases                                             *)
(* ------------------------------------------------------------------ *)

let test_root_selection () =
  checki "slash selects root" 1 (count "/");
  checks "root name" "review" (str "name(/review)");
  checki "self of root" 1 (count "/review/.")

let test_multi_root_collection () =
  let d = (Xml_parser.parse_string "<one><x/></one>").Xml_parser.doc in
  let frag = Xml_parser.parse_fragment d "<two><x/><x/></two>" in
  (match frag with [ r ] -> Doc.add_root d r | _ -> assert false);
  checki "absolute sees both roots" 3 (count ~d "//x");
  checki "named root one" 1 (count ~d "/one/x");
  checki "named root two" 2 (count ~d "/two/x")

let test_positional_after_filter () =
  (* predicates chain left to right, and // positions apply per parent
     (XPath 1.0: //x[2] ≠ (//x)[2]) *)
  checki "no track has two Goofy revs" 0
    (count "//rev[name/text() = \"Goofy\"][2]");
  checks "filter then position within one track" "T4"
    (str "/review/track[2]/rev[name/text() = \"Goofy\"][1]/sub[1]/title/text()")

let test_last_minus () =
  checks "last()-1" "T1" (str "/review/track[1]/rev[1]/sub[last() - 1]/title/text()")

let test_arithmetic_edge () =
  checkb "div by zero is inf" true (bool_ "1 div 0 > 1000000");
  checkb "nan comparisons false" false (bool_ "number(\"abc\") = number(\"abc\")")

let test_string_order_fallback () =
  (* non-numeric strings compare lexicographically (documented extension) *)
  checkb "apple < banana" true (bool_ "\"apple\" < \"banana\"");
  checkb "numeric strings numeric" true (bool_ "\"9\" < \"10\"")

let test_existential_negation_subtlety () =
  (* != over node-sets is existential, not the negation of = *)
  checkb "eq and neq both true" true
    (bool_ "//rev/name/text() = \"Goofy\" and //rev/name/text() != \"Goofy\"")

let test_boolean_coercions () =
  checkb "empty node-set is false" false (bool_ "//nonexistent");
  checkb "non-empty is true" true (bool_ "//sub");
  checkb "empty string false" false (bool_ "boolean(\"\")");
  checkb "zero false" false (bool_ "boolean(0)")

let test_union_in_predicate () =
  checki "union inside predicate" 2
    (count "//track[rev | name]")

let test_descendant_of_descendant () =
  checki "//track//name" 10 (count "//track//name");
  checki "//rev//name" 8 (count "//rev//name")

let test_attribute_in_predicate () =
  checki "by attribute" 1 (count ~d:attr_doc "//item[@cat = \"b\"]");
  checki "attr existence" 2 (count ~d:attr_doc "//item[@id]")

let test_parser_axis_names_not_reserved () =
  (* axis names usable as element names when not followed by :: *)
  let d = (Xml_parser.parse_string "<r><child>x</child><self/></r>").Xml_parser.doc in
  checki "element named child" 1 (count ~d "/r/child");
  checki "element named self" 1 (count ~d "/r/self")

let test_number_formatting () =
  checks "integer renders plain" "4" (str "count(//sub)");
  checks "string of sum" "7" (str "string(3 + 4)")

let test_string_functions () =
  checks "substring 2-arg" "burg" (str "substring(\"Duckburg\", 5)");
  checks "substring 3-arg" "ckb" (str "substring(\"Duckburg\", 3, 3)");
  checks "substring clamps" "Du" (str "substring(\"Duckburg\", 0, 3)");
  checks "substring empty" "" (str "substring(\"Duckburg\", 99)");
  checks "before" "Duck" (str "substring-before(\"Duck-burg\", \"-\")");
  checks "after" "burg" (str "substring-after(\"Duck-burg\", \"-\")");
  checks "before missing" "" (str "substring-before(\"Duckburg\", \"-\")");
  checks "translate" "DUCK" (str "translate(\"duck\", \"duck\", \"DUCK\")");
  checks "translate drops" "dk" (str "translate(\"duck\", \"uc\", \"\")");
  checks "upper" "DUCK" (str "upper-case(\"Duck\")");
  checks "lower" "duck" (str "lower-case(\"Duck\")");
  checkb "ends-with" true (bool_ "ends-with(\"Duckburg\", \"burg\")");
  checks "string-join" "DB+IR" (str "string-join(//track/name/text(), \"+\")")

(* ------------------------------------------------------------------ *)
(* Properties: random paths                                            *)
(* ------------------------------------------------------------------ *)

(* Random relative location paths over the conference vocabulary. *)
let gen_path =
  let open QCheck2.Gen in
  let name = oneofl [ "review"; "track"; "rev"; "sub"; "auts"; "name"; "title" ] in
  let axis =
    oneofl
      [ ""; "descendant::"; "ancestor::"; "following-sibling::";
        "preceding-sibling::"; "descendant-or-self::"; "self::" ]
  in
  let step =
    oneof
      [ map2 (fun a n -> a ^ n) axis name;
        return "*"; return ".."; return "."; return "node()" ]
  in
  let pred =
    oneof
      [ return ""; return "[1]"; return "[last()]";
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[count(" ^ n ^ ") > 0]") name ]
  in
  let full_step = map2 (fun s p -> s ^ p) step pred in
  let sep = oneofl [ "/"; "//" ] in
  map2
    (fun first rest ->
      "//" ^ first ^ String.concat "" (List.map (fun (s, st) -> s ^ st) rest))
    full_step
    (list_size (int_bound 3) (pair sep full_step))

let prop_random_paths_robust =
  QCheck2.Test.make ~name:"random paths: sorted, unique, reprintable" ~count:300
    gen_path (fun src ->
      match XP.Parser.parse src with
      | exception XP.Parser.Parse_error _ -> QCheck2.assume_fail ()
      | e ->
        (match E.eval doc e with
         | exception E.Eval_error _ -> QCheck2.assume_fail ()
         | E.Nodes ns ->
           let sorted = Doc.sort_doc_order doc ns in
           (* results are in document order without duplicates, and the
              reprinted expression evaluates identically *)
           ns = sorted
           && (match E.eval doc (XP.Parser.parse (XP.Ast.to_string e)) with
               | E.Nodes ns' -> ns' = ns
               | _ -> false)
         | _ -> true))

let () =
  Alcotest.run "xpath"
    [
      ( "axes",
        [
          Alcotest.test_case "child" `Quick test_child_axis;
          Alcotest.test_case "descendant" `Quick test_descendant_axis;
          Alcotest.test_case "self/parent" `Quick test_self_and_parent;
          Alcotest.test_case "ancestor" `Quick test_ancestor_axis;
          Alcotest.test_case "siblings" `Quick test_sibling_axes;
          Alcotest.test_case "explicit axes" `Quick test_explicit_axes;
          Alcotest.test_case "wildcard/node()" `Quick test_wildcard_and_node;
          Alcotest.test_case "attribute" `Quick test_attribute_axis;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "positional" `Quick test_positional_predicates;
          Alcotest.test_case "by value" `Quick test_value_predicates;
          Alcotest.test_case "chained" `Quick test_predicate_chaining;
          Alcotest.test_case "nested" `Quick test_nested_predicates;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "existential comparison" `Quick test_comparisons_existential;
          Alcotest.test_case "numeric node compare" `Quick test_numeric_compare_on_nodes;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "connectives" `Quick test_boolean_connectives;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "node variables" `Quick test_node_variable_path;
          Alcotest.test_case "position-of" `Quick test_position_of;
          Alcotest.test_case "param holes" `Quick test_param_holes;
        ] );
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip semantics" `Quick test_eval_roundtrip_semantics;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "root selection" `Quick test_root_selection;
          Alcotest.test_case "multi-root collection" `Quick test_multi_root_collection;
          Alcotest.test_case "filter then position" `Quick test_positional_after_filter;
          Alcotest.test_case "last()-1" `Quick test_last_minus;
          Alcotest.test_case "arithmetic edge" `Quick test_arithmetic_edge;
          Alcotest.test_case "string ordering" `Quick test_string_order_fallback;
          Alcotest.test_case "existential !=" `Quick test_existential_negation_subtlety;
          Alcotest.test_case "boolean coercions" `Quick test_boolean_coercions;
          Alcotest.test_case "union in predicate" `Quick test_union_in_predicate;
          Alcotest.test_case "// of //" `Quick test_descendant_of_descendant;
          Alcotest.test_case "attribute predicates" `Quick test_attribute_in_predicate;
          Alcotest.test_case "axis names as elements" `Quick test_parser_axis_names_not_reserved;
          Alcotest.test_case "number formatting" `Quick test_number_formatting;
          Alcotest.test_case "string functions" `Quick test_string_functions;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_paths_robust ]);
    ]
