module A = Xic_xpathlog.Ast
module P = Xic_xpathlog.Parser
module C = Xic_xpathlog.Compile
module T = Xic_datalog.Term
module DP = Xic_datalog.Parser
module Sub = Xic_datalog.Subsume

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mapping =
  lazy
    (Xic_relmap.Mapping.build
       [ (Xic_xml.Dtd.parse Xic_workload.Conference.pub_dtd, "dblp");
         (Xic_xml.Dtd.parse Xic_workload.Conference.rev_dtd, "review") ])

let compile src = C.parse_and_compile (Lazy.force mapping) src

(* The compiled result must be a variant of the expected denial. *)
let expect_variants src expected () =
  let got = compile src in
  checki (src ^ ": count") (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      let e = DP.parse_denial e in
      checkb
        (Printf.sprintf "expected %s, got %s" (T.denial_str e) (T.denial_str g))
        true (Sub.variant e g))
    expected got

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_example1 () =
  let d =
    P.parse_denial Xic_workload.Conference.conflict_source
  in
  (match d.A.body with
   | A.F_and (A.F_path _, A.F_or (A.F_cmp _, A.F_path _)) -> ()
   | _ -> Alcotest.fail "unexpected formula shape")

let test_parse_aggregate () =
  let f = P.parse_formula "cntd{[R]; //track[rev/name/text() -> R]} > 3" in
  match f with
  | A.F_agg g ->
    checkb "op" true (g.A.op = T.CntD);
    Alcotest.(check (list string)) "groups" [ "R" ] g.A.groups;
    checkb "bound" true (g.A.bound = A.O_const (T.Int 3))
  | _ -> Alcotest.fail "expected an aggregate"

let test_parse_roundtrip () =
  List.iter
    (fun src ->
      let d = P.parse_denial src in
      let d2 = P.parse_denial (A.denial_str d) in
      checkb src true (d.A.body = d2.A.body))
    [
      Xic_workload.Conference.conflict_source;
      Xic_workload.Conference.workload_source;
      Xic_workload.Conference.track_load_source;
      "<- //pub[title/text() = \"Duckburg tales\"]/aut/name/text() -> N and N = \"Goofy\"";
      "<- //sub[2]/title/text() -> X and X != %t";
      "<- not(//pub) and //rev -> R";
    ]

let test_parse_labels () =
  let ds = P.parse_denials "c1: <- //rev -> R\n-- comment\n\nc2: <- //pub -> P" in
  Alcotest.(check (list string)) "labels" [ "c1"; "c2" ]
    (List.filter_map (fun d -> d.A.label) ds)

let test_parse_errors () =
  let fails s = match P.parse_denial s with exception P.Parse_error _ -> true | _ -> false in
  checkb "lone variable" true (fails "<- R");
  checkb "unclosed qualifier" true (fails "<- //a[b");
  checkb "bad aggregate" true (fails "<- cntd{//a}");
  checkb "binding to lowercase" true (fails "<- //a -> b")

(* ------------------------------------------------------------------ *)
(* DNF                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dnf_disjunction () =
  let d = P.parse_denial "<- //rev -> R and (R = \"a\" or R = \"b\")" in
  checki "two conjuncts" 2 (List.length (A.dnf d.A.body))

let test_dnf_negation_pushes () =
  let d = P.parse_denial "<- //rev -> R and not(R = \"a\" or R = \"b\")" in
  match A.dnf d.A.body with
  | [ conj ] ->
    checki "single conjunct with both disequalities" 3 (List.length conj)
  | _ -> Alcotest.fail "negated disjunction must produce one conjunct"

let test_dnf_qualifier_disjunction () =
  let d = P.parse_denial "<- //rev[name/text() = \"a\" or name/text() = \"b\"] -> R" in
  checki "path split" 2 (List.length (A.dnf d.A.body))

(* ------------------------------------------------------------------ *)
(* Compilation (paper examples)                                        *)
(* ------------------------------------------------------------------ *)

let test_compile_example1 =
  expect_variants Xic_workload.Conference.conflict_source
    [
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)";
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, A), aut(_, _, Ip, R)";
    ]

let test_compile_duckburg =
  expect_variants
    "<- //pub[title/text() = \"Duckburg tales\"]/aut/name/text() -> N and N = \"Goofy\""
    [ {| :- pub(Ip, _, _, "Duckburg tales"), aut(_, _, Ip, "Goofy") |} ]

let test_compile_example7 =
  expect_variants "<- //rev -> Ir and cntd{; Ir/sub} > 4"
    [ ":- rev(Ir, _, _, _), cntd(Is; sub(Is, _, Ir, _)) > 4" ]

let test_compile_example2 =
  expect_variants Xic_workload.Conference.workload_source
    [
      ":- rev(_, _, _, R), cntd(It; track(It, _, _, _), rev(_, _, It, R)) > 3, \
       cntd(Isu; rev(Irv, _, _, R), sub(Isu, _, Irv, _)) > 10";
    ]

let test_compile_position_qualifier =
  (* the position constraint is inlined into the Pos argument, and the rev
     container atom is pruned (sub's only container is rev) *)
  expect_variants "<- //rev/sub[2]/title/text() -> X and X != %t"
    [ ":- sub(_, 2, _, X), X != %t" ]

let test_compile_root_path =
  expect_variants "<- /review/track/name/text() -> N and N = \"DB\""
    [ {| :- track(_, _, _, "DB") |} ]

let test_compile_negation =
  (* R is unused, so the rev container atom is pruned *)
  expect_variants "<- //rev[name/text() -> R]/sub and not(//pub[title/text() -> Z] )"
    [ ":- sub(_, _, _, _), not pub(_, _, _, Z)" ]

let test_compile_shared_binding () =
  (* the same variable bound twice must join the two columns *)
  let ds = compile "<- //track[name/text() -> N] and //rev[name/text() -> N]" in
  match ds with
  | [ d ] ->
    let vars = T.denial_vars d in
    checkb "N shared" true (List.mem "N" vars);
    checki "two atoms" 2
      (List.length (List.filter (function T.Rel _ -> true | _ -> false) d.T.body))
  | _ -> Alcotest.fail "expected a single denial"

let test_compile_mid_descendant =
  (* // in the middle expands through the DTD chain *)
  expect_variants "<- /review/track[1]//auts/name/text() -> N and N = %x"
    [ ":- track(It, 1, _, _), rev(Ir, _, It, _), sub(Is, _, Ir, _), auts(_, _, Is, %x)" ]

let test_compile_parent_nav =
  (* '..' re-enters the unique container; the From_var re-entry re-asserts
     the child atom to expose its parent link *)
  expect_variants "<- //rev[name/text() -> N] -> R and R/../name/text() -> N"
    [ ":- rev(R, _, _, N), rev(R, _, X, _), track(X, _, _, N)" ]

let test_compile_parent_nav_inline =
  (* '..' directly inside a path reuses the atom's own parent argument *)
  expect_variants "<- //rev/../name/text() -> N and N = %x"
    [ ":- rev(_, _, X, _), track(X, _, _, %x)" ]

let test_compile_parent_of_root_child () =
  (* '..' to an elided root yields no atom *)
  let ds = compile "<- //track/../track/name/text() -> N and N = %x" in
  match ds with
  | [ d ] ->
    checki "two track atoms, no review atom" 2
      (List.length (List.filter (function T.Rel _ -> true | _ -> false) d.T.body))
  | _ -> Alcotest.fail "expected one denial"

let test_compile_errors () =
  let fails s = match compile s with exception C.Compile_error _ -> true | _ -> false in
  checkb "unknown element" true (fails "<- //bogus -> X and X = \"a\"");
  checkb "bad child step" true (fails "<- //rev/track -> X and X = \"a\"");
  checkb "text on element content" true (fails "<- //track/rev/text() -> X and X = \"a\"");
  checkb "position at top level" true (fails "<- position() = 2")

let () =
  Alcotest.run "xpathlog"
    [
      ( "parser",
        [
          Alcotest.test_case "example 1 shape" `Quick test_parse_example1;
          Alcotest.test_case "aggregate" `Quick test_parse_aggregate;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "labels/comments" `Quick test_parse_labels;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "dnf",
        [
          Alcotest.test_case "disjunction" `Quick test_dnf_disjunction;
          Alcotest.test_case "negation pushes in" `Quick test_dnf_negation_pushes;
          Alcotest.test_case "qualifier disjunction" `Quick test_dnf_qualifier_disjunction;
        ] );
      ( "compile",
        [
          Alcotest.test_case "example 1 (conflict)" `Quick test_compile_example1;
          Alcotest.test_case "Duckburg tales" `Quick test_compile_duckburg;
          Alcotest.test_case "example 7 (track load)" `Quick test_compile_example7;
          Alcotest.test_case "example 2 (workload)" `Quick test_compile_example2;
          Alcotest.test_case "position qualifier" `Quick test_compile_position_qualifier;
          Alcotest.test_case "rooted path" `Quick test_compile_root_path;
          Alcotest.test_case "negation" `Quick test_compile_negation;
          Alcotest.test_case "shared binding" `Quick test_compile_shared_binding;
          Alcotest.test_case "mid-path //" `Quick test_compile_mid_descendant;
          Alcotest.test_case "parent nav from var" `Quick test_compile_parent_nav;
          Alcotest.test_case "parent nav inline" `Quick test_compile_parent_nav_inline;
          Alcotest.test_case "parent of root child" `Quick test_compile_parent_of_root_child;
          Alcotest.test_case "errors" `Quick test_compile_errors;
        ] );
    ]
