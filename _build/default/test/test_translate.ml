module T = Xic_datalog.Term
module P = Xic_datalog.Parser
module Tr = Xic_translate.Translate
module Q = Xic_xquery

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let mapping =
  lazy
    (Xic_relmap.Mapping.build
       [ (Xic_xml.Dtd.parse Xic_workload.Conference.pub_dtd, "dblp");
         (Xic_xml.Dtd.parse Xic_workload.Conference.rev_dtd, "review") ])

let translate src = Tr.denial (Lazy.force mapping) (P.parse_denial src)
let qstr src = Q.Ast.to_string (translate src)

(* ------------------------------------------------------------------ *)
(* Shapes from Section 6 of the paper                                  *)
(* ------------------------------------------------------------------ *)

let test_full_conflict_denial2 () =
  (* paper: some $Ir in //rev, $H in //aut satisfies
     $H/name/text()=$Ir/name/text() and
     $H/../aut/name/text()=$Ir/sub/auts/name/text() *)
  checks "shape"
    "some $Ir in //rev, $_7 in //aut satisfies $_7/name/text() = $Ir/name/text() and $Ir/sub/auts/name/text() = $_7/../aut/name/text()"
    (qstr ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, R), aut(_, _, Ip, A)")

let test_simplified_conflict () =
  (* paper: some $D in //aut satisfies $D/name/text()=%n and
     $D/../aut/name/text() = <ir>/name/text() *)
  checks "shape"
    "some $_3 in //aut satisfies $_3/name/text() = %n and $_3/../aut/name/text() = %ir/name/text()"
    (qstr ":- rev(%ir, _, _, R), aut(_, _, Ip, %n), aut(_, _, Ip, R)")

let test_simplified_conflict_first () =
  checks "pure condition" "%ir/name/text() = %n" (qstr ":- rev(%ir, _, _, %n)")

let test_aggregate_example7 () =
  (* paper: exists(for $lr in //rev let $D := $lr/sub where count($D) > 4
     return <idle/>) *)
  checks "shape"
    "exists(for $Ir in //rev let $Agg1 := $Ir/sub where count-distinct($Agg1) > 4 return <idle/>)"
    (qstr ":- rev(Ir, _, _, _), cntd(Is; sub(Is, _, Ir, _)) > 4")

let test_aggregate_simplified () =
  checks "instantiated let"
    "exists(let $Agg1 := %ir/sub where count-distinct($Agg1) > 3 return <idle/>)"
    (qstr ":- rev(%ir, _, _, _), cntd(Is; sub(Is, _, %ir, _)) > 3")

let test_constants_become_filters () =
  checks "Duckburg"
    "some $Ip in //pub satisfies $Ip/title/text() = \"Duckburg tales\" and $Ip/aut/name/text() = \"Goofy\""
    (qstr {| :- pub(Ip, _, _, "Duckburg tales"), aut(_, _, Ip, "Goofy") |})

let test_inlining_chain () =
  (* single-use node variables collapse into the path, keeping only the
     atoms that carry conditions *)
  let s = qstr ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)" in
  checks "chained path" "some $Ir in //rev satisfies $Ir/sub/auts/name/text() = $Ir/name/text()" s

let test_negation () =
  let s = qstr ":- rev(Ir, _, _, R), not pub(_, _, _, _)" in
  checks "negation" "some $Ir in //rev satisfies not(exists(//pub))" s

let test_position_column () =
  let s = qstr ":- sub(Is, 2, _, %t)" in
  checks "position test"
    "some $Is in //sub satisfies position-of($Is) = 2 and $Is/title/text() = %t" s

let test_untranslatable_unsafe () =
  match translate ":- X != Y" with
  | exception Tr.Untranslatable _ -> ()
  | _ -> Alcotest.fail "unsafe comparison must be untranslatable"

(* ------------------------------------------------------------------ *)
(* Generated queries parse and evaluate                                *)
(* ------------------------------------------------------------------ *)

let doc =
  (fun () ->
    let { Xic_xml.Xml_parser.doc; _ } =
      Xic_xml.Xml_parser.parse_string
        {|<dblp><pub><title>J</title><aut><name>Carl</name></aut><aut><name>Nora</name></aut></pub></dblp>|}
    in
    let frag =
      Xic_xml.Xml_parser.parse_fragment doc
        {|<review><track><name>DB</name><rev><name>Carl</name><sub><title>S</title><auts><name>Ann</name></auts></sub></rev></track></review>|}
    in
    (match frag with [ r ] -> Xic_xml.Doc.add_root doc r | _ -> assert false);
    doc)
    ()

let test_generated_queries_reparse () =
  (* reparsing may re-nest Call/Xp wrappers, so compare printed forms *)
  List.iter
    (fun src ->
      let q = translate src in
      let q' = Q.Parser.parse (Q.Ast.to_string q) in
      checks src (Q.Ast.to_string q) (Q.Ast.to_string q'))
    [
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)";
      ":- rev(%ir, _, _, R), aut(_, _, Ip, %n), aut(_, _, Ip, R)";
      ":- rev(Ir, _, _, _), cntd(Is; sub(Is, _, Ir, _)) > 4";
      ":- rev(%ir, _, _, %n)";
    ]

let test_eval_full_vs_datalog () =
  (* the translated query and the denial itself must agree on the store *)
  let m = Lazy.force mapping in
  let store = Xic_relmap.Shred.shred m doc in
  List.iter
    (fun src ->
      let d = P.parse_denial src in
      let dl = Xic_datalog.Eval.violated store d in
      let xq = Q.Eval.eval_bool doc (Tr.denial m d) in
      checkb src dl xq)
    [
      (* violated: Ann is not Carl, so no self-review … *)
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)";
      (* Carl reviews and co-authored with Nora, but Ann is the sub author *)
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, R), aut(_, _, Ip, A)";
      (* track with a sub *)
      ":- track(It, _, _, _), rev(Ir, _, It, _), sub(_, _, Ir, _)";
      (* aggregates *)
      ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) > 0";
      ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) > 1";
      {| :- pub(Ip, _, _, "J"), aut(_, _, Ip, "Nora") |};
      {| :- pub(Ip, _, _, "J"), aut(_, _, Ip, "Bob") |};
    ]

let test_eval_with_params () =
  let m = Lazy.force mapping in
  let rev =
    List.hd (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//rev"))
  in
  let q = Tr.denial m (P.parse_denial ":- rev(%ir, _, _, %n)") in
  let check_name n expect =
    Alcotest.(check bool) n expect
      (Q.Eval.eval_bool doc
         ~params:[ ("ir", Xic_xpath.Eval.Nodes [ rev ]); ("n", Xic_xpath.Eval.Str n) ]
         q)
  in
  check_name "Carl" true;
  check_name "Ann" false

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

let test_disjunction_of_denials () =
  let m = Lazy.force mapping in
  let q =
    Tr.denials m
      [ P.parse_denial ":- rev(%ir, _, _, %n)";
        P.parse_denial ":- track(_, _, _, %n)" ]
  in
  checks "joined with or (fully inlined)"
    "%ir/name/text() = %n or //track/name/text() = %n"
    (Q.Ast.to_string q);
  checkb "false for empty set" true
    (Q.Ast.to_string (Tr.denials m []) = "false()")

let test_node_identity_translation () =
  (* id-variable comparisons become node-identity tests *)
  let s = qstr ":- rev(A, _, T, _), rev(B, _, T, _), A != B" in
  checkb "uses same-node" true
    (let needle = "same-node" in
     let rec find i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_node_identity_evaluates () =
  (* two distinct revs under one track: A != B as node identity *)
  let m = Lazy.force mapping in
  let { Xic_xml.Xml_parser.doc = d2; _ } =
    Xic_xml.Xml_parser.parse_string
      {|<review><track><name>T</name><rev><name>X</name><sub><title>S</title><auts><name>A</name></auts></sub></rev><rev><name>X</name><sub><title>S2</title><auts><name>B</name></auts></sub></rev></track></review>|}
  in
  let den = P.parse_denial ":- rev(A, _, T, N), rev(B, _, T, N), A != B" in
  let q = Tr.denial m den in
  checkb "duplicate reviewer names in a track" true (Q.Eval.eval_bool d2 q);
  let st = Xic_relmap.Shred.shred m d2 in
  checkb "datalog agrees" true (Xic_datalog.Eval.violated st den)

let test_sum_translation () =
  let m = Lazy.force mapping in
  (* sum over a data column translates … *)
  let den = P.parse_denial ":- track(It, _, _, _), sum(N; rev(_, _, It, N)) > 100" in
  let s = Q.Ast.to_string (Tr.denial m den) in
  checkb "mentions sum" true
    (let needle = "sum(" in
     let rec find i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  (* … while sums over Pos columns are (documented) untranslatable *)
  let den2 = P.parse_denial ":- track(It, _, _, _), sum(P; rev(_, P, It, _)) > 100" in
  match Tr.denial m den2 with
  | exception Tr.Untranslatable _ -> ()
  | _ -> Alcotest.fail "sum over positions is expected to be untranslatable"

let test_multiple_aggregates_one_denial () =
  let q =
    qstr
      ":- rev(_, _, _, R), cntd(It; track(It, _, _, _), rev(_, _, It, R)) > 3, \
       cntd(Isu; rev(Irv, _, _, R), sub(Isu, _, Irv, _)) > 10"
  in
  checks "two lets"
    "exists(for $R in //rev/name/text() let $Agg1 := //track[rev[name/text() = $R]] let $Agg2 := //rev[name/text() = $R]/sub where count-distinct($Agg1) > 3 and count-distinct($Agg2) > 10 return <idle/>)"
    q

let test_shared_column_variable () =
  (* the same data variable in two atoms joins their columns *)
  (* single-use node bindings inline completely: an existential general
     comparison over the two node-sets *)
  checks "join by title" "//sub/title/text() = //pub/title/text()"
    (qstr ":- pub(Ip, _, _, T), sub(Is, _, _, T)")

let () =
  Alcotest.run "translate"
    [
      ( "shapes",
        [
          Alcotest.test_case "full conflict denial 2" `Quick test_full_conflict_denial2;
          Alcotest.test_case "simplified conflict" `Quick test_simplified_conflict;
          Alcotest.test_case "simplified conflict (1st)" `Quick test_simplified_conflict_first;
          Alcotest.test_case "aggregate example 7" `Quick test_aggregate_example7;
          Alcotest.test_case "aggregate simplified" `Quick test_aggregate_simplified;
          Alcotest.test_case "constant filters" `Quick test_constants_become_filters;
          Alcotest.test_case "inlining chain" `Quick test_inlining_chain;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "position column" `Quick test_position_column;
          Alcotest.test_case "unsafe rejected" `Quick test_untranslatable_unsafe;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "reparse" `Quick test_generated_queries_reparse;
          Alcotest.test_case "datalog agreement" `Quick test_eval_full_vs_datalog;
          Alcotest.test_case "with parameters" `Quick test_eval_with_params;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "denial disjunction" `Quick test_disjunction_of_denials;
          Alcotest.test_case "node identity shape" `Quick test_node_identity_translation;
          Alcotest.test_case "node identity eval" `Quick test_node_identity_evaluates;
          Alcotest.test_case "sum" `Quick test_sum_translation;
          Alcotest.test_case "two aggregates" `Quick test_multiple_aggregates_one_denial;
          Alcotest.test_case "shared column var" `Quick test_shared_column_variable;
        ] );
    ]
