open Xic_xml
module M = Xic_relmap.Mapping
module Sh = Xic_relmap.Shred
module S = Xic_datalog.Store
module T = Xic_datalog.Term

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mapping () =
  M.build
    [ (Dtd.parse Xic_workload.Conference.pub_dtd, "dblp");
      (Dtd.parse Xic_workload.Conference.rev_dtd, "review") ]

(* ------------------------------------------------------------------ *)
(* Schema derivation                                                   *)
(* ------------------------------------------------------------------ *)

let test_paper_schema () =
  let m = mapping () in
  Alcotest.(check (list string)) "predicates"
    [ "pub"; "aut"; "track"; "rev"; "sub"; "auts" ]
    (List.map (fun (s : M.pred_schema) -> s.M.pname) (M.predicates m))

let test_reprs () =
  let m = mapping () in
  checkb "dblp elided" true (M.repr_of m "dblp" = M.Elided);
  checkb "review elided" true (M.repr_of m "review" = M.Elided);
  checkb "name embedded" true (M.repr_of m "name" = M.Embedded);
  checkb "title embedded" true (M.repr_of m "title" = M.Embedded);
  checkb "pub predicate" true
    (match M.repr_of m "pub" with M.Predicate _ -> true | _ -> false)

let test_columns () =
  let m = mapping () in
  let cols p =
    match M.schema_of m p with
    | Some s -> List.map (fun c -> c.M.col_name) s.M.columns
    | None -> Alcotest.fail (p ^ " has no schema")
  in
  Alcotest.(check (list string)) "pub cols" [ "title" ] (cols "pub");
  Alcotest.(check (list string)) "rev cols" [ "name" ] (cols "rev");
  Alcotest.(check (list string)) "track cols" [ "name" ] (cols "track");
  checki "arity of sub" 4 (M.arity m "sub")

let test_column_index () =
  let m = mapping () in
  Alcotest.(check (option int)) "title of pub" (Some 3)
    (M.column_index m ~pred:"pub" ~col:"title");
  Alcotest.(check (option int)) "missing col" None
    (M.column_index m ~pred:"pub" ~col:"name")

let test_embedded_edges () =
  let m = mapping () in
  checkb "name in rev" true (M.is_embedded_in m ~parent:"rev" ~child:"name");
  checkb "name in track" true (M.is_embedded_in m ~parent:"track" ~child:"name");
  checkb "sub not embedded" false (M.is_embedded_in m ~parent:"rev" ~child:"sub")

let test_containers () =
  let m = mapping () in
  Alcotest.(check (list string)) "sub container" [ "rev" ] (M.containers_of m "sub");
  Alcotest.(check (list string)) "name containers" [ "aut"; "auts"; "rev"; "track" ]
    (M.containers_of m "name")

let test_predicate_children () =
  let m = mapping () in
  Alcotest.(check (list string)) "children of rev" [ "sub" ] (M.predicate_children m "rev");
  Alcotest.(check (list string)) "children of sub" [ "auts" ] (M.predicate_children m "sub")

let test_attrs_as_columns () =
  let m =
    M.build
      [ (Dtd.parse "<!ELEMENT r (x)*><!ELEMENT x (#PCDATA)><!ATTLIST x id CDATA #REQUIRED>", "r") ]
  in
  (* x has an attribute, so it cannot be embedded; it gets id and text
     columns. *)
  (match M.schema_of m "x" with
   | Some s ->
     Alcotest.(check (list string)) "x cols" [ "id"; "text" ]
       (List.map (fun c -> c.M.col_name) s.M.columns)
   | None -> Alcotest.fail "x must be a predicate")

let test_root_with_attrs_kept () =
  let m =
    M.build [ (Dtd.parse "<!ELEMENT r (x)*><!ELEMENT x EMPTY><!ATTLIST r v CDATA #IMPLIED>", "r") ]
  in
  checkb "attributed root is a predicate" true
    (match M.repr_of m "r" with M.Predicate _ -> true | _ -> false)

let test_conflicting_dtds_rejected () =
  match
    M.build
      [ (Dtd.parse "<!ELEMENT r (a)*><!ELEMENT a (#PCDATA)>", "r");
        (Dtd.parse "<!ELEMENT s (a)*><!ELEMENT a EMPTY>", "s") ]
  with
  | exception M.Mapping_error _ -> ()
  | _ -> Alcotest.fail "conflicting declarations must be rejected"

let test_schema_to_string () =
  let m = mapping () in
  let s = M.schema_to_string m in
  checkb "pub line" true
    (String.length s > 0
     && (let rec find i =
           i + 34 <= String.length s
           && (String.sub s i 34 = "pub(Id, Pos, IdParent_dblp, Title)" || find (i + 1))
         in
         find 0))

(* ------------------------------------------------------------------ *)
(* Shredding                                                           *)
(* ------------------------------------------------------------------ *)

let sample_collection () =
  let { Xml_parser.doc; _ } =
    Xml_parser.parse_string
      {|<dblp><pub><title>P1</title><aut><name>A</name></aut><aut><name>B</name></aut></pub></dblp>|}
  in
  let frag =
    Xml_parser.parse_fragment doc
      {|<review><track><name>DB</name><rev><name>R1</name><sub><title>S1</title><auts><name>A</name></auts></sub><sub><title>S2</title><auts><name>B</name></auts></sub></rev></track></review>|}
  in
  (match frag with [ r ] -> Doc.add_root doc r | _ -> assert false);
  doc

let test_shred_counts () =
  let doc = sample_collection () in
  let st = Sh.shred (mapping ()) doc in
  checki "pubs" 1 (S.cardinality st "pub");
  checki "auts (pub)" 2 (S.cardinality st "aut");
  checki "tracks" 1 (S.cardinality st "track");
  checki "revs" 1 (S.cardinality st "rev");
  checki "subs" 2 (S.cardinality st "sub");
  checki "auts (rev)" 2 (S.cardinality st "auts")

let test_shred_fact_shape () =
  let doc = sample_collection () in
  let m = mapping () in
  let st = Sh.shred m doc in
  match S.tuples st "sub" with
  | [ [ T.Int id1; T.Int pos1; T.Int par1; T.Str t1 ];
      [ T.Int _; T.Int pos2; T.Int par2; T.Str t2 ] ] ->
    checks "title 1" "S1" t1;
    checks "title 2" "S2" t2;
    checki "positions differ" 5 (pos1 + pos2);  (* name=1, subs at 2 and 3 *)
    checkb "same parent" true (par1 = par2);
    checkb "id is a live node" true (Doc.live doc id1)
  | _ -> Alcotest.fail "unexpected sub tuples"

let test_shred_parent_links () =
  let doc = sample_collection () in
  let m = mapping () in
  let st = Sh.shred m doc in
  let sub_parents =
    List.map (fun t -> List.nth t 2) (S.tuples st "sub") |> List.sort_uniq compare
  in
  let rev_ids = List.map (fun t -> List.nth t 0) (S.tuples st "rev") in
  checkb "sub parents are rev ids" true
    (List.for_all (fun p -> List.mem p rev_ids) sub_parents)

let test_shred_incremental () =
  let doc = sample_collection () in
  let m = mapping () in
  let st = Sh.shred m doc in
  (* add a subtree, mirror it, and compare against a full re-shred *)
  let frag =
    Xml_parser.parse_fragment doc
      "<sub><title>S3</title><auts><name>C</name></auts></sub>"
  in
  let sub3 = List.hd frag in
  let rev =
    List.hd (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//rev"))
  in
  Doc.append_child doc ~parent:rev sub3;
  Sh.shred_into m doc st sub3;
  checkb "incremental = full" true (S.equal st (Sh.shred m doc));
  Sh.unshred_from m doc st sub3;
  Doc.detach doc sub3;
  checkb "unshred restores" true (S.equal st (Sh.shred m doc))

let test_path_to_node () =
  let doc = sample_collection () in
  let sub2 =
    List.nth (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//sub")) 1
  in
  checks "positional path" "/review/track[1]/rev[1]/sub[2]" (Sh.path_to_node doc sub2);
  (* the path must re-select the same node *)
  let again =
    Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse (Sh.path_to_node doc sub2))
  in
  checkb "path round-trips" true (again = [ sub2 ])

let test_optional_embedded_as_empty () =
  let m =
    M.build
      [ (Dtd.parse "<!ELEMENT r (e)*><!ELEMENT e (n?)><!ELEMENT n (#PCDATA)>", "r") ]
  in
  let { Xml_parser.doc; _ } = Xml_parser.parse_string "<r><e><n>x</n></e><e/></r>" in
  let st = Sh.shred m doc in
  match List.map (fun t -> List.nth t 3) (S.tuples st "e") with
  | [ T.Str "x"; T.Str "" ] -> ()
  | other ->
    Alcotest.fail
      (String.concat "," (List.map T.const_str other) ^ " (expected x, empty)")

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

let test_dual_representation () =
  (* a PCDATA type embedded in one parent but repeated in another gets a
     predicate AND stays a column of the embedding parent *)
  let m =
    M.build
      [ ( Dtd.parse
            "<!ELEMENT r (a, b)*><!ELEMENT a (n)><!ELEMENT b (n*)><!ELEMENT n (#PCDATA)>",
          "r" ) ]
  in
  checkb "n is a predicate" true (M.schema_of m "n" <> None);
  checkb "n embedded in a" true (M.is_embedded_in m ~parent:"a" ~child:"n");
  checkb "n not embedded in b" false (M.is_embedded_in m ~parent:"b" ~child:"n");
  let { Xml_parser.doc; _ } =
    Xml_parser.parse_string "<r><a><n>x</n></a><b><n>y</n><n>z</n></b></r>"
  in
  let st = Sh.shred m doc in
  (* all three n elements shred as facts; a also carries the column *)
  checki "n facts" 3 (S.cardinality st "n");
  (match S.tuples st "a" with
   | [ t ] -> checkb "column carried" true (List.nth t 3 = T.Str "x")
   | _ -> Alcotest.fail "one a fact expected")

let test_mixed_content_type () =
  let m =
    M.build
      [ (Dtd.parse "<!ELEMENT r (p)*><!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>", "r") ]
  in
  (* mixed-content p is a predicate without a text column (its text is not
     a single scalar); em repeats so it is a predicate with one *)
  (match M.schema_of m "p" with
   | Some s -> Alcotest.(check (list string)) "p cols" []
                 (List.map (fun c -> c.M.col_name) s.M.columns)
   | None -> Alcotest.fail "p must be a predicate");
  (match M.schema_of m "em" with
   | Some s -> Alcotest.(check (list string)) "em cols" [ "text" ]
                 (List.map (fun c -> c.M.col_name) s.M.columns)
   | None -> Alcotest.fail "em must be a predicate")

let test_shred_two_docs_id_disjoint () =
  let doc = sample_collection () in
  let m = mapping () in
  let st = Sh.shred m doc in
  let all_ids =
    List.concat_map
      (fun r -> List.map (fun t -> List.nth t 0) (S.tuples st r))
      (S.relations st)
  in
  checki "ids unique across the collection" (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids))

let test_shred_positions_element_only () =
  (* text nodes do not consume positions *)
  let m =
    M.build [ (Dtd.parse "<!ELEMENT r (#PCDATA | x)*><!ELEMENT x EMPTY>", "r") ]
  in
  let { Xml_parser.doc; _ } = Xml_parser.parse_string "<r>aa<x/>bb<x/></r>" in
  let st = Sh.shred m doc in
  Alcotest.(check (list int)) "positions 1,2"
    [ 1; 2 ]
    (List.map
       (fun t -> match List.nth t 1 with T.Int p -> p | _ -> -1)
       (S.tuples st "x"))

let test_fact_of_detached_node () =
  let doc = sample_collection () in
  let m = mapping () in
  let frag = Xml_parser.parse_fragment doc "<sub><title>T</title><auts><name>N</name></auts></sub>" in
  let sub = List.hd frag in
  (* detached nodes have no parent; their fact carries the sentinel *)
  (match Sh.fact_of_element m doc sub with
   | Some (_, _ :: _ :: par :: _) -> checkb "sentinel parent" true (par = T.Int Doc.no_node)
   | _ -> Alcotest.fail "fact expected")

let () =
  Alcotest.run "relmap"
    [
      ( "mapping",
        [
          Alcotest.test_case "paper schema" `Quick test_paper_schema;
          Alcotest.test_case "representations" `Quick test_reprs;
          Alcotest.test_case "columns" `Quick test_columns;
          Alcotest.test_case "column index" `Quick test_column_index;
          Alcotest.test_case "embedded edges" `Quick test_embedded_edges;
          Alcotest.test_case "containers" `Quick test_containers;
          Alcotest.test_case "predicate children" `Quick test_predicate_children;
          Alcotest.test_case "attrs as columns" `Quick test_attrs_as_columns;
          Alcotest.test_case "attributed root kept" `Quick test_root_with_attrs_kept;
          Alcotest.test_case "conflicting DTDs" `Quick test_conflicting_dtds_rejected;
          Alcotest.test_case "schema rendering" `Quick test_schema_to_string;
        ] );
      ( "shred",
        [
          Alcotest.test_case "counts" `Quick test_shred_counts;
          Alcotest.test_case "fact shape" `Quick test_shred_fact_shape;
          Alcotest.test_case "parent links" `Quick test_shred_parent_links;
          Alcotest.test_case "incremental" `Quick test_shred_incremental;
          Alcotest.test_case "path to node" `Quick test_path_to_node;
          Alcotest.test_case "optional embedded" `Quick test_optional_embedded_as_empty;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "dual representation" `Quick test_dual_representation;
          Alcotest.test_case "mixed content" `Quick test_mixed_content_type;
          Alcotest.test_case "ids disjoint" `Quick test_shred_two_docs_id_disjoint;
          Alcotest.test_case "element-only positions" `Quick test_shred_positions_element_only;
          Alcotest.test_case "detached fact" `Quick test_fact_of_detached_node;
        ] );
    ]
