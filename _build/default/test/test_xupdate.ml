open Xic_xml
module XU = Xic_xupdate.Xupdate

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let paper_update =
  {|<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:insert-after select="/review/track[2]/rev[5]/sub[6]">
        <xupdate:element name="sub">
          <title> Taming Web Services </title>
          <auts> <name> Jack </name> </auts>
        </xupdate:element>
      </xupdate:insert-after>
    </xupdate:modifications>|}

let test_parse_paper_example () =
  match XU.parse_string paper_update with
  | [ m ] ->
    checkb "insert-after" true (m.XU.op = XU.Insert_after);
    checks "select" "/review/track[2]/rev[5]/sub[6]"
      (Xic_xpath.Ast.to_string m.XU.select);
    (match m.XU.content with
     | [ XU.Elem ("sub", [], [ XU.Elem ("title", _, _); XU.Elem ("auts", _, _) ]) ] -> ()
     | _ -> Alcotest.fail "unexpected content shape")
  | _ -> Alcotest.fail "expected one modification"

let test_parse_ops () =
  let parse_op op =
    XU.parse_string
      (Printf.sprintf
         {|<xupdate:modifications xmlns:xupdate="x"><xupdate:%s select="/r/a"%s</xupdate:modifications>|}
         op
         (if op = "remove" then "/>"
          else Printf.sprintf "><b/></xupdate:%s>" op))
  in
  checkb "insert-before" true
    ((List.hd (parse_op "insert-before")).XU.op = XU.Insert_before);
  checkb "append" true ((List.hd (parse_op "append")).XU.op = XU.Append);
  checkb "remove" true ((List.hd (parse_op "remove")).XU.op = XU.Remove)

let test_parse_errors () =
  let fails s = match XU.parse_string s with exception XU.Xupdate_error _ -> true | _ -> false in
  checkb "no select" true
    (fails {|<xupdate:modifications xmlns:xupdate="x"><xupdate:append><a/></xupdate:append></xupdate:modifications>|});
  checkb "remove with content" true
    (fails {|<xupdate:modifications xmlns:xupdate="x"><xupdate:remove select="/r"><a/></xupdate:remove></xupdate:modifications>|});
  checkb "unknown op" true
    (fails {|<xupdate:modifications xmlns:xupdate="x"><xupdate:rename select="/r"/></xupdate:modifications>|});
  checkb "wrong root" true (fails "<modifications/>")

let test_roundtrip () =
  let u = XU.parse_string paper_update in
  let u2 = XU.parse_string (XU.to_string u) in
  checkb "roundtrip" true
    (List.for_all2
       (fun a b -> a.XU.op = b.XU.op && a.XU.content = b.XU.content)
       u u2)

let fresh_doc () =
  (Xml_parser.parse_string
     {|<review><track><name>T</name><rev><name>R</name><sub><title>S1</title><auts><name>A</name></auts></sub><sub><title>S2</title><auts><name>B</name></auts></sub></rev></track></review>|})
    .Xml_parser.doc

let subs doc = Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//sub")
let titles doc =
  List.map (fun s -> String.trim (Doc.text_content doc (List.hd (Doc.children doc s)))) (subs doc)

let test_apply_insert_after () =
  let doc = fresh_doc () in
  let u =
    Xic_workload.Conference.insert_submission ~select:"/review/track[1]/rev[1]/sub[1]"
      ~title:"NEW" ~author:"N"
  in
  let _undo = XU.apply doc u in
  Alcotest.(check (list string)) "order" [ "S1"; "NEW"; "S2" ] (titles doc)

let test_apply_insert_before () =
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Insert_before;
        select = Xic_xpath.Parser.parse "//sub[title/text() = \"S2\"]";
        content = [ XU.Elem ("sub", [], [ XU.Elem ("title", [], [ XU.Text "MID" ]);
                                          XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "X" ]) ]) ]) ];
      } ]
  in
  let _ = XU.apply doc u in
  Alcotest.(check (list string)) "order" [ "S1"; "MID"; "S2" ] (titles doc)

let test_apply_append () =
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "//rev";
        content = [ XU.Elem ("sub", [], [ XU.Elem ("title", [], [ XU.Text "LAST" ]);
                                          XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "X" ]) ]) ]) ];
      } ]
  in
  let _ = XU.apply doc u in
  Alcotest.(check (list string)) "appended last" [ "S1"; "S2"; "LAST" ] (titles doc)

let test_apply_remove_and_undo () =
  let doc = fresh_doc () in
  let before = Xml_printer.to_string doc in
  let u = [ { XU.op = XU.Remove; select = Xic_xpath.Parser.parse "//sub[1]"; content = [] } ] in
  let undo = XU.apply doc u in
  Alcotest.(check (list string)) "removed" [ "S2" ] (titles doc);
  XU.rollback doc undo;
  checks "restored exactly" before (Xml_printer.to_string doc)

let test_rollback_insert () =
  let doc = fresh_doc () in
  let before = Xml_printer.to_string doc in
  let n_before = Doc.node_count doc in
  let u =
    Xic_workload.Conference.insert_submission ~select:"//sub[1]" ~title:"X" ~author:"Y"
  in
  let undo = XU.apply doc u in
  checkb "changed" true (Xml_printer.to_string doc <> before);
  XU.rollback doc undo;
  checks "text restored" before (Xml_printer.to_string doc);
  checki "nodes freed" n_before (Doc.node_count doc)

let test_apply_multiple_contents_order () =
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Insert_after;
        select = Xic_xpath.Parser.parse "//sub[1]";
        content =
          [ XU.Elem ("sub", [], [ XU.Elem ("title", [], [ XU.Text "X1" ]);
                                  XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "a" ]) ]) ]);
            XU.Elem ("sub", [], [ XU.Elem ("title", [], [ XU.Text "X2" ]);
                                  XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "b" ]) ]) ]);
          ];
      } ]
  in
  let _ = XU.apply doc u in
  Alcotest.(check (list string)) "fragment order kept" [ "S1"; "X1"; "X2"; "S2" ] (titles doc)

let test_apply_missing_target () =
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Remove; select = Xic_xpath.Parser.parse "//nothing"; content = [] } ]
  in
  match XU.apply doc u with
  | exception XU.Xupdate_error _ -> ()
  | _ -> Alcotest.fail "missing target must fail"

let test_apply_root_guard () =
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Insert_after;
        select = Xic_xpath.Parser.parse "/review";
        content = [ XU.Elem ("x", [], []) ];
      } ]
  in
  match XU.apply doc u with
  | exception XU.Xupdate_error _ -> ()
  | _ -> Alcotest.fail "inserting a sibling of the root must fail"

let test_sequence_of_modifications () =
  let doc = fresh_doc () in
  let before = Xml_printer.to_string doc in
  let u =
    [ { XU.op = XU.Remove; select = Xic_xpath.Parser.parse "//sub[2]"; content = [] };
      { XU.op = XU.Append;
        select = Xic_xpath.Parser.parse "//rev";
        content = [ XU.Elem ("sub", [], [ XU.Elem ("title", [], [ XU.Text "Z" ]);
                                          XU.Elem ("auts", [], [ XU.Elem ("name", [], [ XU.Text "z" ]) ]) ]) ];
      } ]
  in
  let undo = XU.apply doc u in
  Alcotest.(check (list string)) "both applied" [ "S1"; "Z" ] (titles doc);
  XU.rollback doc undo;
  checks "sequence rolled back" before (Xml_printer.to_string doc)

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

let test_literal_content_with_attrs () =
  let u =
    XU.parse_string
      {|<xupdate:modifications xmlns:xupdate="x"><xupdate:append select="/review/track[1]/rev[1]"><sub kind="late"><title>T</title><auts><name>N</name></auts></sub></xupdate:append></xupdate:modifications>|}
  in
  let doc = fresh_doc () in
  let _ = XU.apply doc u in
  let added =
    List.hd
      (Xic_xpath.Eval.select doc (Xic_xpath.Parser.parse "//sub[@kind = \"late\"]"))
  in
  checks "attribute materialized" "late" (Option.get (Doc.attr doc added "kind"))

let test_content_of_node_roundtrip () =
  let doc = fresh_doc () in
  let sub = List.hd (subs doc) in
  let c = XU.content_of_node doc sub in
  let rebuilt = XU.materialize doc c in
  checkb "roundtrip content" true
    (Xml_printer.node_to_string doc sub = Xml_printer.node_to_string doc rebuilt)

let test_undo_is_lifo () =
  (* two modifications touching the same region roll back correctly *)
  let doc = fresh_doc () in
  let before = Xml_printer.to_string doc in
  let u1 =
    Xic_workload.Conference.insert_submission ~select:"//sub[1]" ~title:"A" ~author:"a"
  in
  let undo1 = XU.apply doc u1 in
  let u2 =
    Xic_workload.Conference.insert_submission
      ~select:"//sub[title/text() = \"A\"]" ~title:"B" ~author:"b"
  in
  let undo2 = XU.apply doc u2 in
  XU.rollback doc undo2;
  XU.rollback doc undo1;
  checks "nested undo" before (Xml_printer.to_string doc)

let test_remove_then_reinsert_position () =
  (* removing a middle sibling and rolling back restores its slot *)
  let doc = fresh_doc () in
  let u =
    Xic_workload.Conference.insert_submission ~select:"//sub[1]" ~title:"MID" ~author:"m"
  in
  let _ = XU.apply doc u in
  let before = Xml_printer.to_string doc in
  let remove =
    [ { XU.op = XU.Remove;
        select = Xic_xpath.Parser.parse "//sub[title/text() = \"MID\"]";
        content = [] } ]
  in
  let undo = XU.apply doc remove in
  Alcotest.(check (list string)) "removed from middle" [ "S1"; "S2" ] (titles doc);
  XU.rollback doc undo;
  checks "restored in place" before (Xml_printer.to_string doc)

let test_select_first_in_doc_order () =
  (* when select matches several nodes the first in document order wins *)
  let doc = fresh_doc () in
  let u =
    [ { XU.op = XU.Remove; select = Xic_xpath.Parser.parse "//sub"; content = [] } ]
  in
  let _ = XU.apply doc u in
  Alcotest.(check (list string)) "first sub removed" [ "S2" ] (titles doc)

let test_insert_after_text_anchor_semantics () =
  (* anchoring on a text node is allowed by XPath; the sibling splice
     happens in the parent's (mixed) child list *)
  let { Xml_parser.doc; _ } = Xml_parser.parse_string "<r>ab<x/>cd</r>" in
  let u =
    [ { XU.op = XU.Insert_after;
        select = Xic_xpath.Parser.parse "/r/x";
        content = [ XU.Text "NEW" ] } ]
  in
  (match XU.apply doc u with
   | exception XU.Xupdate_error _ -> Alcotest.fail "text content insert should work"
   | _ -> ());
  checks "mixed content order" "abNEWcd"
    (let b = Buffer.create 8 in
     List.iter
       (fun c -> if Doc.is_text doc c then Buffer.add_string b (Doc.text_content doc c))
       (Doc.children doc (Doc.root doc));
     Buffer.contents b)

let () =
  Alcotest.run "xupdate"
    [
      ( "parser",
        [
          Alcotest.test_case "paper example" `Quick test_parse_paper_example;
          Alcotest.test_case "operations" `Quick test_parse_ops;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "apply",
        [
          Alcotest.test_case "insert-after" `Quick test_apply_insert_after;
          Alcotest.test_case "insert-before" `Quick test_apply_insert_before;
          Alcotest.test_case "append" `Quick test_apply_append;
          Alcotest.test_case "remove + undo" `Quick test_apply_remove_and_undo;
          Alcotest.test_case "rollback insert" `Quick test_rollback_insert;
          Alcotest.test_case "multi-fragment order" `Quick test_apply_multiple_contents_order;
          Alcotest.test_case "missing target" `Quick test_apply_missing_target;
          Alcotest.test_case "root guard" `Quick test_apply_root_guard;
          Alcotest.test_case "modification sequence" `Quick test_sequence_of_modifications;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "literal content attrs" `Quick test_literal_content_with_attrs;
          Alcotest.test_case "content_of_node roundtrip" `Quick test_content_of_node_roundtrip;
          Alcotest.test_case "LIFO undo" `Quick test_undo_is_lifo;
          Alcotest.test_case "remove middle + undo" `Quick test_remove_then_reinsert_position;
          Alcotest.test_case "first match wins" `Quick test_select_first_in_doc_order;
          Alcotest.test_case "text-anchored insert" `Quick test_insert_after_text_anchor_semantics;
        ] );
    ]
