test/test_translate.ml: Alcotest Lazy List String Xic_datalog Xic_relmap Xic_translate Xic_workload Xic_xml Xic_xpath Xic_xquery
