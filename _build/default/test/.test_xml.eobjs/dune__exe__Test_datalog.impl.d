test/test_datalog.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Xic_datalog
