test/test_xupdate.ml: Alcotest Buffer Doc List Option Printf String Xic_workload Xic_xml Xic_xpath Xic_xupdate Xml_parser Xml_printer
