test/test_xpathlog.mli:
