test/test_xml.ml: Alcotest Buffer Doc Dtd List Option Printf QCheck2 QCheck_alcotest String Xic_workload Xic_xml Xml_parser Xml_printer
