test/test_relmap.mli:
