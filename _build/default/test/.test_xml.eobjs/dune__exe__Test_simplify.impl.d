test/test_simplify.ml: Alcotest List Printf QCheck2 QCheck_alcotest String Xic_datalog Xic_simplify
