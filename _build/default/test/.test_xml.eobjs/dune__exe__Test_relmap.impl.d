test/test_relmap.ml: Alcotest Doc Dtd List String Xic_datalog Xic_relmap Xic_workload Xic_xml Xic_xpath Xml_parser
