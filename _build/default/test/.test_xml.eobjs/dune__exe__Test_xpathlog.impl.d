test/test_xpathlog.ml: Alcotest Lazy List Printf Xic_datalog Xic_relmap Xic_workload Xic_xml Xic_xpathlog
