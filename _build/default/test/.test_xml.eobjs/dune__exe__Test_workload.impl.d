test/test_workload.ml: Alcotest Array Constr Hashtbl Lazy List Pattern Printf Repository Xic_core Xic_relmap Xic_workload Xic_xml Xic_xpath Xic_xquery Xic_xupdate
