test/test_xpath.ml: Alcotest Doc List QCheck2 QCheck_alcotest String Xic_xml Xic_xpath Xml_parser
