test/test_xquery.ml: Alcotest List Xic_xml Xic_xpath Xic_xquery Xml_parser
