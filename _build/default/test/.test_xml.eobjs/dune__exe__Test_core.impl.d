test/test_core.ml: Alcotest Buffer Bundle Constr Lazy List Pattern Printf Repository Schema String Templates Xic_core Xic_datalog Xic_relmap Xic_workload Xic_xml Xic_xpath Xic_xupdate
