module T = Xic_datalog.Term
module P = Xic_datalog.Parser
module S = Xic_datalog.Store
module E = Xic_datalog.Eval
module Sub = Xic_datalog.Subsume
module After = Xic_simplify.After
module Opt = Xic_simplify.Optimize
module Simp = Xic_simplify.Simp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let variant_set expected got =
  checki "denial count" (List.length expected) (List.length got);
  List.iter
    (fun e ->
      let e = P.parse_denial e in
      checkb
        (Printf.sprintf "expected %s among [%s]" (T.denial_str e)
           (String.concat " | " (List.map T.denial_str got)))
        true
        (List.exists (Sub.variant e) got))
    expected

(* ------------------------------------------------------------------ *)
(* After (Definition 2)                                                *)
(* ------------------------------------------------------------------ *)

let issn = ":- p(X, Y), p(X, Z), Y != Z"
let issn_update = [ P.parse_atom "p(%i, %t)" ]

let test_after_example4 () =
  (* the four denials of Example 4 *)
  let out = After.denial issn_update (P.parse_denial issn) in
  variant_set
    [
      ":- p(X, Y), p(X, Z), Y != Z";
      ":- p(X, Y), X = %i, Z = %t, Y != Z";
      ":- X = %i, Y = %t, p(X, Z), Y != Z";
      ":- X = %i, Y = %t, X = %i, Z = %t, Y != Z";
    ]
    out

let test_after_no_matching_relation () =
  let d = P.parse_denial ":- q(X, Y)" in
  let out = After.denial issn_update d in
  variant_set [ ":- q(X, Y)" ] out

let test_after_negative_literal () =
  (* ¬p(t̄) gains one disequality branch per argument *)
  let d = P.parse_denial ":- q(X, Y), not p(X, Y)" in
  let out = After.denial issn_update d in
  variant_set
    [
      ":- q(X, Y), not p(X, Y), X != %i";
      ":- q(X, Y), not p(X, Y), Y != %t";
    ]
    out

let test_after_negative_certain_match () =
  (* the addition certainly matches the negated atom: the denial can never
     be violated after the update *)
  let d = P.parse_denial ":- not p(%i, %t)" in
  checki "no denials" 0 (List.length (After.denial issn_update d))

let test_after_aggregate_decrement () =
  let d = P.parse_denial ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) > 4" in
  let u = [ P.parse_atom "sub(%is, %ps, %ir, %t)" ] in
  let out = After.denial u d in
  variant_set
    [
      ":- rev(Ir, _, _, _), Ir = %ir, cnt(sub(_, _, Ir, _)) > 3";
      ":- rev(Ir, _, _, _), Ir != %ir, cnt(sub(_, _, Ir, _)) > 4";
    ]
    out

let test_after_aggregate_unsupported_sum () =
  let d = P.parse_denial ":- q(X), sum(V; p(X, V)) > 10" in
  match After.denial [ P.parse_atom "p(%a, %b)" ] d with
  | exception After.Unsupported _ -> ()
  | _ -> Alcotest.fail "sum aggregates must be rejected under matching updates"

let test_after_two_additions_compose () =
  (* two insertions into the same relation: the bound drops by 2 on the
     doubly-matching branch *)
  let d = P.parse_denial ":- q(G), cnt(p(_, G)) > 9" in
  let u = [ P.parse_atom "p(%x, %g)"; P.parse_atom "p(%y, %g)" ] in
  let out = After.denial u d in
  checkb "a bound of 7 branch exists" true
    (List.exists
       (fun dd ->
         List.exists
           (function
             | T.Agg { T.bound = T.Const (T.Int 7); _ } -> true
             | _ -> false)
           dd.T.body)
       out)

(* ------------------------------------------------------------------ *)
(* After for deletions                                                 *)
(* ------------------------------------------------------------------ *)

let del atoms = List.map P.parse_atom atoms

let test_after_del_positive () =
  (* deleting p(%i, %t): a p-literal survives iff it differs somewhere *)
  let out =
    After.denial_mixed ~ins:[] ~del:(del [ "p(%i, %t)" ]) (P.parse_denial ":- p(X, Y), q(Y)")
  in
  variant_set
    [ ":- p(X, Y), q(Y), X != %i"; ":- p(X, Y), q(Y), Y != %t" ]
    out

let test_after_del_positive_certain () =
  (* the denial's only support is exactly the deleted tuple *)
  let out =
    After.denial_mixed ~ins:[] ~del:(del [ {| p("a") |} ])
      (P.parse_denial {| :- p("a") |})
  in
  checki "denial disappears" 0 (List.length out)

let test_after_del_negation () =
  (* ¬q(X,Y) becomes true if the matching tuple is being deleted *)
  let out =
    After.denial_mixed ~ins:[] ~del:(del [ "q(%a, %b)" ])
      (P.parse_denial ":- p(X, Y), not q(X, Y)")
  in
  variant_set
    [ ":- p(X, Y), not q(X, Y)"; ":- p(X, Y), X = %a, Y = %b" ]
    out

let test_after_del_negation_local_unsupported () =
  match
    After.denial_mixed ~ins:[] ~del:(del [ "q(%a, %b)" ])
      (P.parse_denial ":- p(X), not q(X, _)")
  with
  | exception After.Unsupported _ -> ()
  | _ -> Alcotest.fail "negation with locals under deletion must be rejected"

let test_after_del_aggregate_increment () =
  (* removing a submission raises the present-state bound *)
  let out =
    After.denial_mixed ~ins:[] ~del:(del [ "sub(%is, %ps, %ir, %t)" ])
      (P.parse_denial ":- rev(Ir, _, _, _), cnt(sub(_, _, Ir, _)) < 1")
  in
  variant_set
    [
      ":- rev(Ir, _, _, _), Ir = %ir, cnt(sub(_, _, Ir, _)) < 2";
      ":- rev(Ir, _, _, _), Ir != %ir, cnt(sub(_, _, Ir, _)) < 1";
    ]
    out

let test_after_mixed_replace () =
  (* replace one tuple by another: both transformations compose *)
  let out =
    After.denial_mixed ~ins:(del [ "p(%new)" ]) ~del:(del [ "p(%old)" ])
      (P.parse_denial ":- p(X), q(X)")
  in
  (* transactions are assumed disjoint (%new ≠ %old), so the inserted
     tuple's branch carries no disequality; After leaves the equality to
     Optimize *)
  variant_set [ ":- p(X), q(X), X != %old"; ":- X = %new, q(X)" ] out

(* ------------------------------------------------------------------ *)
(* Optimize                                                            *)
(* ------------------------------------------------------------------ *)

let test_optimize_tautology () =
  let out = Opt.optimize ~hypotheses:[] [ P.parse_denial ":- p(X), %a != %a" ] in
  checki "tautology dropped" 0 (List.length out)

let test_optimize_ground_true () =
  let out = Opt.optimize ~hypotheses:[] [ P.parse_denial {| :- p(X), "a" = "a" |} ] in
  variant_set [ ":- p(X)" ] out

let test_optimize_equality_inlining () =
  let out = Opt.optimize ~hypotheses:[] [ P.parse_denial ":- p(X, Y), X = %i, Y = %t" ] in
  variant_set [ ":- p(%i, %t)" ] out

let test_optimize_subsumed_by_hypothesis () =
  let hyp = P.parse_denial ":- sub(%is, _, _, _)" in
  let out =
    Opt.optimize ~hypotheses:[ hyp ]
      [ P.parse_denial ":- rev(Ir, _, _, N), sub(%is, _, Ir, _)" ]
  in
  checki "subsumed removed" 0 (List.length out)

let test_optimize_variants_dedup () =
  let out =
    Opt.optimize ~hypotheses:[]
      [ P.parse_denial ":- p(%i, Y), Y != %t"; P.parse_denial ":- p(%i, Z), %t != Z" ]
  in
  checki "variants collapse" 1 (List.length out)

let test_optimize_redundant_atom () =
  let out =
    Opt.optimize ~hypotheses:[]
      [ P.parse_denial ":- rev(_, _, _, R), rev(%a, _, _, R), q(R)" ]
  in
  variant_set [ ":- rev(%a, _, _, R), q(R)" ] out

let test_optimize_agg_trivial_bounds () =
  checki "cnt >= 0 erased" 1
    (List.length
       (Opt.optimize ~hypotheses:[]
          [ P.parse_denial ":- p(X), cnt(q(_)) >= 0" ]));
  checkb "body shrank" true
    (match Opt.optimize ~hypotheses:[] [ P.parse_denial ":- p(X), cnt(q(_)) >= 0" ] with
     | [ d ] -> List.length d.T.body = 1
     | _ -> false);
  checki "cnt < 0 drops denial" 0
    (List.length
       (Opt.optimize ~hypotheses:[] [ P.parse_denial ":- p(X), cnt(q(_)) < 0" ]))

(* ------------------------------------------------------------------ *)
(* Simp on the paper's examples                                        *)
(* ------------------------------------------------------------------ *)

let test_simp_example5 () =
  variant_set
    [ ":- p(%i, Y), Y != %t" ]
    (Simp.simp ~update:issn_update [ P.parse_denial issn ])

let conflict_gamma =
  [
    P.parse_denial ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)";
    P.parse_denial
      ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, A), aut(_, _, Ip, R), aut(_, _, Ip, A)";
  ]

let sub_update =
  [ P.parse_atom "sub(%is, %ps, %ir, %t)"; P.parse_atom "auts(%ia, %pa, %is, %n)" ]

let delta =
  Simp.freshness_hypotheses ~fresh:[ "is"; "ia" ]
    ~children:(function "sub" -> [ ("auts", 4) ] | _ -> [])
    ~arity:(function "sub" | "auts" -> 4 | p -> Alcotest.fail ("arity of " ^ p))
    sub_update

let test_freshness_hypotheses () =
  variant_set
    [ ":- sub(%is, _, _, _)"; ":- auts(_, _, %is, _)"; ":- auts(%ia, _, _, _)" ]
    delta

let test_simp_example6 () =
  variant_set
    [
      ":- rev(%ir, _, _, %n)";
      ":- rev(%ir, _, _, R), aut(_, _, Ip, %n), aut(_, _, Ip, R)";
    ]
    (Simp.simp ~hypotheses:delta ~update:sub_update conflict_gamma)

let test_simp_example7 () =
  variant_set
    [ ":- rev(%ir, _, _, _), cntd(sub(_, _, %ir, _)) > 3" ]
    (Simp.simp ~hypotheses:delta ~update:sub_update
       [ P.parse_denial ":- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 4" ])

let test_simp_irrelevant_update () =
  (* an update over unrelated relations leaves nothing to check *)
  let out =
    Simp.simp ~update:[ P.parse_atom "pub(%ip, %pp, %d, %t)" ] conflict_gamma
  in
  checki "no residual checks" 0 (List.length out)

(* ------------------------------------------------------------------ *)
(* Theorem 1 as a property                                             *)
(* ------------------------------------------------------------------ *)

(* Random ground stores and updates over p/2, q/2; constraints chosen from
   a pool.  For every consistent state D, D^U |= Γ iff D |= Simp_U(Γ). *)
let constraint_pool =
  [
    ":- p(X, Y), q(X, Y)";
    ":- p(X, X)";
    ":- p(X, Y), p(X, Z), Y != Z";
    ":- p(X, Y), q(Y, Z)";
    ":- q(X, _), cnt(p(X, _)) > 2";
    ":- p(X, Y), not q(X, Y)";
    ":- p(X, _), not q(X, _)";
    ":- q(X, Y), not p(Y, _)";
  ]

let gen_case =
  let open QCheck2.Gen in
  let const = map (fun n -> T.Const (T.Int n)) (int_bound 3) in
  let atom rel = map2 (fun a b -> { T.pred = rel; T.args = [ a; b ] }) const const in
  let fact = oneof [ atom "p"; atom "q" ] in
  triple
    (list_size (int_bound 10) fact)            (* initial facts *)
    (list_size (int_range 1 3) fact)            (* insertion transaction *)
    (oneofl constraint_pool)

let apply_update st u =
  let st' = S.copy st in
  List.iter (fun (a : T.atom) ->
      S.add st' a.T.pred
        (List.map
           (function T.Const c -> c | _ -> Alcotest.fail "ground update expected")
           a.T.args))
    u;
  st'

let prop_theorem1 =
  QCheck2.Test.make ~name:"Theorem 1: D |= Simp_U(Γ) iff D^U |= Γ" ~count:500
    gen_case (fun (facts, update, csrc) ->
      let gamma = [ P.parse_denial csrc ] in
      let store =
        S.of_facts
          (List.map
             (fun (a : T.atom) ->
               ( a.T.pred,
                 List.map (function T.Const c -> c | _ -> assert false) a.T.args ))
             facts)
      in
      (* precondition: D consistent with Γ *)
      QCheck2.assume (E.consistent store gamma);
      match Simp.simp ~update gamma with
      | simplified ->
        let after_store = apply_update store update in
        let holds_after = E.consistent after_store gamma in
        let simp_now = E.consistent store simplified in
        holds_after = simp_now
      | exception After.Unsupported _ -> QCheck2.assume_fail ())

let dedup_facts facts =
  List.sort_uniq compare facts

let prop_after_deletions =
  (* the deletion transformation is state-equivalent under set semantics
     and effective deletions (the deleted tuples exist) *)
  QCheck2.Test.make ~name:"After(del): D |= After(Γ) iff D\\U |= Γ" ~count:500
    gen_case (fun (facts, doomed_hint, csrc) ->
      let gamma = [ P.parse_denial csrc ] in
      let facts = dedup_facts facts in
      QCheck2.assume (facts <> []);
      (* effective deletions: pick existing tuples, as many as hinted *)
      let doomed =
        List.filteri (fun i _ -> i < List.length doomed_hint) facts
      in
      let store =
        S.of_facts
          (List.map
             (fun (a : T.atom) ->
               ( a.T.pred,
                 List.map (function T.Const c -> c | _ -> assert false) a.T.args ))
             facts)
      in
      match After.denials_mixed ~ins:[] ~del:doomed gamma with
      | after ->
        let after_store = S.copy store in
        List.iter
          (fun (a : T.atom) ->
            ignore
              (S.remove after_store a.T.pred
                 (List.map
                    (function T.Const c -> c | _ -> assert false)
                    a.T.args)))
          (dedup_facts doomed)
        ;
        E.consistent after_store gamma = E.consistent store after
      | exception After.Unsupported _ -> QCheck2.assume_fail ())

let prop_after_equivalence =
  (* After alone must already be state-equivalent (without optimization) *)
  QCheck2.Test.make ~name:"After: D |= After_U(Γ) iff D^U |= Γ" ~count:500
    gen_case (fun (facts, update, csrc) ->
      let gamma = [ P.parse_denial csrc ] in
      let store =
        S.of_facts
          (List.map
             (fun (a : T.atom) ->
               ( a.T.pred,
                 List.map (function T.Const c -> c | _ -> assert false) a.T.args ))
             facts)
      in
      match After.denials update gamma with
      | after ->
        let after_store = apply_update store update in
        E.consistent after_store gamma = E.consistent store after
      | exception After.Unsupported _ -> QCheck2.assume_fail ())

(* ------------------------------------------------------------------ *)
(* Second wave                                                         *)
(* ------------------------------------------------------------------ *)

let test_optimize_idempotent () =
  (* Optimize is a closure operator on our example sets *)
  List.iter
    (fun srcs ->
      let ds = List.map P.parse_denial srcs in
      let once = Opt.optimize ~hypotheses:delta ds in
      let twice = Opt.optimize ~hypotheses:delta once in
      checki (String.concat "|" srcs) (List.length once) (List.length twice);
      List.iter2
        (fun a b -> checkb "same denials" true (Sub.variant a b))
        once twice)
    [
      [ ":- p(X, Y), p(X, Z), Y != Z" ];
      [ ":- rev(Ir, _, _, R), sub(Is, _, Ir, _), auts(_, _, Is, R)" ];
      [ ":- p(X), q(X)"; ":- p(Y), q(Y), r(Y)" ];
    ]

let test_simp_composes_with_two_patterns () =
  (* two successive updates: simplify w.r.t. the first, then the second *)
  let gamma = [ P.parse_denial issn ] in
  let s1 = Simp.simp ~update:[ P.parse_atom "p(%i1, %t1)" ] gamma in
  (* the simplified set itself can be simplified again for a second
     insertion (the paper's compositionality of the framework) *)
  let s2 = Simp.simp ~update:[ P.parse_atom "p(%i2, %t2)" ] s1 in
  checkb "still one check" true (List.length s2 >= 1);
  (* a store consistent with gamma: checking s1 then (after applying u1)
     s2 equals checking gamma after both updates *)
  let store = S.of_facts [ ("p", [ T.Str "a"; T.Str "x" ]) ] in
  let v1 = [ ("i1", T.Str "b"); ("t1", T.Str "y") ] in
  let v2 = [ ("i2", T.Str "b"); ("t2", T.Str "z") ] in
  checkb "first ok" true (not (List.exists (E.violated ~params:v1 store) s1));
  S.add store "p" [ T.Str "b"; T.Str "y" ];
  checkb "second rejected (same id, new title)" true
    (List.exists (E.violated ~params:(v1 @ v2) store) s2)

let test_freshness_resolution_rule () =
  (* :- p(%k,_) as hypothesis discharges X != %k when X is bound by p *)
  let hyp = P.parse_denial ":- p(%k, _)" in
  let out =
    Opt.optimize ~hypotheses:[ hyp ]
      [ P.parse_denial ":- p(X, Y), X != %k, q(Y)" ]
  in
  variant_set [ ":- p(X, Y), q(Y)" ] out;
  let out2 =
    Opt.optimize ~hypotheses:[ hyp ]
      [ P.parse_denial ":- p(X, Y), X = %k, q(Y)" ]
  in
  checki "equality makes it trivial" 0 (List.length out2)

let test_after_preserves_labels () =
  let d = P.parse_denial ":- p(X, Y)" in
  let d = { d with T.label = Some "tagged" } in
  let out = After.denial issn_update d in
  checkb "labels survive" true
    (List.for_all (fun o -> o.T.label = Some "tagged") out)

let test_simp_no_hypotheses_still_sound () =
  (* without freshness hypotheses the cntd simplification keeps more
     branches but must not drop the instantiated one *)
  let out =
    Simp.simp ~update:sub_update
      [ P.parse_denial ":- rev(Ir, _, _, _), cntd(sub(_, _, Ir, _)) > 4" ]
  in
  checkb "instantiated branch present" true
    (List.exists
       (fun d ->
         List.exists
           (function
             | T.Agg { T.bound = T.Const (T.Int 3); _ } -> true
             | _ -> false)
           d.T.body)
       out)

let () =
  Alcotest.run "simplify"
    [
      ( "after",
        [
          Alcotest.test_case "example 4" `Quick test_after_example4;
          Alcotest.test_case "unrelated relation" `Quick test_after_no_matching_relation;
          Alcotest.test_case "negative literal" `Quick test_after_negative_literal;
          Alcotest.test_case "negative certain match" `Quick test_after_negative_certain_match;
          Alcotest.test_case "aggregate decrement" `Quick test_after_aggregate_decrement;
          Alcotest.test_case "sum unsupported" `Quick test_after_aggregate_unsupported_sum;
          Alcotest.test_case "two additions compose" `Quick test_after_two_additions_compose;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "tautology" `Quick test_optimize_tautology;
          Alcotest.test_case "ground true literal" `Quick test_optimize_ground_true;
          Alcotest.test_case "equality inlining" `Quick test_optimize_equality_inlining;
          Alcotest.test_case "hypothesis subsumption" `Quick test_optimize_subsumed_by_hypothesis;
          Alcotest.test_case "variant dedup" `Quick test_optimize_variants_dedup;
          Alcotest.test_case "redundant atom" `Quick test_optimize_redundant_atom;
          Alcotest.test_case "trivial aggregate bounds" `Quick test_optimize_agg_trivial_bounds;
        ] );
      ( "simp",
        [
          Alcotest.test_case "example 5 (ISSN)" `Quick test_simp_example5;
          Alcotest.test_case "freshness hypotheses" `Quick test_freshness_hypotheses;
          Alcotest.test_case "example 6 (conflict)" `Quick test_simp_example6;
          Alcotest.test_case "example 7 (aggregate)" `Quick test_simp_example7;
          Alcotest.test_case "irrelevant update" `Quick test_simp_irrelevant_update;
        ] );
      ( "after (deletions)",
        [
          Alcotest.test_case "positive literal" `Quick test_after_del_positive;
          Alcotest.test_case "certain deletion" `Quick test_after_del_positive_certain;
          Alcotest.test_case "negation" `Quick test_after_del_negation;
          Alcotest.test_case "negation locals unsupported" `Quick
            test_after_del_negation_local_unsupported;
          Alcotest.test_case "aggregate increment" `Quick test_after_del_aggregate_increment;
          Alcotest.test_case "mixed replace" `Quick test_after_mixed_replace;
        ] );
      ( "second wave",
        [
          Alcotest.test_case "optimize idempotent" `Quick test_optimize_idempotent;
          Alcotest.test_case "simp composes" `Quick test_simp_composes_with_two_patterns;
          Alcotest.test_case "freshness resolution" `Quick test_freshness_resolution_rule;
          Alcotest.test_case "labels survive" `Quick test_after_preserves_labels;
          Alcotest.test_case "no hypotheses" `Quick test_simp_no_hypotheses_still_sound;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_theorem1;
          QCheck_alcotest.to_alcotest prop_after_equivalence;
          QCheck_alcotest.to_alcotest prop_after_deletions;
        ] );
    ]
