(** Evaluation of denials against a fact store.

    A denial is {e violated} when its body is satisfiable; [violation]
    searches for a satisfying substitution with a simple
    most-bound-literal-first join strategy, exploiting the first-column
    index of {!Store}.  Negated and aggregate literals are scheduled once
    their outer variables are bound (safe evaluation); unsafe denials
    raise {!Unsafe}. *)

exception Unsafe of string

let unsafe fmt = Printf.ksprintf (fun s -> raise (Unsafe s)) fmt

(* ------------------------------------------------------------------ *)
(* Step budget                                                         *)
(* ------------------------------------------------------------------ *)

exception Budget_exceeded

let budget : int ref option ref = ref None

let tick n =
  match !budget with
  | None -> ()
  | Some r ->
    r := !r - n;
    if !r <= 0 then raise Budget_exceeded

let with_budget ~steps f =
  let saved = !budget in
  budget := Some (ref steps);
  Fun.protect ~finally:(fun () -> budget := saved) f

(* As {!Xic_xpath.Eval.with_meter}: report the steps [f] consumes
   without changing which evaluations succeed. *)
let with_meter f =
  match !budget with
  | Some r ->
    let before = !r in
    let v = f () in
    (v, before - !r)
  | None ->
    let r = ref max_int in
    budget := Some r;
    Fun.protect
      ~finally:(fun () -> budget := None)
      (fun () ->
        let v = f () in
        (v, max_int - !r))

type env = (string, Term.const) Hashtbl.t

let lookup (env : env) v = Hashtbl.find_opt env v

let term_value env = function
  | Term.Var v -> (match lookup env v with Some c -> Some c | None -> None)
  | Term.Const c -> Some c
  | Term.Param p -> unsafe "unresolved parameter %%%s at evaluation time" p

(* Match a tuple against atom args under [env] plus prior local bindings;
   returns the list of new bindings (appended to [prior]) or None.  A
   variable occurring twice must match equal constants. *)
let match_tuple ?(prior = []) env (args : Term.term list) (tup : Store.tuple) =
  tick 1;
  let rec go acc args tup =
    match (args, tup) with
    | [], [] -> Some acc
    | a :: args', c :: tup' ->
      (match a with
       | Term.Const c' -> if c = c' then go acc args' tup' else None
       | Term.Param p -> unsafe "unresolved parameter %%%s in atom" p
       | Term.Var v ->
         (match lookup env v with
          | Some c' -> if c = c' then go acc args' tup' else None
          | None ->
            (match List.assoc_opt v acc with
             | Some c' -> if c = c' then go acc args' tup' else None
             | None -> go ((v, c) :: acc) args' tup')))
    | _ -> None
  in
  go prior args tup

(* Probe the leftmost bound column: the first column (node id) when it
   is ground, else any later ground column through the store's lazy
   secondary indexes.  Downward joins (parent column bound) and value
   joins (text column bound) would otherwise enumerate the whole
   relation — on delta evaluation those scans dwarfed the delta. *)
let candidate_tuples store env (a : Term.atom) =
  let rec probe col = function
    | [] -> Store.tuples store a.Term.pred
    | t :: rest ->
      (match term_value env t with
       | Some key ->
         if col = 0 then Store.tuples_with_key store a.Term.pred key
         else Store.tuples_with_col store a.Term.pred col key
       | None -> probe (col + 1) rest)
  in
  probe 0 a.Term.args

(* Number of argument positions already bound; used to pick the most
   selective literal first. *)
let boundness env (a : Term.atom) =
  List.fold_left
    (fun n t -> match term_value env t with Some _ -> n + 1 | None -> n)
    0 a.Term.args

let ground_term env t = term_value env t <> None


(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let const_int = function
  | Term.Int i -> i
  | Term.Str s ->
    (match int_of_string_opt s with
     | Some i -> i
     | None -> unsafe "aggregate over non-integer value %S" s)

(* All consistent local-binding vectors of joined tuples matching the
   conjunctive pattern. *)
let agg_matches store env (g : Term.agg) =
  let candidate_with_prior prior (a : Term.atom) =
    (* Use the indexes also when an argument is bound by a prior local
       binding rather than the outer environment. *)
    let value t =
      match term_value env t with
      | Some c -> Some c
      | None ->
        (match t with Term.Var v -> List.assoc_opt v prior | _ -> None)
    in
    let rec probe col = function
      | [] -> Store.tuples store a.Term.pred
      | t :: rest ->
        (match value t with
         | Some key ->
           if col = 0 then Store.tuples_with_key store a.Term.pred key
           else Store.tuples_with_col store a.Term.pred col key
         | None -> probe (col + 1) rest)
    in
    probe 0 a.Term.args
  in
  List.fold_left
    (fun vecs atom ->
      List.concat_map
        (fun prior ->
          List.filter_map
            (fun tup -> match_tuple ~prior env atom.Term.args tup)
            (candidate_with_prior prior atom))
        vecs)
    [ [] ] g.Term.atoms

let eval_agg store env (g : Term.agg) =
  let matches = agg_matches store env g in
  let target_values () =
    match g.Term.target with
    | None -> unsafe "aggregate %s requires a target term" (Term.agg_op_str g.Term.op)
    | Some (Term.Const c) -> List.map (fun _ -> c) matches
    | Some (Term.Param p) -> unsafe "unresolved parameter %%%s in aggregate" p
    | Some (Term.Var v) ->
      List.map
        (fun binds ->
          match List.assoc_opt v binds with
          | Some c -> c
          | None ->
            (match lookup env v with
             | Some c -> c
             | None -> unsafe "aggregate target %s not bound by the aggregated atom" v))
        matches
  in
  match g.Term.op with
  | Term.Cnt -> Term.Int (List.length matches)
  | Term.CntD ->
    (match g.Term.target with
     | Some _ -> Term.Int (List.length (List.sort_uniq compare (target_values ())))
     | None ->
       Term.Int
         (List.length (List.sort_uniq compare (List.map (List.sort compare) matches))))
  | Term.Sum -> Term.Int (List.fold_left (fun a c -> a + const_int c) 0 (target_values ()))
  | Term.SumD ->
    Term.Int
      (List.fold_left (fun a c -> a + const_int c) 0
         (List.sort_uniq compare (target_values ())))
  | Term.Max ->
    (match target_values () with
     | [] -> unsafe "max over an empty aggregate"
     | c :: cs -> List.fold_left max c cs)
  | Term.Min ->
    (match target_values () with
     | [] -> unsafe "min over an empty aggregate"
     | c :: cs -> List.fold_left min c cs)

(* An aggregate is evaluable once every variable it shares with the rest
   of the computation is bound; its local variables never are. *)
let agg_ready body env (g : Term.agg) =
  let local = Term.agg_local_vars body (g : Term.agg) in
  let inner_vars = List.concat_map Term.atom_vars g.Term.atoms in
  let needed =
    List.filter (fun v -> not (List.mem v local)) inner_vars
    @ Term.term_vars g.Term.bound
    @ (match g.Term.target with
       | Some (Term.Var v) when not (List.mem v inner_vars) -> [ v ]
       | _ -> [])
  in
  List.for_all (fun v -> lookup env v <> None) needed

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* Pick the next literal to process.  Preference order:
   1. a ground comparison (cheap test),
   2. an equality that binds a variable,
   3. a ready negation or aggregate (tests, no branching),
   4. the positive literal with the most bound arguments (join step). *)
let pick_literal body env lits =
  let ready_cmp = function
    | Term.Cmp (_, t1, t2) -> ground_term env t1 && ground_term env t2
    | _ -> false
  in
  let binding_eq = function
    | Term.Cmp (Term.Eq, Term.Var v, t) -> lookup env v = None && ground_term env t
    | Term.Cmp (Term.Eq, t, Term.Var v) -> lookup env v = None && ground_term env t
    | _ -> false
  in
  (* A negated atom is ready once every variable it shares with other
     literals is bound; variables occurring only inside it are existential
     locals (anti-join semantics). *)
  let neg_ready (a : Term.atom) =
    let this = Term.Not a in
    List.for_all
      (fun v ->
        lookup env v <> None
        || not
             (List.exists
                (fun l -> l != this && l <> this && List.mem v (Term.lit_vars l))
                body))
      (Term.atom_vars a)
  in
  let ready_neg_or_agg = function
    | Term.Not a -> neg_ready a
    | Term.Agg g -> agg_ready body env g
    | _ -> false
  in
  let take p =
    let rec go acc = function
      | [] -> None
      | l :: rest when p l -> Some (l, List.rev_append acc rest)
      | l :: rest -> go (l :: acc) rest
    in
    go [] lits
  in
  match take ready_cmp with
  | Some r -> Some r
  | None ->
    (match take binding_eq with
     | Some r -> Some r
     | None ->
       (match take ready_neg_or_agg with
        | Some r -> Some r
        | None ->
          let rels = List.filter (function Term.Rel _ -> true | _ -> false) lits in
          (match rels with
           | [] -> None
           | _ ->
             let best =
               List.fold_left
                 (fun best l ->
                   match (l, best) with
                   | Term.Rel a, None -> Some (l, boundness env a)
                   | Term.Rel a, Some (_, s) when boundness env a > s ->
                     Some (l, boundness env a)
                   | _ -> best)
                 None rels
             in
             (match best with
              | Some (l, _) ->
                let rec remove_first = function
                  | [] -> []
                  | x :: rest -> if x == l then rest else x :: remove_first rest
                in
                Some (l, remove_first lits)
              | None -> None))))

let rec solve store body env lits k =
  tick 1;
  match lits with
  | [] -> k env
  | _ ->
    (match pick_literal body env lits with
     | None ->
       unsafe "denial is not safe: cannot schedule remaining literals [%s]"
         (String.concat ", " (List.map Term.lit_str lits))
     | Some (lit, rest) ->
       (match lit with
        | Term.Cmp (op, t1, t2) ->
          (match (term_value env t1, term_value env t2) with
           | Some c1, Some c2 -> if Term.eval_cmp op c1 c2 then solve store body env rest k else false
           | None, Some c ->
             (match t1 with
              | Term.Var v when op = Term.Eq ->
                Hashtbl.add env v c;
                let r = solve store body env rest k in
                Hashtbl.remove env v;
                r
              | _ -> unsafe "unbound term in comparison %s" (Term.lit_str lit))
           | Some c, None ->
             (match t2 with
              | Term.Var v when op = Term.Eq ->
                Hashtbl.add env v c;
                let r = solve store body env rest k in
                Hashtbl.remove env v;
                r
              | _ -> unsafe "unbound term in comparison %s" (Term.lit_str lit))
           | None, None -> unsafe "unbound comparison %s" (Term.lit_str lit))
        | Term.Not a ->
          let tuples = candidate_tuples store env a in
          let holds = List.exists (fun t -> match_tuple env a.Term.args t <> None) tuples in
          if holds then false else solve store body env rest k
        | Term.Agg g ->
          let v = eval_agg store env g in
          (match term_value env g.Term.bound with
           | Some b -> if Term.eval_cmp g.Term.acmp v b then solve store body env rest k else false
           | None -> unsafe "unbound aggregate bound in %s" (Term.lit_str lit))
        | Term.Rel a ->
          let tuples = candidate_tuples store env a in
          List.exists
            (fun tup ->
              match match_tuple env a.Term.args tup with
              | None -> false
              | Some binds ->
                List.iter (fun (v, c) -> Hashtbl.add env v c) binds;
                let r = solve store body env rest k in
                List.iter (fun (v, _) -> Hashtbl.remove env v) binds;
                r)
            tuples))

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let violation_untraced ?(params = []) store (d : Term.denial) =
  let d = Subst.apply_params_denial params d in
  (match Term.denial_params d with
   | [] -> ()
   | ps -> unsafe "denial still contains parameters: %s" (String.concat ", " ps));
  let env : env = Hashtbl.create 16 in
  let found = ref None in
  let _ =
    solve store d.Term.body env d.Term.body (fun env ->
        found := Some (Hashtbl.fold (fun v c acc -> (v, c) :: acc) env []);
        true)
  in
  !found

let c_datalog_steps = Xic_obs.Obs.Metrics.counter "datalog_steps"

let violation ?params store d =
  if not (Xic_obs.Obs.Trace.is_enabled ()) then
    violation_untraced ?params store d
  else
    Xic_obs.Obs.Trace.with_span "datalog:eval" (fun () ->
        let v, steps =
          with_meter (fun () -> violation_untraced ?params store d)
        in
        Xic_obs.Obs.Trace.add_attr "steps" (string_of_int steps);
        Xic_obs.Obs.Metrics.add c_datalog_steps steps;
        v)

let violated ?params store d = violation ?params store d <> None

let violations ?(params = []) store (d : Term.denial) =
  let d = Subst.apply_params_denial params d in
  let env : env = Hashtbl.create 16 in
  let acc = ref [] in
  let _ =
    solve store d.Term.body env d.Term.body (fun env ->
        acc := Hashtbl.fold (fun v c l -> (v, c) :: l) env [] :: !acc;
        false)
  in
  List.rev !acc

let consistent ?params store denials =
  List.for_all (fun d -> not (violated ?params store d)) denials

let first_violated ?params store denials =
  List.find_opt (fun d -> violated ?params store d) denials
