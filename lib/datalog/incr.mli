(** Incremental (delta-driven) maintenance of materialized denial
    results — the semi-naive layer behind [Repository.set_incremental].

    Each denial's violation witnesses (bindings of its positive-literal
    variables) are materialized as a relation in a private view store.
    {!apply_delta} maintains them from a net fact {!Delta} instead of
    re-running the denial over the whole store: untouched denials are
    skipped, monotone denials get exact delta evaluation (deletion
    re-verification + ΔR-bound residual joins), denials with negation or
    aggregates are re-evaluated in full when touched.  The view uses set
    semantics, so it is [Store.equal]-comparable with a from-scratch
    recompute (oracle route 8). *)

type t

type stats = {
  mutable evals : int;  (** residual delta evaluations *)
  mutable reverifies : int;  (** view rows re-checked after deletions *)
  mutable recomputes : int;  (** full re-evaluations (Not/Agg denials) *)
  mutable skipped : int;  (** denials untouched by a delta *)
  mutable rows_added : int;
  mutable rows_removed : int;
}

val create : (string * Term.denial list) list -> t
(** One view relation per (constraint, denial).  The view starts empty;
    call {!initialize} against the current store before applying deltas.
    @raise Eval.Unsafe if any denial contains parameters (only full
    constraint denials are maintainable; simplified checks stay on the
    per-update path). *)

val initialize : t -> Store.t -> unit
(** (Re)materialize every denial's witnesses from scratch. *)

val apply_delta : t -> Store.t -> Delta.t -> unit
(** Maintain the views given the net delta that took the store to its
    current (post-mutation) state.  [store] must already include the
    delta.
    @raise Eval.Unsafe / Eval.Budget_exceeded as {!Eval.violations}. *)

val violated : t -> string list
(** Names of constraints with at least one materialized witness, in
    constraint order. *)

val view : t -> Store.t
(** The materialized witness store (read-only by convention). *)

val stats : t -> stats
val entry_count : t -> int
val stats_line : t -> string
