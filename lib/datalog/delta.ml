(** Net fact delta of a batch of store mutations.

    The mirror ([Xic_relmap.Mirror]) records every tuple it adds to or
    removes from the shredded store here.  The delta keeps the {e net}
    multiset — a tuple inserted and then deleted inside one batch
    cancels to nothing — which is exactly what the semi-naive
    incremental evaluator ({!Incr}) needs: only net changes can affect a
    denial's materialized result.  Gross counters are kept alongside for
    the [--delta-stats] report. *)

module Symbol = Xic_symbol.Symbol

type key = Symbol.t * Store.tuple

type t = {
  net : (key, int ref) Hashtbl.t;  (* +n inserted, -n deleted, never 0 *)
  mutable gross_added : int;
  mutable gross_removed : int;
}

let create () = { net = Hashtbl.create 32; gross_added = 0; gross_removed = 0 }

let bump t key by =
  match Hashtbl.find_opt t.net key with
  | Some r ->
    r := !r + by;
    if !r = 0 then Hashtbl.remove t.net key
  | None -> Hashtbl.add t.net key (ref by)

let add t sym tup =
  t.gross_added <- t.gross_added + 1;
  bump t (sym, tup) 1

let remove t sym tup =
  t.gross_removed <- t.gross_removed + 1;
  bump t (sym, tup) (-1)

let is_empty t = Hashtbl.length t.net = 0
let gross_added t = t.gross_added
let gross_removed t = t.gross_removed

let added t =
  Hashtbl.fold
    (fun (sym, tup) r acc -> if !r > 0 then (sym, tup, !r) :: acc else acc)
    t.net []

let removed t =
  Hashtbl.fold
    (fun (sym, tup) r acc -> if !r < 0 then (sym, tup, - !r) :: acc else acc)
    t.net []

let touched t =
  let syms = Hashtbl.create 8 in
  Hashtbl.iter (fun (sym, _) _ -> Hashtbl.replace syms sym ()) t.net;
  Hashtbl.fold (fun sym () acc -> sym :: acc) syms []

let clear t =
  Hashtbl.reset t.net;
  t.gross_added <- 0;
  t.gross_removed <- 0

let compose ~into t =
  Hashtbl.iter (fun key r -> bump into key !r) t.net;
  into.gross_added <- into.gross_added + t.gross_added;
  into.gross_removed <- into.gross_removed + t.gross_removed

(* Net-multiset equality; gross counters are bookkeeping, not content. *)
let equal a b =
  Hashtbl.length a.net = Hashtbl.length b.net
  && Hashtbl.fold
       (fun key r ok ->
         ok
         &&
         match Hashtbl.find_opt b.net key with
         | Some r' -> !r = !r'
         | None -> false)
       a.net true

let pp ppf t =
  let line verb (sym, tup, n) =
    Fmt.pf ppf "@[%s %s(%s)%s@]@." verb (Symbol.name sym)
      (String.concat ", " (List.map Term.const_str tup))
      (if n = 1 then "" else Printf.sprintf " x%d" n)
  in
  List.iter (line "+") (added t);
  List.iter (line "-") (removed t)
