(** Evaluation of denials against a fact store.

    A denial is {e violated} when its body is satisfiable.  The solver
    uses a most-bound-literal-first join strategy over the first-column
    index of {!Store}; negated and aggregate literals are scheduled once
    the variables they share with the rest of the body are bound (safe
    evaluation, with anti-join semantics for negations whose remaining
    variables are purely local). *)

exception Unsafe of string
(** Raised on denials whose literals cannot be scheduled safely, or that
    still contain parameters at evaluation time. *)

exception Budget_exceeded
(** Raised mid-evaluation when the installed step budget runs out. *)

val with_budget : steps:int -> (unit -> 'a) -> 'a
(** Run [f] under a step budget: every solver step and every tuple
    examined by a join, negation or aggregate costs one step, and
    evaluation aborts with {!Budget_exceeded} once [steps] are spent.
    Budgets nest (the innermost wins); without one, evaluation is
    unlimited. *)

val with_meter : (unit -> 'a) -> 'a * int
(** [with_meter f] runs [f] and additionally returns the solver steps it
    consumed.  Composes with {!with_budget} as in
    {!Xic_xpath.Eval.with_meter}. *)

val violation :
  ?params:(string * Term.const) list ->
  Store.t ->
  Term.denial ->
  (string * Term.const) list option
(** First satisfying substitution (a violation witness), if any.  [params]
    is the update-time parameter valuation. *)

val violated : ?params:(string * Term.const) list -> Store.t -> Term.denial -> bool

val violations :
  ?params:(string * Term.const) list ->
  Store.t ->
  Term.denial ->
  (string * Term.const) list list
(** All satisfying substitutions. *)

val consistent :
  ?params:(string * Term.const) list -> Store.t -> Term.denial list -> bool
(** No denial of the set is violated. *)

val first_violated :
  ?params:(string * Term.const) list ->
  Store.t ->
  Term.denial list ->
  Term.denial option
