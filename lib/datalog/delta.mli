(** Net fact delta of a batch of store mutations.

    Records tuples added to / removed from the shredded store and keeps
    the {e net} multiset: a tuple inserted and then deleted inside the
    same batch cancels to nothing.  {!Incr.apply_delta} consumes these to
    maintain materialized denial results; gross counters feed the
    [--delta-stats] report. *)

type t

val create : unit -> t

val add : t -> Xic_symbol.Symbol.t -> Store.tuple -> unit
(** Record an insertion into relation [sym]. *)

val remove : t -> Xic_symbol.Symbol.t -> Store.tuple -> unit
(** Record a deletion from relation [sym]. *)

val is_empty : t -> bool
(** No net change (gross churn may still be non-zero). *)

val added : t -> (Xic_symbol.Symbol.t * Store.tuple * int) list
(** Net insertions with multiplicities (> 0), unordered. *)

val removed : t -> (Xic_symbol.Symbol.t * Store.tuple * int) list
(** Net deletions with multiplicities (> 0), unordered. *)

val touched : t -> Xic_symbol.Symbol.t list
(** Relations with a net change, unordered, no duplicates. *)

val gross_added : t -> int
val gross_removed : t -> int

val compose : into:t -> t -> unit
(** Merge [t]'s net changes and gross counters into [into] (sequential
    composition of two batches). *)

val equal : t -> t -> bool
(** Net-multiset equality; gross counters are ignored. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
