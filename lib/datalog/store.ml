(** A mutable fact store: relation name → bag of tuples.

    Tuples are lists of constants.  The store keeps insertion order and
    supports removal of single tuples so that update transactions can be
    rolled back; a first-argument hash index accelerates the joins
    performed by {!Eval} (the first column of every mapped relation is the
    node id, which is the most selective join key of the schema of
    Section 4.1).

    Relations are keyed by interned symbols ({!Xic_symbol.Symbol}), so the
    shredder — which holds the document's tag symbols already — reaches a
    relation without hashing a string; the string-named API interns on
    entry. *)

module Symbol = Xic_symbol.Symbol

type tuple = Term.const list

type rel = {
  mutable tuples : tuple list;        (* reverse insertion order *)
  mutable count : int;
  index : (Term.const, tuple list ref) Hashtbl.t;  (* first column → tuples *)
}

type t = (Symbol.t, rel) Hashtbl.t

let create () : t = Hashtbl.create 16

(* Read-only name lookup: never interns, so probing a relation that was
   never populated does not grow the global symbol table. *)
let sym_opt name = if Symbol.mem name then Some (Symbol.intern name) else None

let get_rel_sym (s : t) sym =
  match Hashtbl.find_opt s sym with
  | Some r -> r
  | None ->
    let r = { tuples = []; count = 0; index = Hashtbl.create 64 } in
    Hashtbl.add s sym r;
    r

let add_sym (s : t) sym (tup : tuple) =
  let r = get_rel_sym s sym in
  r.tuples <- tup :: r.tuples;
  r.count <- r.count + 1;
  match tup with
  | [] -> ()
  | key :: _ ->
    (match Hashtbl.find_opt r.index key with
     | Some l -> l := tup :: !l
     | None -> Hashtbl.add r.index key (ref [ tup ]))

let add (s : t) name tup = add_sym s (Symbol.intern name) tup

let remove_sym (s : t) sym (tup : tuple) =
  match Hashtbl.find_opt s sym with
  | None -> false
  | Some r ->
    let removed = ref false in
    let rec drop_first = function
      | [] -> []
      | t :: rest when (not !removed) && t = tup ->
        removed := true;
        rest
      | t :: rest -> t :: drop_first rest
    in
    r.tuples <- drop_first r.tuples;
    if !removed then begin
      r.count <- r.count - 1;
      (match tup with
       | [] -> ()
       | key :: _ ->
         (match Hashtbl.find_opt r.index key with
          | Some l ->
            let removed2 = ref false in
            let rec drop = function
              | [] -> []
              | t :: rest when (not !removed2) && t = tup ->
                removed2 := true;
                rest
              | t :: rest -> t :: drop rest
            in
            l := drop !l
          | None -> ()))
    end;
    !removed

let remove (s : t) name tup =
  match sym_opt name with
  | Some sym -> remove_sym s sym tup
  | None -> false

let tuples_sym (s : t) sym =
  match Hashtbl.find_opt s sym with
  | Some r -> List.rev r.tuples
  | None -> []

let tuples (s : t) name =
  match sym_opt name with Some sym -> tuples_sym s sym | None -> []

let tuples_with_key_sym (s : t) sym (key : Term.const) =
  match Hashtbl.find_opt s sym with
  | None -> []
  | Some r ->
    (match Hashtbl.find_opt r.index key with
     | Some l -> !l
     | None -> [])

let tuples_with_key (s : t) name key =
  match sym_opt name with
  | Some sym -> tuples_with_key_sym s sym key
  | None -> []

let cardinality (s : t) name =
  match sym_opt name with
  | Some sym -> (match Hashtbl.find_opt s sym with Some r -> r.count | None -> 0)
  | None -> 0

let relations (s : t) =
  Hashtbl.fold (fun sym _ acc -> Symbol.name sym :: acc) s [] |> List.sort compare

let total_tuples (s : t) =
  Hashtbl.fold (fun _ r acc -> acc + r.count) s 0

let mem (s : t) name tup =
  match tup with
  | key :: _ -> List.mem tup (tuples_with_key s name key)
  | [] ->
    (match sym_opt name with
     | Some sym ->
       (match Hashtbl.find_opt s sym with Some r -> r.tuples <> [] | None -> false)
     | None -> false)

let copy (s : t) : t =
  let s' = create () in
  Hashtbl.iter
    (fun sym r -> List.iter (fun tup -> add_sym s' sym tup) (List.rev r.tuples))
    s;
  s'

let of_facts facts =
  let s = create () in
  List.iter (fun (name, tup) -> add s name tup) facts;
  s

let to_facts (s : t) =
  List.concat_map (fun name -> List.map (fun t -> (name, t)) (tuples s name)) (relations s)

let equal (a : t) (b : t) =
  let norm s =
    List.map (fun name -> (name, List.sort compare (tuples s name)))
      (List.filter (fun n -> cardinality s n > 0) (relations s))
  in
  norm a = norm b
