(** A copy-on-write versioned fact store: relation name → bag of tuples.

    Each relation keeps an immutable, newest-first cons {e log} of every
    insertion plus a persistent tombstone multiset masking removed
    occurrences.  Because both structures are persistent, {!freeze} and
    {!copy} are O(#relations) pointer captures that share the log with
    the live writer: a frozen generation handle stays bit-stable while
    the writer keeps consing onto its own head, and dropping a handle
    releases only the unshared suffix to the GC.  The writer compacts a
    relation (rebuilding the log without its tombstoned cells) once the
    dead mass dominates, so masked scans stay amortized linear in the
    live size.

    Tuples are lists of constants.  The store keeps insertion order and
    supports removal of single tuples so that update transactions can be
    rolled back; a first-argument hash index accelerates the joins
    performed by {!Eval} (the first column of every mapped relation is the
    node id, which is the most selective join key of the schema of
    Section 4.1).

    Relations are keyed by interned symbols ({!Xic_symbol.Symbol}), so the
    shredder — which holds the document's tag symbols already — reaches a
    relation without hashing a string; the string-named API interns on
    entry. *)

module Symbol = Xic_symbol.Symbol

type tuple = Term.const list

module TupleMap = Map.Make (struct
  type t = Term.const list

  (* polymorphic compare is total on [Term.const] (Int/Str only) *)
  let compare = compare
end)

type rel = {
  (* newest-first insertion log; the cons cells are never mutated, so
     any number of generation handles share them with the writer *)
  mutable log : tuple list;
  mutable nlive : int;  (* log occurrences not masked by a tombstone *)
  (* tombstone multiset: [dead] maps a tuple to how many of its newest
     log occurrences are deleted; persistent, so handles snapshot it by
     pointer *)
  mutable dead : int TupleMap.t;
  mutable ndead : int;
  (* First column → tuples.  Built lazily on the first keyed probe:
     a snapshot load materializes tens of thousands of tuples that may
     never be probed before the next checkpoint, and the per-tuple
     find+add (plus the preallocated bucket array) was the single
     largest cost of a cold start.  Once built, it is maintained
     incrementally by [add_sym] / [remove_sym].  Indexes hold live
     tuples only and are private to each handle (never shared). *)
  mutable index : (Term.const, tuple list ref) Hashtbl.t option;
  (* Secondary indexes, column position → (value → tuples), built
     lazily per column on the first probe of that column.  Tuples
     shorter than the indexed position are omitted: an atom binding
     that position can never match them. *)
  mutable col_index : (int * (Term.const, tuple list ref) Hashtbl.t) list;
}

type t = {
  rels : (Symbol.t, rel) Hashtbl.t;
  frozen : bool;  (* generation handle: all mutation entry points raise *)
}

let create () : t = { rels = Hashtbl.create 16; frozen = false }

let is_frozen (s : t) = s.frozen

let check_writable (s : t) =
  if s.frozen then
    invalid_arg "Xic_datalog.Store: frozen generation handles are immutable"

(* Read-only name lookup: never interns, so probing a relation that was
   never populated does not grow the global symbol table. *)
let sym_opt name = if Symbol.mem name then Some (Symbol.intern name) else None

let get_rel_sym (s : t) sym =
  match Hashtbl.find_opt s.rels sym with
  | Some r -> r
  | None ->
    let r =
      { log = []; nlive = 0; dead = TupleMap.empty; ndead = 0; index = None;
        col_index = [] }
    in
    Hashtbl.add s.rels sym r;
    r

let dead_count r tup =
  match TupleMap.find_opt tup r.dead with Some k -> k | None -> 0

(* Iterate the live tuples of [r], newest first: scanning from the head
   of the log, the first [dead tup] occurrences of each tombstoned tuple
   are skipped — removal masks the newest matching occurrence, exactly
   as the in-place list surgery it replaced used to drop it. *)
let iter_live_newest_first f r =
  if r.ndead = 0 then List.iter f r.log
  else begin
    let dead = ref r.dead in
    let remaining = ref r.ndead in
    List.iter
      (fun tup ->
        if !remaining = 0 then f tup
        else
          match TupleMap.find_opt tup !dead with
          | Some k ->
            decr remaining;
            dead :=
              (if k = 1 then TupleMap.remove tup !dead
               else TupleMap.add tup (k - 1) !dead)
          | None -> f tup)
      r.log
  end

(* Live tuples in insertion order (prepending while scanning newest
   first reverses for free). *)
let live_list r =
  if r.ndead = 0 then List.rev r.log
  else begin
    let acc = ref [] in
    iter_live_newest_first (fun tup -> acc := tup :: !acc) r;
    !acc
  end

(* Writer-side compaction: once the tombstoned mass dominates the live
   tuples, rebuild the log without the dead cells.  Handles frozen
   before the compaction keep their old log pointers (only structural
   sharing with them is lost), so this never invalidates a reader. *)
let compact_rel r =
  if r.ndead > 0 then begin
    r.log <- List.rev (live_list r);
    r.dead <- TupleMap.empty;
    r.ndead <- 0
  end

let maybe_compact r = if r.ndead > 64 && r.ndead > r.nlive then compact_rel r

let compact (s : t) =
  check_writable s;
  Hashtbl.iter (fun _ r -> compact_rel r) s.rels

let index_add idx tup =
  match tup with
  | [] -> ()
  | key :: _ ->
    (match Hashtbl.find_opt idx key with
     | Some l -> l := tup :: !l
     | None -> Hashtbl.add idx key (ref [ tup ]))

let ensure_index r =
  match r.index with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create (max 64 (2 * r.nlive)) in
    List.iter (index_add idx) (live_list r);
    r.index <- Some idx;
    idx

let col_index_add idx col tup =
  match List.nth_opt tup col with
  | None -> ()
  | Some key ->
    (match Hashtbl.find_opt idx key with
     | Some l -> l := tup :: !l
     | None -> Hashtbl.add idx key (ref [ tup ]))

let ensure_col_index r col =
  match List.assoc_opt col r.col_index with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create (max 64 (2 * r.nlive)) in
    List.iter (fun tup -> col_index_add idx col tup) (live_list r);
    r.col_index <- (col, idx) :: r.col_index;
    idx

let add_sym (s : t) sym (tup : tuple) =
  check_writable s;
  let r = get_rel_sym s sym in
  r.log <- tup :: r.log;
  r.nlive <- r.nlive + 1;
  (match r.index with Some idx -> index_add idx tup | None -> ());
  List.iter (fun (col, idx) -> col_index_add idx col tup) r.col_index

let add (s : t) name tup = add_sym s (Symbol.intern name) tup

let remove_sym (s : t) sym (tup : tuple) =
  check_writable s;
  match Hashtbl.find_opt s.rels sym with
  | None -> false
  | Some r ->
    let present =
      match tup with
      | [] ->
        (* arity-0 tuples have no index key; count live occurrences *)
        let occ = ref 0 in
        List.iter (fun t -> if t = [] then incr occ) r.log;
        !occ - dead_count r [] > 0
      | key :: _ ->
        (match Hashtbl.find_opt (ensure_index r) key with
         | Some l -> List.mem tup !l
         | None -> false)
    in
    if present then begin
      r.dead <- TupleMap.add tup (dead_count r tup + 1) r.dead;
      r.ndead <- r.ndead + 1;
      r.nlive <- r.nlive - 1;
      let drop_bucket idx key =
        match Hashtbl.find_opt idx key with
        | Some l ->
          let removed2 = ref false in
          let rec drop = function
            | [] -> []
            | t :: rest when (not !removed2) && t = tup ->
              removed2 := true;
              rest
            | t :: rest -> t :: drop rest
          in
          l := drop !l
        | None -> ()
      in
      (match (r.index, tup) with
       | None, _ | _, [] -> ()
       | Some idx, key :: _ -> drop_bucket idx key);
      List.iter
        (fun (col, idx) ->
          match List.nth_opt tup col with
          | Some key -> drop_bucket idx key
          | None -> ())
        r.col_index;
      maybe_compact r
    end;
    present

let remove (s : t) name tup =
  match sym_opt name with
  | Some sym -> remove_sym s sym tup
  | None -> false

let tuples_sym (s : t) sym =
  match Hashtbl.find_opt s.rels sym with
  | Some r -> live_list r
  | None -> []

let tuples (s : t) name =
  match sym_opt name with Some sym -> tuples_sym s sym | None -> []

let tuples_with_key_sym (s : t) sym (key : Term.const) =
  match Hashtbl.find_opt s.rels sym with
  | None -> []
  | Some r ->
    (match Hashtbl.find_opt (ensure_index r) key with
     | Some l -> !l
     | None -> [])

let tuples_with_key (s : t) name key =
  match sym_opt name with
  | Some sym -> tuples_with_key_sym s sym key
  | None -> []

let tuples_with_col_sym (s : t) sym col (key : Term.const) =
  if col = 0 then tuples_with_key_sym s sym key
  else
    match Hashtbl.find_opt s.rels sym with
    | None -> []
    | Some r ->
      (match Hashtbl.find_opt (ensure_col_index r col) key with
       | Some l -> !l
       | None -> [])

let tuples_with_col (s : t) name col key =
  match sym_opt name with
  | Some sym -> tuples_with_col_sym s sym col key
  | None -> []

let cardinality_sym (s : t) sym =
  match Hashtbl.find_opt s.rels sym with Some r -> r.nlive | None -> 0

let cardinality (s : t) name =
  match sym_opt name with Some sym -> cardinality_sym s sym | None -> 0

let relations (s : t) =
  Hashtbl.fold (fun sym _ acc -> Symbol.name sym :: acc) s.rels []
  |> List.sort compare

let total_tuples (s : t) =
  Hashtbl.fold (fun _ r acc -> acc + r.nlive) s.rels 0

let mem_sym (s : t) sym tup =
  match tup with
  | key :: _ -> List.mem tup (tuples_with_key_sym s sym key)
  | [] ->
    (match Hashtbl.find_opt s.rels sym with
     | Some r -> r.nlive > 0
     | None -> false)

let mem (s : t) name tup =
  match sym_opt name with Some sym -> mem_sym s sym tup | None -> false

let clear_sym (s : t) sym =
  check_writable s;
  match Hashtbl.find_opt s.rels sym with
  | None -> ()
  | Some r ->
    r.log <- [];
    r.nlive <- 0;
    r.dead <- TupleMap.empty;
    r.ndead <- 0;
    r.index <- None;
    r.col_index <- []

(* ------------------------------------------------------------------ *)
(* Generations: O(1) freeze / copy by structural sharing               *)
(* ------------------------------------------------------------------ *)

(* Both forks capture the log and tombstone pointers of every relation —
   O(#relations) — and start with no indexes (the writer keeps mutating
   its own indexes in place, so sharing them would corrupt the fork;
   each handle rebuilds lazily on its first probe, and the repository
   shares one handle per generation so that build is amortized across
   its readers). *)
let fork ~frozen (s : t) : t =
  let rels = Hashtbl.create (max 16 (2 * Hashtbl.length s.rels)) in
  Hashtbl.iter
    (fun sym r ->
      Hashtbl.add rels sym
        { log = r.log; nlive = r.nlive; dead = r.dead; ndead = r.ndead;
          index = None; col_index = [] })
    s.rels;
  { rels; frozen }

let freeze (s : t) : t = fork ~frozen:true s
let copy (s : t) : t = fork ~frozen:false s

(* Rough heap estimate of one tuple: the log spine cons cell plus, per
   column, a list cons cell and a boxed constant (3 + 5·arity words). *)
let tuple_bytes tup = 8 * (3 + (5 * List.length tup))

let live_bytes (s : t) =
  Hashtbl.fold
    (fun _ r acc ->
      let b = ref acc in
      iter_live_newest_first (fun tup -> b := !b + tuple_bytes tup) r;
      !b)
    s.rels 0

let log_len r = r.nlive + r.ndead

let rec drop_cells n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop_cells (n - 1) tl

(* Memory a handle retains beyond what it shares with [live]: per
   relation, the handle's log is either a physical suffix of the live
   log (the writer only consed on top — zero retained cost, checked in
   O(live − handle) cell hops) or, after a writer-side compaction or
   clear, an unshared list the handle keeps alive in full. *)
let unshared_bytes ~(live : t) (h : t) =
  Hashtbl.fold
    (fun sym hr acc ->
      let shared =
        match Hashtbl.find_opt live.rels sym with
        | None -> hr.log == []
        | Some lr ->
          let extra = log_len lr - log_len hr in
          extra >= 0 && drop_cells extra lr.log == hr.log
      in
      if shared then acc
      else
        acc + List.fold_left (fun b tup -> b + tuple_bytes tup) 0 hr.log)
    h.rels 0

let of_facts facts =
  let s = create () in
  List.iter (fun (name, tup) -> add s name tup) facts;
  s

let to_facts (s : t) =
  List.concat_map (fun name -> List.map (fun t -> (name, t)) (tuples s name)) (relations s)

(* ------------------------------------------------------------------ *)
(* Snapshot (de)serialization                                          *)
(* ------------------------------------------------------------------ *)

module Wire = Xic_symbol.Wire

(* Relations are stored by name (re-interned on load, so no symbol-id
   remap is needed); only the {e live} tuples are written — the snapshot
   holds the compacted head of the log, never the tombstoned history —
   in insertion order, each constant tagged with a one-byte kind.  Tuple
   strings go through a dedup table written up front: the same name
   recurs across many facts (every author appears in aut/name/text
   tuples), so occurrences are 1–2 byte indices on disk, and the loader
   materializes ONE [Term.Str] per distinct string, shared by every
   tuple that mentions it. *)
let tag_of = function Term.Int _ -> 0 | Term.Str _ -> 1

(* The per-column Int/Str shape shared by every tuple of the relation,
   or [None] when tuples disagree (or the arity exceeds the one-byte
   shape header). *)
let signature live =
  match live with
  | [] -> None
  | t0 :: rest ->
    let s0 = List.map tag_of t0 in
    let arity = List.length s0 in
    if arity > 15 then None
    else if
      List.for_all
        (fun t ->
          List.compare_length_with t arity = 0
          && List.for_all2 (fun tag v -> tag = tag_of v) s0 t)
        rest
    then Some s0
    else None

let serialize (s : t) buf =
  let interned : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let order = ref [] and n_strings = ref 0 in
  let intern v =
    match Hashtbl.find_opt interned v with
    | Some i -> i
    | None ->
      let i = !n_strings in
      Hashtbl.add interned v i;
      order := v :: !order;
      incr n_strings;
      i
  in
  Hashtbl.iter
    (fun _ r ->
      iter_live_newest_first
        (List.iter (function
          | Term.Str v -> ignore (intern v)
          | Term.Int _ -> ()))
        r)
    s.rels;
  Wire.add_int buf !n_strings;
  List.iter (Wire.add_string buf) (List.rev !order);
  Wire.add_int buf (Hashtbl.length s.rels);
  let add_value = function
    | Term.Int i -> Wire.add_int buf i
    | Term.Str v -> Wire.add_int buf (intern v)
  in
  Hashtbl.iter
    (fun sym r ->
      let live = live_list r in
      Wire.add_string buf (Symbol.name sym);
      Wire.add_int buf r.nlive;
      match signature live with
      | Some sg ->
        (* uniform shape: tags once up front, tuples are bare value
           runs (the normal case — schema-mapped relations have a fixed
           column layout) *)
        Wire.add_u8 buf (List.length sg);
        List.iter (Wire.add_u8 buf) sg;
        List.iter (fun tup -> List.iter add_value tup) live
      | None ->
        (* mixed shapes: per-tuple arity, per-constant tag *)
        Wire.add_u8 buf 0xff;
        List.iter
          (fun tup ->
            Wire.add_u8 buf (List.length tup);
            List.iter
              (fun v ->
                Wire.add_u8 buf (match v with Term.Int _ -> 0 | Term.Str _ -> 1);
                add_value v)
              tup)
          live)
    s.rels

(* Shared [Term.Int] cells for the ids that dominate tuple columns
   (first column is always a node id).  One 64k-entry table amortized
   over every load keeps a cold start from boxing the same small ints
   tens of thousands of times. *)
let small_ints =
  lazy (Array.init (1 lsl 16) (fun i -> Term.Int i))

(* Cold-load fast path: the relation table is preallocated from the
   serialized count and tuples go straight into the rel record — no
   per-tuple [get_rel_sym] lookup, no table resizing, and no index
   (built lazily on the first keyed probe). *)
let deserialize c : t =
  let n_strings = Wire.get_int c in
  if n_strings < 0 || n_strings > Wire.remaining c then
    raise (Wire.Error "store: bad string table length");
  (* One shared [Term.Str] per distinct string: tuples alias these cells,
     so a snapshot load allocates each constant once however many facts
     mention it. *)
  let strings =
    Array.map (fun s -> Term.Str s) (Wire.get_string_array c n_strings)
  in
  let nrels = Wire.get_int c in
  if nrels < 0 || nrels > Wire.remaining c then
    raise (Wire.Error "store: bad relation count");
  let rels : (Symbol.t, rel) Hashtbl.t = Hashtbl.create (max 16 (2 * nrels)) in
  let ints = Lazy.force small_ints in
  let int_const () =
    let i = Wire.get_int c in
    if i >= 0 && i < Array.length ints then Array.unsafe_get ints i
    else Term.Int i
  in
  let str_const () =
    let i = Wire.get_int c in
    if i < 0 || i >= n_strings then
      raise (Wire.Error (Printf.sprintf "store: string index %d out of range" i));
    strings.(i)
  in
  let const () =
    match Wire.get_u8 c with
    | 0 -> int_const ()
    | 1 -> str_const ()
    | k -> raise (Wire.Error (Printf.sprintf "store: bad const tag %d" k))
  in
  for _ = 1 to nrels do
    let name = Wire.get_string c in
    let sym = Symbol.intern name in
    let count = Wire.get_int c in
    if count < 0 || count > Wire.remaining c then
      raise (Wire.Error ("store: bad cardinality for " ^ name));
    let tuples = ref [] in
    (match Wire.get_u8 c with
     | 0xff ->
       (* mixed shapes: per-tuple arity, per-constant tag *)
       for _ = 1 to count do
         (* build common arities directly in order — no [List.rev] copy *)
         let tup =
           match Wire.get_u8 c with
           | 0 -> []
           | 1 -> [ const () ]
           | 2 ->
             let a = const () in
             let b = const () in
             [ a; b ]
           | 3 ->
             let a = const () in
             let b = const () in
             let d = const () in
             [ a; b; d ]
           | arity ->
             let rec go k acc =
               if k = 0 then List.rev acc else go (k - 1) (const () :: acc)
             in
             go arity []
         in
         tuples := tup :: !tuples
       done
     | siglen ->
       if siglen > 15 then
         raise (Wire.Error (Printf.sprintf "store: bad shape header %d" siglen));
       let sg = Array.init siglen (fun _ -> Wire.get_u8 c) in
       Array.iter
         (fun t ->
           if t > 1 then
             raise (Wire.Error (Printf.sprintf "store: bad column tag %d" t)))
         sg;
       (* tuple decode is the bulk of the section; [value] reads the
          varint index directly and keeps the tag dispatch as one
          predictable branch per column *)
       let ilen = Array.length ints in
       let value tag =
         let v = Wire.get_int c in
         if tag = 0 then
           if v >= 0 && v < ilen then Array.unsafe_get ints v else Term.Int v
         else if v >= 0 && v < n_strings then Array.unsafe_get strings v
         else
           raise
             (Wire.Error
                (Printf.sprintf "store: string index %d out of range" v))
       in
       (match sg with
        | [||] -> for _ = 1 to count do tuples := [] :: !tuples done
        | [| a |] -> for _ = 1 to count do tuples := [ value a ] :: !tuples done
        | [| a; b |] ->
          for _ = 1 to count do
            let x = value a in
            let y = value b in
            tuples := [ x; y ] :: !tuples
          done
        | [| a; b; d |] ->
          for _ = 1 to count do
            let x = value a in
            let y = value b in
            let z = value d in
            tuples := [ x; y; z ] :: !tuples
          done
        | sg ->
          let rec row i =
            if i = Array.length sg then []
            else
              let v = value sg.(i) in
              v :: row (i + 1)
          in
          for _ = 1 to count do
            tuples := row 0 :: !tuples
          done));
    Hashtbl.replace rels sym
      { log = !tuples; nlive = count; dead = TupleMap.empty; ndead = 0;
        index = None; col_index = [] }
  done;
  { rels; frozen = false }

let equal (a : t) (b : t) =
  let norm s =
    List.map (fun name -> (name, List.sort compare (tuples s name)))
      (List.filter (fun n -> cardinality s n > 0) (relations s))
  in
  norm a = norm b
