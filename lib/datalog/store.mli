(** A mutable fact store: relation name → bag of tuples.

    Tuples are lists of constants.  The store keeps insertion order and
    supports removal of single tuples so that update transactions can be
    rolled back; a first-argument hash index accelerates the joins
    performed by {!Eval} (the first column of every mapped relation is the
    node id, the most selective join key of the Section 4.1 schema).

    Relations are keyed by interned symbols; the [_sym] variants let
    callers that already hold a tag symbol (the shredder) skip string
    hashing entirely, and the string API interns on entry — except pure
    queries, which never grow the symbol table. *)

type tuple = Term.const list

type t

val create : unit -> t
val add : t -> string -> tuple -> unit

val remove : t -> string -> tuple -> bool
(** Remove one occurrence; [false] when absent. *)

val tuples : t -> string -> tuple list
(** All tuples of a relation, insertion order. *)

val tuples_with_key : t -> string -> Term.const -> tuple list
(** Tuples whose first column equals the key (indexed lookup). *)

val tuples_with_col : t -> string -> int -> Term.const -> tuple list
(** Tuples whose [col]-th column (0-based) equals the key.  Column 0 is
    the always-available first-column index; other columns get a lazy
    secondary index built on the first probe and maintained by
    [add]/[remove] thereafter.  Lets joins that bind a parent id or a
    text value avoid scanning the whole relation. *)

val cardinality : t -> string -> int
val relations : t -> string list
val total_tuples : t -> int
val mem : t -> string -> tuple -> bool
val copy : t -> t
val of_facts : (string * tuple) list -> t
val to_facts : t -> (string * tuple) list

val equal : t -> t -> bool
(** Same relations with the same tuple multisets. *)

(** {1 Symbol-keyed variants} *)

val add_sym : t -> Xic_symbol.Symbol.t -> tuple -> unit
val remove_sym : t -> Xic_symbol.Symbol.t -> tuple -> bool
val tuples_sym : t -> Xic_symbol.Symbol.t -> tuple list
val tuples_with_key_sym : t -> Xic_symbol.Symbol.t -> Term.const -> tuple list
val tuples_with_col_sym : t -> Xic_symbol.Symbol.t -> int -> Term.const -> tuple list
val mem_sym : t -> Xic_symbol.Symbol.t -> tuple -> bool
val cardinality_sym : t -> Xic_symbol.Symbol.t -> int

val clear_sym : t -> Xic_symbol.Symbol.t -> unit
(** Drop every tuple of the relation (the relation itself stays
    registered with cardinality 0, which {!equal} ignores). *)

(** {1 Snapshot (de)serialization} *)

val serialize : t -> Buffer.t -> unit
(** Append the store's binary image to the buffer: relations by {e name}
    (no symbol ids, so no remap on load), tuples in insertion order.
    See [Xic_snapshot.Snapshot] for the enclosing checksummed
    container. *)

val deserialize : Xic_symbol.Wire.cursor -> t
(** Rebuild a serialized store, preallocating the relation and
    first-column index tables from the stored cardinalities (the
    snapshot cold-load fast path).
    @raise Xic_symbol.Wire.Error on truncated or malformed input. *)
