(** A copy-on-write versioned fact store: relation name → bag of tuples.

    Tuples are lists of constants.  The store keeps insertion order and
    supports removal of single tuples so that update transactions can be
    rolled back; a first-argument hash index accelerates the joins
    performed by {!Eval} (the first column of every mapped relation is the
    node id, the most selective join key of the Section 4.1 schema).

    Internally each relation is an immutable newest-first insertion log
    plus a persistent tombstone multiset, so {!freeze} and {!copy} are
    O(#relations) pointer captures sharing structure with the live
    writer — the basis of the repository's O(1) generation pins — while
    the whole read/write API below is unchanged: a generation handle IS
    a store, and every evaluator works on it unmodified.

    Relations are keyed by interned symbols; the [_sym] variants let
    callers that already hold a tag symbol (the shredder) skip string
    hashing entirely, and the string API interns on entry — except pure
    queries, which never grow the symbol table. *)

type tuple = Term.const list

type t

val create : unit -> t
val add : t -> string -> tuple -> unit

val remove : t -> string -> tuple -> bool
(** Remove one occurrence (the newest); [false] when absent.  Internally
    a tombstone: O(index bucket), never a log rebuild. *)

val tuples : t -> string -> tuple list
(** All tuples of a relation, insertion order. *)

val tuples_with_key : t -> string -> Term.const -> tuple list
(** Tuples whose first column equals the key (indexed lookup). *)

val tuples_with_col : t -> string -> int -> Term.const -> tuple list
(** Tuples whose [col]-th column (0-based) equals the key.  Column 0 is
    the always-available first-column index; other columns get a lazy
    secondary index built on the first probe and maintained by
    [add]/[remove] thereafter.  Lets joins that bind a parent id or a
    text value avoid scanning the whole relation. *)

val cardinality : t -> string -> int
val relations : t -> string list
val total_tuples : t -> int
val mem : t -> string -> tuple -> bool
val of_facts : (string * tuple) list -> t
val to_facts : t -> (string * tuple) list

val equal : t -> t -> bool
(** Same relations with the same tuple multisets. *)

(** {1 Generations (copy-on-write versioning)} *)

val freeze : t -> t
(** An immutable point-in-time handle sharing the insertion logs and
    tombstones of the source by pointer — O(#relations), independent of
    tuple count.  The handle stays bit-stable under any later mutation
    of the source (writers cons onto their own log heads); mutating the
    handle itself raises [Invalid_argument].  Handles serve the whole
    read API, building their lazy indexes privately on first probe. *)

val is_frozen : t -> bool

val copy : t -> t
(** A mutable fork, O(#relations) by the same structural sharing as
    {!freeze}: both sides may keep mutating independently, each consing
    onto its own log head and tombstoning in its own persistent set. *)

val compact : t -> unit
(** Rebuild every relation's log without its tombstoned cells (writers
    do this automatically once dead mass dominates a relation).  Frozen
    handles keep their old log pointers — compaction never invalidates
    a reader, it only ends structural sharing with older generations.
    @raise Invalid_argument on a frozen handle. *)

val live_bytes : t -> int
(** Rough heap estimate (bytes) of the live tuples. *)

val unshared_bytes : live:t -> t -> int
(** Rough heap estimate of what handle [h] retains {e beyond} the
    structure it shares with [live]: 0 when every relation's log is
    still a physical suffix of the live writer's (the steady state,
    checked in O(delta) cell hops), the full relation cost once a
    writer-side compaction or clear ended the sharing. *)

(** {1 Symbol-keyed variants} *)

val add_sym : t -> Xic_symbol.Symbol.t -> tuple -> unit
val remove_sym : t -> Xic_symbol.Symbol.t -> tuple -> bool
val tuples_sym : t -> Xic_symbol.Symbol.t -> tuple list
val tuples_with_key_sym : t -> Xic_symbol.Symbol.t -> Term.const -> tuple list
val tuples_with_col_sym : t -> Xic_symbol.Symbol.t -> int -> Term.const -> tuple list
val mem_sym : t -> Xic_symbol.Symbol.t -> tuple -> bool
val cardinality_sym : t -> Xic_symbol.Symbol.t -> int

val clear_sym : t -> Xic_symbol.Symbol.t -> unit
(** Drop every tuple of the relation (the relation itself stays
    registered with cardinality 0, which {!equal} ignores). *)

(** {1 Snapshot (de)serialization} *)

val serialize : t -> Buffer.t -> unit
(** Append the store's binary image to the buffer: relations by {e name}
    (no symbol ids, so no remap on load), live tuples in insertion order
    — the compacted head of each log, never the tombstoned history.
    See [Xic_snapshot.Snapshot] for the enclosing checksummed
    container. *)

val deserialize : Xic_symbol.Wire.cursor -> t
(** Rebuild a serialized store, preallocating the relation and
    first-column index tables from the stored cardinalities (the
    snapshot cold-load fast path).
    @raise Xic_symbol.Wire.Error on truncated or malformed input. *)
