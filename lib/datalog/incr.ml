(** Incremental (delta-driven) maintenance of materialized denial
    results.

    For every denial we keep the set of violation witnesses — the
    bindings of its positive-literal variables — as a relation in a
    private view store.  A transaction produces a net fact {!Delta};
    instead of re-running each denial from scratch, {!apply_delta}
    evaluates only delta rules:

    - denials whose relations the delta does not touch are skipped
      untouched (the common case: a one-statement transaction touches a
      handful of relations out of the whole schema);
    - {e monotone} denials (positive and comparison literals only) are
      maintained exactly: net deletions can only retract witnesses, so
      existing rows are re-verified against the post-state store; net
      insertions can only add witnesses that use at least one inserted
      fact, so each inserted fact is unified against each matching
      positive literal and the residual denial is evaluated with that
      literal bound (the semi-naive ΔR ⋈ R join);
    - denials with negation or aggregates are re-evaluated in full, but
      still only when the delta touches one of their relations.

    The view store uses set semantics (witnesses are deduplicated), so
    an incremental view and a from-scratch recompute are comparable with
    [Store.equal] — which is exactly what oracle route 8 does.

    The view lives in a copy-on-write versioned store: row retractions
    are tombstones over an append log, masked on read and reclaimed by
    the writer's auto-compaction, so a frozen generation handle taken
    from a repository (which snapshots the base store, not the view)
    never observes torn maintenance.  {!initialize} compacts the view
    eagerly — a re-initialization (document reload, constraint
    re-registration) retracts every row at once, which is exactly the
    tombstone spike worth collecting up front. *)

module Symbol = Xic_symbol.Symbol

type klass = Monotone | Recompute

type entry = {
  name : string;  (* owning constraint *)
  denial : Term.denial;
  rel : Symbol.t;  (* view relation holding the witnesses *)
  klass : klass;
  preds : Symbol.t list;  (* every relation the body references *)
  pos : (Symbol.t * Term.atom) list;  (* positive literals *)
  proj : string list;  (* named vars of positive literals, in order *)
}

type stats = {
  mutable evals : int;  (* residual delta evaluations *)
  mutable reverifies : int;  (* view rows re-checked after deletions *)
  mutable recomputes : int;  (* full re-evaluations (Not/Agg denials) *)
  mutable skipped : int;  (* denials untouched by the delta *)
  mutable rows_added : int;
  mutable rows_removed : int;
}

type t = {
  entries : entry list;
  names : string list;  (* constraint order for [violated] *)
  view : Store.t;
  stats : stats;
}

let atom_preds atoms = List.map (fun a -> Symbol.intern a.Term.pred) atoms

let classify body =
  if
    List.for_all
      (function Term.Rel _ | Term.Cmp _ -> true | Term.Not _ | Term.Agg _ -> false)
      body
  then Monotone
  else Recompute

let named_vars_of_atoms atoms =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun t ->
          match t with
          | Term.Var v when not (Term.is_anon t) ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              acc := v :: !acc
            end
          | _ -> ())
        a.Term.args)
    atoms;
  List.rev !acc

let entry_of_denial ~name i (d : Term.denial) =
  if Term.denial_params d <> [] then
    raise
      (Eval.Unsafe
         (Printf.sprintf
            "incremental maintenance needs parameter-free denials (%s has %s)"
            name
            (String.concat ", " (Term.denial_params d))));
  let pos_atoms =
    List.filter_map (function Term.Rel a -> Some a | _ -> None) d.Term.body
  in
  let preds =
    List.concat_map
      (function
        | Term.Rel a | Term.Not a -> atom_preds [ a ]
        | Term.Agg g -> atom_preds g.Term.atoms
        | Term.Cmp _ -> [])
      d.Term.body
    |> List.sort_uniq compare
  in
  {
    name;
    denial = d;
    rel = Symbol.intern (Printf.sprintf "%s#%d" name i);
    klass = classify d.Term.body;
    preds;
    pos = List.map (fun a -> (Symbol.intern a.Term.pred, a)) pos_atoms;
    proj = named_vars_of_atoms pos_atoms;
  }

let create (constraints : (string * Term.denial list) list) =
  let entries =
    List.concat_map
      (fun (name, denials) -> List.mapi (entry_of_denial ~name) denials)
      constraints
  in
  {
    entries;
    names = List.map fst constraints;
    view = Store.create ();
    stats =
      {
        evals = 0;
        reverifies = 0;
        recomputes = 0;
        skipped = 0;
        rows_added = 0;
        rows_removed = 0;
      };
  }

(* Project a witness onto the entry's row shape.  [theta0] holds the
   bindings fixed by delta unification; [env] the solver's bindings for
   the rest. *)
let project e theta0 env =
  List.map
    (fun v ->
      match Subst.find v theta0 with
      | Some (Term.Const c) -> c
      | _ -> (
        match List.assoc_opt v env with
        | Some c -> c
        | None ->
          (* Positive-literal variables are always bound in a witness. *)
          invalid_arg ("Incr: unbound witness variable " ^ v)))
    e.proj

let add_row t e row =
  if not (Store.mem_sym t.view e.rel row) then begin
    Store.add_sym t.view e.rel row;
    t.stats.rows_added <- t.stats.rows_added + 1
  end

let recompute_entry t store e =
  let old = Store.tuples_sym t.view e.rel in
  Store.clear_sym t.view e.rel;
  t.stats.rows_removed <- t.stats.rows_removed + List.length old;
  List.iter
    (fun env -> add_row t e (project e Subst.empty env))
    (Eval.violations store e.denial)

let initialize t store =
  List.iter
    (fun e ->
      t.stats.recomputes <- t.stats.recomputes + 1;
      recompute_entry t store e)
    t.entries;
  (* A (re)initialization retracts every existing row before repopulating;
     collect the tombstone spike instead of carrying it into steady state. *)
  Store.compact t.view

(* Unify a positive literal against an inserted ground tuple.  Returns
   the binding of the literal's variables, or [None] when the tuple
   cannot match.  Every variable is bound — including the '_'-prefixed
   compiler-generated ones, which are unique by construction and carry
   the node-id joins: leaving them out of [theta0] would degrade the
   residual to a full re-evaluation of the denial.  Repeated variables
   must agree. *)
let unify_atom (a : Term.atom) (tup : Store.tuple) =
  if List.length a.Term.args <> List.length tup then None
  else
    let rec go subst args tup =
      match (args, tup) with
      | [], [] -> Some subst
      | arg :: args, c :: tup -> (
        match arg with
        | Term.Const c' -> if c' = c then go subst args tup else None
        | Term.Var v -> (
          match Subst.find v subst with
          | Some (Term.Const c') -> if c' = c then go subst args tup else None
          | Some _ -> None
          | None -> go (Subst.add v (Term.Const c) subst) args tup)
        | Term.Param _ -> None)
      | _ -> None
    in
    go Subst.empty a.Term.args tup

let reverify_rows t store e =
  let rows = Store.tuples_sym t.view e.rel in
  List.iter
    (fun row ->
      t.stats.reverifies <- t.stats.reverifies + 1;
      let theta =
        Subst.of_list
          (List.map2 (fun v c -> (v, Term.Const c)) e.proj row)
      in
      if not (Eval.violated store (Subst.apply_denial theta e.denial)) then begin
        ignore (Store.remove_sym t.view e.rel row);
        t.stats.rows_removed <- t.stats.rows_removed + 1
      end)
    rows

let delta_insertions t store e delta =
  List.iter
    (fun (sym, tup, _mult) ->
      List.iter
        (fun (psym, atom) ->
          if Symbol.equal psym sym then
            match unify_atom atom tup with
            | None -> ()
            | Some theta0 ->
              t.stats.evals <- t.stats.evals + 1;
              let residual = Subst.apply_denial theta0 e.denial in
              List.iter
                (fun env -> add_row t e (project e theta0 env))
                (Eval.violations store residual))
        e.pos)
    (Delta.added delta)

let apply_delta t store delta =
  let touched = Delta.touched delta in
  let removals_touch e =
    List.exists
      (fun (sym, _, _) -> List.mem sym e.preds)
      (Delta.removed delta)
  in
  List.iter
    (fun e ->
      if not (List.exists (fun s -> List.mem s e.preds) touched) then
        t.stats.skipped <- t.stats.skipped + 1
      else
        match e.klass with
        | Recompute ->
          t.stats.recomputes <- t.stats.recomputes + 1;
          recompute_entry t store e
        | Monotone ->
          (* Deletions first: rows must be re-verified before the
             insertion pass adds rows that are already post-state. *)
          if removals_touch e then reverify_rows t store e;
          delta_insertions t store e delta)
    t.entries

let violated t =
  List.filter
    (fun name ->
      List.exists
        (fun e ->
          String.equal e.name name && Store.cardinality_sym t.view e.rel > 0)
        t.entries)
    t.names

let view t = t.view
let stats t = t.stats
let entry_count t = List.length t.entries

let stats_line t =
  let s = t.stats in
  Printf.sprintf
    "evals=%d reverifies=%d recomputes=%d skipped=%d rows+%d rows-%d"
    s.evals s.reverifies s.recomputes s.skipped s.rows_added s.rows_removed
