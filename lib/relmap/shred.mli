(** Shredding documents into the relational fact store of the mapping.

    Each non-embedded, non-elided element [e] with node id [i], position
    [p] (among its parent's element children) and parent node id [q]
    yields the fact [e(i, p, q, c₁, …, cₙ)] where the [cᵢ] are attribute
    values and embedded-child text contents ([""] when absent). *)

open Xic_xml

exception Shred_error of string

val node_const : Doc.node_id -> Xic_datalog.Term.const
(** The constant representing a node id ([Int]). *)

val fact_of_element :
  ?index:Index.t ->
  Mapping.t -> Doc.t -> Doc.node_id -> (string * Xic_datalog.Term.const list) option
(** The fact contributed by one element node, if its type maps to a
    predicate.  When [index] is given, embedded-child lookups and the
    [Pos] column come from the secondary indexes.
    @raise Shred_error for element types outside the schema. *)

val fact_of_element_sym :
  ?index:Index.t ->
  Mapping.t -> Doc.t -> Doc.node_id ->
  (Doc.Symbol.t * Xic_datalog.Term.const list) option
(** As {!fact_of_element} with the predicate as an interned symbol — the
    shredding loops use this together with {!Xic_datalog.Store.add_sym}
    so the per-element dispatch never hashes a tag string. *)

val sink :
  ?count:int ref ->
  Mapping.t -> Doc.t -> Xic_datalog.Store.t -> Doc.node_id -> pos:int -> unit
(** Streaming shredder for the fused loader: the returned function has
    the shape of [Xml_parser.sink] and adds each completed element's fact
    to the store as the parser closes it — position comes from the
    parser, embedded text and attributes from the freshly built arena, so
    loading needs no second walk and no position recomputation.  [count],
    when given, is incremented per fact emitted.
    @raise Shred_error for element types outside the schema. *)

val shred : ?index:Index.t -> Mapping.t -> Doc.t -> Xic_datalog.Store.t
(** Shred all roots of the document/collection into a fresh store. *)

val shred_into :
  ?index:Index.t ->
  Mapping.t -> Doc.t -> Xic_datalog.Store.t -> Doc.node_id -> unit
(** Shred the subtree rooted at the given node into an existing store
    (used to mirror XUpdate insertions at the relational level). *)

val unshred_from :
  ?index:Index.t ->
  Mapping.t -> Doc.t -> Xic_datalog.Store.t -> Doc.node_id -> unit
(** Remove the facts of the subtree rooted at the given node (rollback
    mirror of {!shred_into}). *)

val path_to_node : Doc.t -> Doc.node_id -> string
(** A positional root path such as [/review/track[2]/rev[5]], the display
    form the paper uses for node-valued parameters. *)
