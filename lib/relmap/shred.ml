open Xic_xml
module T = Xic_datalog.Term
module Store = Xic_datalog.Store

exception Shred_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Shred_error s)) fmt

let node_const id = T.Int id

(* Text of the first child element named [name] (the embedded edge
   guarantees at most one), or "" when absent. *)
let embedded_text ?index doc id name =
  match index with
  | Some idx ->
    (match Index.children_named idx id name with
     | [] -> ""
     | c :: _ -> Doc.text_content doc c)
  | None ->
    let want = Doc.Symbol.intern name in
    let found = ref Doc.no_node in
    Doc.iter_children doc id (fun c ->
        if
          !found = Doc.no_node && Doc.is_element doc c
          && Doc.Symbol.equal (Doc.tag doc c) want
        then found := c);
    if !found = Doc.no_node then "" else Doc.text_content doc !found

(* The extra columns after Id, Pos and IdParent. *)
let columns ?index mapping_columns doc id =
  List.map
    (fun (c : Mapping.column) ->
      match c.Mapping.source with
      | Mapping.From_attr a -> T.Str (Option.value ~default:"" (Doc.attr doc id a))
      | Mapping.From_pcdata_child ch -> T.Str (embedded_text ?index doc id ch)
      | Mapping.From_text -> T.Str (Doc.text_content doc id))
    mapping_columns

(* Per-element dispatch on the interned tag: no string hashing on the
   shredding hot path. *)
let fact_of_element_sym ?index mapping doc id =
  if not (Doc.is_element doc id) then None
  else begin
    let tag = Doc.tag doc id in
    match Mapping.repr_of_sym mapping tag with
    | exception Mapping.Mapping_error m -> fail "%s" m
    | Mapping.Embedded | Mapping.Elided -> None
    | Mapping.Predicate schema ->
      let cols = columns ?index schema.Mapping.columns doc id in
      let parent = Doc.parent doc id in
      let pos =
        match index with
        | Some idx -> Index.position idx id
        | None -> Doc.position doc id
      in
      Some (tag, node_const id :: T.Int pos :: node_const parent :: cols)
  end

(* Streaming endpoint of the fused loader: the parser hands over each
   completed element together with its position, so the store is filled
   during the parse with no second walk and no position recomputation.
   Shaped to plug in directly as [Xml_parser.sink].

   The per-tag dispatch is compiled once per sink: the first element of
   each type resolves its representation and pre-interns its column
   names, later ones hit an array indexed by the tag symbol — no string
   hashing and no mapping lookup on the per-element path. *)
type compiled_repr =
  | Skip
  | Emit of (Doc.node_id -> T.const) list

let sink ?count mapping doc store =
  let compile tag =
    match Mapping.repr_of_sym mapping tag with
    | exception Mapping.Mapping_error m -> fail "%s" m
    | Mapping.Embedded | Mapping.Elided -> Skip
    | Mapping.Predicate schema ->
      Emit
        (List.map
           (fun (c : Mapping.column) ->
             match c.Mapping.source with
             | Mapping.From_attr a ->
               let ka = Doc.Symbol.intern a in
               fun id ->
                 T.Str (Option.value ~default:"" (Doc.attr_sym doc id ka))
             | Mapping.From_pcdata_child ch ->
               let kch = Doc.Symbol.intern ch in
               fun id ->
                 let found = ref Doc.no_node in
                 Doc.iter_children doc id (fun c ->
                     if
                       !found = Doc.no_node && Doc.is_element doc c
                       && Doc.Symbol.equal (Doc.tag doc c) kch
                     then found := c);
                 T.Str
                   (if !found = Doc.no_node then ""
                    else Doc.text_content doc !found)
             | Mapping.From_text -> fun id -> T.Str (Doc.text_content doc id))
           schema.Mapping.columns)
  in
  let memo = ref (Array.make (max 16 (Doc.Symbol.count ())) None) in
  fun id ~pos ->
    let tag = Doc.tag doc id in
    let ti = Doc.Symbol.to_int tag in
    if ti >= Array.length !memo then begin
      let a = Array.make (max (ti + 1) (2 * Array.length !memo)) None in
      Array.blit !memo 0 a 0 (Array.length !memo);
      memo := a
    end;
    let repr =
      match (!memo).(ti) with
      | Some r -> r
      | None ->
        let r = compile tag in
        (!memo).(ti) <- Some r;
        r
    in
    match repr with
    | Skip -> ()
    | Emit cols ->
      Store.add_sym store tag
        (node_const id :: T.Int pos
        :: node_const (Doc.parent doc id)
        :: List.map (fun f -> f id) cols);
      (match count with None -> () | Some r -> incr r)

let fact_of_element ?index mapping doc id =
  Option.map
    (fun (sym, tuple) -> (Doc.Symbol.name sym, tuple))
    (fact_of_element_sym ?index mapping doc id)

let shred_into ?index mapping doc store start =
  let rec go id =
    (match fact_of_element_sym ?index mapping doc id with
     | Some (pred, tuple) -> Store.add_sym store pred tuple
     | None -> ());
    Doc.iter_children doc id (fun c -> if Doc.is_element doc c then go c)
  in
  go start

let unshred_from ?index mapping doc store start =
  let rec go id =
    (match fact_of_element_sym ?index mapping doc id with
     | Some (pred, tuple) -> ignore (Store.remove_sym store pred tuple)
     | None -> ());
    Doc.iter_children doc id (fun c -> if Doc.is_element doc c then go c)
  in
  go start

let shred ?index mapping doc =
  Xic_obs.Obs.Trace.with_span "shred" (fun () ->
      let store = Store.create () in
      List.iter (shred_into ?index mapping doc store) (Doc.roots doc);
      store)

let path_to_node doc id =
  (* index among same-name element siblings, the [n] of XPath steps *)
  let sibling_index id =
    let name = Doc.name doc id in
    1
    + List.length
        (List.filter
           (fun s -> Doc.is_element doc s && Doc.name doc s = name)
           (Doc.preceding_siblings doc id))
  in
  let rec go id acc =
    let p = Doc.parent doc id in
    let label =
      if Doc.is_element doc id then
        Printf.sprintf "/%s[%d]" (Doc.name doc id) (sibling_index id)
      else "/text()"
    in
    if p = Doc.no_node then
      (if Doc.is_element doc id then "/" ^ Doc.name doc id else label) ^ acc
    else go p (label ^ acc)
  in
  go id ""
