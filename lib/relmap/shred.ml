open Xic_xml
module T = Xic_datalog.Term
module Store = Xic_datalog.Store

exception Shred_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Shred_error s)) fmt

let node_const id = T.Int id

(* Text of the first child element named [name] (the embedded edge
   guarantees at most one), or "" when absent. *)
let embedded_text ?index doc id name =
  let named =
    match index with
    | Some idx -> Index.children_named idx id name
    | None ->
      List.filter
        (fun c -> Doc.is_element doc c && Doc.name doc c = name)
        (Doc.children doc id)
  in
  match named with
  | [] -> ""
  | c :: _ -> Doc.text_content doc c

(* Per-element dispatch on the interned tag: no string hashing on the
   shredding hot path. *)
let fact_of_element_sym ?index mapping doc id =
  if not (Doc.is_element doc id) then None
  else begin
    let tag = Doc.tag doc id in
    match Mapping.repr_of_sym mapping tag with
    | exception Mapping.Mapping_error m -> fail "%s" m
    | Mapping.Embedded | Mapping.Elided -> None
    | Mapping.Predicate schema ->
      let cols =
        List.map
          (fun (c : Mapping.column) ->
            match c.Mapping.source with
            | Mapping.From_attr a ->
              T.Str (Option.value ~default:"" (Doc.attr doc id a))
            | Mapping.From_pcdata_child ch -> T.Str (embedded_text ?index doc id ch)
            | Mapping.From_text -> T.Str (Doc.text_content doc id))
          schema.Mapping.columns
      in
      let parent = Doc.parent doc id in
      let pos =
        match index with
        | Some idx -> Index.position idx id
        | None -> Doc.position doc id
      in
      Some (tag, node_const id :: T.Int pos :: node_const parent :: cols)
  end

let fact_of_element ?index mapping doc id =
  Option.map
    (fun (sym, tuple) -> (Doc.Symbol.name sym, tuple))
    (fact_of_element_sym ?index mapping doc id)

let shred_into ?index mapping doc store start =
  let rec go id =
    (match fact_of_element_sym ?index mapping doc id with
     | Some (pred, tuple) -> Store.add_sym store pred tuple
     | None -> ());
    List.iter go (List.filter (Doc.is_element doc) (Doc.children doc id))
  in
  go start

let unshred_from ?index mapping doc store start =
  let rec go id =
    (match fact_of_element_sym ?index mapping doc id with
     | Some (pred, tuple) -> ignore (Store.remove_sym store pred tuple)
     | None -> ());
    List.iter go (List.filter (Doc.is_element doc) (Doc.children doc id))
  in
  go start

let shred ?index mapping doc =
  Xic_obs.Obs.Trace.with_span "shred" (fun () ->
      let store = Store.create () in
      List.iter (shred_into ?index mapping doc store) (Doc.roots doc);
      store)

let path_to_node doc id =
  (* index among same-name element siblings, the [n] of XPath steps *)
  let sibling_index id =
    let name = Doc.name doc id in
    1
    + List.length
        (List.filter
           (fun s -> Doc.is_element doc s && Doc.name doc s = name)
           (Doc.preceding_siblings doc id))
  in
  let rec go id acc =
    let p = Doc.parent doc id in
    let label =
      if Doc.is_element doc id then
        Printf.sprintf "/%s[%d]" (Doc.name doc id) (sibling_index id)
      else "/text()"
    in
    if p = Doc.no_node then
      (if Doc.is_element doc id then "/" ^ Doc.name doc id else label) ^ acc
    else go p (label ^ acc)
  in
  go id ""
