(** Derivation of the relational schema from DTDs (Section 4.1).

    Every element type maps to a predicate
    [type(Id, Pos, IdParent, col₁, …, colₙ)] unless it is
    {ul
    {- {e embedded}: a [(#PCDATA)]-only, attribute-less child that occurs
       at most once in its parent's content model — its text becomes a
       column of the parent's predicate (e.g. [name], [title]); or}
    {- {e elided}: a document root with no attributes and no embedded
       children — it is referenced only through the [IdParent] values of
       its children (e.g. [dblp], [review]).}}

    Extra columns are the element's XML attributes (declaration order)
    followed by its embedded children (content-model order).  A missing
    optional embedded child or attribute maps to the empty string (our
    stand-in for the paper's null values). *)

open Xic_xml

type col_source =
  | From_attr of string           (** XML attribute *)
  | From_pcdata_child of string   (** embedded [(#PCDATA)]-only child *)
  | From_text
      (** own text content, for [(#PCDATA)]-only types that could not be
          embedded (e.g. they carry attributes or repeat in a parent) *)

type column = {
  col_name : string;
  source : col_source;
  optional : bool;
}

type pred_schema = {
  pname : string;          (** = the element type name *)
  columns : column list;   (** extra columns after Id, Pos, IdParent *)
}

(** How an element type is represented. *)
type repr =
  | Predicate of pred_schema
  | Embedded   (** only ever embedded into its containers *)
  | Elided     (** root represented only through IdParent values *)

type t

exception Mapping_error of string

val build : (Dtd.t * string) list -> t
(** Build the combined mapping for a list of documents, each given by its
    DTD and root element name.  @raise Mapping_error when the same element
    name carries conflicting declarations across DTDs, or a root is
    undeclared. *)

val dtds : t -> (Dtd.t * string) list
val repr_of : t -> string -> repr
(** @raise Mapping_error for names unknown to every DTD. *)

val repr_of_sym : t -> Doc.Symbol.t -> repr
(** As {!repr_of} on an interned tag, without hashing the string — the
    shredder's per-element dispatch.
    @raise Mapping_error for names unknown to every DTD. *)

val predicates : t -> pred_schema list
val schema_of : t -> string -> pred_schema option

val is_embedded_in : t -> parent:string -> child:string -> bool
(** Is [child] represented as a column of [parent]'s predicate? *)

val column_index : t -> pred:string -> col:string -> int option
(** Index of the named extra column within the full argument list of the
    predicate (so the first extra column has index 3, after Id, Pos and
    IdParent). *)

val arity : t -> string -> int
(** Total arity of a predicate: 3 + number of extra columns. *)

val element_types : t -> string list
(** All element types of the combined schema. *)

val containers_of : t -> string -> string list
(** Element types that can directly contain the given type (across all
    DTDs). *)

val predicate_children : t -> string -> string list
(** Child element types of the given type that map to predicates
    themselves (i.e. are not embedded/elided). *)

val schema_to_string : t -> string
(** Human-readable rendering of the derived relational schema, as in the
    paper: [pub(Id, Pos, IdParent_dblp, Title)] etc. *)
