open Xic_xml

type col_source =
  | From_attr of string
  | From_pcdata_child of string
  | From_text

type column = {
  col_name : string;
  source : col_source;
  optional : bool;
}

type pred_schema = {
  pname : string;
  columns : column list;
}

type repr =
  | Predicate of pred_schema
  | Embedded
  | Elided

type t = {
  dtds : (Dtd.t * string) list;
  reprs : (string, repr) Hashtbl.t;
  reprs_sym : (Doc.Symbol.t, repr) Hashtbl.t;
  (* (parent, child) pairs where the child is embedded as a column *)
  embedded_edges : (string * string, unit) Hashtbl.t;
  types : string list;  (* declaration order, first DTD first *)
}

exception Mapping_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Mapping_error s)) fmt

let dtds t = t.dtds

(* A child is embeddable into a given parent when it is (#PCDATA)-only,
   has no attributes of its own, and occurs at most once there. *)
let embeddable dtd ~parent ~child =
  Dtd.is_pcdata_only dtd child
  && (match Dtd.find dtd child with
      | Some d -> d.Dtd.attlist = []
      | None -> false)
  && (match Dtd.child_multiplicity dtd ~parent ~child with
      | Dtd.M_one | Dtd.M_opt -> true
      | Dtd.M_many | Dtd.M_none -> false)

let build docs =
  if docs = [] then fail "no documents given";
  (* Merge declarations, rejecting conflicts. *)
  let decls : (string, Dtd.element_decl * Dtd.t) Hashtbl.t = Hashtbl.create 32 in
  let types = ref [] in
  List.iter
    (fun (dtd, root) ->
      (match Dtd.find dtd root with
       | None -> fail "root element <%s> is not declared in its DTD" root
       | Some _ -> ());
      List.iter
        (fun d ->
          match Hashtbl.find_opt decls d.Dtd.elem_name with
          | None ->
            Hashtbl.add decls d.Dtd.elem_name (d, dtd);
            types := d.Dtd.elem_name :: !types
          | Some (d', _) ->
            if d'.Dtd.content <> d.Dtd.content || d'.Dtd.attlist <> d.Dtd.attlist then
              fail "conflicting declarations for element <%s> across DTDs"
                d.Dtd.elem_name)
        (Dtd.declarations dtd))
    docs;
  let types = List.rev !types in
  let roots = List.map snd docs in
  (* In which parents can each type occur, and is it embedded there? *)
  let embedded_edges = Hashtbl.create 32 in
  let occurs_non_embedded = Hashtbl.create 32 in
  List.iter
    (fun parent ->
      let _, dtd = Hashtbl.find decls parent in
      List.iter
        (fun child ->
          if embeddable dtd ~parent ~child then
            Hashtbl.replace embedded_edges (parent, child) ()
          else Hashtbl.replace occurs_non_embedded child ())
        (Dtd.child_names dtd parent))
    types;
  (* Representations. *)
  let reprs = Hashtbl.create 32 in
  let columns_of name =
    let decl, dtd = Hashtbl.find decls name in
    let attr_cols =
      List.map
        (fun (a : Dtd.attr_decl) ->
          { col_name = a.Dtd.attr_name;
            source = From_attr a.Dtd.attr_name;
            optional = not a.Dtd.required;
          })
        decl.Dtd.attlist
    in
    let child_cols =
      List.filter_map
        (fun child ->
          if Hashtbl.mem embedded_edges (name, child) then
            Some
              { col_name = child;
                source = From_pcdata_child child;
                optional =
                  Dtd.child_multiplicity dtd ~parent:name ~child = Dtd.M_opt;
              }
          else None)
        (Dtd.child_names dtd name)
    in
    let text_col =
      if decl.Dtd.content = Dtd.PCData then
        [ { col_name = "text"; source = From_text; optional = false } ]
      else []
    in
    attr_cols @ child_cols @ text_col
  in
  List.iter
    (fun name ->
      let is_root = List.mem name roots in
      let always_embedded =
        (not (Hashtbl.mem occurs_non_embedded name))
        && not is_root
        && Hashtbl.fold
             (fun (_, c) () acc -> acc || c = name)
             embedded_edges false
      in
      let repr =
        if always_embedded then Embedded
        else begin
          let cols = columns_of name in
          if is_root && cols = [] then Elided
          else Predicate { pname = name; columns = cols }
        end
      in
      Hashtbl.replace reprs name repr)
    types;
  let reprs_sym = Hashtbl.create 32 in
  Hashtbl.iter
    (fun name repr -> Hashtbl.replace reprs_sym (Doc.Symbol.intern name) repr)
    reprs;
  { dtds = docs; reprs; reprs_sym; embedded_edges; types }

let repr_of t name =
  match Hashtbl.find_opt t.reprs name with
  | Some r -> r
  | None -> fail "element type <%s> is not part of the schema" name

let repr_of_sym t sym =
  match Hashtbl.find_opt t.reprs_sym sym with
  | Some r -> r
  | None -> fail "element type <%s> is not part of the schema" (Doc.Symbol.name sym)

let predicates t =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt t.reprs name with
      | Some (Predicate s) -> Some s
      | _ -> None)
    t.types

let schema_of t name =
  match Hashtbl.find_opt t.reprs name with
  | Some (Predicate s) -> Some s
  | _ -> None

let is_embedded_in t ~parent ~child = Hashtbl.mem t.embedded_edges (parent, child)

let column_index t ~pred ~col =
  match schema_of t pred with
  | None -> None
  | Some s ->
    let rec go i = function
      | [] -> None
      | c :: rest -> if c.col_name = col then Some (3 + i) else go (i + 1) rest
    in
    go 0 s.columns

let arity t name =
  match schema_of t name with
  | Some s -> 3 + List.length s.columns
  | None -> fail "<%s> does not map to a predicate" name

let element_types t = t.types

let containers_of t name =
  List.concat_map
    (fun (dtd, _) ->
      if Dtd.find dtd name = None then []
      else Dtd.parents_of dtd name)
    t.dtds
  |> List.sort_uniq compare

let predicate_children t name =
  let kids =
    List.concat_map
      (fun (dtd, _) ->
        if Dtd.find dtd name = None then [] else Dtd.child_names dtd name)
      t.dtds
    |> List.sort_uniq compare
  in
  List.filter
    (fun k -> match repr_of t k with Predicate _ -> true | _ -> false)
    kids

let schema_to_string t =
  let parent_suffix name =
    match containers_of t name with
    | [ p ] -> "_" ^ p
    | _ -> ""
  in
  String.concat "\n"
    (List.map
       (fun s ->
         let cap x = String.capitalize_ascii x in
         Printf.sprintf "%s(Id, Pos, IdParent%s%s)" s.pname (parent_suffix s.pname)
           (String.concat ""
              (List.map (fun c -> ", " ^ cap c.col_name) s.columns)))
       (predicates t))
