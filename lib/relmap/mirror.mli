(** Exact store mirror driven by Doc mutation events.

    Keeps a shredded fact store equal to what a from-scratch
    {!Shred.shred} would produce across arbitrary XUpdate application,
    undo, savepoint rollback and recovery replay — including the
    position-column shifts of following siblings and the embedded-text
    columns of ancestors that the old insert-only mirroring missed.
    Mutation events mark nodes dirty; {!flush} reconciles them against
    the arena and records every net store change into a
    {!Xic_datalog.Delta} for the incremental evaluator. *)

open Xic_xml

type t

val create : Mapping.t -> Doc.t -> Xic_datalog.Store.t -> t
(** Subscribe to the document's mutation events.  The store must be
    exact (equal to [Shred.shred mapping doc]) at creation time. *)

val detach : t -> unit
(** Unsubscribe and drop pending marks.  The mirror must not be used
    afterwards. *)

val set_active : t -> bool -> unit
(** Disable/enable marking.  While inactive the caller is responsible
    for keeping the store exact (the fused loader's sink does this
    during a bulk parse). *)

val has_dirty : t -> bool

val flush : t -> into:Xic_datalog.Delta.t -> unit
(** Reconcile all dirty nodes: recompute each one's fact, apply the
    difference to the store and record it into [into].  After the call
    the store is exact again and the dirty set is empty.
    @raise Shred.Shred_error for element types outside the schema. *)
