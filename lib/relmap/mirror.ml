(** Exact store mirror driven by Doc mutation events.

    Subscribes to the document's mutation observer and keeps the
    shredded fact store equal to what a from-scratch {!Shred.shred}
    would produce, recording every net store change into a
    {!Xic_datalog.Delta} for the incremental evaluator.

    Events only {e mark} nodes dirty (cheap, during mutation storms such
    as savepoint rollback); {!flush} reconciles each dirty element's
    stored facts against a recomputed [fact_of_element_sym] — so an
    insert-then-delete inside one batch nets out to nothing, and
    position/text-dependent columns of shifted siblings and ancestors
    are refreshed exactly.

    Marking rules, derived from the fact shape
    [tag(id, pos, parent, c₁…cₙ)]:
    - attaching/detaching an element changes its own subtree's facts,
      the [pos] column of every following element sibling, and the
      embedded-text columns of every ancestor;
    - attaching/detaching a text node changes ancestors only;
    - setting an attribute changes that element's fact only.

    [Detaching] fires while links are intact, so the same sets are
    reachable; the tag is recorded at mark time because the node may be
    freed before the flush. *)

open Xic_xml
module Store = Xic_datalog.Store
module Delta = Xic_datalog.Delta
module Term = Xic_datalog.Term

type t = {
  mapping : Mapping.t;
  doc : Doc.t;
  store : Store.t;
  dirty : (Doc.node_id, Doc.Symbol.t) Hashtbl.t;
  mutable token : int;
  mutable active : bool;
}

let mark t id tag = Hashtbl.replace t.dirty id tag

let mark_ancestors t id =
  let rec up i =
    let p = Doc.parent t.doc i in
    if p <> Doc.no_node then begin
      mark t p (Doc.tag t.doc p);
      up p
    end
  in
  up id

let mark_subtree t id =
  let rec go i =
    if Doc.is_element t.doc i then begin
      mark t i (Doc.tag t.doc i);
      Doc.iter_children t.doc i go
    end
  in
  go id

let mark_structural t id =
  if Doc.is_element t.doc id then begin
    mark_subtree t id;
    List.iter
      (fun s -> if Doc.is_element t.doc s then mark t s (Doc.tag t.doc s))
      (Doc.following_siblings t.doc id)
  end;
  mark_ancestors t id

let on_event t = function
  | Doc.Attached id | Doc.Detaching id ->
    if t.active then mark_structural t id
  | Doc.Attr_set (id, _) ->
    if t.active then mark t id (Doc.tag t.doc id)

let create mapping doc store =
  let t =
    { mapping; doc; store; dirty = Hashtbl.create 64; token = -1; active = true }
  in
  t.token <- Doc.subscribe doc (on_event t);
  t

let detach t =
  Doc.unsubscribe t.doc t.token;
  Hashtbl.reset t.dirty

let set_active t b = t.active <- b
let has_dirty t = Hashtbl.length t.dirty > 0

(* A live node contributes facts only when its tree is attached to a
   document root (XUpdate materializes replacement content in detached
   scratch trees, whose mutations also fire events). *)
let reachable t id =
  let rec top i =
    let p = Doc.parent t.doc i in
    if p = Doc.no_node then i else top p
  in
  List.mem (top id) (Doc.roots t.doc)

let flush t ~into =
  if has_dirty t then begin
    Hashtbl.iter
      (fun id tag ->
        let old = Store.tuples_with_key_sym t.store tag (Term.Int id) in
        let nw =
          if Doc.live t.doc id && reachable t id then
            match Shred.fact_of_element_sym t.mapping t.doc id with
            | Some (_, tup) -> Some tup
            | None -> None  (* embedded / elided element type *)
          else None
        in
        match (old, nw) with
        | [], None -> ()
        | [ o ], Some tup when o = tup -> ()  (* net no-op *)
        | _ ->
          List.iter
            (fun o ->
              ignore (Store.remove_sym t.store tag o);
              Delta.remove into tag o)
            old;
          (match nw with
           | Some tup ->
             Store.add_sym t.store tag tup;
             Delta.add into tag tup
           | None -> ()))
      t.dirty;
    Hashtbl.reset t.dirty
  end
