(* Crash-safe file replacement and its building blocks, shared by the
   journal and the snapshot writer. *)

let c_dir_fsyncs = Xic_obs.Obs.Metrics.counter "dir_fsyncs"
let c_io_retries = Xic_obs.Obs.Metrics.counter "io_retries"

exception Atomic_file_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Atomic_file_error s)) fmt

(* Transient errors worth a bounded retry.  Real EIO is rarely
   transient, but the injected one (Failpoint.Eio) is by construction,
   and a couple of cheap retries on the real thing cost nothing. *)
let transient = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EIO -> true
  | _ -> false

let retry_attempts = 4
let backoff_base_s = 0.0005

let with_retries ?(attempts = retry_attempts) f =
  let rec go i =
    try f ()
    with Unix.Unix_error (e, _, _) when transient e && i < attempts ->
      Xic_obs.Obs.Metrics.incr c_io_retries;
      Unix.sleepf (backoff_base_s *. (2.0 ** float_of_int i));
      go (i + 1)
  in
  go 0

let write_plain fd s off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write_substring fd s off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* Write [len] bytes, mediated by failpoint site [fp] when given: an
   armed torn-write action emits a prefix and crashes (or raises), an
   injected EIO is retried with backoff like a real transient error. *)
let write_all ?fp fd s off len =
  let attempt () =
    match fp with
    | None -> write_plain fd s off len
    | Some name ->
      (match Failpoint.write_fault name ~len with
       | Some keep ->
         write_plain fd s off keep;
         Failpoint.torn_crash name
       | None -> write_plain fd s off len)
  in
  with_retries attempt

let fsync ?fp fd =
  (match fp with Some name -> Failpoint.hit name | None -> ());
  (* only EINTR: an fsync that reports EIO may have dropped dirty pages,
     so retrying would falsely report durability *)
  let rec go () =
    try Unix.fsync fd with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Make a directory entry change (create, rename) itself durable.  Best
   effort: some platforms refuse to open or fsync directories. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.fsync dfd with
        | () -> Xic_obs.Obs.Metrics.incr c_dir_fsyncs
        | exception Unix.Unix_error _ -> ())

let fsync_parent_dir path = fsync_dir (Filename.dirname path)

(* Atomically replace [path] with [contents]: write a temp file in the
   same directory, fsync it, rename over [path], fsync the directory so
   the rename itself survives a crash.  A crash at any point leaves
   either the old file or the new one — never a partial mix (at worst a
   stale *.tmp to ignore).  [fp] prefixes the failpoint sites
   FP_write / FP_fsync / FP_rename / FP_dirsync. *)
let replace ?fp path contents =
  let site suffix = Option.map (fun p -> p ^ "_" ^ suffix) fp in
  let hit_site suffix =
    match site suffix with Some name -> Failpoint.hit name | None -> ()
  in
  let dir = Filename.dirname path in
  let tmp =
    try Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp"
    with Sys_error m -> fail "cannot create temp file in %s: %s" dir m
  in
  let fd =
    try Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) -> fail "%s: %s" tmp (Unix.error_message e)
  in
  let fd_open = ref true in
  let renamed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !fd_open then (try Unix.close fd with Unix.Unix_error _ -> ());
      if not !renamed then (try Sys.remove tmp with Sys_error _ -> ()))
  @@ fun () ->
  (try
     write_all ?fp:(site "write") fd contents 0 (String.length contents);
     fsync ?fp:(site "fsync") fd;
     Unix.chmod tmp 0o644
   with Unix.Unix_error (e, _, _) ->
     fail "writing %s: %s" tmp (Unix.error_message e));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  fd_open := false;
  hit_site "rename";
  (try with_retries (fun () -> Unix.rename tmp path)
   with Unix.Unix_error (e, _, _) ->
     fail "rename %s -> %s: %s" tmp path (Unix.error_message e));
  renamed := true;
  hit_site "dirsync";
  fsync_dir dir
