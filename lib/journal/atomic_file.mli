(** The shared atomic-write path of the durability layer.

    Crash-safe file replacement (temp file → fsync file → rename →
    fsync parent directory) plus its building blocks — retrying writes,
    fsync, directory fsync — all threaded through the {!Failpoint}
    registry so the torture harness can tear, fail and crash each step.

    The directory fsync matters: POSIX makes a rename atomic, but the
    {e durability} of the new directory entry needs an fsync of the
    parent directory — without it, a crash shortly after the rename can
    bring the old file back (or, for a freshly created journal, no file
    at all). *)

exception Atomic_file_error of string

val replace : ?fp:string -> string -> string -> unit
(** [replace ?fp path contents] atomically replaces (or creates) [path]
    with [contents].  A crash at any point leaves either the previous
    file or the complete new one, never a torn mix; at worst a stale
    [*.tmp] file remains in the directory, which readers ignore.

    With [fp], each step consults a failpoint: [fp_write] (mediated, so
    torn-write and EIO injection apply), [fp_fsync], [fp_rename] (fires
    before the rename), [fp_dirsync] (fires after the rename, before the
    directory fsync).
    @raise Atomic_file_error on an unrecoverable I/O failure. *)

val write_all : ?fp:string -> Unix.file_descr -> string -> int -> int -> unit
(** [write_all ?fp fd s off len] writes the substring fully, retrying
    transient errors (EINTR, EAGAIN, and — bounded, with exponential
    backoff — EIO, notably the injected kind) and honouring a torn-write
    failpoint at site [fp].
    @raise Unix.Unix_error when retries are exhausted. *)

val fsync : ?fp:string -> Unix.file_descr -> unit
(** Fsync, retrying only EINTR — an fsync failing with EIO may already
    have dropped dirty pages, so it propagates rather than lie about
    durability.  [fp] names a plain failpoint site consulted first. *)

val fsync_dir : string -> unit
(** Fsync a directory (best effort: silently skipped on platforms that
    refuse to fsync directories). *)

val fsync_parent_dir : string -> unit
(** {!fsync_dir} on [Filename.dirname path]. *)

val with_retries : ?attempts:int -> (unit -> 'a) -> 'a
(** Run [f], retrying transient [Unix_error]s (EINTR / EAGAIN / EIO) up
    to [attempts] (default 4) times with exponential backoff. *)
