type entry =
  | Intent of { txn : int; seq : int; strategy : string; payload : string }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Truncate of { txn : int; keep : int }

type read_result = {
  entries : entry list;
  torn : bool;
}

exception Journal_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Journal_error s)) fmt

let header = "XICJ1\n"
let digest_len = 16  (* MD5 *)

type t = {
  jpath : string;
  fd : Unix.file_descr;
  sync : bool;
  mutable next : int;
  mutable closed : bool;
}

let path t = t.jpath

let txn_of = function
  | Intent { txn; _ } | Commit { txn } | Abort { txn } | Truncate { txn; _ } -> txn

(* ------------------------------------------------------------------ *)
(* Record (de)serialization                                            *)
(* ------------------------------------------------------------------ *)

(* The payload is a header line (tag + integers + strategy word) followed,
   for intents, by the opaque statement text. *)
let entry_payload = function
  | Intent { txn; seq; strategy; payload } ->
    Printf.sprintf "intent %d %d %s\n%s" txn seq strategy payload
  | Commit { txn } -> Printf.sprintf "commit %d" txn
  | Abort { txn } -> Printf.sprintf "abort %d" txn
  | Truncate { txn; keep } -> Printf.sprintf "truncate %d %d" txn keep

let entry_of_payload s =
  let line, rest =
    match String.index_opt s '\n' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  let int_ v = match int_of_string_opt v with
    | Some i -> i
    | None -> fail "malformed journal record header %S" line
  in
  match String.split_on_char ' ' line with
  | [ "intent"; txn; seq; strategy ] ->
    Intent { txn = int_ txn; seq = int_ seq; strategy; payload = rest }
  | [ "commit"; txn ] -> Commit { txn = int_ txn }
  | [ "abort"; txn ] -> Abort { txn = int_ txn }
  | [ "truncate"; txn; keep ] -> Truncate { txn = int_ txn; keep = int_ keep }
  | _ -> fail "unknown journal record %S" line

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let input_upto ic buf len =
  let rec go off =
    if off >= len then off
    else
      match input ic buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
  in
  go 0

(* Scan all valid records; [valid_end] is the byte offset just past the
   last intact record, where appends may safely resume. *)
let scan_file p =
  let ic = try open_in_bin p with Sys_error m -> fail "%s" m in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match really_input_string ic (String.length header) with
   | h when h = header -> ()
   | _ -> fail "%s: not a journal file (bad header)" p
   | exception End_of_file -> fail "%s: not a journal file (truncated header)" p);
  let entries = ref [] in
  let torn = ref false in
  let valid_end = ref (pos_in ic) in
  let lenb = Bytes.create 4 in
  let rec scan () =
    match input_upto ic lenb 4 with
    | 0 -> ()  (* clean end of file *)
    | n when n < 4 -> torn := true
    | _ ->
      let len = Int32.to_int (Bytes.get_int32_be lenb 0) in
      if len < 0 then torn := true
      else
        (match really_input_string ic len with
         | exception End_of_file -> torn := true
         | payload ->
           (match really_input_string ic digest_len with
            | exception End_of_file -> torn := true
            | digest ->
              if Digest.string payload <> digest then torn := true
              else begin
                entries := entry_of_payload payload :: !entries;
                valid_end := pos_in ic;
                scan ()
              end))
  in
  scan ();
  (List.rev !entries, !torn, !valid_end)

let read p =
  let entries, torn, _ = scan_file p in
  { entries; torn }

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write_substring fd s off len
        with Unix.Unix_error (e, _, _) -> fail "write failed: %s" (Unix.error_message e)
      in
      go (off + n) (len - n)
    end
  in
  go off len

let open_ ?(sync = true) p =
  let fresh =
    (not (Sys.file_exists p)) || (try (Unix.stat p).Unix.st_size = 0 with Unix.Unix_error _ -> true)
  in
  let entries, valid_end =
    if fresh then ([], String.length header)
    else
      (* the torn tail, if any, is truncated away below *)
      let entries, _torn, valid_end = scan_file p in
      (entries, valid_end)
  in
  let fd =
    try Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (e, _, _) -> fail "%s: %s" p (Unix.error_message e)
  in
  (try
     if fresh then write_all fd header 0 (String.length header)
     else begin
       Unix.ftruncate fd valid_end;
       ignore (Unix.lseek fd valid_end Unix.SEEK_SET)
     end;
     if sync then Unix.fsync fd
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "%s: %s" p (Unix.error_message e));
  let next = 1 + List.fold_left (fun m e -> max m (txn_of e)) 0 entries in
  { jpath = p; fd; sync; next; closed = false }

let next_txn t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let c_appends = Xic_obs.Obs.Metrics.counter "journal_appends"
let c_fsyncs = Xic_obs.Obs.Metrics.counter "journal_fsyncs"

let append t e =
  if t.closed then fail "journal %s is closed" t.jpath;
  Xic_obs.Obs.Metrics.incr c_appends;
  let payload = entry_payload e in
  let lenb = Bytes.create 4 in
  Bytes.set_int32_be lenb 0 (Int32.of_int (String.length payload));
  let record = Bytes.to_string lenb ^ payload ^ Digest.string payload in
  (* Two half-writes so the [mid_write] failpoint leaves a torn record. *)
  let half = String.length record / 2 in
  write_all t.fd record 0 half;
  (match Failpoint.hit "mid_write" with
   | () -> ()
   | exception exn ->
     (* in-process (Raise) injection: the tail is torn; poison the handle *)
     t.closed <- true;
     raise exn);
  write_all t.fd record half (String.length record - half);
  (try
     if t.sync then begin
       Unix.fsync t.fd;
       Xic_obs.Obs.Metrics.incr c_fsyncs
     end
   with Unix.Unix_error (e, _, _) -> fail "fsync failed: %s" (Unix.error_message e));
  if txn_of e >= t.next then t.next <- txn_of e + 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd
    with Unix.Unix_error (e, _, _) -> fail "close failed: %s" (Unix.error_message e)
  end

(* ------------------------------------------------------------------ *)
(* Replay grouping                                                     *)
(* ------------------------------------------------------------------ *)

let committed entries =
  let intents : (int, entry list) Hashtbl.t = Hashtbl.create 8 in  (* reverse order *)
  let aborted = Hashtbl.create 8 in
  let commits = ref [] in
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  List.iter
    (fun e ->
      match e with
      | Intent { txn; _ } ->
        Hashtbl.replace intents txn (e :: (try Hashtbl.find intents txn with Not_found -> []))
      | Truncate { txn; keep } ->
        let cur = try Hashtbl.find intents txn with Not_found -> [] in
        Hashtbl.replace intents txn (drop (List.length cur - keep) cur)
      | Abort { txn } -> Hashtbl.replace aborted txn ()
      | Commit { txn } -> if not (List.mem txn !commits) then commits := txn :: !commits)
    entries;
  List.rev !commits
  |> List.filter (fun txn -> not (Hashtbl.mem aborted txn))
  |> List.map (fun txn ->
         (txn, List.rev (try Hashtbl.find intents txn with Not_found -> [])))
