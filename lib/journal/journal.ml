type entry =
  | Intent of { txn : int; seq : int; strategy : string; payload : string }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Truncate of { txn : int; keep : int }

type tail =
  | Clean
  | Torn of { dropped : int }
  | Corrupt of { dropped : int }

type read_result = {
  entries : entry list;
  torn : bool;
  tail : tail;
  generation : int;
}

exception Journal_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Journal_error s)) fmt

let header_v1 = "XICJ1\n"
let header_v2 = "XICJ2\n"
let header_len = String.length header_v2 (* both 6 bytes *)
let gen_len = 8 (* v2: big-endian generation follows the magic *)
let digest_len = 16 (* MD5 *)

(* Failpoint sites of the append/reset path, declared up front so the
   torture harness can enumerate them before any journal I/O happens. *)
let () =
  List.iter Failpoint.declare
    [ "mid_write"; "journal_write"; "journal_fsync"; "journal_create";
      "journal_reset"; "journal_reset_rename" ]

type t = {
  jpath : string;
  mutable fd : Unix.file_descr;
  sync : bool;
  mutable next : int;
  mutable gen : int;
  mutable entries_written : int;  (* valid records currently in the file *)
  mutable closed : bool;
}

let path t = t.jpath
let generation t = t.gen
let entry_count t = t.entries_written

(* Appended bytes in the current generation (since the last reset) —
   the file position, since the journal is append-only.  Exposed as the
   server's journal_bytes_since_checkpoint gauge. *)
let bytes t =
  if t.closed then 0 else Unix.lseek t.fd 0 Unix.SEEK_CUR

let txn_of = function
  | Intent { txn; _ } | Commit { txn } | Abort { txn } | Truncate { txn; _ } -> txn

(* ------------------------------------------------------------------ *)
(* Record (de)serialization                                            *)
(* ------------------------------------------------------------------ *)

(* The payload is a header line (tag + integers + strategy word) followed,
   for intents, by the opaque statement text. *)
let entry_payload = function
  | Intent { txn; seq; strategy; payload } ->
    Printf.sprintf "intent %d %d %s\n%s" txn seq strategy payload
  | Commit { txn } -> Printf.sprintf "commit %d" txn
  | Abort { txn } -> Printf.sprintf "abort %d" txn
  | Truncate { txn; keep } -> Printf.sprintf "truncate %d %d" txn keep

let entry_of_payload s =
  let line, rest =
    match String.index_opt s '\n' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  let int_ v = match int_of_string_opt v with
    | Some i -> i
    | None -> fail "malformed journal record header %S" line
  in
  match String.split_on_char ' ' line with
  | [ "intent"; txn; seq; strategy ] ->
    Intent { txn = int_ txn; seq = int_ seq; strategy; payload = rest }
  | [ "commit"; txn ] -> Commit { txn = int_ txn }
  | [ "abort"; txn ] -> Abort { txn = int_ txn }
  | [ "truncate"; txn; keep ] -> Truncate { txn = int_ txn; keep = int_ keep }
  | _ -> fail "unknown journal record %S" line

let fresh_header gen =
  let b = Bytes.create (header_len + gen_len) in
  Bytes.blit_string header_v2 0 b 0 header_len;
  Bytes.set_int64_be b header_len (Int64.of_int gen);
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let input_upto ic buf len =
  let rec go off =
    if off >= len then off
    else
      match input ic buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
  in
  go 0

(* Scan all valid records; [valid_end] is the byte offset just past the
   last intact record, where appends may safely resume.  [tail]
   distinguishes a truncated final record (the crash signature: bytes
   missing at end of file) from a full-length record whose checksum
   fails (corruption). *)
let scan_file p =
  let ic = try open_in_bin p with Sys_error m -> fail "%s" m in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let size = in_channel_length ic in
  let gen =
    match really_input_string ic header_len with
    | h when h = header_v1 -> 0
    | h when h = header_v2 ->
      (match really_input_string ic gen_len with
       | g -> Int64.to_int (String.get_int64_be g 0)
       | exception End_of_file -> fail "%s: not a journal file (truncated header)" p)
    | _ -> fail "%s: not a journal file (bad header)" p
    | exception End_of_file -> fail "%s: not a journal file (truncated header)" p
  in
  let entries = ref [] in
  let tail = ref Clean in
  let valid_end = ref (pos_in ic) in
  let lenb = Bytes.create 4 in
  let dropped () = size - !valid_end in
  let rec scan () =
    match input_upto ic lenb 4 with
    | 0 -> ()  (* clean end of file *)
    | n when n < 4 -> tail := Torn { dropped = dropped () }
    | _ ->
      let len = Int32.to_int (Bytes.get_int32_be lenb 0) in
      if len < 0 then tail := Corrupt { dropped = dropped () }
      else
        (match really_input_string ic len with
         | exception End_of_file -> tail := Torn { dropped = dropped () }
         | payload ->
           (match really_input_string ic digest_len with
            | exception End_of_file -> tail := Torn { dropped = dropped () }
            | digest ->
              if Digest.string payload <> digest then
                tail := Corrupt { dropped = dropped () }
              else begin
                entries := entry_of_payload payload :: !entries;
                valid_end := pos_in ic;
                scan ()
              end))
  in
  scan ();
  (List.rev !entries, !tail, !valid_end, gen)

let read p =
  let entries, tail, _, generation = scan_file p in
  { entries; torn = tail <> Clean; tail; generation }

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

let open_ ?(sync = true) p =
  let fresh =
    (not (Sys.file_exists p)) || (try (Unix.stat p).Unix.st_size = 0 with Unix.Unix_error _ -> true)
  in
  let entries, valid_end, gen =
    if fresh then ([], header_len + gen_len, 1)
    else
      (* the torn tail, if any, is truncated away below *)
      let entries, _tail, valid_end, gen = scan_file p in
      (entries, valid_end, gen)
  in
  Failpoint.hit "journal_create";
  let fd =
    try Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (e, _, _) -> fail "%s: %s" p (Unix.error_message e)
  in
  (try
     if fresh then begin
       let h = fresh_header gen in
       Atomic_file.write_all fd h 0 (String.length h)
     end
     else begin
       Unix.ftruncate fd valid_end;
       ignore (Unix.lseek fd valid_end Unix.SEEK_SET)
     end;
     if sync then begin
       Atomic_file.fsync fd;
       (* a freshly created journal is a new directory entry: make the
          entry itself durable, or a crash can lose the whole file *)
       if fresh then Atomic_file.fsync_parent_dir p
     end
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "%s: %s" p (Unix.error_message e));
  let next = 1 + List.fold_left (fun m e -> max m (txn_of e)) 0 entries in
  { jpath = p; fd; sync; next; gen;
    entries_written = List.length entries; closed = false }

let next_txn t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let c_appends = Xic_obs.Obs.Metrics.counter "journal_appends"
let c_fsyncs = Xic_obs.Obs.Metrics.counter "journal_fsyncs"
let c_resets = Xic_obs.Obs.Metrics.counter "journal_resets"

let append ?(defer_sync = false) t e =
  if t.closed then fail "journal %s is closed" t.jpath;
  Xic_obs.Obs.Metrics.incr c_appends;
  let payload = entry_payload e in
  let lenb = Bytes.create 4 in
  Bytes.set_int32_be lenb 0 (Int32.of_int (String.length payload));
  let record = Bytes.to_string lenb ^ payload ^ Digest.string payload in
  (* Two half-writes so the [mid_write] failpoint leaves a torn record;
     each half is mediated by [journal_write] (torn-write / EIO
     injection with bounded retry). *)
  let poison exn =
    (* in-process injection: the tail may be torn; poison the handle *)
    t.closed <- true;
    (match exn with
     | Unix.Unix_error (e, _, _) -> fail "write failed: %s" (Unix.error_message e)
     | _ -> raise exn)
  in
  let guarded_write s off len =
    match Atomic_file.write_all ~fp:"journal_write" t.fd s off len with
    | () -> ()
    | exception exn -> poison exn
  in
  let half = String.length record / 2 in
  guarded_write record 0 half;
  (match Failpoint.hit "mid_write" with
   | () -> ()
   | exception exn -> poison exn);
  guarded_write record half (String.length record - half);
  (try
     if t.sync && not defer_sync then begin
       Atomic_file.fsync ~fp:"journal_fsync" t.fd;
       Xic_obs.Obs.Metrics.incr c_fsyncs
     end
   with Unix.Unix_error (e, _, _) -> fail "fsync failed: %s" (Unix.error_message e));
  t.entries_written <- t.entries_written + 1;
  if txn_of e >= t.next then t.next <- txn_of e + 1

(* Atomically replace the journal with a fresh one of the next
   generation.  Reset-by-rename rather than ftruncate: a crash between
   truncating and rewriting the header would leave an unreadable file,
   whereas rename leaves either the old journal (whose entries the
   snapshot watermark skips) or the new empty one.  The new file's fd
   stays valid across the rename (same inode), so the handle simply
   swaps over. *)
let reset t =
  if t.closed then fail "journal %s is closed" t.jpath;
  Failpoint.hit "journal_reset";
  let gen' = t.gen + 1 in
  let dir = Filename.dirname t.jpath in
  let tmp =
    try Filename.temp_file ~temp_dir:dir (Filename.basename t.jpath ^ ".") ".tmp"
    with Sys_error m -> fail "cannot create temp file in %s: %s" dir m
  in
  let fd' =
    try Unix.openfile tmp [ Unix.O_RDWR; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) -> fail "%s: %s" tmp (Unix.error_message e)
  in
  (try
     let h = fresh_header gen' in
     Atomic_file.write_all fd' h 0 (String.length h);
     if t.sync then Atomic_file.fsync fd';
     Unix.chmod tmp 0o644
   with
   | Unix.Unix_error (e, _, _) ->
     (try Unix.close fd' with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "%s: %s" tmp (Unix.error_message e)
   | exn ->
     (try Unix.close fd' with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  (match Failpoint.hit "journal_reset_rename" with
   | () -> ()
   | exception exn ->
     (try Unix.close fd' with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  (try Atomic_file.with_retries (fun () -> Unix.rename tmp t.jpath)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd' with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "rename %s -> %s: %s" tmp t.jpath (Unix.error_message e));
  if t.sync then Atomic_file.fsync_dir dir;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- fd';
  t.gen <- gen';
  t.entries_written <- 0;
  Xic_obs.Obs.Metrics.incr c_resets

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd
    with Unix.Unix_error (e, _, _) -> fail "close failed: %s" (Unix.error_message e)
  end

(* ------------------------------------------------------------------ *)
(* Replay grouping                                                     *)
(* ------------------------------------------------------------------ *)

let committed entries =
  let intents : (int, entry list) Hashtbl.t = Hashtbl.create 8 in  (* reverse order *)
  let aborted = Hashtbl.create 8 in
  let commits = ref [] in
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  List.iter
    (fun e ->
      match e with
      | Intent { txn; _ } ->
        Hashtbl.replace intents txn (e :: (try Hashtbl.find intents txn with Not_found -> []))
      | Truncate { txn; keep } ->
        let cur = try Hashtbl.find intents txn with Not_found -> [] in
        Hashtbl.replace intents txn (drop (List.length cur - keep) cur)
      | Abort { txn } -> Hashtbl.replace aborted txn ()
      | Commit { txn } -> if not (List.mem txn !commits) then commits := txn :: !commits)
    entries;
  List.rev !commits
  |> List.filter (fun txn -> not (Hashtbl.mem aborted txn))
  |> List.map (fun txn ->
         (txn, List.rev (try Hashtbl.find intents txn with Not_found -> [])))

(* The [Intent] envelope (seq, strategy) only matters while the journal
   is being written; replay needs just the statement strings. *)
let committed_payloads entries =
  List.map
    (fun (txn, intents) ->
      ( txn,
        List.filter_map
          (function Intent { payload; _ } -> Some payload | _ -> None)
          intents ))
    (committed entries)
