(** Write-ahead journal of guarded XUpdate statements.

    The journal is an append-only file of checksummed, length-prefixed
    records, fsync'd after every append, giving the repository's guarded
    update pipeline a durable redo log: an {e intent} record (the
    serialized statement plus the checking strategy that admitted it) is
    written before the document is mutated, and a {e commit} or {e abort}
    record after.  Recovery (see [Xic_core.Repository.recover]) replays
    the intents of committed transactions against freshly loaded base
    documents; uncommitted or aborted transactions and a torn final
    record — the signature of a crash mid-write — are discarded.

    On-disk format: a [XICJ2\n] magic, an 8-byte big-endian {e generation}
    number, then records of the form
    [length (4 bytes, big endian) | payload | MD5(payload) (16 bytes)].
    Version-1 journals ([XICJ1\n], no generation field) are still read,
    as generation 0.  The generation increments on every {!reset}
    (checkpoint truncation), so a snapshot can record {e which} journal
    incarnation its watermark counts into — recovery then replays
    exactly the suffix past the checkpoint and never mistakes a regrown
    journal for an already-applied one.  The journal knows nothing about
    XML: statement payloads are opaque strings, serialized and parsed by
    the repository layer. *)

type t
(** An open journal handle (append position after the last valid record). *)

type entry =
  | Intent of { txn : int; seq : int; strategy : string; payload : string }
      (** statement [seq] of transaction [txn], admitted by [strategy],
          serialized as [payload] — journaled before the mutation *)
  | Commit of { txn : int }
      (** transaction [txn] fully applied; its intents are now redo-able *)
  | Abort of { txn : int }
      (** transaction [txn] rolled back; its intents are void *)
  | Truncate of { txn : int; keep : int }
      (** rollback to a savepoint: only the first [keep] intents of
          [txn] remain effective *)

(** How the journal file ends. *)
type tail =
  | Clean  (** last record intact, file ends on a record boundary *)
  | Torn of { dropped : int }
      (** the final record is cut short — bytes missing at end of file,
          the signature of a crash mid-append; [dropped] bytes discarded *)
  | Corrupt of { dropped : int }
      (** a full-length record whose checksum fails — bit rot or an
          overwritten region, {e not} a simple crash; scanning stops
          there and [dropped] bytes (the bad record and everything
          after) are discarded *)

type read_result = {
  entries : entry list;  (** all valid records, file order *)
  torn : bool;  (** [tail <> Clean] (kept for older callers) *)
  tail : tail;  (** how the file ended *)
  generation : int;  (** the journal incarnation (0 for v1 files) *)
}

exception Journal_error of string
(** I/O failures and malformed journal files. *)

val open_ : ?sync:bool -> string -> t
(** Open [path] for appending, creating it if missing.  Existing records
    are scanned to seed {!next_txn}; a torn tail left by a crash is
    truncated away so new records land on a valid prefix.  Creation
    fsyncs the parent directory so the new entry itself is durable.
    With [sync = false] (default [true]) appends skip the fsync —
    faster, but a crash may lose recent records (never corrupt the
    prefix). *)

val path : t -> string

val generation : t -> int
(** The journal's current generation (bumped by {!reset}). *)

val entry_count : t -> int
(** Valid records currently in the file — the snapshot watermark. *)

val bytes : t -> int
(** Bytes in the current journal generation (header included): the
    write position of an append-only file.  0 once closed. *)

val next_txn : t -> int
(** A fresh transaction id (greater than any id already journaled). *)

val append : ?defer_sync:bool -> t -> entry -> unit
(** Serialize, write and (unless [sync = false]) fsync one record.

    [~defer_sync:true] skips the per-record fsync even on a durable
    journal: the bytes are written but their durability rides on the
    next synced append — group commit.  Only correct for records whose
    loss recovery already tolerates, i.e. [Intent]/[Truncate] records
    of a transaction whose [Commit] is the synced record that follows:
    fsync flushes the whole file, so a durable commit record implies
    durable intents, and a crash before it discards the transaction
    with or without its intents on disk.

    Failpoints: [mid_write] (crash half-way through the record, leaving
    a torn tail), [journal_write] (mediated: torn-write and injected-EIO
    actions apply, the latter retried with bounded backoff) and
    [journal_fsync]. *)

val reset : t -> unit
(** Atomically replace the journal with an empty one of the next
    generation — the checkpoint truncation.  Crash-safe by rename: a
    crash during reset leaves either the old journal (all of whose
    entries the snapshot's watermark covers) or the fresh empty one.
    Failpoints: [journal_reset] (before anything), [journal_reset_rename]
    (new file written, not yet renamed in). *)

val close : t -> unit

val read : string -> read_result
(** Read all valid records of a journal file, stopping at the first torn
    or corrupt record (see {!type:tail}).  @raise Journal_error when the
    file cannot be read or does not carry a journal header. *)

val committed : entry list -> (int * entry list) list
(** The committed transactions in commit order, each with its effective
    [Intent] records: [Truncate] records drop rolled-back suffixes, and
    transactions without a [Commit] (or with an [Abort]) are omitted. *)

val committed_payloads : entry list -> (int * string list) list
(** {!committed} reduced to each transaction's statement payloads in
    application order — the exact strings recovery re-parses and
    replays. *)
