(** Write-ahead journal of guarded XUpdate statements.

    The journal is an append-only file of checksummed, length-prefixed
    records, fsync'd after every append, giving the repository's guarded
    update pipeline a durable redo log: an {e intent} record (the
    serialized statement plus the checking strategy that admitted it) is
    written before the document is mutated, and a {e commit} or {e abort}
    record after.  Recovery (see [Xic_core.Repository.recover]) replays
    the intents of committed transactions against freshly loaded base
    documents; uncommitted or aborted transactions and a torn final
    record — the signature of a crash mid-write — are discarded.

    On-disk format: a [XICJ1\n] header followed by records of the form
    [length (4 bytes, big endian) | payload | MD5(payload) (16 bytes)].
    The journal knows nothing about XML: statement payloads are opaque
    strings, serialized and parsed by the repository layer. *)

type t
(** An open journal handle (append position after the last valid record). *)

type entry =
  | Intent of { txn : int; seq : int; strategy : string; payload : string }
      (** statement [seq] of transaction [txn], admitted by [strategy],
          serialized as [payload] — journaled before the mutation *)
  | Commit of { txn : int }
      (** transaction [txn] fully applied; its intents are now redo-able *)
  | Abort of { txn : int }
      (** transaction [txn] rolled back; its intents are void *)
  | Truncate of { txn : int; keep : int }
      (** rollback to a savepoint: only the first [keep] intents of
          [txn] remain effective *)

type read_result = {
  entries : entry list;  (** all valid records, file order *)
  torn : bool;  (** the file ended in a torn or corrupt record (discarded) *)
}

exception Journal_error of string
(** I/O failures and malformed journal files. *)

val open_ : ?sync:bool -> string -> t
(** Open [path] for appending, creating it if missing.  Existing records
    are scanned to seed {!next_txn}; a torn tail left by a crash is
    truncated away so new records land on a valid prefix.  With
    [sync = false] (default [true]) appends skip the fsync — faster, but
    a crash may lose recent records (never corrupt the prefix). *)

val path : t -> string

val next_txn : t -> int
(** A fresh transaction id (greater than any id already journaled). *)

val append : t -> entry -> unit
(** Serialize, write and (unless [sync = false]) fsync one record.
    Honours the [mid_write] failpoint: the process dies after writing
    half of the record, leaving a torn tail for recovery to discard. *)

val close : t -> unit

val read : string -> read_result
(** Read all valid records of a journal file, stopping at the first torn
    or corrupt record.  @raise Journal_error when the file cannot be read
    or does not carry the journal header. *)

val committed : entry list -> (int * entry list) list
(** The committed transactions in commit order, each with its effective
    [Intent] records: [Truncate] records drop rolled-back suffixes, and
    transactions without a [Commit] (or with an [Abort]) are omitted. *)
