(** Named fault-injection points for crash and I/O-failure testing.

    A {e failpoint} is a named site in the durability layer (journal
    append, snapshot write, fsync, rename, …).  Sites are free when
    unarmed; arming one — programmatically ({!set}) or through the
    [XIC_FAILPOINT] environment variable, read once at startup — makes
    the site fail in a controlled way, so tests can drive the recovery
    machinery through every crash window.

    Environment syntax: a comma-separated list of specs
    [NAME[@SKIP][=ACTION]], where [SKIP] hits are let through before the
    action fires and [ACTION] is one of
    {ul
    {- [exit] (default): terminate the process immediately, without
       flushing buffers — simulating a crash;}
    {- [raise]: raise {!Triggered}, for in-process tests;}
    {- [torn[:KEEP]] / [torn-raise[:KEEP]]: at a mediated write site,
       write only a [KEEP] fraction (default 0.5) of the buffer, then
       crash (or raise);}
    {- [short[:KEEP]]: at a mediated read site, deliver only a [KEEP]
       fraction of the data (once per arming);}
    {- [eio[:N]]: fail the next [N] (default 1) hits with
       [Unix.Unix_error (EIO, …)] — exercising the bounded
       retry-with-backoff of the write paths;}
    {- [delay:MS]: sleep [MS] milliseconds, for race widening.}}

    The registry is multi-armed: several sites can be armed at once.
    Registered crash points include [before_apply], [after_apply],
    [before_commit], [mid_write] (PR 1), and the snapshot/journal I/O
    sites listed by {!known}. *)

type action =
  | Exit  (** [Unix._exit 42]: no buffer flushing, no [at_exit] *)
  | Raise  (** raise {!Triggered} *)
  | Torn_write of { keep : float; crash : bool }
      (** at a mediated write: emit only [keep] of the bytes, then crash
          ([crash = true]) or raise {!Triggered} *)
  | Short_read of { keep : float }
      (** at a mediated read: deliver only [keep] of the data, once *)
  | Eio of { failures : int }
      (** fail the next [failures] hits with an injected [EIO] *)
  | Delay of { ms : float }  (** sleep, for race widening *)

exception Triggered of string
(** Raised on an armed failpoint with the [Raise] (or [torn-raise])
    action. *)

val set : ?action:action -> ?after:int -> string -> unit
(** Arm the named failpoint ([action] defaults to [Exit]); the first
    [after] (default 0) hits pass through before it fires. *)

val clear : unit -> unit
(** Disarm all failpoints. *)

val unset : string -> unit
(** Disarm one failpoint. *)

val is_armed : string -> bool

val declare : string -> unit
(** Register a site name for {!known} without arming it.  Sites also
    self-register on first {!hit}; the durability layers declare theirs
    at module initialization so the torture harness can enumerate the
    full crash surface up front. *)

val known : unit -> string list
(** All declared site names, sorted. *)

val hit : string -> unit
(** Trigger [name] if armed (and its skip count is exhausted); otherwise
    do nothing.  [Torn_write]/[Short_read] actions are inert at plain
    sites — they only act at the mediated I/O sites below. *)

val write_fault : string -> len:int -> int option
(** Consult the registry before writing [len] bytes at site [name].
    [Some keep] means: write only the first [keep < len] bytes, then call
    {!torn_crash}.  [None] means write normally (a non-torn action, e.g.
    an injected EIO, fires from here like {!hit}). *)

val torn_crash : string -> 'a
(** Complete a torn write: crash the process, or (for [torn-raise])
    disarm the site and raise {!Triggered}. *)

val read_fault : string -> len:int -> int
(** Number of bytes site [name] should actually deliver out of [len]
    (short-read injection, once per arming); [len] when unarmed. *)

val exit_code : int
(** Process exit status used by the [Exit] action (42). *)
