(** Named crash points for fault-injection testing.

    A failpoint is armed either programmatically ({!set}) or through the
    environment variable [XIC_FAILPOINT], read once at startup, whose
    value is [NAME] or [NAME=ACTION] with [ACTION] one of [exit]
    (terminate the process immediately, without flushing buffers — the
    default, simulating a crash) and [raise] (raise {!Triggered}, for
    in-process tests).

    The durability layer calls {!hit} at its named crash points:
    [before_apply] (intent journaled, document not yet mutated),
    [after_apply] (document mutated, commit not yet journaled),
    [before_commit] (immediately before the commit record is written) and
    [mid_write] (half-way through writing a journal record, leaving a
    torn entry).  An unarmed {!hit} is free. *)

type action =
  | Exit   (** [Unix._exit 42]: no buffer flushing, no [at_exit] *)
  | Raise  (** raise {!Triggered} *)

exception Triggered of string
(** Raised by {!hit} on an armed failpoint with the [Raise] action. *)

val set : ?action:action -> string -> unit
(** Arm the named failpoint ([action] defaults to [Exit]). *)

val clear : unit -> unit
(** Disarm any armed failpoint. *)

val hit : string -> unit
(** Trigger [name] if it is the armed failpoint; otherwise do nothing. *)

val exit_code : int
(** Process exit status used by the [Exit] action (42). *)
