type action =
  | Exit
  | Raise

exception Triggered of string

let exit_code = 42

let armed : (string * action) option ref = ref None

let set ?(action = Exit) name = armed := Some (name, action)
let clear () = armed := None

(* XIC_FAILPOINT=name or name=exit / name=raise; parsed once at startup. *)
let () =
  match Sys.getenv_opt "XIC_FAILPOINT" with
  | None | Some "" -> ()
  | Some spec ->
    let name, action =
      match String.index_opt spec '=' with
      | None -> (spec, Exit)
      | Some i ->
        let name = String.sub spec 0 i in
        (match String.sub spec (i + 1) (String.length spec - i - 1) with
         | "exit" -> (name, Exit)
         | "raise" -> (name, Raise)
         | other ->
           invalid_arg
             (Printf.sprintf "XIC_FAILPOINT: unknown action %S (expected exit or raise)"
                other))
    in
    set ~action name

let c_failpoints = Xic_obs.Obs.Metrics.counter "failpoints_hit"

let hit name =
  match !armed with
  | Some (n, action) when n = name ->
    (* record before acting: with [Exit] the process is gone after *)
    Xic_obs.Obs.Metrics.incr c_failpoints;
    Xic_obs.Obs.Trace.event ("failpoint:" ^ name);
    (match action with
     | Exit ->
       (* simulate a crash: no flushing, no at_exit handlers *)
       Unix._exit exit_code
     | Raise -> raise (Triggered name))
  | _ -> ()
