type action =
  | Exit
  | Raise
  | Torn_write of { keep : float; crash : bool }
  | Short_read of { keep : float }
  | Eio of { failures : int }
  | Delay of { ms : float }

exception Triggered of string

let exit_code = 42

(* Multi-armed registry: each site can be armed independently, with an
   optional number of hits to skip before firing. *)
type armed = {
  action : action;
  mutable skip : int;      (* hits to let through before firing *)
  mutable eio_left : int;  (* remaining injected EIO failures *)
}

let table : (string, armed) Hashtbl.t = Hashtbl.create 8

(* Every site that ever consults the registry self-registers here, plus
   the explicit [declare] calls at module-init of the durability layers,
   so the torture harness can enumerate the crash surface. *)
let sites : (string, unit) Hashtbl.t = Hashtbl.create 32
let declare name = if not (Hashtbl.mem sites name) then Hashtbl.replace sites name ()
let known () = Hashtbl.fold (fun k () acc -> k :: acc) sites [] |> List.sort compare

let set ?(action = Exit) ?(after = 0) name =
  Hashtbl.replace table name
    { action;
      skip = after;
      eio_left = (match action with Eio { failures } -> failures | _ -> 0) }

let clear () = Hashtbl.reset table
let unset name = Hashtbl.remove table name
let is_armed name = Hashtbl.mem table name

(* XIC_FAILPOINT=spec[,spec...] with spec = NAME[@SKIP][=ACTION] and
   ACTION one of exit, raise, torn[:KEEP], torn-raise[:KEEP],
   short[:KEEP], eio[:N], delay:MS; parsed once at startup. *)
let parse_action name = function
  | "exit" -> Exit
  | "raise" -> Raise
  | s ->
    let kind, param =
      match String.index_opt s ':' with
      | None -> (s, None)
      | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    in
    let float_param default =
      match param with
      | None -> default
      | Some p ->
        (match float_of_string_opt p with
         | Some f -> f
         | None -> invalid_arg (Printf.sprintf "XIC_FAILPOINT %s: bad number %S" name p))
    in
    (match kind with
     | "torn" -> Torn_write { keep = float_param 0.5; crash = true }
     | "torn-raise" -> Torn_write { keep = float_param 0.5; crash = false }
     | "short" -> Short_read { keep = float_param 0.5 }
     | "eio" -> Eio { failures = int_of_float (float_param 1.0) }
     | "delay" -> Delay { ms = float_param 1.0 }
     | other ->
       invalid_arg
         (Printf.sprintf
            "XIC_FAILPOINT: unknown action %S (expected exit, raise, torn[:KEEP], \
             torn-raise[:KEEP], short[:KEEP], eio[:N] or delay:MS)"
            other))

let parse_spec spec =
  let name, action_s =
    match String.index_opt spec '=' with
    | None -> (spec, None)
    | Some i ->
      (String.sub spec 0 i, Some (String.sub spec (i + 1) (String.length spec - i - 1)))
  in
  let name, after =
    match String.index_opt name '@' with
    | None -> (name, 0)
    | Some i ->
      let n = String.sub name (i + 1) (String.length name - i - 1) in
      (match int_of_string_opt n with
       | Some k -> (String.sub name 0 i, k)
       | None -> invalid_arg (Printf.sprintf "XIC_FAILPOINT: bad skip count %S" n))
  in
  let action =
    match action_s with None -> Exit | Some s -> parse_action name s
  in
  set ~action ~after name

let () =
  match Sys.getenv_opt "XIC_FAILPOINT" with
  | None | Some "" -> ()
  | Some specs ->
    List.iter
      (fun spec -> if spec <> "" then parse_spec spec)
      (String.split_on_char ',' specs)

let c_failpoints = Xic_obs.Obs.Metrics.counter "failpoints_hit"

let fired name =
  (* record before acting: with [Exit] the process is gone after *)
  Xic_obs.Obs.Metrics.incr c_failpoints;
  Xic_obs.Obs.Trace.event ("failpoint:" ^ name)

(* Find the armed entry due to fire at this hit, consuming one skip
   tick otherwise. *)
let lookup name =
  declare name;
  match Hashtbl.find_opt table name with
  | None -> None
  | Some a ->
    if a.skip > 0 then begin
      a.skip <- a.skip - 1;
      None
    end
    else Some a

let crash () =
  (* simulate a crash: no flushing, no at_exit handlers *)
  Unix._exit exit_code

(* The actions meaningful at any site.  [Torn_write] and [Short_read]
   only make sense at mediated I/O sites and are inert here. *)
let fire name a =
  match a.action with
  | Exit ->
    fired name;
    crash ()
  | Raise ->
    fired name;
    raise (Triggered name)
  | Delay { ms } ->
    fired name;
    Unix.sleepf (ms /. 1000.0)
  | Eio _ ->
    if a.eio_left > 0 then begin
      a.eio_left <- a.eio_left - 1;
      fired name;
      raise (Unix.Unix_error (Unix.EIO, "xic_failpoint", name))
    end
  | Torn_write _ | Short_read _ -> ()

let hit name =
  match lookup name with
  | None -> ()
  | Some a -> fire name a

let keep_of keep len =
  let k = int_of_float (float_of_int len *. keep) in
  max 0 (min (len - 1) k)

let write_fault name ~len =
  match lookup name with
  | None -> None
  | Some a ->
    (match a.action with
     | Torn_write { keep; _ } ->
       fired name;
       Some (keep_of keep len)
     | _ ->
       fire name a;
       None)

(* After the torn prefix is on disk: crash, or raise for in-process
   tests.  Disarm on raise so recovery code paths run clean. *)
let torn_crash name =
  match Hashtbl.find_opt table name with
  | Some { action = Torn_write { crash = true; _ }; _ } -> crash ()
  | _ ->
    Hashtbl.remove table name;
    raise (Triggered name)

let read_fault name ~len =
  match lookup name with
  | None -> len
  | Some a ->
    (match a.action with
     | Short_read { keep } ->
       fired name;
       (* one short read per arming, or loops never terminate *)
       Hashtbl.remove table name;
       keep_of keep len
     | _ ->
       fire name a;
       len)
