exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type cursor = {
  data : string;
  mutable pos : int;
}

let cursor ?(pos = 0) data = { data; pos }
let remaining c = String.length c.data - c.pos

let need c n what =
  if n < 0 || c.pos + n > String.length c.data then
    fail "truncated input: %s (need %d bytes at offset %d of %d)" what n c.pos
      (String.length c.data)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Ints are zigzag LEB128 varints: snapshot payloads are dominated by
   small non-negative values (node ids, lengths, column entries) with
   the occasional -1 sentinel, so this is 1–3 bytes where a fixed
   encoding costs 8 — and the file-size saving is read + checksum time
   on the cold-start path.  Zigzag folds the sign into the low bit
   ([0, -1, 1, -2, …] → [0, 1, 2, 3, …]); [asr 62] broadcasts the sign
   of OCaml's 63-bit int. *)
let add_int b (v : int) =
  let rec go u =
    if u land lnot 0x7f = 0 then Buffer.add_char b (Char.unsafe_chr u)
    else begin
      Buffer.add_char b (Char.unsafe_chr (u land 0x7f lor 0x80));
      go (u lsr 7)
    end
  in
  go ((v lsl 1) lxor (v asr 62))

let add_u8 b (v : int) =
  if v < 0 || v > 0xff then fail "add_u8: %d out of range" v;
  Buffer.add_char b (Char.unsafe_chr v)

let add_string b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_int_array b a n =
  add_int b n;
  for i = 0 to n - 1 do
    add_int b (Array.unsafe_get a i)
  done

(* Index-relative encoding for arena columns whose entries correlate
   with their position (parent, sibling and child links are almost
   always a node id near [i]): storing [a.(i) - i] keeps nearly every
   element in the one-byte zigzag range. *)
let add_int_array_delta b a n =
  add_int b n;
  for i = 0 to n - 1 do
    add_int b (Array.unsafe_get a i - i)
  done

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Top-level so the tail-recursive loop compiles to a jump with no
   closure allocation — [get_int] sits on every decode path. *)
let rec varint_loop c data len pos shift acc =
  if pos >= len then fail "truncated input: int (offset %d of %d)" pos len;
  if shift > 63 then fail "varint too long (offset %d)" pos;
  let byte = Char.code (String.unsafe_get data pos) in
  let acc = acc lor ((byte land 0x7f) lsl shift) in
  if byte land 0x80 <> 0 then varint_loop c data len (pos + 1) (shift + 7) acc
  else begin
    c.pos <- pos + 1;
    (acc lsr 1) lxor - (acc land 1)
  end

let get_int c = varint_loop c c.data (String.length c.data) c.pos 0 0

let get_u8 c =
  need c 1 "byte";
  let v = Char.code (String.unsafe_get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let get_string c =
  let len = get_int c in
  need c len "string";
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let decode_int_array c ~delta =
  let n = get_int c in
  (* bound the allocation by the bytes actually present (a varint
     element is at least one byte) *)
  if n < 0 || n > remaining c then
    fail "int array length %d exceeds remaining input (%d bytes)" n (remaining c);
  if n = 0 then [||]
  else begin
    (* Hot path of the snapshot loader (every arena column comes through
       here): track the position in a local instead of the cursor field,
       and decode varints of up to three bytes inline — node-id-sized
       values (ids into the millions) fit in three. *)
    let data = c.data and len = String.length c.data in
    let a = Array.make n 0 in
    let pos = ref c.pos in
    for i = 0 to n - 1 do
      let p = !pos in
      if p >= len then fail "truncated input: int (offset %d of %d)" p len;
      let b0 = Char.code (String.unsafe_get data p) in
      let v =
        if b0 < 0x80 then begin
          pos := p + 1;
          (b0 lsr 1) lxor - (b0 land 1)
        end
        else if p + 1 < len
                && Char.code (String.unsafe_get data (p + 1)) < 0x80 then begin
          let u =
            b0 land 0x7f lor (Char.code (String.unsafe_get data (p + 1)) lsl 7)
          in
          pos := p + 2;
          (u lsr 1) lxor - (u land 1)
        end
        else if p + 2 < len
                && Char.code (String.unsafe_get data (p + 2)) < 0x80 then begin
          let u =
            b0 land 0x7f
            lor ((Char.code (String.unsafe_get data (p + 1)) land 0x7f) lsl 7)
            lor (Char.code (String.unsafe_get data (p + 2)) lsl 14)
          in
          pos := p + 3;
          (u lsr 1) lxor - (u land 1)
        end
        else begin
          c.pos <- p;
          let v = get_int c in
          pos := c.pos;
          v
        end
      in
      Array.unsafe_set a i (if delta then v + i else v)
    done;
    c.pos <- !pos;
    a
  end

let get_int_array c = decode_int_array c ~delta:false
let get_int_array_delta c = decode_int_array c ~delta:true

(* Bulk form of [get_string] for the snapshot's string pools (document
   text nodes, the store's constant table): tens of thousands of short
   strings whose one-byte length varint can be decoded inline, keeping
   the per-string cost close to the unavoidable [String.sub]. *)
let get_string_array c n =
  if n < 0 || n > remaining c then
    fail "string array length %d exceeds remaining input (%d bytes)" n
      (remaining c);
  if n = 0 then [||]
  else begin
    let data = c.data and len = String.length c.data in
    let a = Array.make n "" in
    let pos = ref c.pos in
    for i = 0 to n - 1 do
      let p = !pos in
      if p >= len then fail "truncated input: string (offset %d of %d)" p len;
      let b0 = Char.code (String.unsafe_get data p) in
      let slen, p =
        if b0 < 0x80 then ((b0 lsr 1) lxor - (b0 land 1), p + 1)
        else begin
          c.pos <- p;
          let v = get_int c in
          (v, c.pos)
        end
      in
      if slen < 0 || p + slen > len then
        fail "truncated input: string (need %d bytes at offset %d of %d)" slen p
          len;
      Array.unsafe_set a i (String.sub data p slen);
      pos := p + slen
    done;
    c.pos <- !pos;
    a
  end
