type t = int

(* Copy-on-write snapshots.  Readers never lock: they grab the current
   snapshot with [Atomic.get]; a published snapshot is never mutated again,
   so concurrent [Hashtbl.find_opt] / [Array.get] on it are safe.  Writers
   serialize on [mutex], clone, extend, and publish.  Interning is rare
   (schema-sized vocabularies), so the O(n) clone per insert is noise. *)

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t Atomic.t = Atomic.make (Hashtbl.create 16)
let names : string array Atomic.t = Atomic.make [||]

let name s =
  let a = Atomic.get names in
  if s < 0 || s >= Array.length a then invalid_arg "Symbol.name: unknown symbol"
  else Array.unsafe_get a s

let intern str =
  match Hashtbl.find_opt (Atomic.get table) str with
  | Some id -> id
  | None ->
    Mutex.protect mutex (fun () ->
        (* re-check under the lock: another writer may have won the race *)
        let tbl = Atomic.get table in
        match Hashtbl.find_opt tbl str with
        | Some id -> id
        | None ->
          let a = Atomic.get names in
          let id = Array.length a in
          let a' = Array.make (id + 1) str in
          Array.blit a 0 a' 0 id;
          let tbl' = Hashtbl.copy tbl in
          Hashtbl.add tbl' str id;
          (* publish [names] first so any reader that can see the id in
             [table] can already resolve it *)
          Atomic.set names a';
          Atomic.set table tbl';
          id)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (s : t) = s
let to_int (s : t) = s
let count () = Array.length (Atomic.get names)
let mem str = Hashtbl.mem (Atomic.get table) str
