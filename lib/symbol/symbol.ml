type t = int

(* Copy-on-write snapshots.  Readers never lock: they grab the current
   snapshot with [Atomic.get]; a published snapshot is never mutated again,
   so concurrent probes on it are safe.  Writers serialize on [mutex],
   clone, extend, and publish.  Interning a *new* name is rare
   (schema-sized vocabularies), so the O(n) clone per insert is noise.

   Two probe structures are kept in sync:
   - [table]: string-keyed Hashtbl for [intern] / [mem] on whole strings;
   - [buckets]: FNV-hashed chains of symbol ids for [intern_sub], which
     must probe by a substring of a source buffer without allocating it.

   Publish order matters for lock-free readers: [names] first (so any id
   visible in a probe structure can be resolved), then [table], then
   [buckets].  Readers load [buckets] before [names], so the names
   snapshot they see is never older than the bucket snapshot. *)

let mutex = Mutex.create ()
let table : (string, int) Hashtbl.t Atomic.t = Atomic.make (Hashtbl.create 16)
let names : string array Atomic.t = Atomic.make [||]
let buckets : int array array Atomic.t = Atomic.make (Array.make 16 [||])

(* FNV-1a over a byte slice; wraps mod 2^63, masked non-negative. *)
let hash_sub s pos len =
  let h = ref (-3750763034362895579) in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 1099511628211
  done;
  !h land max_int

let name s =
  let a = Atomic.get names in
  if s < 0 || s >= Array.length a then invalid_arg "Symbol.name: unknown symbol"
  else Array.unsafe_get a s

let rebuild_buckets (a : string array) =
  let n = Array.length a in
  let size =
    let s = ref 16 in
    while !s < 2 * n do s := !s * 2 done;
    !s
  in
  let chains = Array.make size [] in
  for id = n - 1 downto 0 do
    let str = Array.unsafe_get a id in
    let slot = hash_sub str 0 (String.length str) land (size - 1) in
    chains.(slot) <- id :: chains.(slot)
  done;
  Array.map Array.of_list chains

let intern str =
  match Hashtbl.find_opt (Atomic.get table) str with
  | Some id -> id
  | None ->
    Mutex.protect mutex (fun () ->
        (* re-check under the lock: another writer may have won the race *)
        let tbl = Atomic.get table in
        match Hashtbl.find_opt tbl str with
        | Some id -> id
        | None ->
          let a = Atomic.get names in
          let id = Array.length a in
          let a' = Array.make (id + 1) str in
          Array.blit a 0 a' 0 id;
          let tbl' = Hashtbl.copy tbl in
          Hashtbl.add tbl' str id;
          (* publish [names] first so any reader that can see the id in
             [table] or [buckets] can already resolve it *)
          Atomic.set names a';
          Atomic.set table tbl';
          Atomic.set buckets (rebuild_buckets a');
          id)

let eq_sub nm s pos len =
  String.length nm = len
  &&
  let rec go i =
    i = len
    || Char.equal (String.unsafe_get nm i) (String.unsafe_get s (pos + i))
       && go (i + 1)
  in
  go 0

let intern_sub s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Symbol.intern_sub";
  let bk = Atomic.get buckets in
  let nm = Atomic.get names in
  let chain = Array.unsafe_get bk (hash_sub s pos len land (Array.length bk - 1)) in
  let rec probe i =
    if i = Array.length chain then intern (String.sub s pos len)
    else
      let id = Array.unsafe_get chain i in
      if eq_sub (Array.unsafe_get nm id) s pos len then id else probe (i + 1)
  in
  probe 0

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (s : t) = s
let to_int (s : t) = s
let unsafe_of_int (i : int) : t = i
let count () = Array.length (Atomic.get names)
let mem str = Hashtbl.mem (Atomic.get table) str
let all_names () = Atomic.get names
