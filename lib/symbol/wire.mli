(** Minimal binary codec shared by the snapshot serializers.

    Zigzag LEB128 varint integers, length-prefixed strings, and
    length-prefixed int arrays.  Snapshot payloads are dominated by
    small ints (node ids, arena columns, lengths) with the occasional
    [-1] sentinel, so varints cut the file to a fraction of a fixed
    8-byte encoding — and snapshot cold-load time is bounded by bytes
    read and checksummed, not by the decoder's branches.  It lives here
    (rather than in [lib/snapshot]) because both the document arena and
    the Datalog store serialize themselves and already depend on
    [xic_symbol], avoiding a dependency cycle. *)

exception Error of string
(** Truncated or malformed input.  Decoders bounds-check every read, so a
    corrupted length can never provoke an out-of-range access or an
    unbounded allocation. *)

type cursor = {
  data : string;
  mutable pos : int;
}
(** A read position over an immutable byte string. *)

val cursor : ?pos:int -> string -> cursor
val remaining : cursor -> int

val add_int : Buffer.t -> int -> unit
val add_u8 : Buffer.t -> int -> unit
val add_string : Buffer.t -> string -> unit

val add_int_array : Buffer.t -> int array -> int -> unit
(** [add_int_array b a n] encodes the first [n] elements of [a]. *)

val add_int_array_delta : Buffer.t -> int array -> int -> unit
(** Like {!add_int_array} but stores [a.(i) - i]: for arena columns
    whose entries track their own position (parent/sibling/child
    links), the deltas stay in the one-byte varint range.  Decode with
    {!get_int_array_delta}. *)

val get_int : cursor -> int
val get_u8 : cursor -> int
val get_string : cursor -> string

val get_int_array : cursor -> int array
(** @raise Error when the encoded length exceeds the remaining input. *)

val get_int_array_delta : cursor -> int array
(** Inverse of {!add_int_array_delta}. *)

val get_string_array : cursor -> int -> string array
(** [get_string_array c n] reads [n] consecutive length-prefixed
    strings.  Equivalent to [n] calls to {!get_string}, but with the
    common one-byte length decoded inline — the snapshot's string pools
    hold tens of thousands of short strings.
    @raise Error on truncated input or a negative count. *)
