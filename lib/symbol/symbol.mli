(** Global hash-consed symbol table.

    Element tags, attribute names and Datalog predicate names are interned
    into small dense integers, so the hot-loop name tests of the checking
    pipeline (XPath name tests, index keys, relation lookups) become int
    equality instead of [String.equal], and hash tables keyed by names hash
    an int instead of a string.

    The table is global and append-only.  Reads ([name], the fast path of
    [intern]) are lock-free: they consult copy-on-write snapshots that are
    immutable once published, so they are safe from any number of domains
    concurrently (used by the parallel checker).  Inserts take a mutex. *)

type t = private int
(** An interned name.  The representation is the dense table index, so
    symbols can key arrays and compare as ints.  Polymorphic equality,
    comparison and hashing all behave correctly (and cheaply) on [t]. *)

val intern : string -> t
(** Intern a string, returning its unique symbol.  Idempotent:
    [intern s == intern s] for equal strings, forever. *)

val name : t -> string
(** The string a symbol stands for.  [name (intern s) = s].
    @raise Invalid_argument on an integer that is not a live symbol. *)

val equal : t -> t -> bool
(** Int equality. *)

val compare : t -> t -> int
(** Int comparison — a total order by interning time, {e not} alphabetical. *)

val hash : t -> int

val to_int : t -> int
(** The dense index, for array-keyed dispatch tables. *)

val count : unit -> int
(** Number of symbols interned so far. *)

val mem : string -> bool
(** Whether the string has been interned (no side effect). *)
