(** Global hash-consed symbol table.

    Element tags, attribute names and Datalog predicate names are interned
    into small dense integers, so the hot-loop name tests of the checking
    pipeline (XPath name tests, index keys, relation lookups) become int
    equality instead of [String.equal], and hash tables keyed by names hash
    an int instead of a string.

    The table is global and append-only.  Reads ([name], the fast path of
    [intern]) are lock-free: they consult copy-on-write snapshots that are
    immutable once published, so they are safe from any number of domains
    concurrently (used by the parallel checker).  Inserts take a mutex. *)

type t = private int
(** An interned name.  The representation is the dense table index, so
    symbols can key arrays and compare as ints.  Polymorphic equality,
    comparison and hashing all behave correctly (and cheaply) on [t]. *)

val intern : string -> t
(** Intern a string, returning its unique symbol.  Idempotent:
    [intern s == intern s] for equal strings, forever. *)

val intern_sub : string -> int -> int -> t
(** [intern_sub s pos len] interns the slice [s.[pos .. pos+len-1]]
    without allocating the substring when the name is already interned —
    the parser's fast path for tag and attribute names read straight off
    the source buffer.  [intern_sub s pos len = intern (String.sub s pos
    len)] always.
    @raise Invalid_argument when the slice is out of bounds. *)

val name : t -> string
(** The string a symbol stands for.  [name (intern s) = s].
    @raise Invalid_argument on an integer that is not a live symbol. *)

val equal : t -> t -> bool
(** Int equality. *)

val compare : t -> t -> int
(** Int comparison — a total order by interning time, {e not} alphabetical. *)

val hash : t -> int

val to_int : t -> int
(** The dense index, for array-keyed dispatch tables. *)

val unsafe_of_int : int -> t
(** Reinterpret a dense index as a symbol, without checking that it is
    live.  Only for reading back values previously stored with
    [to_int] (e.g. the document arena's packed tag array). *)

val count : unit -> int
(** Number of symbols interned so far. *)

val mem : string -> bool
(** Whether the string has been interned (no side effect). *)

val all_names : unit -> string array
(** The current names snapshot, index = symbol id.  The returned array is
    a published copy-on-write snapshot: treat it as read-only.  Used by
    the snapshot serializer to persist the table so symbol ids can be
    remapped on load in a process with a different interning history. *)
