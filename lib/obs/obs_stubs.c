/* Monotonic clock for span timing.  CLOCK_MONOTONIC survives NTP jumps,
   which wall-clock timestamps do not; span durations must never go
   negative.  Exposed both boxed (bytecode) and unboxed (native). */

#include <time.h>
#include <stdint.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>

int64_t xic_obs_clock_ns_unboxed(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value xic_obs_clock_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(xic_obs_clock_ns_unboxed());
}
