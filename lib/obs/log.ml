(* Structured leveled logging over one shared sink.

   Design constraints, in order: (1) a disabled call site must cost a
   load and a branch — the msgf closure is never entered; (2) no
   dependencies beyond the stdlib and the monotonic clock stub already
   in this library; (3) every line carries the ambient trace id so the
   server's log can be joined against its span tree. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type format = Text | Json

(* Sink state.  A single mutex serializes emission: log volume is
   request-grained, not check-grained, so contention is irrelevant and
   interleaved half-lines from pool domains are not. *)
let mutex = Mutex.create ()
let sink : out_channel option ref = ref None
let sink_owned = ref false (* opened by [open_path]: close on replace *)
let min_level = ref Info
let fmt = ref Text
let base_ns = Obs.Clock.now_ns ()
let emitted = ref 0

(* The ambient trace id is intentionally a plain ref, not DLS: the
   server loop that sets it is single-threaded, and pool workers log
   through the same request context anyway. *)
let current_trace : string option ref = ref None

let set_trace_id t = current_trace := t
let trace_id () = !current_trace
let set_level l = min_level := l
let level () = !min_level
let set_format f = fmt := f

let drop_sink () =
  (match !sink with
   | Some oc when !sink_owned -> (try close_out oc with Sys_error _ -> ())
   | Some oc -> (try flush oc with Sys_error _ -> ())
   | None -> ());
  sink := None;
  sink_owned := false

let set_output oc =
  Mutex.protect mutex (fun () ->
      drop_sink ();
      sink := oc)

let open_path path =
  Mutex.protect mutex (fun () ->
      drop_sink ();
      if path = "-" then begin
        sink := Some stderr;
        Ok ()
      end
      else
        match open_out path with
        | oc ->
          sink := Some oc;
          sink_owned := true;
          Ok ()
        | exception Sys_error m -> Error m)

let close () = Mutex.protect mutex (fun () -> drop_sink ())

let enabled lvl = !sink <> None && severity lvl >= severity !min_level

let ts_ms () =
  Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) base_ns) /. 1e6

(* Text field values are quoted only when they need it, so grep-able
   keys stay grep-able and messages with spaces stay one field. *)
let needs_quotes s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '"' || c = '=' || Char.code c < 0x20)
       s

let add_text_value b s =
  if needs_quotes s then begin
    Buffer.add_char b '"';
    Buffer.add_string b (Obs.Trace.json_escape s);
    Buffer.add_char b '"'
  end
  else Buffer.add_string b s

let render lvl src fields message =
  let b = Buffer.create 160 in
  let trace = !current_trace in
  (match !fmt with
   | Text ->
     Buffer.add_string b (Printf.sprintf "ts=%.3f" (ts_ms ()));
     Buffer.add_string b (" level=" ^ level_to_string lvl);
     (match src with
      | Some s ->
        Buffer.add_string b " src=";
        add_text_value b s
      | None -> ());
     (match trace with
      | Some t ->
        Buffer.add_string b " trace=";
        add_text_value b t
      | None -> ());
     Buffer.add_string b " msg=";
     add_text_value b message;
     List.iter
       (fun (k, v) ->
         Buffer.add_char b ' ';
         Buffer.add_string b k;
         Buffer.add_char b '=';
         add_text_value b v)
       fields
   | Json ->
     let field k v =
       Printf.sprintf "\"%s\":\"%s\"" (Obs.Trace.json_escape k)
         (Obs.Trace.json_escape v)
     in
     Buffer.add_string b (Printf.sprintf "{\"ts_ms\":%.3f" (ts_ms ()));
     Buffer.add_string b (",\"level\":\"" ^ level_to_string lvl ^ "\"");
     (match src with
      | Some s -> Buffer.add_string b ("," ^ field "src" s)
      | None -> ());
     (match trace with
      | Some t -> Buffer.add_string b ("," ^ field "trace" t)
      | None -> ());
     Buffer.add_string b ("," ^ field "msg" message);
     List.iter (fun (k, v) -> Buffer.add_string b ("," ^ field k v)) fields;
     Buffer.add_char b '}');
  Buffer.contents b

let emit lvl src fields message =
  Mutex.protect mutex (fun () ->
      match !sink with
      | None -> ()
      | Some oc ->
        (try
           output_string oc (render lvl src fields message);
           output_char oc '\n';
           flush oc;
           incr emitted
         with Sys_error _ ->
           (* a dead sink (closed pipe, full disk) must never take the
              serving path down with it *)
           drop_sink ()))

type 'a msgf = (('a, unit, string, unit) format4 -> 'a) -> unit

let msg lvl ?src ?(fields = []) (f : _ msgf) =
  if enabled lvl then
    f (fun fmt -> Printf.ksprintf (fun s -> emit lvl src fields s) fmt)

let debug ?src ?fields f = msg Debug ?src ?fields f
let info ?src ?fields f = msg Info ?src ?fields f
let warn ?src ?fields f = msg Warn ?src ?fields f
let error ?src ?fields f = msg Error ?src ?fields f

let lines_emitted () = !emitted
