(** Structured, leveled logging — zero dependencies.

    Replaces the ad-hoc [Printf]/[Logs] call sites on the server,
    repository and journal paths with one sink: leveled, optionally
    JSON-lines, stamped with the monotonic clock ({!Obs.Clock}), and
    carrying the ambient request trace id so a log line can be joined
    against the span that produced it.

    Call sites use the message-closure idiom so a disabled level costs
    one load and a comparison — the format string is never rendered:

    {[ Log.warn ~src:"xic.server" (fun m -> m "dropping %s" what) ]}

    The logger is disabled until {!set_output} / {!open_path} installs
    a sink, so library code may log unconditionally. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

val set_level : level -> unit
(** Minimum level that reaches the sink (default [Info]). *)

val level : unit -> level

type format = Text | Json
(** [Text]: [ts=12.345 level=info src=… msg="…" k=v …].
    [Json]: one JSON object per line with the same fields. *)

val set_format : format -> unit

val set_output : out_channel option -> unit
(** Install the sink ([None] disables logging, the default).  The
    channel is flushed after every line but never closed here. *)

val open_path : string -> (unit, string) result
(** ["-"] installs stderr; anything else opens/truncates that file.
    On success the previous file sink (if any) is closed. *)

val close : unit -> unit
(** Flush and drop the sink; closes it if {!open_path} opened a file. *)

val enabled : level -> bool
(** True when a sink is installed and [level] passes the filter. *)

val set_trace_id : string option -> unit
(** Ambient trace context: every line emitted while set carries a
    [trace=…] field.  The server sets it around each request. *)

val trace_id : unit -> string option

type 'a msgf = (('a, unit, string, unit) format4 -> 'a) -> unit

val msg : level -> ?src:string -> ?fields:(string * string) list -> 'a msgf -> unit
val debug : ?src:string -> ?fields:(string * string) list -> 'a msgf -> unit
val info : ?src:string -> ?fields:(string * string) list -> 'a msgf -> unit
val warn : ?src:string -> ?fields:(string * string) list -> 'a msgf -> unit
val error : ?src:string -> ?fields:(string * string) list -> 'a msgf -> unit

val lines_emitted : unit -> int
(** Lines written to the sink since process start (all levels). *)
