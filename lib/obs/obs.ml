(* Zero-dependency observability: spans, metrics, slow-check log.

   Everything here is engineered around one constraint: when tracing is
   off (the common case), the cost of an instrumented call site must be
   a single load-and-branch — no allocation, no closure, no clock read.
   [Trace.with_span] therefore takes the thunk last and checks the
   static [enabled] flag before touching anything else.

   Spans are collected per domain (via [Domain.DLS]) so parallel
   checking under {!Xic_core.Pool} never contends on a shared buffer;
   the pool drains each worker's buffer after the join and grafts it
   under the main domain's open span, which restores a single coherent
   tree for export. *)

module Clock = struct
  external now_ns : unit -> (int64[@unboxed])
    = "xic_obs_clock_ns" "xic_obs_clock_ns_unboxed"
  [@@noalloc]
end

(* ------------------------------------------------------------------ *)
(* Tracing                                                            *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type span = {
    name : string;
    mutable attrs : (string * string) list;
    dom : int; (* domain id at creation; becomes the Chrome [tid] *)
    start_ns : int64;
    mutable stop_ns : int64;
    mutable children : span list; (* newest-first while building *)
    slow : bool; (* candidate for the slow-check log *)
  }

  let enabled = ref false
  let set_enabled b = enabled := b
  let is_enabled () = !enabled

  (* Per-domain trace context.  [stack] holds open spans innermost
     first; [roots] holds completed top-level spans newest-first. *)
  type ctx = { mutable stack : span list; mutable roots : span list }

  let ctx_key : ctx Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { stack = []; roots = [] })

  let ctx () = Domain.DLS.get ctx_key

  (* --- slow-check log ------------------------------------------- *)

  let slow_threshold_ns = Atomic.make Int64.max_int
  let slow_mutex = Mutex.create ()
  let slow_entries : span list ref = ref [] (* newest-first, capped *)
  let slow_cap = 64

  let set_slow_threshold_ms = function
    | None -> Atomic.set slow_threshold_ns Int64.max_int
    | Some ms ->
      Atomic.set slow_threshold_ns (Int64.of_float (ms *. 1e6))

  let note_slow sp =
    Mutex.protect slow_mutex (fun () ->
        let keep =
          if List.length !slow_entries >= slow_cap then
            List.filteri (fun i _ -> i < slow_cap - 1) !slow_entries
          else !slow_entries
        in
        slow_entries := sp :: keep)

  let slow_log () = Mutex.protect slow_mutex (fun () -> List.rev !slow_entries)
  let clear_slow_log () = Mutex.protect slow_mutex (fun () -> slow_entries := [])

  (* --- span lifecycle ------------------------------------------- *)

  let finish c sp =
    sp.stop_ns <- Clock.now_ns ();
    (match c.stack with
     | top :: rest when top == sp -> c.stack <- rest
     | _ ->
       (* an exception tore through nested spans; drop to our frame *)
       let rec unwind = function
         | top :: rest when top == sp -> rest
         | _ :: rest -> unwind rest
         | [] -> []
       in
       c.stack <- unwind c.stack);
    (match c.stack with
     | parent :: _ -> parent.children <- sp :: parent.children
     | [] -> c.roots <- sp :: c.roots);
    if sp.slow
       && Int64.sub sp.stop_ns sp.start_ns >= Atomic.get slow_threshold_ns
    then note_slow sp

  let with_span ?(attrs = []) ?(slow = false) name f =
    if not !enabled then f ()
    else begin
      let c = ctx () in
      let sp =
        { name; attrs; dom = (Domain.self () :> int);
          start_ns = Clock.now_ns (); stop_ns = 0L; children = []; slow }
      in
      c.stack <- sp :: c.stack;
      Fun.protect ~finally:(fun () -> finish c sp) f
    end

  let event ?(attrs = []) name =
    if !enabled then begin
      let c = ctx () in
      let now = Clock.now_ns () in
      let sp =
        { name; attrs; dom = (Domain.self () :> int);
          start_ns = now; stop_ns = now; children = []; slow = false }
      in
      match c.stack with
      | parent :: _ -> parent.children <- sp :: parent.children
      | [] -> c.roots <- sp :: c.roots
    end

  let add_attr k v =
    if !enabled then
      match (ctx ()).stack with
      | sp :: _ -> sp.attrs <- (k, v) :: sp.attrs
      | [] -> ()

  let reset () =
    let c = ctx () in
    c.stack <- [];
    c.roots <- []

  (* Completed roots of the current domain, oldest first. *)
  let roots () = List.rev (ctx ()).roots

  let drain () =
    let c = ctx () in
    let rs = List.rev c.roots in
    c.roots <- [];
    rs

  (* Graft spans collected on another domain under the current open
     span (or as roots when none is open).  Used by the pool after
     joining workers. *)
  let absorb spans =
    if !enabled then begin
      let c = ctx () in
      match c.stack with
      | parent :: _ ->
        parent.children <- List.rev_append spans parent.children
      | [] -> c.roots <- List.rev_append spans c.roots
    end

  (* --- export ---------------------------------------------------- *)

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let span_count spans =
    let rec go acc sp = List.fold_left go (acc + 1) sp.children in
    List.fold_left go 0 spans

  let duration_ms sp = Int64.to_float (Int64.sub sp.stop_ns sp.start_ns) /. 1e6

  (* Chrome trace_event "complete" events: one object per span, with
     microsecond [ts]/[dur] relative to the earliest span so the viewer
     timeline starts at zero.  [tid] is the originating domain. *)
  let to_chrome_json spans =
    let base =
      List.fold_left
        (fun acc sp -> if Int64.compare sp.start_ns acc < 0 then sp.start_ns else acc)
        (match spans with [] -> 0L | sp :: _ -> sp.start_ns)
        spans
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let us_of ns = Int64.to_float (Int64.sub ns base) /. 1e3 in
    let rec emit sp =
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape sp.name) sp.dom (us_of sp.start_ns)
           (Int64.to_float (Int64.sub sp.stop_ns sp.start_ns) /. 1e3));
      (match sp.attrs with
       | [] -> ()
       | attrs ->
         Buffer.add_string b ",\"args\":{";
         List.iteri
           (fun i (k, v) ->
             if i > 0 then Buffer.add_char b ',';
             Buffer.add_string b
               (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
           (List.rev attrs);
         Buffer.add_char b '}');
      Buffer.add_char b '}';
      List.iter emit (List.rev sp.children)
    in
    List.iter emit spans;
    Buffer.add_string b "]}";
    Buffer.contents b

  let to_text spans =
    let b = Buffer.create 1024 in
    let rec emit depth sp =
      Buffer.add_string b (String.make (2 * depth) ' ');
      Buffer.add_string b sp.name;
      if Int64.compare sp.stop_ns sp.start_ns > 0 then
        Buffer.add_string b (Printf.sprintf " %.3fms" (duration_ms sp));
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
        (List.rev sp.attrs);
      Buffer.add_char b '\n';
      List.iter (emit (depth + 1)) (List.rev sp.children)
    in
    List.iter (emit 0) spans;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Counters are [Atomic.t] handles interned by name: call sites hold
     the handle, so the hot path is one atomic add with no hashtable
     lookup.  Histograms bucket by floor(log2 ns), which gives ~2x
     resolution over nine decades in 64 buckets and makes snapshots
     mergeable by pointwise sum. *)

  type counter = int Atomic.t

  type histogram = {
    h_count : int Atomic.t;
    h_sum_ns : int Atomic.t;
    h_buckets : int Atomic.t array; (* index = bucket_of_ns *)
  }

  let n_buckets = 64
  let registry_mutex = Mutex.create ()
  let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
  let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

  (* Names registered via [gauge]: same cells as counters, but the
     Prometheus exposition types them [gauge] (their value may go
     down — open transactions, pinned generations, …). *)
  let gauge_names : (string, unit) Hashtbl.t = Hashtbl.create 16

  (* Histograms on the per-check fast path are only populated when
     [detailed] is set (xicheck sets it for --metrics/--trace runs);
     plain counters are always live. *)
  let detailed = ref false
  let set_detailed b = detailed := b

  let counter name =
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt counters name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counters name c;
          c)

  let incr c = Atomic.incr c
  let add c n = ignore (Atomic.fetch_and_add c n)
  let set c n = Atomic.set c n
  let value c = Atomic.get c

  let gauge name =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.replace gauge_names name ());
    counter name

  let is_gauge name =
    Mutex.protect registry_mutex (fun () -> Hashtbl.mem gauge_names name)

  let histogram name =
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt histograms name with
        | Some h -> h
        | None ->
          let h =
            { h_count = Atomic.make 0;
              h_sum_ns = Atomic.make 0;
              h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0) }
          in
          Hashtbl.add histograms name h;
          h)

  let bucket_of_ns ns =
    if ns <= 0 then 0
    else begin
      let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
      min (n_buckets - 1) (1 + log2 0 ns)
    end

  let observe_ns h ns =
    Atomic.incr h.h_count;
    ignore (Atomic.fetch_and_add h.h_sum_ns ns);
    Atomic.incr h.h_buckets.(bucket_of_ns ns)

  let observe_ms h ms = observe_ns h (int_of_float (ms *. 1e6))

  let timed h f =
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        observe_ns h (Int64.to_int (Int64.sub (Clock.now_ns ()) t0)))
      f

  type hsnap = { count : int; sum_ns : int; buckets : int array }

  let hsnap h =
    { count = Atomic.get h.h_count;
      sum_ns = Atomic.get h.h_sum_ns;
      buckets = Array.map Atomic.get h.h_buckets }

  let hsnap_merge a b =
    { count = a.count + b.count;
      sum_ns = a.sum_ns + b.sum_ns;
      buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i)) }

  (* Upper bound (in ms) of the bucket containing quantile [q]. *)
  let hsnap_quantile s q =
    if s.count = 0 then 0.0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int s.count)) in
      let rank = max 1 (min s.count rank) in
      let rec go i seen =
        if i >= n_buckets then float_of_int (1 lsl (n_buckets - 1)) /. 1e6
        else
          let seen = seen + s.buckets.(i) in
          if seen >= rank then
            (* bucket i covers (2^(i-1), 2^i] ns; report its upper edge *)
            (if i = 0 then 0.0 else float_of_int (1 lsl i) /. 1e6)
          else go (i + 1) seen
      in
      go 0 0
    end

  let snapshot () =
    Mutex.protect registry_mutex (fun () ->
        let cs =
          Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) counters []
        in
        let hs = Hashtbl.fold (fun k h acc -> (k, hsnap h) :: acc) histograms [] in
        ( List.sort (fun (a, _) (b, _) -> compare a b) cs,
          List.sort (fun (a, _) (b, _) -> compare a b) hs ))

  let to_json ?(extra = []) () =
    let cs, hs = snapshot () in
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"counters\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Trace.json_escape k) v))
      cs;
    Buffer.add_string b "},\"histograms\":{";
    List.iteri
      (fun i (k, s) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "\"%s\":{\"count\":%d,\"sum_ms\":%.3f,\"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f}"
             (Trace.json_escape k) s.count
             (float_of_int s.sum_ns /. 1e6)
             (hsnap_quantile s 0.50) (hsnap_quantile s 0.90)
             (hsnap_quantile s 0.99)))
      hs;
    Buffer.add_char b '}';
    List.iter
      (fun (k, v) ->
        Buffer.add_string b (Printf.sprintf ",\"%s\":%s" (Trace.json_escape k) v))
      extra;
    Buffer.add_char b '}';
    Buffer.contents b

  (* Prometheus text exposition (format version 0.0.4).  Counters and
     gauges export as [xic_<name>]; latency histograms export as
     summaries in seconds — [xic_<base>_seconds{quantile="…"}] plus
     [_sum]/[_count] — with the registry's [_ms] suffix rewritten, so
     scrapers see base units. *)
  let to_prometheus () =
    let cs, hs = snapshot () in
    let sanitize name =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    let b = Buffer.create 2048 in
    List.iter
      (fun (name, v) ->
        let n = "xic_" ^ sanitize name in
        let ty = if is_gauge name then "gauge" else "counter" in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" n ty);
        Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
      cs;
    List.iter
      (fun (name, s) ->
        let base =
          let n = sanitize name in
          if Filename.check_suffix n "_ms" then
            String.sub n 0 (String.length n - 3) ^ "_seconds"
          else n ^ "_seconds"
        in
        let n = "xic_" ^ base in
        Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun q ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%g\"} %.9g\n" n q
                 (hsnap_quantile s q /. 1e3)))
          [ 0.5; 0.9; 0.99 ];
        Buffer.add_string b
          (Printf.sprintf "%s_sum %.9g\n" n (float_of_int s.sum_ns /. 1e9));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.count))
      hs;
    Buffer.contents b

  let reset () =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
        Hashtbl.iter
          (fun _ h ->
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum_ns 0;
            Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
          histograms)
end

let set_slow_threshold_ms = Trace.set_slow_threshold_ms
