(** Zero-dependency tracing + metrics for the check pipeline.

    Instrumented call sites are free when tracing is disabled: the
    static flag is tested before any allocation or clock read. *)

module Clock : sig
  (** Monotonic nanoseconds ([clock_gettime(CLOCK_MONOTONIC)]). *)
  external now_ns : unit -> (int64[@unboxed])
    = "xic_obs_clock_ns" "xic_obs_clock_ns_unboxed"
  [@@noalloc]
end

module Trace : sig
  type span = {
    name : string;
    mutable attrs : (string * string) list;
    dom : int;
    start_ns : int64;
    mutable stop_ns : int64;
    mutable children : span list; (* newest-first while building *)
    slow : bool;
  }

  val set_enabled : bool -> unit
  val is_enabled : unit -> bool

  (** [with_span name f] runs [f] inside a new span nested under the
      current domain's innermost open span.  [slow] marks the span as a
      slow-log candidate (see {!set_slow_threshold_ms}).  When tracing
      is disabled this is exactly [f ()]. *)
  val with_span :
    ?attrs:(string * string) list -> ?slow:bool -> string -> (unit -> 'a) -> 'a

  (** Zero-duration marker attached to the innermost open span. *)
  val event : ?attrs:(string * string) list -> string -> unit

  (** Attach an attribute to the innermost open span, if any. *)
  val add_attr : string -> string -> unit

  (** Clear the current domain's spans (open and completed). *)
  val reset : unit -> unit

  (** Completed top-level spans of the current domain, oldest first. *)
  val roots : unit -> span list

  (** Like {!roots}, but also clears them.  Workers call this before
      their domain exits. *)
  val drain : unit -> span list

  (** Graft drained spans under the current domain's innermost open
      span (or as roots).  Called by the pool after joining workers. *)
  val absorb : span list -> unit

  val span_count : span list -> int
  val duration_ms : span -> float

  (** Chrome [trace_event] JSON ("complete" events, µs timestamps
      relative to the earliest span, [tid] = domain id). *)
  val to_chrome_json : span list -> string

  (** Indented text rendering of the span forest. *)
  val to_text : span list -> string

  (** Record completed [slow:true] spans that exceed the threshold.
      [None] disables the log (the default). *)
  val set_slow_threshold_ms : float option -> unit

  (** Recorded slow spans, oldest first, capped at 64. *)
  val slow_log : unit -> span list

  val clear_slow_log : unit -> unit
  val json_escape : string -> string
end

module Metrics : sig
  type counter
  type histogram

  (** Histograms on per-check fast paths observe only when [detailed]
      is set; counters are always live. *)
  val detailed : bool ref

  val set_detailed : bool -> unit

  (** Intern a counter by name (one atomic cell; hold the handle). *)
  val counter : string -> counter

  val incr : counter -> unit
  val add : counter -> int -> unit

  (** Overwrite; used for gauges synced at snapshot time. *)
  val set : counter -> int -> unit

  val value : counter -> int

  (** Like {!counter}, but the name is typed [gauge] in the Prometheus
      exposition (its value may go down). *)
  val gauge : string -> counter

  val is_gauge : string -> bool

  (** Intern a log-scale (power-of-two ns buckets) latency histogram. *)
  val histogram : string -> histogram

  val observe_ns : histogram -> int -> unit
  val observe_ms : histogram -> float -> unit

  (** [timed h f] runs [f] and observes its wall-clock duration into
      [h], result or raise.  Unlike the per-check fast paths, this does
      {e not} consult {!detailed} — meant for request-grained latency in
      long-lived processes (the check server), where the histogram
      {e is} the product. *)
  val timed : histogram -> (unit -> 'a) -> 'a

  (** Bucket index for a nanosecond value: 0 for [ns <= 0], else
      [1 + floor(log2 ns)], capped at 63.  Exposed for tests. *)
  val bucket_of_ns : int -> int

  type hsnap = { count : int; sum_ns : int; buckets : int array }

  val hsnap : histogram -> hsnap
  val hsnap_merge : hsnap -> hsnap -> hsnap

  (** Upper bucket edge (ms) of the bucket holding quantile [q]. *)
  val hsnap_quantile : hsnap -> float -> float

  (** Name-sorted counters and histogram snapshots. *)
  val snapshot : unit -> (string * int) list * (string * hsnap) list

  (** JSON object [{"counters":{...},"histograms":{...}}]; [extra]
      appends pre-rendered JSON fields at the top level. *)
  val to_json : ?extra:(string * string) list -> unit -> string

  (** Prometheus text exposition (0.0.4): counters/gauges as
      [xic_<name>], histograms as summaries in seconds
      ([xic_<base>_seconds] with [quantile] labels, [_sum], [_count]). *)
  val to_prometheus : unit -> string

  (** Zero every registered counter and histogram. *)
  val reset : unit -> unit
end

val set_slow_threshold_ms : float option -> unit
