(* Re-export of the global symbol table at the API level users see
   ([Xic_core.Symbol]); the implementation lives below [Xic_xml] so that
   the document store itself can intern tag and attribute names. *)
include Xic_symbol.Symbol
