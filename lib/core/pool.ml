(* A minimal domain-based worker pool for embarrassingly parallel maps.

   [map ~jobs f xs] evaluates [f] on every element of [xs] using up to
   [jobs] domains (the calling domain participates, so at most [jobs - 1]
   are spawned) and returns the results in input order.  Work is
   distributed by an atomic next-item counter, so uneven item costs
   balance across workers.  Exceptions are captured per item; after all
   workers join, the exception of the earliest failing item is re-raised,
   which keeps failure behavior deterministic regardless of scheduling.

   Domains are spawned per call — the checking phases this serves are
   long relative to spawn cost, and a persistent pool would have to be
   torn down explicitly.  Callers must pass [f]s that only read shared
   state (see {!Xic_xml.Index.prepare_shared}); the pool itself adds no
   synchronization around [f]. *)

let map ~jobs f xs =
  (* never oversubscribe: extra domains on a smaller machine only add
     stop-the-world synchronization cost *)
  let jobs = min jobs (Domain.recommended_domain_count ()) in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f arr.(i) with
         | v -> results.(i) <- Some v
         | exception e -> errors.(i) <- Some e);
        worker ()
      end
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ ->
          Domain.spawn (fun () ->
              worker ();
              (* ship this worker's trace back before the domain dies *)
              if Xic_obs.Obs.Trace.is_enabled () then Xic_obs.Obs.Trace.drain ()
              else []))
    in
    worker ();
    let worker_spans = List.concat_map Domain.join spawned in
    (* [Domain.join] publishes the workers' writes to this domain *)
    Xic_obs.Obs.Trace.absorb worker_spans;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
