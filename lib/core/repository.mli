(** The repository: an XML document collection with declared constraints
    and update patterns, supporting full and optimized (incremental)
    integrity checking with early detection of illegal updates.

    Checking semantics (Section 7 of the paper):
    {ul
    {- {e full check}: evaluate every constraint's XQuery translation
       against the current documents;}
    {- {e optimized check}: when an incoming update instantiates a
       registered pattern, evaluate the pattern's pre-compiled simplified
       checks with the extracted parameter valuation — {e before} the
       update executes, so illegal updates are never applied;}
    {- {e fallback}: updates matching no pattern are applied, fully
       checked, and rolled back on violation (compensating action).}} *)

open Xic_xml

type t

(** A simplified check, pre-compiled at pattern-registration time.  The
    closure plan of its XQuery is cached on first evaluation, keyed by
    the enclosing (pattern, constraint) pair by construction. *)
type optimized_check = {
  constraint_name : string;
  simplified : Xic_datalog.Term.denial list;
  simplified_xquery : Xic_xquery.Ast.expr;
  mutable simplified_plan : Xic_xquery.Eval.compiled option;
}

(** Plan-cache counters: a {e hit} is a check evaluation served by a
    cached closure plan, a {e miss} is a compilation. *)
type plan_stats = {
  plan_hits : int;
  plan_misses : int;
}

exception Repository_error of string

val create : Schema.t -> t
val schema : t -> Schema.t
val doc : t -> Doc.t

val set_eval_budget : t -> int option -> unit
(** Install (or clear, with [None]) a step budget for constraint-check
    evaluation.  Every optimized or runtime-simplified check runs under
    its own budget of that many evaluator steps; a check that exhausts it
    is treated as {e degraded} — the guarded update falls back to the
    full check instead of failing (see {!report}).  The budget also
    bounds {!check_optimized_datalog}, where exhaustion raises
    [Xic_datalog.Eval.Budget_exceeded]. *)

val eval_budget : t -> int option

val set_parallelism : t -> int -> unit
(** Number of domains {!check_full} may use to evaluate independent
    denial checks concurrently (default 1 = sequential).  Parallel
    checking requires at least two constraints and no installed
    {!set_eval_budget} (budgets are per-domain); otherwise the check
    silently runs sequentially.  Verdicts are identical either way: the
    document is read-only during the check, the index is frozen into its
    shared phase, and the merge preserves constraint order.
    @raise Repository_error when [jobs < 1]. *)

val parallelism : t -> int

val plan_stats : t -> plan_stats
(** Cumulative plan-cache counters over full and simplified checks. *)

val plan_stats_line : t -> string
(** Human-readable one-liner for the CLI, e.g.
    ["plans: 12 hits, 3 misses, 3 cached"]. *)

val cached_plans : t -> int
(** Number of closure plans currently cached (full-check plans plus
    compiled simplified checks). *)

val set_use_index : t -> bool -> unit
(** Enable (default) or disable indexed evaluation.  Disabling detaches
    and drops any existing index; verdicts are unaffected either way. *)

val use_index : t -> bool

val index : t -> Index.t option
(** The document's secondary indexes, created (lazily, unbuilt) on first
    demand — [None] when indexed evaluation is disabled.  All checking
    and shredding paths consult it automatically; it is exposed for
    callers evaluating ad-hoc queries against {!doc}. *)

val index_stats : t -> Index.stats option
(** Statistics of the current index, if one exists. *)

val index_stats_line : t -> string
(** Human-readable one-liner for the CLI: the index's hit/miss/fallback
    counters, ["index: idle"] when no lookup forced a build yet, or
    ["index: disabled"]. *)

val metrics : t -> (string * int) list * (string * Xic_obs.Obs.Metrics.hsnap) list
(** Snapshot of the global metrics registry (counters and latency
    histograms, name-sorted), after syncing the point-in-time gauges
    ([index_*], [plan_cached]) from this repository — so the snapshot
    always agrees with the legacy {!plan_stats} / {!index_stats}
    shims. *)

val metrics_json : t -> string
(** Same snapshot rendered as a JSON object
    [{"counters":{…},"histograms":{…}}] for [xicheck --metrics]. *)

val metrics_prometheus : t -> string
(** Same snapshot rendered as Prometheus text exposition (the server's
    [metrics] op). *)

val load_document : ?validate:bool -> t -> string -> unit
(** Parse an XML document and add it to the collection; with [validate]
    (default true) it must conform to the DTD declaring its root type.
    @raise Repository_error on parse or validation failure. *)

val load_fused : ?validate:bool -> t -> string -> unit
(** Fused single-pass ingestion: parse, intern and shred the document in
    one streaming scan of the source ([Xml_parser.parse_document_into] +
    [Shred.sink]), under an ["ingest"] trace span.  Verdict-equivalent to
    {!load_document} — same documents, same relational facts (the
    differential oracle checks store and verdict agreement) — but the
    Datalog store is filled while parsing instead of by a second
    full-document walk, and positions come from the parser for free.
    When the store cannot be kept exact in-pass (documents already loaded
    but the store never demanded) it simply stays lazy.  On failure the
    store is invalidated and no root is registered.
    @raise Repository_error on parse, shredding or validation failure. *)

type ingest_stats = {
  fused_docs : int;   (** documents loaded through {!load_fused} *)
  legacy_docs : int;  (** documents loaded through {!load_document} *)
  fused_bytes : int;  (** source bytes ingested by the fused path *)
  fused_facts : int;  (** facts emitted by fused shredding *)
}

val ingest_stats : t -> ingest_stats
(** Cumulative ingestion counters (registry-backed, like {!plan_stats}). *)

val add_document_root : ?validate:bool -> t -> Doc.node_id -> unit
(** Register an already-built tree (e.g. from a generator) as a root. *)

val add_constraint : ?verify:bool -> t -> Constr.t -> unit
(** Register a constraint; simplified checks are (re)compiled for every
    registered pattern.  With [verify] (default false), the constraint is
    first evaluated against the current documents and registration fails
    if they already violate it — the simplification framework assumes a
    consistent starting state. *)

val register_pattern : t -> Pattern.t -> unit
(** Register an update pattern: runs [Simp] against every constraint and
    pre-translates the simplified checks to XQuery. *)

val constraints : t -> Constr.t list
val patterns : t -> Pattern.t list

val optimized_checks : t -> Pattern.t -> optimized_check list
(** The pre-compiled simplified checks of a registered pattern.
    @raise Repository_error for unregistered patterns. *)

val check_full : t -> string list
(** Names of currently violated constraints (empty = consistent), via the
    full XQuery checks. *)

val check_full_datalog : t -> string list
(** Same, evaluated over the relational mirror (shredded on demand). *)

(** {1 Pinned generations (reader isolation, O(1))}

    A pin is a frozen generation handle of the materialized store
    ([Store.freeze]) stamped with the {!generation} it captured: an
    O(#relations) pointer capture sharing the per-relation insertion
    logs with the live writer, {e not} a copy.  The writer only ever
    conses onto its own log heads, so a pinned reader's verdicts are
    unaffected by later commits, checkpoints, and journal truncation —
    the snapshot-isolated read side of the check server — while a pin
    retains only the unshared log suffix in memory.

    Handles are refcounted in a retained-generation table: pins of the
    same generation share one handle, {!unpin} releases it, and
    zero-reference entries linger as bounded history ({!pin_as_of}
    time-travel checks) until evicted by newer history or a
    {!checkpoint}. *)

val generation : t -> int
(** Committed-transaction counter: starts at 0, incremented by every
    {!commit_txn} that applied at least one statement (including
    {!guarded_update} and {!guarded_batch} commits) and by each
    committed transaction a {!recover} replays. *)

type pin

val pin : t -> pin
(** Capture the current state in O(1) (flushes pending mutation marks
    first, then freezes — no copy).  Repeated pins of an unchanged
    generation return the same shared handle.  Must not be taken while
    a transaction holds applied-but-uncommitted statements — the handle
    would capture them as committed state; pin before {!begin_txn}, or
    after the transaction closes. *)

val unpin : t -> pin -> unit
(** Release one reference on the pin's retained generation.  Dropped
    generations become reclaimable history; unpinning a pin whose entry
    was already evicted (store reload, checkpoint) is a no-op — the pin
    record itself keeps its handle alive for its holder regardless. *)

val pin_as_of : t -> int -> pin option
(** A pin of a {e retained} past generation — time travel over the
    history kept by the retained-generation table ([None] when that
    generation is no longer retained).  Balance with {!unpin}. *)

val check_as_of : t -> int -> string list option
(** Verdict at a retained past generation: {!check_pinned} over a
    transient {!pin_as_of} handle ([None] when not retained). *)

val retained_generations : t -> (int * int) list
(** The retained-generation table as [(generation, refcount)] pairs in
    ascending generation order — refcount 0 marks history kept only for
    time-travel checks. *)

val retained_bytes : t -> int
(** Rough heap estimate of what the retained handles hold {e beyond}
    the structure they share with the live store — 0 in the steady
    state where every log is still a suffix of the writer's. *)

val pin_generation : pin -> int
val pin_store : pin -> Xic_datalog.Store.t

val check_pinned : t -> pin -> string list
(** Names of constraints violated in the pinned state — the denials
    evaluated over the pinned store, verdict-equivalent to
    {!check_full} at the time the pin was taken. *)

(** {1 Incremental (delta-driven) checking}

    The relational store is kept exact across every mutation by an
    event-driven mirror; each reconciliation yields a net fact delta.
    With incremental checking enabled, per-denial violation witnesses
    are materialized ([Xic_datalog.Incr]) and maintained from those
    deltas, so the post-state verdict of a guarded update or a recovery
    replay costs time proportional to the {e update}, not the document:
    denials over untouched relations are skipped outright, monotone
    denials evaluate only the delta-bound residual joins. *)

val set_incremental : t -> bool -> unit
(** Route the guarded-update fallback verdict and the recovery
    post-check through the materialized denial views (default off:
    those paths use {!check_full}).  Disabling drops the views. *)

val incremental : t -> bool

val check_incremental : t -> string list
(** Names of currently violated constraints, from the materialized
    views — initialized from the store on first use, maintained by
    deltas afterwards.  Verdict-equivalent to {!check_full} (oracle
    route 8 asserts this, plus [Store.equal] of the views against a
    from-scratch recompute).
    @raise Xic_datalog.Eval.Unsafe for denials outside the maintainable
    fragment (parameters). *)

val incr_view : t -> Xic_datalog.Store.t option
(** The materialized witness store, when views exist — one relation
    ["name#i"] per (constraint, denial), holding the bindings of the
    denial's positive-literal variables.  For tests and oracles. *)

(** Cumulative delta/view counters of this repository. *)
type delta_stats = {
  delta_flushes : int;  (** mirror reconciliations *)
  delta_facts_added : int;  (** gross store insertions via deltas *)
  delta_facts_removed : int;  (** gross store deletions via deltas *)
  delta_net_added : int;
      (** net insertions still standing, over the sequential composition
          ([Delta.compose]) of every flush since the store was installed *)
  delta_net_removed : int;  (** net deletions still standing, same window *)
  incr_entries : int;  (** materialized (constraint, denial) views *)
  incr_evals : int;  (** delta-bound residual evaluations *)
  incr_reverifies : int;  (** view rows re-checked after deletions *)
  incr_recomputes : int;  (** full view re-evaluations *)
  incr_skipped : int;  (** views untouched by a delta *)
  incr_view_rows : int;  (** materialized witnesses right now *)
}

val delta_stats : t -> delta_stats

val delta_stats_line : t -> string
(** Human-readable one-liner for [xicheck --delta-stats]. *)

val match_update : t -> Xic_xupdate.Xupdate.t -> (Pattern.t * Pattern.valuation) option
(** Recognize a single-modification update against the registered
    patterns (first match wins). *)

val check_optimized : t -> Pattern.t -> Pattern.valuation -> string list
(** Names of constraints whose simplified check reports a violation for
    the proposed update (evaluated on the {e current} state).
    @raise Repository_error when a check fails to evaluate or exhausts
    the step budget; {!try_check_optimized} reports those as degradations
    instead. *)

(** An optimized check that could not be completed (evaluation error or
    exhausted step budget); the guarded-update engine falls back to the
    full check and reports the degradation. *)
type degradation = { failed_check : string; reason : string }

val try_check_optimized :
  t -> Pattern.t -> Pattern.valuation -> string list * degradation list
(** Total variant of {!check_optimized}: violated constraint names plus
    the checks that degraded instead of completing. *)

val check_optimized_datalog : t -> Pattern.t -> Pattern.valuation -> string list
(** Ablation variant: evaluate the simplified denials over the relational
    mirror instead of via XQuery. *)

(** Result of a guarded update. *)
type outcome =
  | Applied of [ `Optimized | `Runtime_simplified | `Full_check ]
      (** executed; which checking strategy validated it *)
  | Rejected_early of string
      (** refused before execution (optimized check); the violated
          constraint's name *)
  | Rolled_back of string
      (** executed, found violating by the full check, compensated *)

(** Outcome of a guarded update plus the checks that degraded along the
    way.  [degradations] is non-empty when an optimized (or runtime
    simplified) check failed to evaluate or ran out of its step budget:
    correctness is preserved by falling back to the full check, and the
    report says so. *)
type report = { outcome : outcome; degradations : degradation list }

val guarded_update :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  ?journal:Xic_journal.Journal.t ->
  t ->
  Xic_xupdate.Xupdate.t ->
  outcome
(** Apply an update under integrity control.

    When the update instantiates a registered pattern, its pre-compiled
    simplified checks run before execution.  Otherwise [fallback] decides
    (Section 7, footnote 4 of the paper): with [`Full_check] (default) the
    update is executed, fully checked, and compensated on violation; with
    [`Runtime_simplification] a one-off pattern is derived from the
    concrete statement (its text values as constants), [Simp] runs on the
    spot, and the residual checks still execute {e before} the update —
    reverting to the full-check strategy only when the statement falls
    outside the simplifiable fragment.

    With [journal], the update is journaled write-ahead: an intent record
    (the serialized statement and chosen strategy) is forced to disk
    before the documents are touched and a commit record after, so
    {!recover} can replay it after a crash.  Updates refused or rolled
    back leave no committed trace. *)

val guarded_update_report :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  ?journal:Xic_journal.Journal.t ->
  t ->
  Xic_xupdate.Xupdate.t ->
  report
(** Like {!guarded_update} but also reports degradations. *)

val guarded_batch :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  ?journal:Xic_journal.Journal.t ->
  t ->
  Xic_xupdate.Xupdate.t list ->
  report list
(** Apply several guarded updates as one batch: each statement goes
    through the same strategy dispatch as {!guarded_update} (reports are
    in input order and verdict-identical to serial guards), but they
    share one journaled transaction under group commit — intent records
    are written unsynced and the single commit fsync makes the whole
    batch durable at once — and runs of pre-checked statements are
    reconciled into
    the store by one composed delta flush (one incremental
    view-maintenance pass) instead of one per statement.  Statements
    refused or compensated individually do not abort the rest of the
    batch. *)

(** {1 Transactions}

    A transaction groups several guarded statements into one atomic,
    journaled unit: either every applied statement survives ({!commit_txn})
    or none does ({!rollback_txn} or a crash before the commit record).
    Statement-level integrity control is unchanged — an illegal statement
    is refused or compensated individually and the transaction stays
    open. *)

type txn

val begin_txn :
  ?group_commit:bool -> ?journal:Xic_journal.Journal.t -> t -> txn
(** [group_commit] (default [false]) defers the fsync of intent and
    truncate records to the closing commit/abort record's fsync — one
    durability point per transaction instead of one per statement.  Safe
    because recovery discards transactions without a durable closing
    record whether or not their intents reached disk.  {!guarded_batch}
    enables it. *)

val txn_id : txn -> int

val txn_statements : txn -> int
(** Statements currently applied (i.e. the next savepoint value). *)

val txn_apply :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  txn ->
  Xic_xupdate.Xupdate.t ->
  outcome

val txn_apply_report :
  ?fallback:[ `Full_check | `Runtime_simplification ] ->
  txn ->
  Xic_xupdate.Xupdate.t ->
  report
(** Apply one statement inside the transaction, with the same strategy
    dispatch as {!guarded_update}.  The intent record carries the
    statement's sequence number; no commit record is written until
    {!commit_txn}.
    @raise Repository_error if the transaction is closed. *)

type savepoint

val txn_savepoint : txn -> savepoint

val txn_rollback_to : txn -> savepoint -> unit
(** Undo every statement applied after the savepoint (journaled as a
    truncate record so replay stays faithful). *)

val commit_txn : txn -> unit
(** Force the commit record to disk and close the transaction.  Until
    this returns, a crash recovers to the pre-transaction state. *)

val rollback_txn : txn -> unit
(** Undo every applied statement, journal an abort record, and close the
    transaction.  The abort record is forced to disk {e before} the
    in-memory compensation runs, so a crash or signal-driven shutdown
    anywhere in the undo still leaves the journal's last word on this
    transaction a closing record, never a dangling intent. *)

(** {1 Crash recovery} *)

type recovery_report = {
  replayed_txns : int;
  replayed_statements : int;
  discarded_txns : int;
      (** journaled transactions without a commit record (in-flight at
          the crash, or aborted) *)
  torn_tail : bool;  (** the journal ended in a torn (discarded) record *)
  replay_errors : (int * string) list;
      (** transaction id and error, for committed statements that no
          longer replay (e.g. the base documents changed) *)
  post_violations : string list;
      (** constraints violated after replay — empty for a journal
          produced by guarded updates against the same base documents *)
}

val recover : ?skip:int -> Xic_journal.Journal.read_result -> t -> recovery_report
(** Replay the committed transactions of a journal (see
    {!Xic_journal.Journal.read}) against the repository's freshly loaded
    base documents, in commit order.  Uncommitted and aborted
    transactions, savepoint-truncated statements, and any torn tail are
    discarded — after a crash at {e any} point, the repository recovers
    to the last committed state.  [skip] (default 0) drops that many
    leading journal entries first: the suffix replay after a snapshot
    load (compute it with {!recover_skip}). *)

val recover_skip :
  Xic_snapshot.Snapshot.meta -> Xic_journal.Journal.read_result -> int
(** How many leading journal entries the snapshot already covers, by the
    generation rule: a journal generation {e newer} than the snapshot's
    replays in full (0), the {e same} generation skips the snapshot's
    watermark, an {e older} one is a stale pre-checkpoint journal and is
    skipped entirely. *)

(** {1 Snapshot checkpointing} *)

type checkpoint_report = {
  snapshot_path : string;
  snapshot_bytes : int;
  snapshot_nodes : int;  (** live document nodes persisted *)
  snapshot_facts : int;  (** store tuples persisted *)
  wal_entries_folded : int;
      (** journal entries whose effects the snapshot now contains *)
  wal_reset : bool;  (** whether a journal was truncated afterwards *)
}

val checkpoint : ?journal:Xic_journal.Journal.t -> t -> string -> checkpoint_report
(** Write a crash-consistent snapshot of the current state (document
    arena, symbol table, materialized store) to the given path — temp
    file, fsync, rename, directory fsync — and, when [journal] is given,
    stamp its (generation, entry count) into the snapshot and {e then}
    reset it, bounding future recovery to the journal suffix written
    after this call.  A crash at any point leaves a recoverable pair:
    old snapshot + old journal, or new snapshot + old journal (replay
    skips the watermarked prefix), or new snapshot + fresh journal.

    Must not be called while a journaled transaction is open — the
    snapshot would capture uncommitted mutations as committed state.
    @raise Repository_error on I/O failure. *)

val load_snapshot : t -> string -> Xic_snapshot.Snapshot.meta
(** Restore a snapshot into a freshly created repository (no documents
    loaded yet): rebuilds the arena in place with node ids preserved and
    installs the deserialized store as the materialized mirror — no
    parse, no shred.  Register constraints and patterns afterwards as
    usual; journal suffix replay is {!recover} with
    [~skip:(recover_skip meta rr)].
    @raise Repository_error when the repository is non-empty;
    @raise Xic_snapshot.Snapshot.Snapshot_error (with the classified
    error taxonomy) when the file is missing, truncated or corrupt. *)

val apply_unchecked : t -> Xic_xupdate.Xupdate.t -> Xic_xupdate.Xupdate.undo
val rollback : t -> Xic_xupdate.Xupdate.undo -> unit

val store : t -> Xic_datalog.Store.t
(** The relational mirror of the current documents (rebuilt lazily after
    updates). *)

(** A concrete witness of a constraint violation. *)
type witness = {
  witness_constraint : string;
  denial : Xic_datalog.Term.denial;  (** the violated disjunct *)
  bindings : (string * Xic_datalog.Term.const) list;
      (** satisfying substitution over the denial's variables *)
  nodes : (string * Doc.node_id * string) list;
      (** variable, node, and its positional root path, for the bindings
          that denote document nodes *)
}

val explain : t -> witness list
(** One witness per violated constraint disjunct (evaluated over the
    relational mirror) — empty iff consistent.  Use the [nodes] paths to
    point users at the offending elements. *)

val witness_to_string : witness -> string
