(** A minimal domain-based worker pool (stdlib only).

    Used by {!Repository} to evaluate independent denial checks in
    parallel over a read-only document. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] from up to
    [jobs] domains (the caller participates; [jobs <= 1] degenerates to
    [List.map]) and returns the results in input order.  Items are
    handed out through an atomic counter, so costs balance across
    workers.  If any [f] raises, the exception of the earliest failing
    item is re-raised after all workers have joined — deterministic
    regardless of scheduling.  [f] must only read state shared between
    domains. *)
