(** A compiled integrity constraint: the XPathLog source together with its
    Datalog denials (Section 4.2) and the full XQuery check (Section 6). *)

type t = {
  name : string;
  source : string;                        (** XPathLog concrete syntax *)
  xpathlog : Xic_xpathlog.Ast.denial option;  (* None when written directly in Datalog *)
  datalog : Xic_datalog.Term.denial list; (** one per disjunct *)
  xquery : Xic_xquery.Ast.expr;           (** true ⇔ violated *)
}

exception Constraint_error of string

val make : Schema.t -> name:string -> string -> t
(** Parse, compile and translate an XPathLog denial.
    @raise Constraint_error on parse/compile/translation failures. *)

val of_datalog : Schema.t -> name:string -> Xic_datalog.Term.denial list -> t
(** Wrap denials written directly in Datalog (source is their printed
    form). *)

val violated_xquery : ?index:Xic_xml.Index.t -> Xic_xml.Doc.t -> t -> bool
(** Evaluate the full XQuery check: [true] means the constraint is
    violated.  [index] routes the evaluation through the indexed planner
    (identical verdict). *)

val violated_datalog : Xic_datalog.Store.t -> t -> bool
(** Evaluate the Datalog denials over a shredded store. *)

val compile : t -> Xic_xquery.Eval.compiled
(** Lower the full XQuery check into a closure plan once; the repository
    caches these per constraint ({!Repository.plan_stats}). *)

val violated_compiled :
  ?index:Xic_xml.Index.t -> Xic_xml.Doc.t -> t -> Xic_xquery.Eval.compiled -> bool
(** As {!violated_xquery}, but running a pre-compiled plan.  The plan is
    immutable, so several domains may run it concurrently. *)
