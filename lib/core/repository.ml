open Xic_xml
module T = Xic_datalog.Term
module Delta = Xic_datalog.Delta
module Incr = Xic_datalog.Incr
module Mirror = Xic_relmap.Mirror
module XU = Xic_xupdate.Xupdate
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint
module Snap = Xic_snapshot.Snapshot
module Obs = Xic_obs.Obs

(* Crash windows of the guarded-update and checkpoint pipelines,
   declared so the torture harness can enumerate them. *)
let () =
  List.iter FP.declare
    [ "before_apply"; "after_apply"; "before_commit"; "checkpoint_truncate" ]

module Log = struct
  let warn f = Xic_obs.Log.warn ~src:"xic.repository" f
end

(* Registry cells for the pipeline counters.  The plan-cache counters
   are the primary store now — the legacy [plan_stats] accessor is a
   shim over them — and [plan_compile_requests] is bumped on every
   cache consultation, so [hits + misses = requests] holds by
   construction (the differential oracle asserts it). *)
let c_checks_full = Obs.Metrics.counter "checks_full"
let c_checks_optimized = Obs.Metrics.counter "checks_optimized"
let c_plan_hits = Obs.Metrics.counter "plan_cache_hits"
let c_plan_misses = Obs.Metrics.counter "plan_cache_misses"
let c_plan_requests = Obs.Metrics.counter "plan_compile_requests"
let c_rollbacks = Obs.Metrics.counter "rollbacks"
let c_checks_incremental = Obs.Metrics.counter "checks_incremental"
let c_delta_facts_added = Obs.Metrics.counter "delta_facts_added"
let c_delta_facts_removed = Obs.Metrics.counter "delta_facts_removed"
let c_delta_flushes = Obs.Metrics.counter "delta_flushes"
let c_ingest_fused = Obs.Metrics.counter "ingest_fused_docs"
let c_ingest_legacy = Obs.Metrics.counter "ingest_legacy_docs"
let c_ingest_bytes = Obs.Metrics.counter "ingest_bytes"
let c_ingest_facts = Obs.Metrics.counter "ingest_facts"
let h_check_full = Obs.Metrics.histogram "check_full_ms"
let h_check_optimized = Obs.Metrics.histogram "check_optimized_ms"

(* Run one constraint check under a slow-loggable span and, when
   detailed metrics are on, a latency-histogram observation.  With
   tracing and detailed metrics both off this is exactly [f ()]. *)
let timed_check name hist f =
  let f =
    if !Obs.Metrics.detailed then (fun () ->
      let t0 = Obs.Clock.now_ns () in
      let v = f () in
      Obs.Metrics.observe_ns hist
        (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0));
      v)
    else f
  in
  if Obs.Trace.is_enabled () then
    Obs.Trace.with_span ~slow:true ("check:" ^ name) f
  else f ()

type optimized_check = {
  constraint_name : string;
  simplified : T.denial list;
  simplified_xquery : Xic_xquery.Ast.expr;
  (* the check's closure plan, compiled on first use and keyed by the
     enclosing (pattern, constraint) pair by construction *)
  mutable simplified_plan : Xic_xquery.Eval.compiled option;
}

type plan_stats = {
  plan_hits : int;    (* checks served by a cached plan *)
  plan_misses : int;  (* compilations *)
}

(* Per-repository delta/incremental counters (the registry counters are
   global across repositories; tests build many). *)
type delta_counters = {
  mutable flushes : int;
  mutable facts_added : int;
  mutable facts_removed : int;
  (* sequential composition of every flushed delta since the store was
     installed: the net drift of the live store, bounded by its size *)
  net : Delta.t;
}

(* One retained generation: a frozen store handle shared by every pin
   of that generation, refcounted so the table can tell in-flight
   readers from history kept purely for time-travel checks. *)
type retained = {
  r_store : Xic_datalog.Store.t;  (* frozen *)
  r_mut : int;  (* mutation stamp at freeze time, for freshness checks *)
  mutable r_refs : int;
}

type t = {
  schema : Schema.t;
  doc : Doc.t;
  mutable constraints : Constr.t list;
  mutable compiled : (Pattern.t * optimized_check list) list;
  mutable store : Xic_datalog.Store.t option;
  (* event-driven store maintenance; attached iff [store] is [Some] *)
  mutable mirror : Xic_relmap.Mirror.t option;
  (* [true] = verdicts come from the materialized denial views *)
  mutable incremental : bool;
  mutable incr : Xic_datalog.Incr.t option;
  deltas : delta_counters;
  mutable eval_budget : int option;
  mutable use_index : bool;
  mutable index : Index.t option;
  (* full-check plans, keyed by constraint name *)
  full_plans : (string, Xic_xquery.Eval.compiled) Hashtbl.t;
  mutable parallelism : int;
  (* committed-transaction counter; {!pin} stamps it into snapshots so
     readers can tell which state they are looking at *)
  mutable generation : int;
  (* raw mutation counter (every applied or rolled-back statement, every
     load): a retained entry is reused by {!pin} only when its stamp
     still matches — the generation number alone cannot tell a clean
     committed state from mid-flight document surgery *)
  mutable mutations : int;
  (* generation → frozen handle; entries with [r_refs = 0] are history
     kept for time-travel checks, bounded by [retain_keep] and dropped
     wholesale at checkpoints *)
  retained : (int, retained) Hashtbl.t;
  retain_keep : int;
}

exception Repository_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Repository_error s)) fmt

let create schema =
  { schema; doc = Doc.create (); constraints = []; compiled = []; store = None;
    mirror = None; incremental = false; incr = None;
    deltas =
      { flushes = 0; facts_added = 0; facts_removed = 0; net = Delta.create () };
    eval_budget = None; use_index = true; index = None;
    full_plans = Hashtbl.create 16; parallelism = 1; generation = 0;
    mutations = 0; retained = Hashtbl.create 8; retain_keep = 8 }

let generation t = t.generation

let set_eval_budget t b = t.eval_budget <- b
let eval_budget t = t.eval_budget

let set_parallelism t jobs =
  if jobs < 1 then fail "parallelism must be at least 1";
  t.parallelism <- jobs

let parallelism t = t.parallelism

let plan_stats (_ : t) =
  { plan_hits = Obs.Metrics.value c_plan_hits;
    plan_misses = Obs.Metrics.value c_plan_misses }

let cached_plans t =
  Hashtbl.length t.full_plans
  + List.fold_left
      (fun acc (_, checks) ->
        acc
        + List.length
            (List.filter (fun ch -> Option.is_some ch.simplified_plan) checks))
      0 t.compiled

let plan_stats_line t =
  Printf.sprintf "plans: %d hits, %d misses, %d cached"
    (Obs.Metrics.value c_plan_hits)
    (Obs.Metrics.value c_plan_misses)
    (cached_plans t)

let schema t = t.schema
let doc t = t.doc

(* The index is created on demand (and even then its tables stay empty
   until some evaluation performs a lookup). *)
let index t =
  if not t.use_index then None
  else begin
    match t.index with
    | Some _ as i -> i
    | None ->
      let i = Index.create t.doc in
      t.index <- Some i;
      Some i
  end

let set_use_index t enabled =
  if not enabled then begin
    (match t.index with Some i -> Index.detach i | None -> ());
    t.index <- None
  end;
  t.use_index <- enabled

let use_index t = t.use_index
let index_stats t = Option.map Index.stats t.index

let index_stats_line t =
  if not t.use_index then "index: disabled"
  else
    match t.index with
    | None -> "index: idle"
    | Some i -> Index.stats_line i

(* Index stats and the cached-plan count live outside the registry (the
   index updates them lock-free on its hot path, the plan tables are
   per-repository); they enter the registry as gauges synced at snapshot
   time, which makes [metrics] agree with the legacy [index_stats] /
   [plan_stats_line] shims by construction — both read the same cells. *)
let g_index_hits = Obs.Metrics.gauge "index_hits"
let g_index_misses = Obs.Metrics.gauge "index_misses"
let g_index_fallbacks = Obs.Metrics.gauge "index_fallbacks"
let g_index_events = Obs.Metrics.gauge "index_events"
let g_plan_cached = Obs.Metrics.gauge "plan_cached"

let sync_gauges t =
  (match index_stats t with
   | Some (s : Index.stats) ->
     Obs.Metrics.set g_index_hits s.Index.hits;
     Obs.Metrics.set g_index_misses s.Index.misses;
     Obs.Metrics.set g_index_fallbacks s.Index.fallbacks;
     Obs.Metrics.set g_index_events s.Index.events
   | None -> ());
  Obs.Metrics.set g_plan_cached (cached_plans t)

let metrics t =
  sync_gauges t;
  Obs.Metrics.snapshot ()

let metrics_json t =
  sync_gauges t;
  Obs.Metrics.to_json ()

let metrics_prometheus t =
  sync_gauges t;
  Obs.Metrics.to_prometheus ()

let invalidate_store t =
  (match t.mirror with Some m -> Mirror.detach m | None -> ());
  t.mirror <- None;
  t.store <- None;
  t.incr <- None;
  (* generation numbers no longer name states of the store being
     dropped; outstanding pins keep their handles, the table does not *)
  Hashtbl.reset t.retained;
  t.mutations <- t.mutations + 1

(* Install a store known to be exact for the current documents and
   attach the event-driven mirror that keeps it that way across updates,
   undo, savepoint rollback and recovery replay. *)
let install_store t s =
  (match t.mirror with Some m -> Mirror.detach m | None -> ());
  t.store <- Some s;
  Delta.clear t.deltas.net;
  Hashtbl.reset t.retained;
  t.mutations <- t.mutations + 1;
  t.mirror <- Some (Mirror.create (Schema.mapping t.schema) t.doc s)

(* Reconcile pending mutation marks into the store and feed the net
   delta to the live materialized views (if any).  A view that cannot be
   maintained (unsafe denial, exhausted budget) is dropped; the next
   incremental check re-initializes from scratch. *)
let sync_store t =
  match (t.store, t.mirror) with
  | Some s, Some m when Mirror.has_dirty m ->
    Obs.Trace.with_span "delta_flush" (fun () ->
        let d = Delta.create () in
        Mirror.flush m ~into:d;
        t.deltas.flushes <- t.deltas.flushes + 1;
        t.deltas.facts_added <- t.deltas.facts_added + Delta.gross_added d;
        t.deltas.facts_removed <- t.deltas.facts_removed + Delta.gross_removed d;
        Obs.Metrics.incr c_delta_flushes;
        Obs.Metrics.add c_delta_facts_added (Delta.gross_added d);
        Obs.Metrics.add c_delta_facts_removed (Delta.gross_removed d);
        Delta.compose ~into:t.deltas.net d;
        match t.incr with
        | Some inc when not (Delta.is_empty d) ->
          (try Incr.apply_delta inc s d
           with Xic_datalog.Eval.Unsafe _ | Xic_datalog.Eval.Budget_exceeded ->
             t.incr <- None)
        | _ -> ())
  | _ -> ()

let add_document_root ?(validate = true) t root =
  if validate then begin
    match Schema.validate_root t.schema t.doc root with
    | Ok () -> ()
    | Error m -> fail "document rejected: %s" m
  end;
  Doc.add_root t.doc root;
  invalidate_store t

let load_document ?validate t source =
  let nodes =
    Obs.Trace.with_span "parse" (fun () ->
        try Xml_parser.parse_fragment t.doc source
        with Xml_parser.Parse_error { line; col; msg } ->
          fail "XML parse error at %d:%d: %s" line col msg)
  in
  match List.filter (Doc.is_element t.doc) nodes with
  | [ root ] ->
    add_document_root ?validate t root;
    Obs.Metrics.incr c_ingest_legacy
  | _ -> fail "expected exactly one root element"

type ingest_stats = {
  fused_docs : int;
  legacy_docs : int;
  fused_bytes : int;
  fused_facts : int;
}

let ingest_stats (_ : t) =
  { fused_docs = Obs.Metrics.value c_ingest_fused;
    legacy_docs = Obs.Metrics.value c_ingest_legacy;
    fused_bytes = Obs.Metrics.value c_ingest_bytes;
    fused_facts = Obs.Metrics.value c_ingest_facts }

(* Fused single-pass load: parse, intern and shred in one streaming scan
   of the source.  The store is fed through a [Shred.sink] while the
   parse runs when it can be kept exact:
   - an existing materialised store gains the new document's facts;
   - a repository with no documents yet gets a fresh store built in-pass;
   - otherwise (documents loaded but the store not yet demanded) the
     store simply stays lazy.
   On any failure — parse error, shredding error, validation reject —
   the store is invalidated: the partially parsed nodes are unreachable
   (the root is only registered on success), so the next [store] demand
   rebuilds an exact mirror from the registered roots. *)
let load_fused ?(validate = true) t source =
  Obs.Trace.with_span "ingest" (fun () ->
      let facts = ref 0 in
      let sink =
        match t.store with
        | Some s ->
          (* the sink keeps the store exact in-pass; silence the mirror
             so the parser's attach events don't mark the whole new
             document dirty (flush any older marks first) *)
          sync_store t;
          (match t.mirror with Some m -> Mirror.set_active m false | None -> ());
          Some (Xic_relmap.Shred.sink ~count:facts (Schema.mapping t.schema) t.doc s)
        | None ->
          if Doc.has_root t.doc then None
          else begin
            let s = Xic_datalog.Store.create () in
            t.store <- Some s;
            Some
              (Xic_relmap.Shred.sink ~count:facts (Schema.mapping t.schema) t.doc s)
          end
      in
      match Xml_parser.parse_document_into ?sink t.doc source with
      | exception Xml_parser.Parse_error { line; col; msg } ->
        invalidate_store t;
        fail "XML parse error at %d:%d: %s" line col msg
      | exception Xic_relmap.Shred.Shred_error m ->
        invalidate_store t;
        fail "shred error during load: %s" m
      | root, _dtd ->
        (if validate then
           match Schema.validate_root t.schema t.doc root with
           | Ok () -> ()
           | Error m ->
             invalidate_store t;
             fail "document rejected: %s" m);
        Doc.add_root t.doc root;
        (* a whole new document's facts arrived outside the delta path:
           rearm the mirror and drop any materialized views (the next
           incremental check re-initializes against the new store) *)
        (match (t.store, t.mirror) with
         | Some _, Some m -> Mirror.set_active m true
         | Some s, None -> install_store t s
         | None, _ -> ());
        t.incr <- None;
        t.mutations <- t.mutations + 1;
        Obs.Metrics.incr c_ingest_fused;
        Obs.Metrics.add c_ingest_bytes (String.length source);
        Obs.Metrics.add c_ingest_facts !facts)

let compile_checks t (p : Pattern.t) =
  List.map
    (fun (c : Constr.t) ->
      let simplified = Pattern.simplify t.schema p c in
      let simplified_xquery =
        Xic_translate.Translate.denials (Schema.mapping t.schema) simplified
      in
      { constraint_name = c.Constr.name; simplified; simplified_xquery;
        simplified_plan = None })
    t.constraints

let recompile t =
  t.compiled <- List.map (fun (p, _) -> (p, compile_checks t p)) t.compiled

let add_constraint ?(verify = false) t c =
  if List.exists (fun c' -> c'.Constr.name = c.Constr.name) t.constraints then
    fail "duplicate constraint name %s" c.Constr.name;
  if verify && Constr.violated_xquery ?index:(index t) t.doc c then
    fail "the current documents already violate %s" c.Constr.name;
  t.constraints <- t.constraints @ [ c ];
  Hashtbl.reset t.full_plans;
  t.incr <- None;  (* the view set changed; re-materialize on demand *)
  recompile t

let register_pattern t p =
  if List.exists (fun (p', _) -> p'.Pattern.name = p.Pattern.name) t.compiled then
    fail "duplicate pattern name %s" p.Pattern.name;
  t.compiled <- t.compiled @ [ (p, compile_checks t p) ]

let constraints t = t.constraints
let patterns t = List.map fst t.compiled

let optimized_checks t p =
  match
    List.find_opt (fun (p', _) -> p'.Pattern.name = p.Pattern.name) t.compiled
  with
  | Some (_, checks) -> checks
  | None -> fail "pattern %s is not registered" p.Pattern.name

let store t =
  match t.store with
  | Some s ->
    sync_store t;
    s
  | None ->
    let s = Xic_relmap.Shred.shred ?index:(index t) (Schema.mapping t.schema) t.doc in
    install_store t s;
    s

(* Full-check plan of one constraint, served from the cache. *)
let full_plan t (c : Constr.t) =
  Obs.Metrics.incr c_plan_requests;
  match Hashtbl.find_opt t.full_plans c.Constr.name with
  | Some plan ->
    Obs.Metrics.incr c_plan_hits;
    plan
  | None ->
    let plan =
      if Obs.Trace.is_enabled () then
        Obs.Trace.with_span "compile"
          ~attrs:[ ("constraint", c.Constr.name) ]
          (fun () -> Constr.compile c)
      else Constr.compile c
    in
    Hashtbl.replace t.full_plans c.Constr.name plan;
    Obs.Metrics.incr c_plan_misses;
    plan

let check_full t =
  Obs.Trace.with_span "check_full" (fun () ->
  let plans = List.map (fun c -> (c, full_plan t c)) t.constraints in
  let idx = index t in
  let violated (c, plan) =
    Obs.Metrics.incr c_checks_full;
    if
      timed_check c.Constr.name h_check_full (fun () ->
          Constr.violated_compiled ?index:idx t.doc c plan)
    then Some c.Constr.name
    else None
  in
  if t.parallelism <= 1 || t.eval_budget <> None || List.length plans < 2 then
    List.filter_map violated plans
  else begin
    (* Freeze the index into its read-only phase so worker domains never
       race on cache tables, then evaluate the independent denials in
       parallel.  The merge is deterministic: verdicts keep constraint
       registration order, and Pool.map re-raises the earliest failure. *)
    (match idx with Some i -> Index.prepare_shared i | None -> ());
    Fun.protect
      ~finally:(fun () -> match idx with Some i -> Index.unshare i | None -> ())
      (fun () ->
        Pool.map ~jobs:t.parallelism violated plans
        |> List.filter_map (fun v -> v))
  end)

let check_full_datalog t =
  let s = store t in
  List.filter_map
    (fun c -> if Constr.violated_datalog s c then Some c.Constr.name else None)
    t.constraints

(* ------------------------------------------------------------------ *)
(* Pinned snapshots (reader isolation)                                 *)
(* ------------------------------------------------------------------ *)

(* A pin is a frozen generation handle of the materialized store,
   stamped with the generation it captured.  Freezing is an
   O(#relations) pointer capture ([Store.freeze]): the handle shares the
   per-relation insertion logs with the live writer, which only ever
   conses onto its own head, so checks against a pin are unaffected by
   later commits, checkpoints or journal truncation — at no copy cost
   and O(delta) retained memory.  Verdicts over the relational mirror
   are equivalent to the XQuery check (oracle-proven), so a pinned check
   is a real check, not an approximation.

   Handles live in a refcounted retained-generation table: pins of the
   same generation share one handle (amortizing its lazy index builds
   across readers), {!unpin} decrements, and zero-ref entries linger as
   bounded history for {!pin_as_of} time-travel checks until
   [retain_keep] evicts the oldest or a {!checkpoint} drops them all. *)
type pin = {
  pin_generation : int;
  pin_store : Xic_datalog.Store.t;
}

(* Evict zero-ref history beyond the [retain_keep] most recent
   generations (referenced entries are never evicted — a pin record
   holds its handle directly, so eviction can never dangle a reader). *)
let prune_retained ?(keep_history = true) t =
  let keep = if keep_history then t.retain_keep else 0 in
  let zero =
    Hashtbl.fold
      (fun g r acc -> if r.r_refs <= 0 then g :: acc else acc)
      t.retained []
    |> List.sort compare
  in
  let drop = List.length zero - keep in
  if drop > 0 then
    List.iteri (fun i g -> if i < drop then Hashtbl.remove t.retained g) zero

let pin t =
  let g = t.generation in
  match Hashtbl.find_opt t.retained g with
  | Some r when r.r_mut = t.mutations ->
    r.r_refs <- r.r_refs + 1;
    { pin_generation = g; pin_store = r.r_store }
  | _ ->
    let s = store t in  (* flush pending marks so the freeze is exact *)
    let f = Xic_datalog.Store.freeze s in
    Hashtbl.replace t.retained g
      { r_store = f; r_mut = t.mutations; r_refs = 1 };
    prune_retained t;
    { pin_generation = g; pin_store = f }

let unpin t (p : pin) =
  (match Hashtbl.find_opt t.retained p.pin_generation with
   | Some r when r.r_store == p.pin_store && r.r_refs > 0 ->
     r.r_refs <- r.r_refs - 1
   | _ -> ());  (* already evicted (reset, checkpoint): nothing to release *)
  prune_retained t

let pin_as_of t g =
  match Hashtbl.find_opt t.retained g with
  | Some r ->
    r.r_refs <- r.r_refs + 1;
    Some { pin_generation = g; pin_store = r.r_store }
  | None -> None

let retained_generations t =
  Hashtbl.fold (fun g r acc -> (g, r.r_refs) :: acc) t.retained []
  |> List.sort compare

let retained_bytes t =
  match t.store with
  | None -> 0
  | Some live ->
    sync_store t;
    Hashtbl.fold
      (fun _ r acc ->
        acc + Xic_datalog.Store.unshared_bytes ~live r.r_store)
      t.retained 0

let pin_generation p = p.pin_generation
let pin_store p = p.pin_store

let check_pinned t (p : pin) =
  List.filter_map
    (fun (c : Constr.t) ->
      if Constr.violated_datalog p.pin_store c then Some c.Constr.name
      else None)
    t.constraints

let check_as_of t g =
  match pin_as_of t g with
  | None -> None
  | Some p ->
    let v = check_pinned t p in
    unpin t p;
    Some v

(* ------------------------------------------------------------------ *)
(* Incremental (delta-driven) checking                                 *)
(* ------------------------------------------------------------------ *)

let set_incremental t enabled =
  if not enabled then t.incr <- None;
  t.incremental <- enabled

let incremental t = t.incremental

let check_incremental t =
  Obs.Trace.with_span "check_incremental" @@ fun () ->
  let s = store t in  (* flushes the mirror and maintains any live views *)
  let inc =
    match t.incr with
    | Some i -> i
    | None ->
      let i =
        Incr.create
          (List.map (fun (c : Constr.t) -> (c.Constr.name, c.Constr.datalog))
             t.constraints)
      in
      Incr.initialize i s;
      t.incr <- Some i;
      i
  in
  Obs.Metrics.incr c_checks_incremental;
  Incr.violated inc

let incr_view t = Option.map Incr.view t.incr

(* Post-state verdict of the guarded-update and recovery paths: the
   materialized denial views when incremental checking is on (falling
   back to the full check if a view cannot be built or maintained), the
   full XQuery check otherwise. *)
let post_check t =
  if t.incremental then (
    try check_incremental t
    with Xic_datalog.Eval.Unsafe _ | Xic_datalog.Eval.Budget_exceeded ->
      t.incr <- None;
      check_full t)
  else check_full t

type delta_stats = {
  delta_flushes : int;
  delta_facts_added : int;
  delta_facts_removed : int;
  delta_net_added : int;
  delta_net_removed : int;
  incr_entries : int;
  incr_evals : int;
  incr_reverifies : int;
  incr_recomputes : int;
  incr_skipped : int;
  incr_view_rows : int;
}

let delta_stats t =
  let entries, evals, reverifies, recomputes, skipped, rows =
    match t.incr with
    | None -> (0, 0, 0, 0, 0, 0)
    | Some i ->
      let s = Incr.stats i in
      ( Incr.entry_count i, s.Incr.evals, s.Incr.reverifies, s.Incr.recomputes,
        s.Incr.skipped, Xic_datalog.Store.total_tuples (Incr.view i) )
  in
  let net_count l = List.fold_left (fun acc (_, _, n) -> acc + n) 0 l in
  { delta_flushes = t.deltas.flushes;
    delta_facts_added = t.deltas.facts_added;
    delta_facts_removed = t.deltas.facts_removed;
    delta_net_added = net_count (Delta.added t.deltas.net);
    delta_net_removed = net_count (Delta.removed t.deltas.net);
    incr_entries = entries;
    incr_evals = evals;
    incr_reverifies = reverifies;
    incr_recomputes = recomputes;
    incr_skipped = skipped;
    incr_view_rows = rows }

let delta_stats_line t =
  let d = delta_stats t in
  if t.incr = None && d.delta_flushes = 0 then "delta: idle"
  else
    Printf.sprintf
      "delta: %d flushes, +%d/-%d facts; views: %d denials, %d rows, \
       evals=%d reverifies=%d recomputes=%d skipped=%d"
      d.delta_flushes d.delta_facts_added d.delta_facts_removed d.incr_entries
      d.incr_view_rows d.incr_evals d.incr_reverifies d.incr_recomputes
      d.incr_skipped

let match_update t (u : XU.t) =
  match u with
  | [ m ] ->
    List.find_map
      (fun (p, _) ->
        match Pattern.match_modification t.schema t.doc p m with
        | Some v -> Some (p, v)
        | None -> None)
      t.compiled
  | _ -> None

type degradation = { failed_check : string; reason : string }

(* Each check evaluation gets its own budget, so one pathological check
   cannot starve the others. *)
let budgeted t f =
  match t.eval_budget with
  | None -> f ()
  | Some steps -> Xic_xquery.Eval.with_budget ~steps f

let try_check_optimized t p valuation =
  let checks = optimized_checks t p in
  let params = Pattern.xquery_params valuation in
  let rec go violated degs = function
    | [] -> (List.rev violated, List.rev degs)
    | ch :: rest ->
      let plan =
        Obs.Metrics.incr c_plan_requests;
        match ch.simplified_plan with
        | Some plan ->
          Obs.Metrics.incr c_plan_hits;
          plan
        | None ->
          let plan =
            if Obs.Trace.is_enabled () then
              Obs.Trace.with_span "compile"
                ~attrs:[ ("constraint", ch.constraint_name) ]
                (fun () -> Xic_xquery.Eval.compile ch.simplified_xquery)
            else Xic_xquery.Eval.compile ch.simplified_xquery
          in
          ch.simplified_plan <- Some plan;
          Obs.Metrics.incr c_plan_misses;
          plan
      in
      Obs.Metrics.incr c_checks_optimized;
      (match
         timed_check ch.constraint_name h_check_optimized (fun () ->
             budgeted t (fun () ->
                 Xic_xquery.Eval.run_bool t.doc ~params ?index:(index t) plan))
       with
       | true -> go (ch.constraint_name :: violated) degs rest
       | false -> go violated degs rest
       | exception Xic_xquery.Eval.Eval_error m ->
         go violated ({ failed_check = ch.constraint_name; reason = m } :: degs) rest
       | exception Xic_xpath.Eval.Budget_exceeded ->
         go violated
           ({ failed_check = ch.constraint_name; reason = "step budget exhausted" }
            :: degs)
           rest)
  in
  go [] [] checks

let check_optimized t p valuation =
  match try_check_optimized t p valuation with
  | violated, [] -> violated
  | _, d :: _ -> fail "optimized check %s failed: %s" d.failed_check d.reason

let budgeted_datalog t f =
  match t.eval_budget with
  | None -> f ()
  | Some steps -> Xic_datalog.Eval.with_budget ~steps f

let check_optimized_datalog t p valuation =
  let checks = optimized_checks t p in
  let params = Pattern.datalog_params p valuation in
  let s = store t in
  List.filter_map
    (fun ch ->
      if
        budgeted_datalog t (fun () ->
            List.exists (fun d -> Xic_datalog.Eval.violated ~params s d) ch.simplified)
      then Some ch.constraint_name
      else None)
    checks

type witness = {
  witness_constraint : string;
  denial : T.denial;
  bindings : (string * T.const) list;
  nodes : (string * Doc.node_id * string) list;
}

(* Variables standing in id or parent positions of the denial's atoms
   denote document nodes. *)
let node_vars_of (d : T.denial) =
  List.concat_map
    (function
      | T.Rel a | T.Not a ->
        (match a.T.args with
         | id :: _ :: par :: _ ->
           List.concat_map T.term_vars [ id; par ]
         | _ -> [])
      | _ -> [])
    d.T.body
  |> List.sort_uniq compare

let explain t =
  let s = store t in
  List.concat_map
    (fun (c : Constr.t) ->
      List.filter_map
        (fun d ->
          match Xic_datalog.Eval.violation s d with
          | None -> None
          | Some bindings ->
            let node_vars = node_vars_of d in
            let nodes =
              List.filter_map
                (fun (v, const) ->
                  match const with
                  | T.Int id
                    when List.mem v node_vars && Doc.live t.doc id ->
                    Some (v, id, Xic_relmap.Shred.path_to_node t.doc id)
                  | _ -> None)
                bindings
            in
            Some { witness_constraint = c.Constr.name; denial = d; bindings; nodes })
        c.Constr.datalog)
    t.constraints

let witness_to_string w =
  (* internal (underscore-prefixed) variables are noise for humans *)
  let named (v, _) = String.length v > 0 && v.[0] <> '_' in
  let shown = List.filter named w.bindings in
  let nodes = List.filter (fun (v, _, _) -> named (v, ())) w.nodes in
  let nodes = if nodes = [] then w.nodes else nodes in
  Printf.sprintf "%s is violated:\n  %s%s%s" w.witness_constraint
    (T.denial_str w.denial)
    (match shown with
     | [] -> ""
     | bs ->
       "\n  with "
       ^ String.concat ", " (List.map (fun (v, c) -> v ^ " = " ^ T.const_str c) bs))
    (match nodes with
     | [] -> ""
     | ns ->
       "\n  at "
       ^ String.concat ", " (List.map (fun (v, _, p) -> v ^ " -> " ^ p) ns))

type outcome =
  | Applied of [ `Optimized | `Runtime_simplified | `Full_check ]
  | Rejected_early of string
  | Rolled_back of string

(* The relational store is maintained by the event-driven mirror: every
   mutation (insertions, removals, attribute writes, undo, savepoint
   rollback, recovery replay) marks the touched nodes and the next
   [store] demand reconciles them — no re-shred, ever. *)
let apply_unchecked t u =
  t.mutations <- t.mutations + 1;
  Obs.Trace.with_span "apply" (fun () -> XU.apply ?index:(index t) t.doc u)

let rollback t undo =
  t.mutations <- t.mutations + 1;
  Obs.Metrics.incr c_rollbacks;
  Obs.Trace.with_span "rollback" (fun () -> XU.rollback t.doc undo)

(* Derive a one-off pattern from the concrete statement, simplify on the
   spot and pre-check; any failure along the way reverts to the
   execute–check–compensate strategy.  Evaluation failures and exhausted
   budgets are reported as degradations. *)
let runtime_simplified t (m : XU.modification) =
  Obs.Trace.with_span "runtime_simplified" @@ fun () ->
  match Pattern.of_modification t.schema ~name:"<runtime>" m with
  | exception Pattern.Pattern_error _ -> (None, [])
  | p ->
    (match Pattern.match_modification t.schema t.doc p m with
     | None -> (None, [])
     | Some valuation ->
       let params = Pattern.xquery_params valuation in
       let degraded name reason =
         (None, [ { failed_check = name; reason } ])
       in
       let rec check = function
         | [] -> (Some `Consistent, [])
         | (c : Constr.t) :: rest ->
           (match Pattern.simplify t.schema p c with
            | exception Xic_simplify.After.Unsupported _ -> (None, [])
            | simplified ->
              (match
                 Xic_translate.Translate.denials (Schema.mapping t.schema)
                   simplified
               with
               | exception Xic_translate.Translate.Untranslatable _ -> (None, [])
               | q ->
                 (match
                    budgeted t (fun () ->
                        Xic_xquery.Eval.eval_bool t.doc ~params ?index:(index t) q)
                  with
                  | exception Xic_xquery.Eval.Eval_error msg ->
                    degraded c.Constr.name msg
                  | exception Xic_xpath.Eval.Budget_exceeded ->
                    degraded c.Constr.name "step budget exhausted"
                  | true -> (Some (`Violated c.Constr.name), [])
                  | false -> check rest)))
       in
       check t.constraints)

(* ------------------------------------------------------------------ *)
(* Journaled transactions                                              *)
(* ------------------------------------------------------------------ *)

type report = { outcome : outcome; degradations : degradation list }

type txn = {
  txn_repo : t;
  txn_journal : J.t option;
  txn_id : int;
  mutable txn_undos : XU.undo list;  (* most recent statement first *)
  mutable txn_seq : int;             (* statements currently applied *)
  mutable txn_journaled : bool;      (* any record written for this txn *)
  mutable txn_open : bool;
  txn_group_commit : bool;
      (* group commit: intent/truncate records ride on the commit (or
         abort) record's fsync instead of syncing individually — safe
         because a transaction without a durable closing record is
         discarded by recovery whether or not its intents hit disk *)
}

type savepoint = int

let begin_txn ?(group_commit = false) ?journal t =
  {
    txn_repo = t;
    txn_journal = journal;
    txn_id = (match journal with Some j -> J.next_txn j | None -> 0);
    txn_undos = [];
    txn_seq = 0;
    txn_journaled = false;
    txn_open = true;
    txn_group_commit = group_commit;
  }

let txn_id tx = tx.txn_id
let txn_statements tx = tx.txn_seq

let require_open tx =
  if not tx.txn_open then fail "transaction %d is already closed" tx.txn_id

let txn_record tx e =
  match tx.txn_journal with
  | None -> ()
  | Some j ->
    let defer_sync =
      tx.txn_group_commit
      && match e with J.Commit _ | J.Abort _ -> false | _ -> true
    in
    J.append ~defer_sync j e;
    tx.txn_journaled <- true

let txn_savepoint tx =
  require_open tx;
  tx.txn_seq

let txn_rollback_to tx sp =
  require_open tx;
  if sp < 0 || sp > tx.txn_seq then
    fail "savepoint %d out of range (transaction has %d statements)" sp tx.txn_seq;
  if sp < tx.txn_seq then begin
    while tx.txn_seq > sp do
      match tx.txn_undos with
      | undo :: rest ->
        rollback tx.txn_repo undo;
        tx.txn_undos <- rest;
        tx.txn_seq <- tx.txn_seq - 1
      | [] -> assert false
    done;
    txn_record tx (J.Truncate { txn = tx.txn_id; keep = sp })
  end

let txn_apply_report ?(fallback = `Full_check) tx (u : XU.t) =
  require_open tx;
  Obs.Trace.with_span "txn_apply" @@ fun () ->
  let t = tx.txn_repo in
  (* WAL protocol: the intent record hits the disk before the in-memory
     documents are touched, the commit record only after every statement
     of the transaction went through. *)
  let exec label =
    txn_record tx
      (J.Intent
         { txn = tx.txn_id; seq = tx.txn_seq; strategy = label;
           payload = XU.to_string u });
    FP.hit "before_apply";
    let undo = apply_unchecked t u in
    tx.txn_undos <- undo :: tx.txn_undos;
    tx.txn_seq <- tx.txn_seq + 1;
    FP.hit "after_apply";
    undo
  in
  let pre_checked strategy label degs =
    let _undo = exec label in
    { outcome = Applied strategy; degradations = degs }
  in
  let full_fallback degs =
    List.iter
      (fun d ->
        Log.warn (fun m ->
            m "optimized check %s degraded (%s); falling back to the full check"
              d.failed_check d.reason))
      degs;
    let before = tx.txn_seq in
    let undo = exec "full_check" in
    match post_check t with
    | [] -> { outcome = Applied `Full_check; degradations = degs }
    | violated :: _ ->
      rollback t undo;
      tx.txn_undos <- List.tl tx.txn_undos;
      tx.txn_seq <- before;
      txn_record tx (J.Truncate { txn = tx.txn_id; keep = before });
      { outcome = Rolled_back violated; degradations = degs }
  in
  match match_update t u with
  | Some (p, valuation) ->
    (match try_check_optimized t p valuation with
     | v :: _, degs -> { outcome = Rejected_early v; degradations = degs }
     | [], [] -> pre_checked `Optimized "optimized" []
     | [], degs -> full_fallback degs)
  | None ->
    (match (fallback, u) with
     | `Runtime_simplification, [ m ] ->
       (match runtime_simplified t m with
        | Some `Consistent, degs ->
          pre_checked `Runtime_simplified "runtime_simplified" degs
        | Some (`Violated c), degs -> { outcome = Rejected_early c; degradations = degs }
        | None, degs -> full_fallback degs)
     | _ -> full_fallback [])

let txn_apply ?fallback tx u = (txn_apply_report ?fallback tx u).outcome

let commit_txn tx =
  require_open tx;
  FP.hit "before_commit";
  if tx.txn_journaled then txn_record tx (J.Commit { txn = tx.txn_id });
  if tx.txn_seq > 0 then
    tx.txn_repo.generation <- tx.txn_repo.generation + 1;
  tx.txn_undos <- [];
  tx.txn_open <- false

let rollback_txn tx =
  require_open tx;
  (* The abort record is forced to disk *before* the in-memory undo runs:
     once the decision to abort is durable, a crash (or a SIGTERM-driven
     shutdown) anywhere in the compensation leaves a journal whose tail
     record closes the transaction — recovery discards it either way, but
     the journal never ends in a dangling intent when the process had a
     chance to say otherwise. *)
  if tx.txn_journaled then txn_record tx (J.Abort { txn = tx.txn_id });
  tx.txn_open <- false;
  List.iter (rollback tx.txn_repo) tx.txn_undos;
  tx.txn_undos <- [];
  tx.txn_seq <- 0

let guarded_update_report ?(fallback = `Full_check) ?journal t (u : XU.t) =
  let tx = begin_txn ?journal t in
  let r = txn_apply_report ~fallback tx u in
  (match r.outcome with
   | Applied _ -> commit_txn tx
   | Rejected_early _ | Rolled_back _ -> rollback_txn tx);
  r

let guarded_update ?(fallback = `Full_check) ?journal t (u : XU.t) =
  (guarded_update_report ~fallback ?journal t u).outcome

(* Batched guarded updates: the statements go through the same
   per-statement strategy dispatch as serial guards (identical verdicts
   by construction — oracle route 9 asserts it), but share one journaled
   transaction, so the batch pays a single commit fsync; consecutive
   pre-checked (optimized / runtime-simplified) statements leave their
   mutation marks in the mirror, and the final reconciliation composes
   them into one flush — one incremental view-maintenance pass for that
   run instead of one per statement. *)
let guarded_batch ?(fallback = `Full_check) ?journal t (us : XU.t list) =
  match us with
  | [] -> []
  | us ->
    Obs.Trace.with_span "guarded_batch" @@ fun () ->
    let tx = begin_txn ~group_commit:true ?journal t in
    let reports = List.map (fun u -> txn_apply_report ~fallback tx u) us in
    if tx.txn_seq > 0 || tx.txn_journaled then commit_txn tx
    else rollback_txn tx;
    (* one mirror flush + view-maintenance pass for the whole batch *)
    (match t.store with Some _ -> ignore (store t) | None -> ());
    reports

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

type recovery_report = {
  replayed_txns : int;
  replayed_statements : int;
  discarded_txns : int;
  torn_tail : bool;
  replay_errors : (int * string) list;
  post_violations : string list;
}

let rec drop_entries k l =
  if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop_entries (k - 1) tl

(* How many leading journal entries a snapshot already covers.  The
   generation decides: a journal *newer* than the snapshot was reset
   after the checkpoint, so everything in it is new work; the *same*
   generation replays only past the watermark; an *older* generation is
   a stale pre-checkpoint leftover (the snapshot superseded it whole). *)
let recover_skip (meta : Snap.meta) (rr : J.read_result) =
  if rr.J.generation > meta.Snap.journal_generation then 0
  else if rr.J.generation = meta.Snap.journal_generation then
    min meta.Snap.journal_watermark (List.length rr.J.entries)
  else List.length rr.J.entries

let recover ?(skip = 0) (rr : J.read_result) t =
  Obs.Trace.with_span "recover" @@ fun () ->
  let entries = drop_entries skip rr.J.entries in
  let committed = J.committed_payloads entries in
  let all_txns =
    List.sort_uniq compare
      (List.map
         (function
           | J.Intent { txn; _ } | J.Commit { txn } | J.Abort { txn }
           | J.Truncate { txn; _ } -> txn)
         entries)
  in
  let stmts = ref 0 in
  let errors = ref [] in
  List.iter
    (fun (txn, payloads) ->
      List.iter
        (fun payload ->
          match XU.parse_string payload with
          | exception XU.Xupdate_error m -> errors := (txn, m) :: !errors
          | u ->
            (match apply_unchecked t u with
             | _undo -> incr stmts
             | exception XU.Xupdate_error m -> errors := (txn, m) :: !errors))
        payloads)
    committed;
  t.generation <- t.generation + List.length committed;
  {
    replayed_txns = List.length committed;
    replayed_statements = !stmts;
    discarded_txns = List.length all_txns - List.length committed;
    torn_tail = rr.J.torn;
    replay_errors = List.rev !errors;
    post_violations = post_check t;
  }

(* ------------------------------------------------------------------ *)
(* Snapshot checkpointing                                              *)
(* ------------------------------------------------------------------ *)

type checkpoint_report = {
  snapshot_path : string;
  snapshot_bytes : int;
  snapshot_nodes : int;
  snapshot_facts : int;
  wal_entries_folded : int;
  wal_reset : bool;
}

(* Checkpoint protocol: materialize the store, write the snapshot
   atomically with the journal's (generation, entry-count) stamped into
   it, and only then reset the journal.  Any crash ordering recovers
   correctly: before the rename the old snapshot + full journal replay
   still apply; after the rename but before the reset, the recorded
   watermark makes replay skip exactly the entries the snapshot already
   contains.  Must not run with an open journaled transaction — the
   snapshot would capture uncommitted mutations. *)
let checkpoint ?journal t path =
  Obs.Trace.with_span "checkpoint" @@ fun () ->
  let s = store t in
  let jmeta =
    match journal with
    | Some j -> (J.generation j, J.entry_count j)
    | None -> (0, 0)
  in
  let bytes =
    try Snap.save ~journal:jmeta path t.doc s
    with Xic_journal.Atomic_file.Atomic_file_error m ->
      fail "checkpoint %s: %s" path m
  in
  FP.hit "checkpoint_truncate";
  (match journal with Some j -> J.reset j | None -> ());
  (* the snapshot now owns this state durably: unreferenced history is
     reclaimable (in-flight pins keep their handles regardless) *)
  prune_retained ~keep_history:false t;
  {
    snapshot_path = path;
    snapshot_bytes = bytes;
    snapshot_nodes = Doc.node_count t.doc;
    snapshot_facts = Xic_datalog.Store.total_tuples s;
    wal_entries_folded = snd jmeta;
    wal_reset = Option.is_some journal;
  }

(* Load a snapshot into a freshly created repository: the arena is
   restored in place (node ids preserved) and the deserialized store
   installed as the materialized mirror, so neither a parse nor a
   re-shred happens.  Constraints and patterns are registered afterwards
   as usual. *)
let load_snapshot t path =
  if Doc.has_root t.doc || Doc.id_bound t.doc > 0 then
    fail "load_snapshot: the repository already contains documents";
  let meta, s = Snap.load path t.doc in
  install_store t s;
  meta
