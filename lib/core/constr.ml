type t = {
  name : string;
  source : string;
  xpathlog : Xic_xpathlog.Ast.denial option;  (* None when written directly in Datalog *)
  datalog : Xic_datalog.Term.denial list;
  xquery : Xic_xquery.Ast.expr;
}

exception Constraint_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Constraint_error s)) fmt

let make schema ~name source =
  let mapping = Schema.mapping schema in
  let xpathlog =
    try Xic_xpathlog.Parser.parse_denial ~label:name source
    with Xic_xpathlog.Parser.Parse_error m -> fail "%s: parse error: %s" name m
  in
  let datalog =
    try Xic_xpathlog.Compile.compile_denial mapping xpathlog
    with Xic_xpathlog.Compile.Compile_error m -> fail "%s: compile error: %s" name m
  in
  let xquery =
    try Xic_translate.Translate.denials mapping datalog
    with Xic_translate.Translate.Untranslatable m ->
      fail "%s: translation error: %s" name m
  in
  { name; source; xpathlog = Some xpathlog; datalog; xquery }

let of_datalog schema ~name datalog =
  let mapping = Schema.mapping schema in
  let xquery =
    try Xic_translate.Translate.denials mapping datalog
    with Xic_translate.Translate.Untranslatable m ->
      fail "%s: translation error: %s" name m
  in
  {
    name;
    source = Xic_datalog.Term.denials_str datalog;
    xpathlog = None;
    datalog;
    xquery;
  }

let violated_xquery ?index doc t =
  try Xic_xquery.Eval.eval_bool doc ?index t.xquery
  with Xic_xquery.Eval.Eval_error m -> fail "%s: evaluation error: %s" t.name m

let compile t = Xic_xquery.Eval.compile t.xquery

let violated_compiled ?index doc t plan =
  try Xic_xquery.Eval.run_bool doc ?index plan
  with Xic_xquery.Eval.Eval_error m -> fail "%s: evaluation error: %s" t.name m

let violated_datalog store t =
  List.exists (fun d -> Xic_datalog.Eval.violated store d) t.datalog
