(* Word-at-a-time FNV-1a-style checksum over a string slice.

   Snapshot sections need corruption detection (torn writes, bit rot),
   not cryptographic strength, and section verification sits directly on
   the cold-start path — MD5 at ~600 MB/s was the single largest fixed
   cost of loading a checkpoint.  This folds eight bytes per step in
   native 63-bit int arithmetic (no Int64 chain, so no per-operation
   boxing) and runs several times faster.

   Detection argument: the per-step multipliers are odd, so each step is
   a bijection modulo 2^63 — once two inputs differ in a folded word,
   that lane's running sum stays distinct through every subsequent step,
   the final avalanche (also a bijection) only permutes it, and xoring
   in the other, unchanged lane cannot cancel the difference.  Any
   single-byte (indeed any single-word) corruption is therefore always
   detected; independent multi-word corruptions collide with
   probability ~2^-63.

   Two lanes rather than one: the folding multiply is serial with
   itself, so a single lane runs at multiply latency (~2 GB/s); two
   independent chains overlap in the pipeline and roughly double
   throughput, which matters because every section is checksummed on
   the cold-start path. *)

let prime = 0x100000001B3 (* FNV-1a 64-bit prime, fits in 63-bit int *)
let prime2 = 0x1E3779B97F4A7C15 (* golden-ratio odd constant, 63-bit *)

(* splitmix-style avalanche: spreads low-entropy differences across the
   whole word before the value is compared byte-for-byte *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * prime in
  x lxor (x lsr 31)

let sum s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.sum";
  (* seed with the length so "" at different lengths cannot collide with
     a shifted slice *)
  let h1 = ref (-3750763034362895579 lxor len) in
  let h2 = ref (0x27BB2EE687B0B0FD + len) in
  let words = len lsr 3 in
  let pairs = words lsr 1 in
  for i = 0 to pairs - 1 do
    let base = off + (i lsl 4) in
    let w1 = Int64.to_int (String.get_int64_le s base) in
    let w2 = Int64.to_int (String.get_int64_le s (base + 8)) in
    h1 := (!h1 lxor w1) * prime;
    h2 := (!h2 lxor w2) * prime2
  done;
  if words land 1 <> 0 then begin
    let w = Int64.to_int (String.get_int64_le s (off + ((words - 1) lsl 3))) in
    h1 := (!h1 lxor w) * prime
  end;
  for i = off + (words lsl 3) to off + len - 1 do
    h1 := (!h1 lxor Char.code (String.unsafe_get s i)) * prime
  done;
  mix !h1 lxor mix !h2

let width = 8

let to_bytes v =
  let b = Bytes.create width in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.unsafe_to_string b

let check s off v =
  if off < 0 || off + width > String.length s then invalid_arg "Checksum.check";
  Int64.to_int (String.get_int64_le s off) = v
