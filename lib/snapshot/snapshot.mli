(** Crash-consistent binary snapshots of the repository state.

    A snapshot persists the three stores that cold-start would otherwise
    rebuild from XML — the struct-of-arrays document arena, the global
    symbol table, and the Datalog fact store — in one versioned,
    checksummed container, so a resident checker (ROADMAP item 1) or a
    recovery is a single [load] away instead of a parse + shred.

    {2 On-disk format}

    {v
    "XICSNAP1\n"  magic (9 bytes)
    version       int (8 bytes LE)
    section*      [tag (1 byte) | length (8 bytes LE) | payload | MD5(payload)]
    0xff          end marker (proves the file was written out completely)
    v}

    Sections (all integers 8-byte little-endian, strings
    length-prefixed; see {!Xic_symbol.Wire}): {e meta} (journal
    generation + watermark and cardinalities), {e symbols} (the interned
    names table, index = saved symbol id), {e document} (the arena
    columns verbatim, node ids preserved), {e store} (relations by name,
    tuples in insertion order).

    Writing is atomic — temp file, fsync, rename, parent-directory
    fsync ({!Xic_journal.Atomic_file}) — so a crash during [save] leaves
    the previous snapshot intact.  Node ids survive the round trip;
    symbol ids are remapped through the saved names table because
    interning order is process-local.

    {2 Checkpoint protocol}

    [Repository.checkpoint] records the journal's (generation,
    entry-count) pair in the meta section {e before} resetting the
    journal.  Recovery then compares generations: a journal {e newer}
    than the snapshot (reset happened) replays in full; the {e same}
    generation replays only entries past the watermark; an {e older}
    generation is a stale leftover and is skipped entirely.  A crash
    between snapshot rename and journal reset is therefore harmless —
    replay skips exactly the prefix the snapshot already contains. *)

(** Why a snapshot failed to load — the recovery error taxonomy. *)
type error =
  | Missing  (** the file does not exist *)
  | Not_a_snapshot  (** bad magic *)
  | Unsupported_version of int
  | Truncated of string
      (** bytes missing: short file, cut section, absent end marker *)
  | Checksum_mismatch of string  (** named section failed its MD5 *)
  | Malformed of string  (** sections verify but the content is invalid *)

exception Snapshot_error of string * error
(** The failing path and the classified error. *)

val error_message : error -> string

type meta = {
  journal_generation : int;
      (** generation of the WAL this snapshot covers (0 = no journal) *)
  journal_watermark : int;
      (** journal entries already folded into the snapshot: recovery on
          the {e same} generation skips this many *)
  nodes : int;  (** live document nodes *)
  facts : int;  (** store tuples *)
  symbols : int;  (** interned names persisted *)
}

val save :
  ?journal:int * int -> string -> Xic_xml.Doc.t -> Xic_datalog.Store.t -> int
(** [save ~journal:(gen, watermark) path doc store] writes the snapshot
    atomically and returns its size in bytes.  Failpoint sites:
    [snapshot_write] (mediated: torn-write / EIO injection),
    [snapshot_fsync], [snapshot_rename], [snapshot_dirsync].
    @raise Xic_journal.Atomic_file.Atomic_file_error on I/O failure. *)

val load : string -> Xic_xml.Doc.t -> meta * Xic_datalog.Store.t
(** Load a snapshot into [doc] (which must be a freshly created, empty
    document) and return the rebuilt store with the checkpoint metadata.
    Reads honour the [snapshot_read] short-read failpoint.
    @raise Snapshot_error with the classified {!error} on any failure;
    the document is only modified after every section checksum
    verified. *)

val read_meta : string -> meta
(** Load and verify only the metadata (no document or store rebuild).
    @raise Snapshot_error like {!load}. *)
