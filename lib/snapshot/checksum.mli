(** Fast non-cryptographic checksum for snapshot sections.

    Detects torn writes and bit rot at several GB/s — see the
    implementation for the detection argument.  Not a substitute for a
    cryptographic digest: an adversary can forge collisions trivially,
    but the threat model of a crash-consistent checkpoint is hardware
    and kernel misbehavior, not tampering. *)

val sum : string -> int -> int -> int
(** [sum s off len] checksums the slice [s.[off .. off+len-1]].
    @raise Invalid_argument on an out-of-range slice. *)

val width : int
(** Stored size in bytes (8: a little-endian 63-bit value). *)

val to_bytes : int -> string
(** Little-endian encoding, [width] bytes. *)

val check : string -> int -> int -> bool
(** [check s off v] is true iff the [width] bytes at [off] encode [v].
    @raise Invalid_argument when fewer than [width] bytes remain. *)
