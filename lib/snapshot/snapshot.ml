module Wire = Xic_symbol.Wire
module Symbol = Xic_symbol.Symbol
module Doc = Xic_xml.Doc
module Store = Xic_datalog.Store
module FP = Xic_journal.Failpoint
module AF = Xic_journal.Atomic_file
module Obs = Xic_obs.Obs

let magic = "XICSNAP1\n"
let version = 1
let digest_len = Checksum.width (* per-section checksum *)

(* Section tags, in file order. *)
let tag_meta = 1
let tag_symbols = 2
let tag_doc = 3
let tag_store = 4
let tag_end = 0xff (* tag byte only: its presence proves the file is whole *)

let () =
  List.iter FP.declare
    [ "snapshot_write"; "snapshot_fsync"; "snapshot_rename"; "snapshot_dirsync";
      "snapshot_read" ]

type error =
  | Missing
  | Not_a_snapshot
  | Unsupported_version of int
  | Truncated of string
  | Checksum_mismatch of string
  | Malformed of string

exception Snapshot_error of string * error

let error_message = function
  | Missing -> "no such file"
  | Not_a_snapshot -> "not a snapshot file (bad magic)"
  | Unsupported_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Truncated what -> Printf.sprintf "truncated (%s)" what
  | Checksum_mismatch section ->
    Printf.sprintf "checksum mismatch in the %s section" section
  | Malformed what -> Printf.sprintf "malformed (%s)" what

let err path e = raise (Snapshot_error (path, e))

type meta = {
  journal_generation : int;
  journal_watermark : int;
  nodes : int;
  facts : int;
  symbols : int;
}

let c_saves = Obs.Metrics.counter "snapshot_saves"
let c_loads = Obs.Metrics.counter "snapshot_loads"
let c_bytes_written = Obs.Metrics.counter "snapshot_bytes_written"
let c_bytes_read = Obs.Metrics.counter "snapshot_bytes_read"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let add_section buf tag payload =
  Wire.add_u8 buf tag;
  Wire.add_int buf (Buffer.length payload);
  let body = Buffer.contents payload in
  Buffer.add_string buf body;
  Buffer.add_string buf (Checksum.to_bytes (Checksum.sum body 0 (String.length body)))

let encode ~journal doc store =
  let jgen, jmark = journal in
  let names = Symbol.all_names () in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  Wire.add_int buf version;
  let section tag fill =
    let payload = Buffer.create 4096 in
    fill payload;
    add_section buf tag payload
  in
  section tag_meta (fun b ->
      Wire.add_int b jgen;
      Wire.add_int b jmark;
      Wire.add_int b (Doc.node_count doc);
      Wire.add_int b (Store.total_tuples store);
      Wire.add_int b (Array.length names));
  section tag_symbols (fun b ->
      Wire.add_int b (Array.length names);
      Array.iter (Wire.add_string b) names);
  section tag_doc (fun b -> Doc.serialize doc b);
  section tag_store (fun b -> Store.serialize store b);
  Wire.add_u8 buf tag_end;
  Buffer.contents buf

let save ?(journal = (0, 0)) path doc store =
  Obs.Trace.with_span "snapshot_save" @@ fun () ->
  let image = encode ~journal doc store in
  AF.replace ~fp:"snapshot" path image;
  Obs.Metrics.incr c_saves;
  Obs.Metrics.add c_bytes_written (String.length image);
  String.length image

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(* Grow-anew scratch for whole-file reads.  A checkpoint is MB-sized,
   and allocating a fresh buffer per load both faults-in the pages and
   feeds the major GC; one reused buffer does neither.  The flag makes
   concurrent loads (two repositories in two domains) fall back to a
   private buffer instead of sharing. *)
let scratch_busy = Atomic.make false
let scratch = ref Bytes.empty

(* Read the whole file and hand [f] a string over its bytes, mediated by
   the [snapshot_read] failpoint (an armed short read delivers a prefix,
   surfacing as a [Truncated] error).  The string may alias the shared
   scratch buffer, which stays reserved until [f] returns — so [f] (and
   everything it calls) must copy out what it keeps, and the string must
   not escape [f].  Every section decoder obeys this: meta, symbols,
   document and store all build their own structures. *)
let with_image path f =
  if not (Sys.file_exists path) then err path Missing;
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      err path (Malformed (Unix.error_message e))
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let size = (Unix.fstat fd).Unix.st_size in
  let deliver = FP.read_fault "snapshot_read" ~len:size in
  let owned = Atomic.compare_and_set scratch_busy false true in
  Fun.protect ~finally:(fun () -> if owned then Atomic.set scratch_busy false)
  @@ fun () ->
  let b =
    if not owned then Bytes.create deliver
    else begin
      (* exact size, not grow-only: a stale tail would defeat truncation
         detection *)
      if Bytes.length !scratch <> deliver then scratch := Bytes.create deliver;
      !scratch
    end
  in
  let rec fill off =
    if off < deliver then
      match AF.with_retries (fun () -> Unix.read fd b off (deliver - off)) with
      | 0 -> off
      | n -> fill (off + n)
    else off
  in
  let got = fill 0 in
  Obs.Metrics.add c_bytes_read got;
  f
    (if got = Bytes.length b then Bytes.unsafe_to_string b
     else Bytes.sub_string b 0 got)

let section_name = function
  | 1 -> "meta"
  | 2 -> "symbols"
  | 3 -> "document"
  | 4 -> "store"
  | t -> Printf.sprintf "unknown (tag %d)" t

(* A section located inside the file image — bodies are never copied
   out: verification uses [Digest.substring] and decoding runs a cursor
   positioned at [off], so a 2 MB container costs one read, not three
   copies.  (A decoder can therefore only be confined to its section by
   its own length fields; that is fine because every section's checksum
   is verified before its decoder runs, so the lengths are the ones the
   writer produced.) *)
type section = { off : int; len : int; digest_off : int }

(* Split the container into its sections.  Structure (lengths, end
   marker) is checked here; checksum verification is deferred to
   [check_digest] so the loader can overlap the two big sections' MD5
   with their decoding. *)
let split_sections path s =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    err path (if String.length s < mlen then Truncated "header" else Not_a_snapshot);
  let c = Wire.cursor ~pos:mlen s in
  let v = try Wire.get_int c with Wire.Error _ -> err path (Truncated "version") in
  if v <> version then err path (Unsupported_version v);
  let sections = ref [] in
  let rec scan () =
    let tag =
      try Wire.get_u8 c
      with Wire.Error _ -> err path (Truncated "missing end marker")
    in
    if tag = tag_end then ()
    else begin
      let len =
        try Wire.get_int c
        with Wire.Error _ -> err path (Truncated (section_name tag ^ " header"))
      in
      if len < 0 || len + digest_len > Wire.remaining c then
        err path (Truncated (section_name tag ^ " section"));
      let off = c.Wire.pos in
      c.Wire.pos <- c.Wire.pos + len;
      let digest_off = c.Wire.pos in
      c.Wire.pos <- c.Wire.pos + digest_len;
      sections := (tag, { off; len; digest_off }) :: !sections;
      scan ()
    end
  in
  scan ();
  let find tag =
    match List.assoc_opt tag !sections with
    | Some sec -> sec
    | None -> err path (Malformed ("missing " ^ section_name tag ^ " section"))
  in
  (find tag_meta, find tag_symbols, find tag_doc, find tag_store)

(* Verify a section's checksum in place and return a cursor over its
   body. *)
let check_digest path tag s sec =
  if not (Checksum.check s sec.digest_off (Checksum.sum s sec.off sec.len)) then
    err path (Checksum_mismatch (section_name tag));
  Wire.cursor ~pos:sec.off s

let decode_meta path c =
  try
    let journal_generation = Wire.get_int c in
    let journal_watermark = Wire.get_int c in
    let nodes = Wire.get_int c in
    let facts = Wire.get_int c in
    let symbols = Wire.get_int c in
    { journal_generation; journal_watermark; nodes; facts; symbols }
  with Wire.Error m -> err path (Malformed m)

let load path doc =
  Obs.Trace.with_span "snapshot_load" @@ fun () ->
  (* A load is one bulk allocation burst (arena columns, text pool,
     store tuples) whose liveness is known — nearly everything allocated
     survives.  Running the incremental major GC at its steady-state
     pace against that burst just taxes the load; relax it for the
     duration and restore the caller's setting after. *)
  let gc = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc) @@ fun () ->
  Gc.set { gc with Gc.space_overhead = 800 };
  with_image path @@ fun s ->
  let meta_s, sym_s, doc_s, store_s = split_sections path s in
  let meta = decode_meta path (check_digest path tag_meta s meta_s) in
  (* The store section is independent of the document, so its checksum
     and decode can run in a second domain, overlapped with the document
     side.  [Store.deserialize] interns relation names, which [Symbol]
     supports from any domain.  On a single-core host the spawn is pure
     overhead (two domains time-slicing one core, plus GC handshakes),
     so the task degrades to an eager inline computation there. *)
  let decode_store () =
    let c = check_digest path tag_store s store_s in
    try Store.deserialize c with Wire.Error m -> err path (Malformed m)
  in
  let store_task =
    if Domain.recommended_domain_count () > 1 then
      Either.Left (Domain.spawn decode_store)
    else Either.Right (try Ok (decode_store ()) with e -> Error e)
  in
  (* The document restores into a scratch arena, transplanted into the
     caller's [doc] only after BOTH sides have decoded — a late failure
     (e.g. a corrupt store section) must not leave [doc] half-restored. *)
  let doc_side =
    try
      let sym_c = check_digest path tag_symbols s sym_s in
      (* Re-intern the saved names table: [remap.(old_id)] is the loading
         process's symbol for the same name. *)
      let remap =
        try
          let n = Wire.get_int sym_c in
          if n < 0 || n > Wire.remaining sym_c then
            raise (Wire.Error "bad symbol count");
          Array.init n (fun _ -> Symbol.intern (Wire.get_string sym_c))
        with Wire.Error m -> err path (Malformed m)
      in
      let doc_c = check_digest path tag_doc s doc_s in
      let scratch = Doc.create () in
      (try Doc.restore scratch ~remap doc_c
       with
       | Wire.Error m -> err path (Malformed m)
       | Invalid_argument m -> err path (Malformed m));
      Ok scratch
    with e -> Error e
  in
  (* Always join, so a document-side error never abandons the domain. *)
  let store =
    match store_task with
    | Either.Left d -> Domain.join d
    | Either.Right (Ok s) -> s
    | Either.Right (Error e) -> raise e
  in
  let scratch =
    match doc_side with Ok scratch -> scratch | Error e -> raise e
  in
  Doc.transplant ~into:doc scratch;
  Obs.Metrics.incr c_loads;
  (meta, store)

(* [read_meta] verifies every section (not just the one it decodes): it
   gates snapshot reuse on the resume path, so "meta reads fine but the
   store is corrupt" must surface here, not at the later full load. *)
let read_meta path =
  with_image path @@ fun s ->
  let meta_s, sym_s, doc_s, store_s = split_sections path s in
  ignore (check_digest path tag_symbols s sym_s);
  ignore (check_digest path tag_doc s doc_s);
  ignore (check_digest path tag_store s store_s);
  decode_meta path (check_digest path tag_meta s meta_s)
