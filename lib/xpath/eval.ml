open Xic_xml

type value =
  | Nodes of Doc.node_id list
  | Strs of string list
  | Bool of bool
  | Num of float
  | Str of string

type env = (string * value) list

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Step budget                                                         *)
(* ------------------------------------------------------------------ *)

exception Budget_exceeded

(* The remaining-steps counter, shared with the XQuery evaluator (which
   installs it through [with_budget] and ticks it for its own constructs).
   No counter installed = unlimited evaluation. *)
let budget : int ref option ref = ref None

let tick n =
  match !budget with
  | None -> ()
  | Some r ->
    r := !r - n;
    if !r <= 0 then raise Budget_exceeded

let with_budget ~steps f =
  let saved = !budget in
  budget := Some (ref steps);
  Fun.protect ~finally:(fun () -> budget := saved) f

(* ------------------------------------------------------------------ *)
(* Coercions                                                           *)
(* ------------------------------------------------------------------ *)

let boolean = function
  | Nodes ns -> ns <> []
  | Strs ss -> ss <> []
  | Bool b -> b
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s <> ""

let num_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let string_value doc = function
  | Nodes [] -> ""
  | Nodes (n :: _) -> Doc.text_content doc n
  | Strs [] -> ""
  | Strs (s :: _) -> s
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Str s -> s

let number = function
  | Bool b -> if b then 1.0 else 0.0
  | Num f -> f
  | Str s -> num_of_string s
  | (Nodes _ | Strs _) as v ->
    (* number() of a node-set is the number of its string-value; callers
       pass the doc through [number_v] below when nodes are possible. *)
    (match v with
     | Nodes _ -> Float.nan
     | Strs (s :: _) -> num_of_string s
     | _ -> Float.nan)

let number_v doc v =
  match v with
  | Nodes _ | Strs _ -> num_of_string (string_value doc v)
  | _ -> number v

let item_strings doc = function
  | Nodes ns -> List.map (Doc.text_content doc) ns
  | Strs ss -> ss
  | (Bool _ | Num _ | Str _) as v -> [ string_value doc v ]

(* The paper's [Cnt_D] aggregate counts distinct Datalog term instances:
   an element selector binds its variable to a node identity, a text
   selector to the text value.  Mirror that here — element nodes are
   distinct by identity, every other item by its string value. *)
let distinct_count doc = function
  | Nodes ns ->
    let key n =
      if Doc.is_element doc n then `Id n else `Val (Doc.text_content doc n)
    in
    List.length (List.sort_uniq compare (List.map key ns))
  | v -> List.length (List.sort_uniq compare (item_strings doc v))

let is_seq = function Nodes _ | Strs _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let cmp_scalar op a b =
  let open Ast in
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | _ -> invalid_arg "cmp_scalar"

(* Compare two atomic string values under XPath 1.0 rules, with the
   documented lexicographic fallback for non-numeric ordering. *)
let cmp_strings op (a : string) (b : string) =
  let open Ast in
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt | Le | Gt | Ge ->
    let na = num_of_string a and nb = num_of_string b in
    if Float.is_nan na || Float.is_nan nb then cmp_scalar op a b
    else cmp_scalar op na nb
  | _ -> invalid_arg "cmp_strings"

let compare_values doc op l r =
  let open Ast in
  let is_bool = function Bool _ -> true | _ -> false in
  if (op = Eq || op = Neq) && (is_bool l || is_bool r) then
    cmp_scalar op (boolean l) (boolean r)
  else if is_seq l || is_seq r then begin
    match (l, r) with
    | Num f, other ->
      List.exists (fun s -> cmp_scalar op f (num_of_string s)) (item_strings doc other)
    | other, Num f ->
      List.exists (fun s -> cmp_scalar op (num_of_string s) f) (item_strings doc other)
    | _ ->
      let ls = item_strings doc l and rs = item_strings doc r in
      List.exists (fun a -> List.exists (fun b -> cmp_strings op a b) rs) ls
  end
  else begin
    match (l, r) with
    | Num a, b -> cmp_scalar op a (number_v doc b)
    | a, Num b -> cmp_scalar op (number_v doc a) b
    | _ -> cmp_strings op (string_value doc l) (string_value doc r)
  end

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let axis_nodes doc axis id =
  let open Ast in
  match axis with
  | Child -> Doc.children doc id
  | Descendant -> Doc.descendants doc id
  | Descendant_or_self -> Doc.descendant_or_self doc id
  | Parent ->
    let p = Doc.parent doc id in
    if p = Doc.no_node then [] else [ p ]
  | Ancestor -> Doc.ancestors doc id
  | Ancestor_or_self -> id :: Doc.ancestors doc id
  | Self -> [ id ]
  | Following_sibling -> Doc.following_siblings doc id
  | Preceding_sibling -> Doc.preceding_siblings doc id
  | Attribute -> []

(* Sorting discipline.  A node-set is [clean] when it is distinct, in
   document order, and free of ancestor/descendant pairs.  Forward axes
   from a clean set emit document order by construction; from an unclean
   set even the child axis can interleave (child::* of an ancestor
   contains another context node itself), so the union must be re-sorted.
   [needs_sort] and [result_clean] encode, per axis, whether the step's
   union requires sorting given the input's state and whether its result
   is clean again. *)
let needs_sort axis ~clean ~n_ctx =
  match axis with
  | Ast.Self | Ast.Attribute -> false
  | Ast.Child -> not clean
  | Ast.Descendant | Ast.Descendant_or_self -> not clean
  | Ast.Following_sibling | Ast.Preceding_sibling -> (not clean) || n_ctx > 1
  | Ast.Parent -> (not clean) || n_ctx > 1
  | Ast.Ancestor | Ast.Ancestor_or_self -> true

let result_clean axis ~clean ~n_ctx =
  match axis with
  | Ast.Self | Ast.Attribute -> clean
  | Ast.Child -> clean  (* children of non-overlapping parents never nest *)
  | Ast.Descendant | Ast.Descendant_or_self -> false
  | Ast.Following_sibling | Ast.Preceding_sibling -> clean && n_ctx = 1
  | Ast.Parent -> clean && n_ctx = 1
  | Ast.Ancestor | Ast.Ancestor_or_self -> false

let test_ok doc test id =
  let open Ast in
  match test with
  | Node_test -> true
  | Text_test -> Doc.is_text doc id
  | Wildcard -> Doc.is_element doc id
  | Name_test n -> Doc.is_element doc id && Doc.name doc id = n

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type ctxt = {
  doc : Doc.t;
  env : env;
  node : Doc.node_id;
  pos : int;   (* position() *)
  size : int;  (* last() *)
  idx : Index.t option;
}

(* ------------------------------------------------------------------ *)
(* Index planning helpers                                              *)
(* ------------------------------------------------------------------ *)

(* Whether a predicate could observe the context position: positional
   predicates must be applied per parent group, so the flat candidate
   lists coming out of an index are only usable for predicates that
   neither mention position()/last() nor can evaluate to a number (a
   numeric predicate value is itself a position test). *)
let rec mentions_position (e : Ast.expr) =
  match e with
  | Ast.Number _ | Ast.Literal _ | Ast.Var _ -> false
  | Ast.Neg a -> mentions_position a
  | Ast.Binop (_, a, b) -> mentions_position a || mentions_position b
  | Ast.Call (("position" | "last"), _) -> true
  | Ast.Call (_, args) -> List.exists mentions_position args
  | Ast.Path (start, steps) ->
    (match start with Ast.From e -> mentions_position e | Ast.Abs | Ast.Rel -> false)
    || List.exists (fun (s : Ast.step) -> List.exists mentions_position s.preds) steps

let positionless_pred (e : Ast.expr) =
  (not (mentions_position e))
  && (match e with
      | Ast.Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) -> true
      | Ast.Call
          ( ( "not" | "exists" | "empty" | "boolean" | "true" | "false"
            | "contains" | "starts-with" | "ends-with" ),
            _ ) -> true
      | Ast.Path _ -> true
      | _ -> false)

(* An expression whose value does not depend on the context node, so it can
   be evaluated once outside the candidate loop to drive an index probe. *)
let rec context_free (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Var _ | Ast.Number _ -> true
  | Ast.Neg a -> context_free a
  | Ast.Binop (_, a, b) -> context_free a && context_free b
  | Ast.Call (("position" | "last" | "string" | "number" | "string-length"), []) ->
    false
  | Ast.Call (_, args) -> List.for_all context_free args
  | Ast.Path (Ast.From e, steps) ->
    context_free e
    && List.for_all (fun (s : Ast.step) -> s.preds = []) steps
  | Ast.Path (Ast.Abs, steps) ->
    List.for_all (fun (s : Ast.step) -> s.preds = []) steps
  | Ast.Path (Ast.Rel, _) -> false

let rec eval_expr ctx (e : Ast.expr) : value =
  tick 1;
  let open Ast in
  match e with
  | Literal s -> Str s
  | Number f -> Num f
  | Var v ->
    (match List.assoc_opt v ctx.env with
     | Some value -> value
     | None -> fail "unbound variable $%s" v)
  | Neg e -> Num (-.number_v ctx.doc (eval_expr ctx e))
  | Binop (And, a, b) ->
    Bool (boolean (eval_expr ctx a) && boolean (eval_expr ctx b))
  | Binop (Or, a, b) ->
    Bool (boolean (eval_expr ctx a) || boolean (eval_expr ctx b))
  | Binop (Union, a, b) ->
    (match (eval_expr ctx a, eval_expr ctx b) with
     | Nodes xs, Nodes ys -> Nodes (Doc.sort_doc_order ctx.doc (xs @ ys))
     | Strs xs, Strs ys -> Strs (xs @ ys)
     | _ -> fail "union of non node-sets")
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    Bool (compare_values ctx.doc op (eval_expr ctx a) (eval_expr ctx b))
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
    let x = number_v ctx.doc (eval_expr ctx a)
    and y = number_v ctx.doc (eval_expr ctx b) in
    Num
      (match op with
       | Add -> x +. y
       | Sub -> x -. y
       | Mul -> x *. y
       | Div -> x /. y
       | Mod -> Float.rem x y
       | _ -> assert false)
  | Call (f, args) -> eval_call ctx f args
  | Path (Abs, steps) -> eval_abs ctx steps
  | Path (start, steps) ->
    let initial =
      match start with
      | Abs -> assert false
      | Rel -> Nodes [ ctx.node ]
      | From e -> eval_expr ctx e
    in
    eval_steps_v ctx initial steps

(* Absolute paths start at the (virtual) document node, whose only child is
   the root element.  The first step is resolved specially; the rest
   proceed as usual. *)
and eval_abs ctx steps =
  let roots = Doc.roots ctx.doc in
  match steps with
  | [] -> Nodes roots
  | first :: { axis = Ast.Child; preds = []; test = Ast.Name_test tag } :: rest
    when first = Ast.desc_step && ctx.idx <> None ->
    (* Indexed [//tag]: the by-name table, minus the roots (a child step
       never yields a root). *)
    let matches = Index.descendants_named (Option.get ctx.idx) tag in
    tick (1 + List.length matches);
    eval_steps_v ctx (Nodes matches) rest
  | first
    :: ({ axis = Ast.Child; preds = _ :: _ as preds; test = Ast.Name_test tag } as
        second)
    :: rest
    when first = Ast.desc_step && ctx.idx <> None
         && List.for_all positionless_pred preds ->
    (* Indexed [//tag[preds]]: when some equality predicate can be served
       by a value index, probe it to get a small superset of the result,
       then re-check every predicate on the survivors (re-checking keeps
       the probe a pure optimization).  Positionless predicates make the
       flat candidate list safe — see [positionless_pred]. *)
    ignore second;
    let idx = Option.get ctx.idx in
    let candidates =
      match indexed_pred_probe ctx idx ~tag preds with
      | Some ids -> ids
      | None ->
        Index.note_fallback idx;
        Index.descendants_named idx tag
    in
    tick (1 + List.length candidates);
    let filtered = apply_preds ctx candidates preds in
    eval_steps_v ctx (Nodes filtered) rest
  | first :: ({ axis = Ast.Child; preds = []; test } as second) :: rest
    when first = Ast.desc_step ->
    (* Fast path for the [//x] desugaring: child::x of
       descendant-or-self::node() is exactly the non-root descendants
       matching the test — already distinct and in document order, no
       re-sort needed.  (Only without predicates: positional predicates
       group per parent.) *)
    ignore second;
    let matches =
      List.concat_map
        (fun r -> List.filter (test_ok ctx.doc test) (Doc.descendants ctx.doc r))
        roots
    in
    tick (List.length matches);
    eval_steps_v ctx (Nodes matches) rest
  | step :: rest ->
    let open Ast in
    let candidates =
      match step.axis with
      | Child -> roots
      | Descendant | Descendant_or_self ->
        List.concat_map (Doc.descendant_or_self ctx.doc) roots
      | Self -> if step.test = Node_test then roots else []
      | Parent | Ancestor | Ancestor_or_self | Attribute
      | Following_sibling | Preceding_sibling -> []
    in
    let filtered = List.filter (test_ok ctx.doc step.test) candidates in
    let filtered = apply_preds ctx filtered step.preds in
    (* child-of-document-node results (the roots) are clean; descendant
       results overlap *)
    let clean = match step.axis with Child | Self -> true | _ -> false in
    eval_steps_v ctx ~clean (Nodes filtered) rest

(* Find one predicate of the form [text() = v] or [@a = v] (either operand
   order) whose comparand is context-free and string-valued, and serve the
   matching elements from the value indexes.  Returns a superset of the
   [//tag[preds]] result (the caller re-applies all predicates). *)
and indexed_pred_probe ctx idx ~tag preds =
  let classify = function
    | Ast.Path (Ast.Rel, [ { Ast.axis = Ast.Child; test = Ast.Text_test; preds = [] } ])
      -> Some `Text
    | Ast.Path
        (Ast.Rel, [ { Ast.axis = Ast.Attribute; test = Ast.Name_test a; preds = [] } ])
      -> Some (`Attr a)
    | _ -> None
  in
  let probe_of = function
    | Ast.Binop (Ast.Eq, a, b) ->
      (match (classify a, classify b) with
       | Some probe, None when context_free b -> Some (probe, b)
       | None, Some probe when context_free a -> Some (probe, a)
       | _ -> None)
    | _ -> None
  in
  let rec first_probe = function
    | [] -> None
    | p :: rest ->
      (match probe_of p with Some pr -> Some pr | None -> first_probe rest)
  in
  match first_probe preds with
  | None -> None
  | Some (probe, comparand) ->
    (match eval_expr ctx comparand with
     | (Num _ | Bool _) ->
       (* equality against a number or boolean does not compare string
          values; leave it to the interpreter *)
       None
     | v ->
       let keys = item_strings ctx.doc v in
       let hits =
         List.concat_map
           (fun key ->
             match probe with
             | `Text -> Index.by_pcdata idx ~tag key
             | `Attr a -> Index.by_attr idx ~tag ~attr:a key)
           keys
       in
       let hits = List.filter (fun id -> Doc.parent ctx.doc id <> Doc.no_node) hits in
       Some (match keys with [ _ ] -> hits | _ -> Doc.sort_doc_order ctx.doc hits))

and eval_call ctx f args =
  let arg i =
    match List.nth_opt args i with
    | Some e -> eval_expr ctx e
    | None -> fail "%s: missing argument %d" f (i + 1)
  in
  match (f, List.length args) with
  | "position", 0 -> Num (float_of_int ctx.pos)
  | "position-of", 1 ->
    (* Position of a node among its parent's element children; this is the
       [Pos] column of the relational mapping (DESIGN.md).  The paper's
       generated queries write [$x/position()] for the same thing. *)
    (match arg 0 with
     | Nodes (n :: _) ->
       let p =
         match ctx.idx with
         | Some idx -> Index.position idx n
         | None -> Doc.position ctx.doc n
       in
       Num (float_of_int p)
     | Nodes [] -> Num Float.nan
     | _ -> fail "position-of: expected a node-set")
  | "last", 0 -> Num (float_of_int ctx.size)
  | "count", 1 ->
    (match arg 0 with
     | Nodes ns -> Num (float_of_int (List.length ns))
     | Strs ss -> Num (float_of_int (List.length ss))
     | _ -> fail "count: expected a node-set")
  | "count-distinct", 1 ->
    (* The translation of the paper's Cnt_D aggregate. *)
    Num (float_of_int (distinct_count ctx.doc (arg 0)))
  | "exists", 1 ->
    (match arg 0 with
     | Nodes ns -> Bool (ns <> [])
     | Strs ss -> Bool (ss <> [])
     | v -> Bool (boolean v))
  | "empty", 1 -> Bool (not (boolean (arg 0)))
  | "not", 1 -> Bool (not (boolean (arg 0)))
  | "true", 0 -> Bool true
  | "false", 0 -> Bool false
  | "boolean", 1 -> Bool (boolean (arg 0))
  | "number", 1 -> Num (number_v ctx.doc (arg 0))
  | "number", 0 -> Num (num_of_string (Doc.text_content ctx.doc ctx.node))
  | "string", 1 -> Str (string_value ctx.doc (arg 0))
  | "string", 0 -> Str (Doc.text_content ctx.doc ctx.node)
  | "name", 0 ->
    Str (if Doc.is_element ctx.doc ctx.node then Doc.name ctx.doc ctx.node else "")
  | "name", 1 ->
    (match arg 0 with
     | Nodes (n :: _) when Doc.is_element ctx.doc n -> Str (Doc.name ctx.doc n)
     | Nodes _ -> Str ""
     | _ -> fail "name: expected a node-set")
  | "concat", n when n >= 2 ->
    Str
      (String.concat ""
         (List.map (fun e -> string_value ctx.doc (eval_expr ctx e)) args))
  | "contains", 2 ->
    let hay = string_value ctx.doc (arg 0) and needle = string_value ctx.doc (arg 1) in
    let rec search i =
      if i + String.length needle > String.length hay then false
      else if String.sub hay i (String.length needle) = needle then true
      else search (i + 1)
    in
    Bool (search 0)
  | "starts-with", 2 ->
    let s = string_value ctx.doc (arg 0) and p = string_value ctx.doc (arg 1) in
    Bool
      (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "string-length", 1 -> Num (float_of_int (String.length (string_value ctx.doc (arg 0))))
  | "string-length", 0 -> Num (float_of_int (String.length (Doc.text_content ctx.doc ctx.node)))
  | "sum", 1 ->
    (match arg 0 with
     | Nodes ns ->
       Num (List.fold_left (fun a n -> a +. num_of_string (Doc.text_content ctx.doc n)) 0.0 ns)
     | Strs ss -> Num (List.fold_left (fun a s -> a +. num_of_string s) 0.0 ss)
     | v -> Num (number_v ctx.doc v))
  | "floor", 1 -> Num (Float.floor (number_v ctx.doc (arg 0)))
  | "ceiling", 1 -> Num (Float.ceil (number_v ctx.doc (arg 0)))
  | "round", 1 -> Num (Float.round (number_v ctx.doc (arg 0)))
  | "normalize-space", 1 ->
    let s = string_value ctx.doc (arg 0) in
    Str (String.concat " " (String.split_on_char ' ' s |> List.filter (( <> ) "")))
  | "substring", (2 | 3) ->
    (* XPath 1.0 semantics with 1-based rounding positions *)
    let s = string_value ctx.doc (arg 0) in
    let start = Float.round (number_v ctx.doc (arg 1)) in
    let len =
      if List.length args = 3 then Float.round (number_v ctx.doc (arg 2))
      else Float.of_int (String.length s) +. 1.0 -. start
    in
    if Float.is_nan start || Float.is_nan len then Str ""
    else begin
      let first = max 1 (int_of_float start) in
      let last = int_of_float (start +. len) - 1 in
      let last = min last (String.length s) in
      if last < first then Str ""
      else Str (String.sub s (first - 1) (last - first + 1))
    end
  | "substring-before", 2 | "substring-after", 2 ->
    let s = string_value ctx.doc (arg 0) and sep = string_value ctx.doc (arg 1) in
    let n = String.length s and m = String.length sep in
    let rec find i = if i + m > n then None else if String.sub s i m = sep then Some i else find (i + 1) in
    (match find 0 with
     | None -> Str ""
     | Some i ->
       if f = "substring-before" then Str (String.sub s 0 i)
       else Str (String.sub s (i + m) (n - i - m)))
  | "translate", 3 ->
    let s = string_value ctx.doc (arg 0) in
    let from = string_value ctx.doc (arg 1) and to_ = string_value ctx.doc (arg 2) in
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from c with
        | None -> Buffer.add_char b c
        | Some i -> if i < String.length to_ then Buffer.add_char b to_.[i])
      s;
    Str (Buffer.contents b)
  | "upper-case", 1 -> Str (String.uppercase_ascii (string_value ctx.doc (arg 0)))
  | "lower-case", 1 -> Str (String.lowercase_ascii (string_value ctx.doc (arg 0)))
  | "string-join", 2 ->
    let items = item_strings ctx.doc (arg 0) in
    Str (String.concat (string_value ctx.doc (arg 1)) items)
  | "ends-with", 2 ->
    let s = string_value ctx.doc (arg 0) and p = string_value ctx.doc (arg 1) in
    let n = String.length s and m = String.length p in
    Bool (m <= n && String.sub s (n - m) m = p)
  | _, n -> fail "unknown function %s/%d" f n

and eval_steps_v ctx ?(clean = false) initial steps =
  match steps with
  | [] -> initial
  | step :: rest ->
    (match initial with
     | Nodes ns ->
       let v, clean' = eval_one_step ctx ~clean ns step in
       eval_steps_v ctx ~clean:clean' v rest
     | Strs _ when steps <> [] -> fail "cannot apply a step to attribute values"
     | _ -> fail "cannot apply a step to a non node-set")

and eval_one_step ctx ~clean ns (step : Ast.step) : value * bool =
  if step.axis = Ast.Attribute then begin
    (* The attribute axis yields string items. *)
    let vals =
      List.concat_map
        (fun id ->
          if not (Doc.is_element ctx.doc id) then []
          else
            match step.test with
            | Ast.Name_test n ->
              (match Doc.attr ctx.doc id n with Some v -> [ v ] | None -> [])
            | Ast.Wildcard | Ast.Node_test -> List.map snd (Doc.attrs ctx.doc id)
            | Ast.Text_test -> [])
        ns
    in
    if step.preds <> [] then fail "predicates on the attribute axis are not supported";
    (Strs vals, false)
  end
  else begin
    let per_node id =
      let candidates =
        match (step.axis, step.test, ctx.idx) with
        | Ast.Child, Ast.Name_test n, Some idx ->
          (* cached per-parent named-child list *)
          Index.children_named idx id n
        | _ ->
          List.filter (test_ok ctx.doc step.test) (axis_nodes ctx.doc step.axis id)
      in
      tick (1 + List.length candidates);
      apply_preds ctx candidates step.preds
    in
    let n_ctx = List.length ns in
    let clean = clean || n_ctx <= 1 in
    let result = List.concat_map per_node ns in
    let result =
      if needs_sort step.axis ~clean ~n_ctx then Doc.sort_doc_order ctx.doc result
      else result
    in
    (Nodes result, result_clean step.axis ~clean ~n_ctx)
  end

and apply_preds ctx nodes = function
  | [] -> nodes
  | p :: rest ->
    let size = List.length nodes in
    let keep =
      List.filteri
        (fun i id ->
          let ctx' = { ctx with node = id; pos = i + 1; size } in
          match eval_expr ctx' p with
          | Num f -> Float.equal f (float_of_int (i + 1))
          | v -> boolean v)
        nodes
    in
    apply_preds ctx keep rest

let initial_ctx doc env ctx_node index =
  let node =
    match ctx_node with
    | Some n -> n
    | None -> if Doc.has_root doc then Doc.root doc else Doc.no_node
  in
  { doc; env; node; pos = 1; size = 1; idx = index }

let eval doc ?(env = []) ?ctx ?index e = eval_expr (initial_ctx doc env ctx index) e

let select doc ?env ?ctx ?index e =
  match eval doc ?env ?ctx ?index e with
  | Nodes ns -> ns
  | _ -> fail "expected a node-set result for %s" (Ast.to_string e)

let eval_steps doc ?(env = []) ?index ns steps =
  eval_steps_v (initial_ctx doc env None index) (Nodes ns) steps
